"""Checkpointing a CSE to disk and resuming from it.

Deep explorations are expensive; the level-by-level CSE layout makes the
whole intermediate state trivially serialisable — one ``.npy`` pair per
level plus a JSON manifest.  A later process can reload the CSE and keep
exploring (or aggregate) without redoing earlier iterations; spilled
levels are materialised through their chunk iterator, so checkpointing
works in hybrid mode too.

Checkpoints are *crash-safe*: every array is written atomically under a
fresh nonce-suffixed name, the manifest — which carries a format version
and a CRC32 per referenced file — is renamed into place last, and only
then are files the new manifest no longer references removed.  A crash
at any point leaves either the old complete checkpoint or the new one,
never a half-overwritten hybrid.  ``load_cse`` verifies every checksum
and cross-checks each level's ``off`` array against its ``vert`` array
(``off[0] == 0``, non-decreasing, ``off[-1] == len(vert)``) so a corrupt
checkpoint fails at load time instead of deep inside exploration.

:class:`RunCheckpoint` builds on this to give the engine mid-run crash
recovery: one ``level-NNN/`` checkpoint directory per completed
iteration, each a full CSE checkpoint plus an opaque run-state blob, with
startup garbage collection of temp files and invalid directories and
``latest()`` returning the deepest valid level to resume from.
"""

from __future__ import annotations

import io
import json
import logging
import os
import re
import shutil
import uuid
import zlib

import numpy as np

from ..core.cse import CSE, InMemoryLevel
from ..errors import CorruptPartError, StorageError

__all__ = ["save_cse", "load_cse", "RunCheckpoint"]

logger = logging.getLogger("repro.storage")

_MANIFEST = "cse_manifest.json"
_FORMAT_VERSION = 2
_TMP_SUFFIX = ".tmp"
_LEVEL_DIR_RE = re.compile(r"^level-(\d{3,})$")


def _atomic_write(path: str, payload: bytes) -> None:
    """Write ``payload`` at ``path`` via temp file → fsync → rename."""
    tmp_path = f"{path}-{uuid.uuid4().hex[:8]}{_TMP_SUFFIX}"
    try:
        with open(tmp_path, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.remove(tmp_path)
        except OSError:
            pass
        raise


def _array_payload(array: np.ndarray) -> bytes:
    buffer = io.BytesIO()
    np.save(buffer, array, allow_pickle=False)
    return buffer.getvalue()


def _read_checked(directory: str, name: str, crc: int | None) -> bytes:
    path = os.path.join(directory, name)
    try:
        with open(path, "rb") as handle:
            payload = handle.read()
    except OSError as exc:
        raise StorageError(f"missing checkpoint file {path}: {exc}") from exc
    if crc is not None and zlib.crc32(payload) != crc:
        raise CorruptPartError(f"checksum mismatch for checkpoint file {path}")
    return payload


def _load_array(directory: str, name: str, crc: int | None) -> np.ndarray:
    payload = _read_checked(directory, name, crc)
    try:
        return np.load(io.BytesIO(payload), allow_pickle=False)
    except (ValueError, EOFError, OSError) as exc:
        raise CorruptPartError(
            f"undecodable checkpoint file {os.path.join(directory, name)}: {exc}"
        ) from exc


def save_cse(
    cse: CSE,
    directory: str | os.PathLike[str],
    extra_files: dict[str, bytes] | None = None,
    extra_meta: dict | None = None,
) -> None:
    """Write every level of ``cse`` into ``directory``, crash-safely.

    Array files land under fresh nonce-suffixed names, the manifest is
    renamed into place last, and files a previous checkpoint left behind
    are removed only after the new manifest is durable — so an existing
    checkpoint in ``directory`` stays loadable if this save dies at any
    point.  ``extra_files`` are opaque payloads stored alongside the
    levels (checksummed in the manifest); ``extra_meta`` is merged into
    the manifest object.
    """
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    nonce = uuid.uuid4().hex[:8]
    referenced: set[str] = set()
    levels_meta = []
    for idx, level in enumerate(cse.levels):
        chunks = list(level.iter_vert_chunks())
        if chunks:
            vert = np.concatenate(chunks)
        else:
            # Preserve the level's id width so a resumed run keeps the
            # planner's dtype decision even through an empty level.
            vert = np.zeros(0, dtype=getattr(level, "dtype", np.int64))
        vert_name = f"level{idx}_vert-{nonce}.npy"
        payload = _array_payload(vert)
        _atomic_write(os.path.join(directory, vert_name), payload)
        referenced.add(vert_name)
        entry = {
            "vert": vert_name,
            "count": int(vert.shape[0]),
            "crc_vert": zlib.crc32(payload),
        }
        off = level.off_array()
        if off is not None:
            off_name = f"level{idx}_off-{nonce}.npy"
            payload = _array_payload(off)
            _atomic_write(os.path.join(directory, off_name), payload)
            referenced.add(off_name)
            entry["off"] = off_name
            entry["crc_off"] = zlib.crc32(payload)
        levels_meta.append(entry)
    files_meta: dict[str, dict] = {}
    for name, payload in (extra_files or {}).items():
        stored = f"{os.path.splitext(name)[0]}-{nonce}{os.path.splitext(name)[1]}"
        _atomic_write(os.path.join(directory, stored), payload)
        referenced.add(stored)
        files_meta[name] = {"file": stored, "crc32": zlib.crc32(payload)}
    manifest = {"version": _FORMAT_VERSION, "levels": levels_meta, "files": files_meta}
    if extra_meta:
        manifest.update(extra_meta)
    _atomic_write(
        os.path.join(directory, _MANIFEST),
        json.dumps(manifest, indent=2).encode("utf-8"),
    )
    # The new manifest is durable; now drop files it no longer references.
    for name in os.listdir(directory):
        if name == _MANIFEST or name in referenced:
            continue
        if name.endswith(".npy") or name.endswith(_TMP_SUFFIX) or name.endswith(".pkl"):
            try:
                os.remove(os.path.join(directory, name))
            except OSError:
                pass


def read_manifest(directory: str | os.PathLike[str]) -> dict:
    """Read and version-check a checkpoint manifest."""
    directory = os.fspath(directory)
    manifest_path = os.path.join(directory, _MANIFEST)
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise StorageError(f"cannot read CSE manifest at {manifest_path}: {exc}") from exc
    if manifest.get("version") not in (1, _FORMAT_VERSION):
        raise StorageError(
            f"unsupported CSE checkpoint version {manifest.get('version')!r}"
        )
    return manifest


def read_extra_file(directory: str | os.PathLike[str], manifest: dict, name: str) -> bytes:
    """Read one ``extra_files`` payload recorded in ``manifest``."""
    entry = manifest.get("files", {}).get(name)
    if entry is None:
        raise StorageError(f"checkpoint has no stored file {name!r}")
    return _read_checked(os.fspath(directory), entry["file"], entry.get("crc32"))


def _validate_level(
    idx: int, vert: np.ndarray, off: np.ndarray, entry: dict
) -> None:
    """Cross-check a level's off array against its vert array."""
    if off.ndim != 1 or off.shape[0] < 1:
        raise StorageError(f"checkpoint level {idx} has a malformed off array")
    if int(off[0]) != 0:
        raise StorageError(
            f"checkpoint level {idx} off array starts at {int(off[0])}, not 0"
        )
    if np.any(np.diff(off) < 0):
        raise StorageError(f"checkpoint level {idx} off array is not non-decreasing")
    if int(off[-1]) != vert.shape[0]:
        raise StorageError(
            f"checkpoint level {idx} off spans {int(off[-1])} entries but "
            f"vert holds {vert.shape[0]}"
        )
    count = entry.get("count")
    if count is not None and int(count) != vert.shape[0]:
        raise StorageError(
            f"checkpoint level {idx} manifest says {count} entries but "
            f"vert holds {vert.shape[0]}"
        )


def load_cse(directory: str | os.PathLike[str]) -> CSE:
    """Reload a checkpointed CSE (all levels in memory), fully validated."""
    directory = os.fspath(directory)
    manifest = read_manifest(directory)
    levels_meta = manifest.get("levels", [])
    if not levels_meta:
        raise StorageError("checkpoint contains no levels")
    root_entry = levels_meta[0]
    root_vert = _load_array(directory, root_entry["vert"], root_entry.get("crc_vert"))
    count = root_entry.get("count")
    if count is not None and int(count) != root_vert.shape[0]:
        raise StorageError(
            f"checkpoint root level manifest says {count} entries but "
            f"vert holds {root_vert.shape[0]}"
        )
    cse = CSE(root_vert)
    for idx, entry in enumerate(levels_meta[1:], start=1):
        try:
            vert_name, off_name = entry["vert"], entry["off"]
        except KeyError as exc:
            raise StorageError(f"corrupt checkpoint entry {entry!r}: {exc}") from exc
        vert = _load_array(directory, vert_name, entry.get("crc_vert"))
        off = _load_array(directory, off_name, entry.get("crc_off"))
        _validate_level(idx, vert, off, entry)
        try:
            # dtype=vert.dtype: keep the saved id width — the default
            # would narrow an int64 checkpoint back to int32 on resume.
            cse.append_level(InMemoryLevel(vert, off, dtype=vert.dtype))
        except ValueError as exc:
            raise StorageError(
                f"checkpoint level {idx} is inconsistent with its parent: {exc}"
            ) from exc
    return cse


class RunCheckpoint:
    """Per-iteration engine checkpoints under one directory.

    Layout: ``<dir>/level-000/``, ``<dir>/level-001/``, ... — one full
    CSE checkpoint (manifest-last, checksummed) per completed iteration,
    each carrying an opaque run-state blob under ``run_state.pkl``.
    """

    STATE_FILE = "run_state.pkl"

    def __init__(self, directory: str | os.PathLike[str]) -> None:
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)

    # ------------------------------------------------------------------
    def _level_dirs(self) -> list[tuple[int, str]]:
        """(iteration, path) pairs of level directories, deepest first."""
        found: list[tuple[int, str]] = []
        for name in os.listdir(self.directory):
            match = _LEVEL_DIR_RE.match(name)
            path = os.path.join(self.directory, name)
            if match and os.path.isdir(path):
                found.append((int(match.group(1)), path))
        found.sort(reverse=True)
        return found

    def level_path(self, iteration: int) -> str:
        return os.path.join(self.directory, f"level-{iteration:03d}")

    # ------------------------------------------------------------------
    def save(self, iteration: int, cse: CSE, state: bytes) -> str:
        """Checkpoint one completed iteration; returns the level directory."""
        path = self.level_path(iteration)
        save_cse(
            cse,
            path,
            extra_files={self.STATE_FILE: state},
            extra_meta={"iteration": iteration},
        )
        return path

    def latest(self) -> tuple[int, CSE, bytes] | None:
        """Deepest fully-valid checkpoint as ``(iteration, cse, state)``.

        Invalid deeper checkpoints (torn by a crash mid-save, corrupted
        on disk) are skipped with a warning; validation covers the
        manifest, every checksum, and the off/vert cross-checks.
        """
        for iteration, path in self._level_dirs():
            try:
                manifest = read_manifest(path)
                cse = load_cse(path)
                state = read_extra_file(path, manifest, self.STATE_FILE)
            except StorageError as exc:
                logger.warning(
                    "skipping invalid checkpoint %s during resume: %s", path, exc
                )
                continue
            return iteration, cse, state
        return None

    def collect_garbage(self) -> int:
        """Remove crash debris: temp files, files a manifest no longer
        references, and level directories with no readable manifest.
        Returns the number of filesystem entries removed."""
        removed = 0
        try:
            names = os.listdir(self.directory)
        except OSError:  # pragma: no cover - directory vanished
            return 0
        for name in names:
            path = os.path.join(self.directory, name)
            if name.endswith(_TMP_SUFFIX) and os.path.isfile(path):
                try:
                    os.remove(path)
                    removed += 1
                except OSError:
                    pass
        for _, path in self._level_dirs():
            try:
                manifest = read_manifest(path)
            except StorageError:
                shutil.rmtree(path, ignore_errors=True)
                removed += 1
                continue
            referenced = {entry["vert"] for entry in manifest.get("levels", [])}
            referenced.update(
                entry["off"] for entry in manifest.get("levels", []) if "off" in entry
            )
            referenced.update(
                meta["file"] for meta in manifest.get("files", {}).values()
            )
            for name in os.listdir(path):
                if name == _MANIFEST or name in referenced:
                    continue
                try:
                    os.remove(os.path.join(path, name))
                    removed += 1
                except OSError:
                    pass
        if removed:
            logger.warning(
                "garbage-collected %d orphaned checkpoint entr%s under %s",
                removed,
                "y" if removed == 1 else "ies",
                self.directory,
            )
        return removed
