"""Unit tests for the WritingQueue and SlidingWindowReader."""

import numpy as np
import pytest

from repro.storage import PartStore, SlidingWindowReader, WritingQueue


@pytest.mark.parametrize("synchronous", [True, False])
def test_queue_order_preserved(tmp_path, synchronous):
    store = PartStore(str(tmp_path))
    queue = WritingQueue(store, synchronous=synchronous)
    for i in range(8):
        queue.submit(np.full(4, i, dtype=np.int32))
    handles = queue.close()
    assert len(handles) == 8
    for i, handle in enumerate(handles):
        assert store.load(handle).tolist() == [i] * 4


def test_queue_mixed_indexed_and_unindexed_keys(tmp_path):
    """An unindexed submit after explicit indices must sort after them —
    the sequence counter skips past every explicit index, so mixing the
    two styles can never produce duplicate sort keys."""
    store = PartStore(str(tmp_path))
    queue = WritingQueue(store, synchronous=True)
    queue.submit(np.full(2, 1, dtype=np.int32), index=1)
    queue.submit(np.full(2, 0, dtype=np.int32), index=0)
    queue.submit(np.full(2, 2, dtype=np.int32))  # unindexed → key 2, not 1
    handles = queue.close()
    assert [store.load(h).tolist() for h in handles] == [[0, 0], [1, 1], [2, 2]]


def test_queue_flush_mid_stream(tmp_path):
    store = PartStore(str(tmp_path))
    with WritingQueue(store) as queue:
        queue.submit(np.arange(3, dtype=np.int32))
        assert len(queue.flush()) == 1
        queue.submit(np.arange(2, dtype=np.int32))
        assert len(queue.flush()) == 2


def test_queue_tracks_io(tmp_path):
    store = PartStore(str(tmp_path))
    with WritingQueue(store) as queue:
        queue.submit(np.zeros(100, dtype=np.int32))
    assert store.io.bytes_written > 400


def test_window_reader_orders(tmp_path):
    store = PartStore(str(tmp_path))
    handles = [store.save(np.full(3, i, dtype=np.int32)) for i in range(5)]
    for prefetch in (False, True):
        reader = SlidingWindowReader(store, handles, prefetch=prefetch)
        seen = [chunk.tolist() for chunk in reader]
        assert seen == [[i] * 3 for i in range(5)]


def test_window_reader_empty(tmp_path):
    store = PartStore(str(tmp_path))
    assert list(SlidingWindowReader(store, [], prefetch=True)) == []


def test_window_reader_single_part(tmp_path):
    store = PartStore(str(tmp_path))
    handles = [store.save(np.arange(7, dtype=np.int32))]
    chunks = list(SlidingWindowReader(store, handles, prefetch=True))
    assert len(chunks) == 1 and chunks[0].tolist() == list(range(7))


def test_window_reader_propagates_errors(tmp_path):
    import os

    store = PartStore(str(tmp_path))
    handles = [store.save(np.arange(3, dtype=np.int32)) for _ in range(3)]
    os.remove(handles[1].path)
    reader = SlidingWindowReader(store, handles, prefetch=True)
    with pytest.raises(Exception):
        list(reader)


def test_window_reader_hides_io(tmp_path):
    """Prefetch keeps total wall time under serial load+consume time."""
    import time

    store = PartStore(str(tmp_path))
    handles = [store.save(np.arange(50_000, dtype=np.int32)) for _ in range(4)]

    def consume(reader):
        total = 0
        for chunk in reader:
            time.sleep(0.02)  # simulated compute per window
            total += int(chunk[0])
        return total

    # Only assert equivalence of results; timing assertions on shared CI
    # boxes are flaky, the I/O overlap is demonstrated in the benchmarks.
    a = consume(SlidingWindowReader(store, handles, prefetch=False))
    b = consume(SlidingWindowReader(store, handles, prefetch=True))
    assert a == b
