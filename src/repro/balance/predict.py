"""Candidate-size prediction for load balancing (Section 4.2, Figure 8).

The candidate set of an embedding ``prefix + [x]`` is approximated as the
union of the candidate set of ``prefix`` (its stored children — ``x``'s
sibling slice in the CSE, available from the offset arrays for free) and
the neighborhood of ``x`` (from the graph CSC).  The merge is ``O(d̄)``
per embedding; the resulting per-embedding costs drive the partitioner so
spilled parts come out even despite the power-law skew of embedding
degrees.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass

import numpy as np

from ..core.cse import CSE
from ..graph.edge_index import EdgeIndex
from ..graph.graph import Graph

__all__ = [
    "predict_vertex_costs",
    "predict_edge_costs",
    "merged_size",
    "IOPlan",
    "plan_io",
]


# ----------------------------------------------------------------------
# I/O-driven adaptive scheduling (Silvestri's I/O-complexity bounds)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IOPlan:
    """The adaptive scheduler's choice for one spilled level.

    ``part_entries`` is the spill-part granularity ``B`` (ids per part)
    and ``prefetch_depth`` the number of candidate parts read ahead of
    the main part; ``window_bytes`` is the resulting resident window.
    ``source`` records whether measured rates drove the choice
    (``"measured"``) or the defaults did (``"default"``).
    """

    part_entries: int
    prefetch_depth: int
    bytes_per_entry: int
    window_bytes: int
    read_bps: float | None = None
    compute_bps: float | None = None
    source: str = "default"

    def as_dict(self) -> dict:
        return asdict(self)


def plan_io(
    predicted_entries: int,
    bytes_per_entry: int,
    headroom_bytes: int | None = None,
    read_bps: float | None = None,
    compute_bps: float | None = None,
    max_prefetch_depth: int = 8,
    min_part_entries: int = 1 << 12,
    max_part_entries: int = 1 << 20,
    default_part_entries: int = 1 << 16,
) -> IOPlan:
    """Pick the spill-part size and prefetch depth for one level.

    Silvestri's I/O-complexity analysis of subgraph enumeration bounds
    the I/O of a level scan by ``O(E_l · b / B)`` block transfers — I/O
    cost falls linearly in the block (part) size ``B``, so within the
    memory budget ``M`` the scheduler should make parts as large as the
    resident window allows rather than use a fixed knob.  Prefetch depth
    follows from rate matching: with the engine computing at
    ``compute_bps`` and the device delivering ``read_bps``, hiding the
    read of the next part behind the compute of the current one needs
    ``ceil(compute_bps / read_bps)`` candidate reads in flight
    (clamped to ``[1, max_prefetch_depth]``).  The window
    ``(1 + depth) · B · b`` is held to about a quarter of the measured
    headroom so the level's own output and the off arrays keep their
    share of ``M``.
    """
    bytes_per_entry = max(1, int(bytes_per_entry))
    if read_bps and compute_bps and read_bps > 0 and compute_bps > 0:
        depth = int(math.ceil(compute_bps / read_bps))
        depth = max(1, min(max_prefetch_depth, depth))
        source = "measured"
    else:
        depth = 1
        source = "default"
    if headroom_bytes is not None and headroom_bytes > 0:
        window_budget = headroom_bytes // 4
        part_entries = window_budget // ((1 + depth) * bytes_per_entry)
    else:
        part_entries = default_part_entries
    part_entries = max(min_part_entries, min(max_part_entries, int(part_entries)))
    # No point cutting parts larger than the level itself.
    if predicted_entries > 0:
        part_entries = min(
            part_entries, max(min_part_entries, int(predicted_entries))
        )
    return IOPlan(
        part_entries=part_entries,
        prefetch_depth=depth,
        bytes_per_entry=bytes_per_entry,
        window_bytes=(1 + depth) * part_entries * bytes_per_entry,
        read_bps=read_bps,
        compute_bps=compute_bps,
        source=source,
    )


def merged_size(a: np.ndarray, b: np.ndarray) -> int:
    """Size of the union of two sorted id arrays (two-pointer merge)."""
    if a.shape[0] == 0:
        return int(np.unique(b).shape[0])
    if b.shape[0] == 0:
        return int(np.unique(a).shape[0])
    return int(np.union1d(a, b).shape[0])


def predict_vertex_costs(graph: Graph, cse: CSE) -> np.ndarray:
    """Predicted candidate count per top-level embedding (vertex-induced)."""
    total = cse.size()
    costs = np.zeros(total, dtype=np.int64)
    if cse.depth == 1:
        roots = cse.levels[0].vert_array()
        degrees = graph.degrees()
        costs[:] = degrees[roots]
        return costs
    if cse.top.off_array() is None:
        raise ValueError("prediction needs the top level's off array")
    adjacency = graph.adjacency_sets()
    # One streaming pass: buffer each parent's children (the sibling
    # slice), then emit a cost per child as |siblings ∪ N(child)|.  Works
    # identically for in-memory and spilled top levels.
    group_positions: list[int] = []
    group_children: list[int] = []
    current_parent = -2

    def emit_group() -> None:
        siblings = set(group_children)
        for position, child in zip(group_positions, group_children):
            merged = siblings | adjacency[child]
            costs[position] = len(merged)

    for pos, parent, emb in cse.iter_with_parents():
        if parent != current_parent:
            if group_positions:
                emit_group()
            group_positions, group_children = [], []
            current_parent = parent
        group_positions.append(pos)
        group_children.append(emb[-1])
    if group_positions:
        emit_group()
    return costs


def predict_edge_costs(index: EdgeIndex, cse: CSE) -> np.ndarray:
    """Predicted candidate count per top-level embedding (edge-induced).

    The last edge contributes the incident lists of its two endpoints; the
    prefix contributes the sibling slice, as in the vertex-induced case.
    """
    total = cse.size()
    costs = np.zeros(total, dtype=np.int64)
    eu, ev = index.endpoint_lists()
    incident = index.incident_lists()
    if cse.depth == 1:
        roots = cse.levels[0].vert_array()
        for i, eid in enumerate(roots.tolist()):
            merged = set(incident[eu[eid]])
            merged.update(incident[ev[eid]])
            costs[i] = len(merged)
        return costs
    if cse.top.off_array() is None:
        raise ValueError("prediction needs the top level's off array")
    group_positions: list[int] = []
    group_children: list[int] = []
    current_parent = -2

    def emit_group() -> None:
        siblings = set(group_children)
        for position, child in zip(group_positions, group_children):
            merged = siblings.copy()
            merged.update(incident[eu[child]])
            merged.update(incident[ev[child]])
            costs[position] = len(merged)

    for pos, parent, emb in cse.iter_with_parents():
        if parent != current_parent:
            if group_positions:
                emit_group()
            group_positions, group_children = [], []
            current_parent = parent
        group_positions.append(pos)
        group_children.append(emb[-1])
    if group_positions:
        emit_group()
    return costs
