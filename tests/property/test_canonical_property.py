"""Property-based tests: canonical exploration is complete and unique."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import canonical_order, extends_canonically, is_canonical
from repro.graph import from_edge_list


@st.composite
def graphs(draw, max_n=10):
    n = draw(st.integers(min_value=2, max_value=max_n))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=1, max_size=len(possible), unique=True)
    )
    return from_edge_list(edges)


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_canonical_order_is_canonical(graph):
    """The greedy order of any connected set passes the full check, and its
    prefixes do too (the completeness induction step)."""
    # Collect connected sets by BFS from each vertex (bounded size).
    for start in range(graph.num_vertices):
        verts = {start}
        frontier = [start]
        while frontier and len(verts) < 4:
            v = frontier.pop()
            for w in graph.neighbors(v).tolist():
                if w not in verts and len(verts) < 4:
                    verts.add(w)
                    frontier.append(w)
        if len(verts) < 2:
            continue
        try:
            order = canonical_order(graph, sorted(verts))
        except ValueError:
            continue
        for prefix_len in range(1, len(order) + 1):
            assert is_canonical(graph, order[:prefix_len])


@given(graphs(max_n=8))
@settings(max_examples=50, deadline=None)
def test_incremental_equals_full_recheck(graph):
    """extends_canonically(e, v) ⟺ is_canonical(e + (v,)) for canonical e."""
    frontier = [(v,) for v in range(graph.num_vertices)]
    for _ in range(2):
        nxt = []
        for emb in frontier:
            for cand in range(graph.num_vertices):
                fast = extends_canonically(graph, emb, cand)
                slow = is_canonical(graph, emb + (cand,))
                assert fast == slow
                if fast:
                    nxt.append(emb + (cand,))
        frontier = nxt[:40]


@given(graphs(max_n=8), st.integers(min_value=2, max_value=4))
@settings(max_examples=40, deadline=None)
def test_exploration_unique_and_complete(graph, k):
    """Canonical exploration enumerates each connected k-set exactly once."""
    from repro.apps.reference import connected_vertex_sets

    frontier = [(v,) for v in range(graph.num_vertices)]
    for _ in range(k - 1):
        nxt = []
        for emb in frontier:
            for cand in range(graph.num_vertices):
                if extends_canonically(graph, emb, cand):
                    nxt.append(emb + (cand,))
        frontier = nxt
    found = sorted(tuple(sorted(e)) for e in frontier)
    assert found == sorted(connected_vertex_sets(graph, k))
    assert len(set(found)) == len(found)
