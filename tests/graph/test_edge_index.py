"""Unit tests for the vertex → incident-edge index."""

import pytest

from repro.graph import from_edge_list
from repro.graph.edge_index import EdgeIndex


@pytest.fixture
def index(paper_graph):
    return EdgeIndex(paper_graph)


def test_num_edges(index, paper_graph):
    assert index.num_edges == paper_graph.num_edges


def test_endpoints_ordered(index):
    for eid in range(index.num_edges):
        u, v = index.endpoints(eid)
        assert u < v


def test_incident_edges_cover_degree(index, paper_graph):
    for v in range(paper_graph.num_vertices):
        assert index.incident_edges(v).shape[0] == paper_graph.degree(v)


def test_incident_edges_touch_vertex(index):
    for v in range(6):
        for eid in index.incident_edges(v).tolist():
            assert v in index.endpoints(eid)


def test_edge_id_roundtrip(index, paper_graph):
    for u, v in paper_graph.edges():
        eid = index.edge_id(u, v)
        assert index.endpoints(eid) == (u, v)
        assert index.edge_id(v, u) == eid


def test_edge_id_missing(index):
    with pytest.raises(KeyError):
        index.edge_id(0, 1)


def test_incident_sorted(index):
    import numpy as np

    for v in range(6):
        ids = index.incident_edges(v)
        assert np.all(np.diff(ids) > 0) or ids.shape[0] <= 1


def test_nbytes(index):
    assert index.nbytes > 0


def test_edge_ids_are_lexicographic():
    g = from_edge_list([(2, 3), (0, 1), (0, 2)])
    index = EdgeIndex(g)
    assert index.endpoints(0) == (0, 1)
    assert index.endpoints(1) == (0, 2)
    assert index.endpoints(2) == (2, 3)
