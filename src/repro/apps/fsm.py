"""Frequent subgraph mining (edge-induced, MNI support) — Section 5.1.

``k``-FSM mines frequent patterns with ``k - 1`` edges (and at most ``k``
vertices), matching the paper's naming: "for k-FSM, we mine the frequent
subgraphs [with] k − 1 edges".

The implementation follows the paper exactly:

* ``Init`` computes the MNI support of every single-edge pattern and keeps
  only frequent edges as 1-embeddings;
* each iteration expands embeddings by one *frequent* edge
  (EmbeddingFilter), then the Mapper patternises every embedding and the
  Reducer prunes infrequent patterns *and their embeddings* from the CSE;
* support counting short-circuits at the threshold unless
  ``exact_mni=True`` (Kaleido "does not statistic the accurate MNI
  support").
"""

from __future__ import annotations

import numpy as np

from ..core.api import EngineContext, MiningApplication, PatternMap
from ..core.cse import CSE
from ..core.pattern import Pattern
from .mni import MNIDomains, PositionMapper, merge_domains

__all__ = [
    "FrequentSubgraphMining",
    "FSMResult",
    "FSMMapperPart",
    "edge_pattern_supports",
]


class FSMMapperPart:
    """One mapper part's local state for the FSM apps.

    ``prune`` needs the per-embedding pattern hashes *in level position
    order*; recording them here (instead of on the application) keeps
    ``map_embedding`` pure per part, and the engine's part-ordered
    ``finish_part`` calls reassemble the positional list deterministically
    under any executor."""

    __slots__ = ("hashes", "insertions", "mapped")

    def __init__(self) -> None:
        self.hashes: list[int] = []
        self.insertions = 0
        self.mapped = 0


def edge_pattern_supports(graph) -> dict[tuple[int, int, int], MNIDomains]:
    """MNI domains of every single-edge pattern.

    Keys are ``(label_u, label_v, edge_label)`` with the vertex labels
    ordered; the edge label is 0 for edge-unlabeled graphs."""
    supports: dict[tuple[int, int, int], MNIDomains] = {}
    eu, ev = graph.edge_arrays()
    labels = graph.labels
    elabels = (
        graph.edge_labels.tolist()
        if graph.has_edge_labels
        else [0] * eu.shape[0]
    )
    for u, v, elab in zip(eu.tolist(), ev.tolist(), elabels):
        lu, lv = int(labels[u]), int(labels[v])
        if lu > lv:
            lu, lv = lv, lu
            u, v = v, u
        key = (lu, lv, int(elab))
        dom = supports.get(key)
        if dom is None:
            dom = supports[key] = MNIDomains(2)
        dom.domains[0].add(u)
        dom.domains[1].add(v)
        if lu == lv:
            # Either endpoint can play either role when labels tie.
            dom.domains[0].add(v)
            dom.domains[1].add(u)
    return supports


class FSMResult(dict):
    """Pattern hash → support, plus the representative structures."""

    def __init__(self, supports: dict[int, int], patterns: dict[int, Pattern]):
        super().__init__(supports)
        self.patterns = patterns

    def frequent(self, threshold: int) -> dict[int, int]:
        return {h: s for h, s in self.items() if s >= threshold}


class FrequentSubgraphMining(MiningApplication):
    """Edge-induced k-FSM with MNI support."""

    induced = "edge"
    aggregate_every_iteration = True

    def __init__(
        self,
        num_edges: int,
        support: int,
        exact_mni: bool = False,
        hash_every_embedding: bool = False,
    ) -> None:
        if num_edges < 1:
            raise ValueError("num_edges must be at least 1")
        if support < 1:
            raise ValueError("support must be at least 1")
        self.num_edges = num_edges
        self.support = support
        self.exact_mni = exact_mni
        #: Disable the app-level raw-structure hash memo (Figure 12 /
        #: caching ablation: the paper fingerprints every embedding).
        self.hash_every_embedding = hash_every_embedding
        self._frequent_edges: set[tuple[int, int]] = set()
        self._iter_hashes: list[int] = []
        self._mapper = PositionMapper()
        self._phash_cache: dict[tuple[tuple[int, ...], int], int] = {}
        #: Total MNI set insertions performed (deterministic cost proxy for
        #: the Figure-11 support sweep).
        self.total_insertions = 0
        #: Total embeddings mapped across all iterations.
        self.total_mapped = 0

    @property
    def name(self) -> str:
        return f"{self.num_edges + 1}-FSM(s={self.support})"

    @property
    def _threshold(self) -> int | None:
        return None if self.exact_mni else self.support

    # ------------------------------------------------------------------
    def init(self, ctx: EngineContext) -> np.ndarray:
        assert ctx.edge_index is not None
        supports = edge_pattern_supports(ctx.graph)
        frequent_pairs = {
            key for key, dom in supports.items() if dom.support >= self.support
        }
        eu, ev = ctx.graph.edge_arrays()
        labels = ctx.graph.labels
        elabels = (
            ctx.graph.edge_labels.tolist()
            if ctx.graph.has_edge_labels
            else [0] * eu.shape[0]
        )
        keep: list[int] = []
        for eid, (u, v, elab) in enumerate(
            zip(eu.tolist(), ev.tolist(), elabels)
        ):
            lu, lv = int(labels[u]), int(labels[v])
            pair = (lu, lv, int(elab)) if lu <= lv else (lv, lu, int(elab))
            if pair in frequent_pairs:
                keep.append(eid)
                self._frequent_edges.add((u, v))
        return np.asarray(keep, dtype=np.int32)

    def iterations(self) -> int:
        return self.num_edges - 1

    def embedding_filter(
        self, embedding: tuple[int, ...], candidate: tuple[int, int]
    ) -> bool:
        """Only expand by frequent edges (Section 5.1)."""
        return candidate in self._frequent_edges

    # ------------------------------------------------------------------
    def start_part(self, ctx: EngineContext) -> FSMMapperPart:
        return FSMMapperPart()

    def finish_part(self, ctx: EngineContext, part: FSMMapperPart) -> None:
        self._iter_hashes.extend(part.hashes)
        self.total_insertions += part.insertions
        self.total_mapped += part.mapped

    def map_embedding(
        self,
        ctx: EngineContext,
        embedding: tuple[int, ...],
        pmap: PatternMap,
        part: FSMMapperPart | None = None,
    ) -> None:
        assert ctx.edge_index is not None
        eu, ev = ctx.edge_index.endpoint_lists()
        edges = [(eu[eid], ev[eid]) for eid in embedding]
        pattern = Pattern.from_edge_embedding(ctx.graph, edges)
        if self.hash_every_embedding:
            phash = ctx.hash_pattern(pattern)
        else:
            # Shared memo is safe under concurrent parts: dict get/set are
            # atomic and the value per key is deterministic, so a race
            # costs at most a duplicate hash computation.
            raw_key = (pattern.labels, pattern.bits, pattern.edge_labels)
            phash = self._phash_cache.get(raw_key)
            if phash is None:
                phash = ctx.hash_pattern(pattern)
                self._phash_cache[raw_key] = phash  # repro: ignore[R001] -- benign memo race (see above)
        # Vertices in structure (first-appearance) order, then placed at
        # canonical pattern positions (all automorphic placements) so the
        # MNI domains are exact and position-consistent across embeddings.
        structure_order: list[int] = []
        seen: set[int] = set()
        for u, v in edges:
            for w in (u, v):
                if w not in seen:
                    seen.add(w)
                    structure_order.append(w)
        dom = pmap.get(phash)
        if dom is None:
            dom = pmap[phash] = MNIDomains(len(structure_order))
        inserted = 0
        for placement in self._mapper.placements(pattern, structure_order):
            inserted += dom.add(placement, self._threshold)
        if part is None:  # direct three-argument call (serial/tests)
            # The engine always passes a part; this branch only runs when
            # tests invoke map_embedding directly, i.e. single-threaded.
            self.total_insertions += inserted  # repro: ignore[R001]
            self.total_mapped += 1  # repro: ignore[R001]
            self._iter_hashes.append(phash)  # repro: ignore[R001]
        else:
            part.insertions += inserted
            part.mapped += 1
            part.hashes.append(phash)

    def reduce(self, ctx: EngineContext, pmaps: list[PatternMap]) -> PatternMap:
        merged: PatternMap = {}
        for pmap in pmaps:
            for phash, dom in pmap.items():
                mine = merged.get(phash)
                if mine is None:
                    merged[phash] = dom
                else:
                    merge_domains(mine, dom, self._threshold)
        return merged

    def prune(
        self, ctx: EngineContext, cse: CSE, reduced: PatternMap
    ) -> np.ndarray | None:
        frequent = {
            phash for phash, dom in reduced.items() if dom.support >= self.support
        }
        keep = np.fromiter(
            (phash in frequent for phash in self._iter_hashes),
            dtype=bool,
            count=len(self._iter_hashes),
        )
        self._iter_hashes = []
        if keep.all():
            return None
        return keep

    # ------------------------------------------------------------------
    def checkpoint_state(self, ctx: EngineContext) -> dict:
        # _frequent_edges and the phash memo are rebuilt deterministically
        # (init reruns on resume); only the accumulated cost counters need
        # to survive a crash.
        return {
            "total_insertions": self.total_insertions,
            "total_mapped": self.total_mapped,
        }

    def restore_state(self, ctx: EngineContext, state: dict) -> None:
        self.total_insertions = state["total_insertions"]
        self.total_mapped = state["total_mapped"]

    # ------------------------------------------------------------------
    def pmap_nbytes(self, pmap: PatternMap) -> int:
        return sum(120 + dom.nbytes for dom in pmap.values())

    def finalize(self, ctx: EngineContext, cse: CSE, pmap: PatternMap) -> FSMResult:
        supports = {
            phash: dom.support
            for phash, dom in pmap.items()
            if dom.support >= self.support
        }
        patterns = {}
        for phash in supports:
            rep = ctx.engine.hasher.representative(phash)
            if rep is not None:
                patterns[phash] = rep
        return FSMResult(supports, patterns)
