"""Triangle counting (Section 5.1).

``Init`` produces the 2-embeddings (the edge set); the Mapper counts, for
each 2-embedding ``<u, v>``, the common neighbors ``w > v`` — each
triangle is counted exactly once because its canonical 2-prefix is the
pair of its two smallest vertices.
"""

from __future__ import annotations

import numpy as np

from ..core.api import EngineContext, MiningApplication, PatternMap
from ..core.cse import CSE
from ..core.pattern import Pattern, triangle_index

__all__ = ["TriangleCounting"]

#: The (unlabeled) triangle pattern: K_3.
_TRIANGLE = Pattern(
    (0, 0, 0),
    (1 << triangle_index(0, 1, 3))
    | (1 << triangle_index(0, 2, 3))
    | (1 << triangle_index(1, 2, 3)),
)


class TriangleCounting(MiningApplication):
    """Count the triangles of the input graph."""

    induced = "vertex"

    @property
    def name(self) -> str:
        return "TC"

    def iterations(self) -> int:
        # One expansion turns 1-embeddings (vertices) into 2-embeddings.
        return 1

    def query_pattern(self) -> Pattern:
        return _TRIANGLE

    def map_embedding(
        self, ctx: EngineContext, embedding: tuple[int, ...], pmap: PatternMap
    ) -> None:
        u, v = embedding
        common = ctx.graph.common_neighbors(u, v)
        count = int(np.count_nonzero(common > v))
        if count:
            pmap[0] = pmap.get(0, 0) + count

    def finalize(self, ctx: EngineContext, cse: CSE, pmap: PatternMap) -> int:
        return pmap.get(0, 0)
