#!/usr/bin/env bash
# Full reproduction: correctness suite + every paper table/figure benchmark.
# Outputs land in test_output.txt, bench_output.txt and benchmarks/out/*.txt.
set -uo pipefail
cd "$(dirname "$0")/.."

echo "== tests =="
python -m pytest tests/ 2>&1 | tee test_output.txt
echo
echo "== benchmarks (profile: ${REPRO_PROFILE:-bench}) =="
python -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt
