"""Shared fixtures: the paper's running example and small random graphs."""

from __future__ import annotations

from contextlib import ExitStack

import numpy as np
import pytest

from repro.core.engine import KaleidoEngine
from repro.graph import Graph, GraphBuilder, from_edge_list


@pytest.fixture
def paper_graph() -> Graph:
    """The 5-vertex graph of Figures 1/3/9 of the paper.

    Vertices 1..5 (vertex 0 exists but is isolated and edge-free is not
    allowed by the apps' canonical exploration, so it contributes only a
    1-embedding).  Known ground truth: 7 2-embeddings, 8 3-embeddings,
    3 triangles, 5 3-chains, 3 3-cliques.
    """
    return from_edge_list(
        [(1, 2), (1, 5), (2, 5), (2, 3), (3, 4), (3, 5), (4, 5)], name="paper"
    )


@pytest.fixture
def labeled_square() -> Graph:
    """A 4-cycle with a chord and alternating labels."""
    return from_edge_list(
        [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)], labels=[0, 1, 0, 1], name="square"
    )


def random_labeled_graph(
    num_vertices: int, num_edges: int, num_labels: int, seed: int
) -> Graph:
    """Seeded uniform random labeled graph for property tests."""
    rng = np.random.default_rng(seed)
    builder = GraphBuilder(num_vertices)
    seen: set[tuple[int, int]] = set()
    attempts = 0
    while len(seen) < num_edges and attempts < 50 * num_edges + 100:
        u = int(rng.integers(num_vertices))
        v = int(rng.integers(num_vertices))
        attempts += 1
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key not in seen:
            seen.add(key)
            builder.add_edge(*key)
    labels = rng.integers(num_labels, size=num_vertices)
    builder.set_labels([int(x) for x in labels])
    return builder.build(name=f"rand-{seed}")


@pytest.fixture
def small_random() -> Graph:
    return random_labeled_graph(12, 20, 3, seed=7)


@pytest.fixture
def sanitized_engine():
    """Factory for engines running under the part-purity sanitizer.

    ``engine = sanitized_engine(graph, workers=4, executor="threads")``
    builds a ``KaleidoEngine`` with ``sanitize=True`` (overridable) and
    closes it when the test ends.
    """
    with ExitStack() as stack:

        def factory(graph: Graph, **kwargs) -> KaleidoEngine:
            kwargs.setdefault("sanitize", True)
            return stack.enter_context(KaleidoEngine(graph, **kwargs))

        yield factory
