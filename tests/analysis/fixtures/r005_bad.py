"""R005 fixture: swallowed storage errors (3 hits)."""


def load(path):
    try:
        return open(path, "rb").read()
    except:  # hit 1: bare except
        return None


def save(path, payload):
    try:
        with open(path, "wb") as handle:
            handle.write(payload)
    except Exception:  # hit 2: swallowed catch-all
        pass


def remove(path, os):
    try:
        os.remove(path)
    except (ValueError, BaseException):  # hit 3: catch-all in a tuple
        return False
    return True
