"""Unit tests for PartStore and SpilledLevel."""

import os

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage import PartStore, SpilledLevel


def test_save_load_roundtrip(tmp_path):
    store = PartStore(str(tmp_path))
    data = np.arange(100, dtype=np.int32)
    handle = store.save(data)
    assert handle.length == 100
    assert os.path.exists(handle.path)
    loaded = store.load(handle)
    assert np.array_equal(loaded, data)
    assert store.io.bytes_written > 0
    assert store.io.bytes_read == store.io.bytes_written


def test_delete(tmp_path):
    store = PartStore(str(tmp_path))
    handle = store.save(np.zeros(5, dtype=np.int32))
    store.delete(handle)
    assert not os.path.exists(handle.path)
    store.delete(handle)  # idempotent


def test_tempdir_cleanup():
    store = PartStore()
    directory = store.directory
    store.save(np.zeros(3, dtype=np.int32))
    store.close()
    assert not os.path.exists(directory)


def test_explicit_dir_not_removed(tmp_path):
    store = PartStore(str(tmp_path))
    store.save(np.zeros(3, dtype=np.int32))
    store.close()
    assert os.path.exists(tmp_path)


def test_load_missing_part(tmp_path):
    store = PartStore(str(tmp_path))
    handle = store.save(np.zeros(3, dtype=np.int32))
    os.remove(handle.path)
    with pytest.raises(StorageError):
        store.load(handle)


def _spilled(tmp_path, chunks, off=None, prefetch=False):
    store = PartStore(str(tmp_path))
    handles = [store.save(np.asarray(c, dtype=np.int32)) for c in chunks]
    return store, SpilledLevel(store, handles, off, prefetch=prefetch)


def test_spilled_level_basics(tmp_path):
    off = np.array([0, 2, 5], dtype=np.int64)
    store, level = _spilled(tmp_path, [[1, 2], [3, 4, 5]], off)
    assert level.num_embeddings == 5
    assert level.num_parts == 2
    assert level.vert_array().tolist() == [1, 2, 3, 4, 5]
    chunks = [c.tolist() for c in level.iter_vert_chunks()]
    assert chunks == [[1, 2], [3, 4, 5]]
    assert level.nbytes_in_memory == off.nbytes
    assert level.nbytes_on_disk > 0
    assert level.nbytes_total > level.nbytes_in_memory


def test_spilled_level_off_span_check(tmp_path):
    with pytest.raises(StorageError):
        _spilled(tmp_path, [[1, 2]], np.array([0, 5], dtype=np.int64))


def test_spilled_level_drop(tmp_path):
    store, level = _spilled(tmp_path, [[1], [2]], np.array([0, 1, 2]))
    paths = [p.path for p in level.parts]
    level.drop()
    assert level.num_embeddings == 0
    assert all(not os.path.exists(p) for p in paths)


def test_spilled_level_prefetch_equivalent(tmp_path):
    off = np.arange(0, 13, 3, dtype=np.int64)
    chunks = [np.arange(i, i + 3) for i in range(0, 12, 3)]
    store1, plain = _spilled(tmp_path / "a", chunks, off, prefetch=False)
    store2, fetched = _spilled(tmp_path / "b", chunks, off, prefetch=True)
    a = [c.tolist() for c in plain.iter_vert_chunks()]
    b = [c.tolist() for c in fetched.iter_vert_chunks()]
    assert a == b


def test_empty_spilled_level(tmp_path):
    store = PartStore(str(tmp_path))
    level = SpilledLevel(store, [], np.array([0], dtype=np.int64))
    assert level.num_embeddings == 0
    assert level.vert_array().shape == (0,)
    assert list(level.iter_vert_chunks()) == []
