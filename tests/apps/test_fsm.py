"""Unit tests for frequent subgraph mining."""

import pytest

from repro import FrequentSubgraphMining, KaleidoEngine
from repro.apps.fsm import edge_pattern_supports
from repro.apps.reference import fsm_naive
from tests.conftest import random_labeled_graph


def test_edge_pattern_supports(labeled_square):
    supports = edge_pattern_supports(labeled_square)
    # Square 0-1-2-3 with chord (0,2); labels [0,1,0,1]; edge label 0.
    # (0,1)-labeled edges: (0,1),(1,2),(2,3),(3,0) → domains {0,2} × {1,3}.
    assert supports[(0, 1, 0)].support == 2
    # (0,0)-labeled edge: the chord (0,2) → both endpoints in both domains.
    assert supports[(0, 0, 0)].support == 2


def test_single_edge_fsm(labeled_square):
    result = KaleidoEngine(labeled_square).run(
        FrequentSubgraphMining(num_edges=1, support=2, exact_mni=True)
    )
    assert sorted(result.value.values()) == [2, 2]


def test_matches_naive_exact_mni():
    for seed in range(4):
        g = random_labeled_graph(12, 22, 2, seed=40 + seed)
        for num_edges in (1, 2, 3):
            for support in (2, 3):
                got = KaleidoEngine(g).run(
                    FrequentSubgraphMining(num_edges, support, exact_mni=True)
                )
                expected = fsm_naive(g, num_edges, support)
                assert sorted(got.value.values()) == sorted(expected.values()), (
                    seed, num_edges, support,
                )


def test_threshold_mode_finds_same_frequent_set():
    """Short-circuit counting caps reported supports at the threshold but
    must identify exactly the same frequent patterns."""
    for seed in range(3):
        g = random_labeled_graph(14, 30, 2, seed=80 + seed)
        exact = KaleidoEngine(g).run(
            FrequentSubgraphMining(2, 3, exact_mni=True)
        )
        fast = KaleidoEngine(g).run(
            FrequentSubgraphMining(2, 3, exact_mni=False)
        )
        assert set(exact.value) == set(fast.value)
        for phash, support in fast.value.items():
            assert support >= 3
            assert exact.value[phash] >= support


def test_high_support_yields_nothing():
    g = random_labeled_graph(10, 15, 3, seed=5)
    result = KaleidoEngine(g).run(FrequentSubgraphMining(2, 1000))
    assert dict(result.value) == {}


def test_infrequent_embeddings_pruned(labeled_square):
    """The CSE top level shrinks when patterns are pruned."""
    app = FrequentSubgraphMining(2, 2, exact_mni=True)
    result = KaleidoEngine(labeled_square).run(app)
    # Level sizes: 5 frequent edges, then pruned 2-edge embeddings.
    assert result.level_sizes[0] == 5
    assert result.level_sizes[1] <= 8


def test_representatives_have_right_size(labeled_square):
    result = KaleidoEngine(labeled_square).run(
        FrequentSubgraphMining(2, 2, exact_mni=True)
    )
    for pattern in result.value.patterns.values():
        assert pattern.num_edges == 2


def test_frequent_method():
    g = random_labeled_graph(12, 25, 2, seed=9)
    result = KaleidoEngine(g).run(FrequentSubgraphMining(2, 2, exact_mni=True))
    assert result.value.frequent(10**9) == {}
    assert result.value.frequent(2) == dict(result.value)


def test_validates_arguments():
    with pytest.raises(ValueError):
        FrequentSubgraphMining(0, 5)
    with pytest.raises(ValueError):
        FrequentSubgraphMining(2, 0)


def test_anti_monotone_pruning_consistency():
    """Frequent (k+1)-patterns only extend frequent k-patterns: mining with
    a lower support never loses patterns found at a higher support."""
    g = random_labeled_graph(14, 30, 2, seed=13)
    high = KaleidoEngine(g).run(FrequentSubgraphMining(3, 4, exact_mni=True))
    low = KaleidoEngine(g).run(FrequentSubgraphMining(3, 2, exact_mni=True))
    assert set(high.value) <= set(low.value)


def test_name():
    assert FrequentSubgraphMining(2, 300).name == "3-FSM(s=300)"
