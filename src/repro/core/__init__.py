"""Kaleido core: CSE, canonicality, exploration, patterns, EigenHash, engine."""

from .api import EngineContext, MiningApplication, MiningResult, PatternMap
from .canonical import (
    canonical_edge_order,
    canonical_order,
    edge_extends_canonically,
    edge_is_canonical,
    extends_canonically,
    is_canonical,
)
from .cse import CSE, InMemoryLevel, Level
from .eigenhash import PatternHasher, eigen_hash, faddeev_leverrier, weighted_adjacency
from .engine import KaleidoEngine
from .explore import (
    ExpansionStats,
    InMemorySink,
    LevelSink,
    canonical_extensions,
    even_parts,
    expand_edge_level,
    expand_vertex_level,
)
from .isomorphism import are_isomorphic, automorphism_count, canonical_key
from .pattern import MAX_EIGENHASH_VERTICES, Pattern, triangle_index

__all__ = [
    "CSE",
    "InMemoryLevel",
    "Level",
    "Pattern",
    "triangle_index",
    "MAX_EIGENHASH_VERTICES",
    "eigen_hash",
    "faddeev_leverrier",
    "weighted_adjacency",
    "PatternHasher",
    "are_isomorphic",
    "canonical_key",
    "automorphism_count",
    "canonical_order",
    "is_canonical",
    "extends_canonically",
    "canonical_edge_order",
    "edge_is_canonical",
    "edge_extends_canonically",
    "expand_vertex_level",
    "expand_edge_level",
    "canonical_extensions",
    "even_parts",
    "ExpansionStats",
    "LevelSink",
    "InMemorySink",
    "KaleidoEngine",
    "MiningApplication",
    "MiningResult",
    "EngineContext",
    "PatternMap",
]
