"""EigenHash: the paper's lightweight graph-isomorphism fingerprint.

Algorithm 1 of the paper:

1. sort pattern positions by ``(label, degree)`` ascending;
2. build the *weighted* adjacency matrix ``M`` whose entry for an edge
   ``(i, j)`` is the concatenation of the two endpoint labels
   ``l_i | l_j`` (with ``l_i <= l_j`` after the sort);
3. compute the characteristic polynomial of ``M`` with the
   Faddeev–LeVerrier recurrence (exact integer arithmetic — no floating
   point eigensolves);
4. hash ``(labels, degrees, polynomial)`` together with XOR.

Correctness (Theorem 2 / Corollary 1): for embeddings with fewer than nine
vertices, equal degrees plus equal spectrum implies isomorphism (Harary et
al.), so the fingerprint is collision-free in the mining regime the paper
targets (k < 9).
"""

from __future__ import annotations

import threading
from typing import Sequence

import numpy as np

from .pattern import MAX_EIGENHASH_VERTICES, Pattern

__all__ = [
    "faddeev_leverrier",
    "weighted_adjacency",
    "eigen_hash",
    "PatternHasher",
    "HARARY_COSPECTRAL_6",
    "HARARY_COSPECTRAL_9",
]


def faddeev_leverrier(matrix: Sequence[Sequence[int]] | np.ndarray) -> tuple[int, ...]:
    """Exact characteristic-polynomial coefficients of an integer matrix.

    Returns ``(p_1, ..., p_n)`` such that
    ``det(λI − M) = λ^n + p_1 λ^(n−1) + ... + p_n``.

    Implements lines 19-26 of Algorithm 1 with plain Python integers —
    exact (the divisions by ``k`` are exact for integer matrices) and,
    for the tiny matrices mining produces (k <= 8), much faster than any
    array library round trip.
    """
    mat = [[int(x) for x in row] for row in matrix]
    n = len(mat)
    if any(len(row) != n for row in mat):
        raise ValueError(
            f"matrix must be square, got shape ({n}, {set(len(r) for r in mat)})"
        )
    if n == 0:
        return ()
    return _flv(mat, n)


def _flv(mat: list[list[int]], n: int) -> tuple[int, ...]:
    """Core Faddeev-LeVerrier recurrence over list-of-lists integers.

    Sparse-aware: adjacency matrices of mining patterns are mostly zero,
    so the matmul skips zero entries of the left factor.
    """
    rng = range(n)
    coeffs: list[int] = []
    work = [row[:] for row in mat]
    for k in range(1, n + 1):
        if k > 1:
            prev = coeffs[-1]
            for i in rng:
                work[i][i] += prev
            new = [[0] * n for _ in rng]
            for i in rng:
                mi = mat[i]
                ni = new[i]
                for t in rng:
                    m = mi[t]
                    if m:
                        wt = work[t]
                        for j in rng:
                            ni[j] += m * wt[j]
            work = new
        trace = 0
        for i in rng:
            trace += work[i][i]
        if trace % k != 0:  # pragma: no cover - defensive; exact for ints
            raise ValueError("Faddeev-LeVerrier trace not divisible; non-integer input?")
        coeffs.append(-(trace // k))
    return tuple(coeffs)


def weighted_adjacency(pattern: Pattern) -> np.ndarray:
    """Label-weighted adjacency matrix ``M`` (lines 12-18 of Algorithm 1).

    Edge weight is the concatenation ``l_i | l_j`` of the endpoint labels.
    We realise the concatenation as ``(l_i + 1) * base + (l_j + 1)`` with
    ``l_i <= l_j`` and ``base`` one past the largest label in the pattern,
    which is injective over ordered label pairs and never zero (a zero
    weight would erase the edge from the matrix).
    """
    k = pattern.num_vertices
    base = max(pattern.labels, default=0) + 2
    mat = np.zeros((k, k), dtype=object)
    for i in range(k):
        for j in range(i + 1, k):
            if pattern.has_edge(i, j):
                li, lj = pattern.labels[i], pattern.labels[j]
                if li > lj:
                    li, lj = lj, li
                weight = (li + 1) * base + (lj + 1)
                mat[i, j] = weight
                mat[j, i] = weight
    return mat


def eigen_hash(pattern: Pattern) -> int:
    """The EigenHash fingerprint of a pattern (Algorithm 1, ``EigenHash``).

    Two patterns of embeddings with < 9 vertices receive the same value
    iff the embeddings are isomorphic (Theorem 2).  Deterministic across
    runs (independent of ``PYTHONHASHSEED``).

    The whole pipeline — decode, (label, degree) sort, weighted matrix,
    characteristic polynomial, hash — is inlined over plain ints: this is
    the per-embedding hot path of the paper's pattern aggregation phase.
    """
    k = pattern.num_vertices
    if k > MAX_EIGENHASH_VERTICES:
        pattern.check_eigenhash_size()
    labels = pattern.labels
    bits = pattern.bits
    has_edge_labels = pattern.edge_labels is not None
    # Decode the bitmap once into adjacency rows + degrees (+ edge labels,
    # which arrive in ascending cell order).
    adj = [[False] * k for _ in range(k)]
    elab = [[0] * k for _ in range(k)] if has_edge_labels else None
    degrees = [0] * k
    cell = 0
    rank = 0
    for i in range(k):
        row_i = adj[i]
        for j in range(i + 1, k):
            if bits >> cell & 1:
                row_i[j] = True
                adj[j][i] = True
                degrees[i] += 1
                degrees[j] += 1
                if elab is not None:
                    assert pattern.edge_labels is not None
                    value = pattern.edge_labels[rank]
                    elab[i][j] = value
                    elab[j][i] = value
                    rank += 1
            cell += 1
    # Lines 29-33: sort positions by (label, degree).
    perm = sorted(range(k), key=lambda i: (labels[i], degrees[i]))
    plabels = tuple(labels[p] for p in perm)
    pdegrees = tuple(degrees[p] for p in perm)
    # Lines 12-18: weighted adjacency in the sorted order.  With edge
    # labels, the weight additionally encodes L(u, v) so differently
    # labeled edges never alias.
    base = (max(labels) if k else 0) + 2
    ebase = (max(pattern.edge_labels) + 2) if has_edge_labels and pattern.edge_labels else 2
    rows = [[0] * k for _ in range(k)]
    for i in range(k):
        pi = perm[i]
        adj_pi = adj[pi]
        li = labels[pi]
        for j in range(i + 1, k):
            pj = perm[j]
            if adj_pi[pj]:
                lj = labels[pj]
                lo, hi = (li, lj) if li <= lj else (lj, li)
                weight = (lo + 1) * base + (hi + 1)
                if elab is not None:
                    weight = weight * ebase + (elab[pi][pj] + 1)
                rows[i][j] = weight
                rows[j][i] = weight
    poly = _flv(rows, k)
    return _stable_hash(plabels) ^ _stable_hash(pdegrees) ^ _stable_hash(poly)


def _stable_hash(values: tuple[int, ...]) -> int:
    """FNV-1a over the integer tuple; stable across interpreter runs."""
    acc = 0xCBF29CE484222325
    for value in values:
        # Mix sign and magnitude bytes of arbitrary-precision ints.
        data = value.to_bytes((value.bit_length() + 8) // 8 + 1, "little", signed=True)
        for byte in data:
            acc ^= byte
            acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        acc ^= 0xFF  # separator so (1,23) != (12,3)
        acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc


class PatternHasher:
    """Caching wrapper around :func:`eigen_hash`.

    Embedding streams contain the same raw pattern structure over and
    over; the cache keys on the *normalised* structure so all automorphic
    raw structures that sort identically share one polynomial computation.

    Also keeps the representative :class:`Pattern` per hash so results can
    be reported as structures, not bare integers.

    All three maps — both hash caches and the representative store —
    are bounded: at most ``max_entries`` entries live in each, with
    least-recently-used eviction once the cap is reached (``evictions``
    counts them, summed across the maps).  One engine run never
    approaches the default cap — distinct pattern structures are few —
    but the hasher is shared across runs by the long-running service
    tier, where an unbounded memo is a slow leak.
    """

    #: Default cache cap: far above any single run's distinct-structure
    #: count, small enough that a service sharing one hasher for days
    #: stays bounded (~tens of MB at the accounted ~120 B/entry).
    DEFAULT_MAX_ENTRIES = 1 << 18

    def __init__(self, cache: bool = True, max_entries: int | None = None) -> None:
        #: ``cache=False`` recomputes the polynomial on every call — the
        #: paper's per-embedding checking regime, used by the Figure-12
        #: benchmark and the caching ablation.
        self.cache = cache
        if max_entries is None:
            max_entries = self.DEFAULT_MAX_ENTRIES
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._cache: dict[tuple, int] = {}
        # Raw-structure front cache: embedding streams repeat the same raw
        # (labels, bits) structure over and over, and those tuples already
        # exist on the Pattern — so a hit costs one dict probe and skips
        # the O(k^2) (label, degree) sort + permute entirely.  Misses fall
        # through to the normalised cache, which still unifies automorphic
        # raw structures into one polynomial computation.
        self._raw_cache: dict[tuple, int] = {}
        self._representatives: dict[int, Pattern] = {}
        self.hits = 0
        self.misses = 0
        #: Entries dropped by the LRU cap, across all three maps.
        self.evictions = 0
        # Concurrent executors call hash_pattern from pool threads; the
        # dict operations are atomic (and deterministic per key), but the
        # counters and the LRU reordering need the lock — bare += loses
        # updates across threads, and eviction must not race a touch.
        self._stats_lock = threading.Lock()

    def _touch(self, cache: dict, key) -> None:
        """Move ``key`` to the recently-used end (dicts preserve order)."""
        try:
            cache[key] = cache.pop(key)
        except KeyError:  # evicted between the probe and the touch
            pass

    def _insert(self, cache: dict, key, value) -> None:
        """Insert at the recently-used end, evicting the LRU overflow."""
        cache[key] = value
        while len(cache) > self.max_entries:
            cache.pop(next(iter(cache)))
            self.evictions += 1

    def hash_pattern(self, pattern: Pattern) -> int:
        if self.cache:
            raw_key = (pattern.labels, pattern.bits, pattern.edge_labels)
            cached = self._raw_cache.get(raw_key)
            if cached is not None:
                with self._stats_lock:
                    self.hits += 1
                    self._touch(self._raw_cache, raw_key)
                return cached
        normalized, _ = pattern.sorted_by_label_degree()
        key = (normalized.labels, normalized.bits, normalized.edge_labels)
        if self.cache:
            cached = self._cache.get(key)
            if cached is not None:
                with self._stats_lock:
                    self.hits += 1
                    self._touch(self._cache, key)
                    self._insert(self._raw_cache, raw_key, cached)
                return cached
        value = eigen_hash(pattern)
        with self._stats_lock:
            self.misses += 1
            self._insert(self._cache, key, value)
            if self.cache:
                self._insert(self._raw_cache, raw_key, value)
            if value in self._representatives:
                self._touch(self._representatives, value)
            else:
                self._insert(self._representatives, value, normalized)
        return value

    @property
    def hit_rate(self) -> float:
        """Fraction of ``hash_pattern`` calls served from a cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def representative(self, hash_value: int) -> Pattern | None:
        """A normalised pattern that produced ``hash_value``, if any seen.

        May return ``None`` for a hash whose representative was evicted
        by the LRU cap; callers already treat unseen hashes that way.
        """
        with self._stats_lock:
            rep = self._representatives.get(hash_value)
            if rep is not None:
                self._touch(self._representatives, hash_value)
            return rep

    @property
    def nbytes(self) -> int:
        """Rough accounted footprint of the cache (for the MemoryMeter)."""
        per_entry = 120  # dict slot + key tuple + int, measured empirically
        return (
            (len(self._cache) + len(self._raw_cache)) * per_entry
            + len(self._representatives) * 96
        )

    def __len__(self) -> int:
        return len(self._cache)


def _pair_graph(edges: list[tuple[int, int]], n: int) -> Pattern:
    labels = [0] * n
    mat = [[0] * n for _ in range(n)]
    for u, v in edges:
        mat[u][v] = mat[v][u] = 1
    return Pattern.from_adjacency(labels, mat)


#: Figure 6, left: the smallest *connected* cospectral non-isomorphic pair
#: (6 vertices, 7 edges), sharing the paper's printed characteristic
#: polynomial λ^6 − 7λ^4 − 4λ^3 + 7λ^2 + 4λ − 1.  Recovered by exhaustive
#: search over all connected 6-vertex/7-edge graphs; note the two degree
#: sequences differ ((1,2,2,2,2,5) vs (1,1,3,3,3,3)), which is why the
#: EigenHash's degree component still separates them.
HARARY_COSPECTRAL_6: tuple[Pattern, Pattern] = (
    _pair_graph([(0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (1, 4), (2, 3)], 6),
    _pair_graph([(0, 2), (0, 3), (0, 5), (1, 2), (1, 3), (1, 4), (2, 3)], 6),
)

#: Figure 6, right: the smallest cospectral non-isomorphic pair with equal
#: degree sequences needs 9 vertices.  These two trees share the paper's
#: printed polynomial λ^9 − 8λ^7 + 19λ^5 − 14λ^3 + 2λ and the degree
#: sequence (1,1,1,1,2,2,2,3,3) — the EigenHash *cannot* separate them,
#: which is exactly the k < 9 limit of Corollary 1.  Recovered by
#: exhaustive search over the 47 trees on 9 vertices.
HARARY_COSPECTRAL_9: tuple[Pattern, Pattern] = (
    _pair_graph(
        [(0, 6), (0, 1), (1, 2), (1, 5), (2, 3), (2, 4), (6, 7), (7, 8)], 9
    ),
    _pair_graph(
        [(0, 5), (0, 7), (0, 1), (1, 2), (2, 3), (2, 4), (5, 6), (7, 8)], 9
    ),
)
