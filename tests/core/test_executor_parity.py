"""Executor parity: every executor must produce byte-identical results.

The acceptance bar for the executor seam: triangle counting, 3-motif,
FSM (both induced modes, whose per-iteration prune depends on the
*positional* order of mapper side outputs) and materialised pattern
matching on a seeded random graph give identical results under the
serial (work-stealing replay) executor and the real thread-pool executor
— merging part results and ``finish_part`` states in part-index order
makes completion order irrelevant.
"""

import numpy as np
import pytest

from repro import (
    FrequentSubgraphMining,
    KaleidoEngine,
    MotifCounting,
    TriangleCounting,
)
from repro.apps import PatternMatching, VertexInducedFSM
from repro.graph import chung_lu


@pytest.fixture(scope="module")
def seeded_graph():
    return chung_lu(120, 420, seed=42, num_labels=2)


@pytest.mark.parametrize(
    "make_app",
    [
        TriangleCounting,
        lambda: MotifCounting(3),
        lambda: FrequentSubgraphMining(3, support=8),
        lambda: VertexInducedFSM(3, support=8),
    ],
)
def test_serial_and_threads_identical(seeded_graph, make_app):
    serial = KaleidoEngine(seeded_graph, workers=4, executor="serial").run(make_app())
    threads = KaleidoEngine(seeded_graph, workers=4, executor="threads").run(make_app())
    assert serial.pattern_map == threads.pattern_map
    assert serial.level_sizes == threads.level_sizes
    if isinstance(serial.value, dict):
        assert dict(serial.value) == dict(threads.value)
    else:
        assert serial.value == threads.value
    assert serial.extra["executor"] == "simulated"
    assert threads.extra["executor"] == "threads"


def test_fsm_counters_and_hashes_parity(seeded_graph):
    """FSM's positional side outputs survive out-of-order part completion.

    ``prune`` masks embeddings by position from the mapper's hash list, so
    any interleaving across pool threads would silently drop the wrong
    embeddings; the deterministic cost counters must match too.
    """
    apps = {}
    for name in ("serial", "threads"):
        apps[name] = app = FrequentSubgraphMining(3, support=8)
        KaleidoEngine(seeded_graph, workers=4, executor=name).run(app)
    assert apps["serial"].total_insertions == apps["threads"].total_insertions
    assert apps["serial"].total_mapped == apps["threads"].total_mapped


def test_materialized_matches_parity(seeded_graph):
    """Materialised match lists come back in level order, not completion
    order."""
    from repro import Pattern

    triangle = Pattern.from_adjacency([0, 0, 0], [[0, 1, 1], [1, 0, 1], [1, 1, 0]])
    results = {}
    for name in ("serial", "threads"):
        results[name] = KaleidoEngine(seeded_graph, workers=4, executor=name).run(
            PatternMatching(triangle, materialize=True)
        )
    assert results["serial"].value.count == results["threads"].value.count
    assert results["serial"].value.matches == results["threads"].value.matches


def test_parity_under_spilling(seeded_graph, tmp_path):
    """Out-of-order part completion must not scramble a spilled level.

    The threaded executor submits parts to the async writing queue as
    they finish; the part indices carried through the queue must
    reassemble the level in storage order.
    """
    results = {}
    for name in ("serial", "threads"):
        with KaleidoEngine(
            seeded_graph,
            workers=4,
            executor=name,
            storage_mode="spill-last",
            spill_dir=str(tmp_path / name),
        ) as engine:
            results[name] = engine.run(MotifCounting(3))
        assert results[name].io_bytes_written > 0
    assert results["serial"].pattern_map == results["threads"].pattern_map
    assert results["serial"].level_sizes == results["threads"].level_sizes


def test_explicit_executor_instance(seeded_graph):
    from repro.core.executor import SerialExecutor, ThreadedExecutor

    raw = KaleidoEngine(seeded_graph, executor=SerialExecutor()).run(TriangleCounting())
    pooled = KaleidoEngine(
        seeded_graph, executor=ThreadedExecutor(max_workers=3)
    ).run(TriangleCounting())
    assert raw.value == pooled.value
    assert raw.level_sizes == pooled.level_sizes
