"""Unit tests for the EigenHash fingerprint (Algorithm 1, Figure 6)."""

import numpy as np
import pytest

from repro.core import Pattern, eigen_hash, faddeev_leverrier, weighted_adjacency
from repro.core.eigenhash import (
    HARARY_COSPECTRAL_6,
    HARARY_COSPECTRAL_9,
    PatternHasher,
)
from repro.core.isomorphism import are_isomorphic
from repro.errors import EmbeddingSizeError


# ----------------------------------------------------------------------
# Faddeev-LeVerrier
# ----------------------------------------------------------------------
def test_flv_identity():
    # char poly of I2 is (λ-1)^2 = λ^2 - 2λ + 1.
    assert faddeev_leverrier(np.eye(2, dtype=int)) == (-2, 1)


def test_flv_triangle():
    # char poly of K3 adjacency: λ^3 - 3λ - 2.
    mat = [[0, 1, 1], [1, 0, 1], [1, 1, 0]]
    assert faddeev_leverrier(mat) == (0, -3, -2)


def test_flv_path():
    # P3: λ^3 - 2λ.
    mat = [[0, 1, 0], [1, 0, 1], [0, 1, 0]]
    assert faddeev_leverrier(mat) == (0, -2, 0)


def test_flv_matches_numpy_charpoly():
    rng = np.random.default_rng(0)
    for _ in range(20):
        k = int(rng.integers(2, 7))
        mat = rng.integers(0, 3, size=(k, k))
        mat = mat + mat.T  # symmetric integer matrix
        ours = faddeev_leverrier(mat)
        numpys = np.poly(mat.astype(float))[1:]
        assert np.allclose([float(c) for c in ours], numpys, atol=1e-6)


def test_flv_empty_and_single():
    assert faddeev_leverrier(np.zeros((0, 0), dtype=int)) == ()
    assert faddeev_leverrier([[5]]) == (-5,)


def test_flv_rejects_non_square():
    with pytest.raises(ValueError):
        faddeev_leverrier(np.zeros((2, 3), dtype=int))


# ----------------------------------------------------------------------
# Weighted adjacency
# ----------------------------------------------------------------------
def test_weighted_adjacency_injective_over_label_pairs():
    p = Pattern.from_adjacency([0, 1, 2], [[0, 1, 1], [1, 0, 1], [1, 1, 0]])
    mat = weighted_adjacency(p)
    weights = {mat[0, 1], mat[0, 2], mat[1, 2]}
    assert len(weights) == 3  # three distinct label pairs, three weights


def test_weighted_adjacency_nonzero_for_zero_labels():
    p = Pattern.from_adjacency([0, 0], [[0, 1], [1, 0]])
    assert weighted_adjacency(p)[0, 1] > 0


def test_weighted_adjacency_symmetric():
    p = Pattern.from_adjacency([3, 1, 2], [[0, 1, 0], [1, 0, 1], [0, 1, 0]])
    mat = weighted_adjacency(p)
    assert (mat == mat.T).all()


# ----------------------------------------------------------------------
# EigenHash semantics
# ----------------------------------------------------------------------
def test_isomorphic_embeddings_same_hash(paper_graph):
    # Figure 1: embeddings a=(1,2,5) and b=(2,3,5) are isomorphic triangles.
    pa = Pattern.from_vertex_embedding(paper_graph, [1, 2, 5])
    pb = Pattern.from_vertex_embedding(paper_graph, [2, 3, 5])
    assert eigen_hash(pa) == eigen_hash(pb)


def test_automorphic_representations_same_hash():
    chain = Pattern.from_adjacency([5, 5, 5], [[0, 1, 0], [1, 0, 1], [0, 1, 0]])
    rotated = chain.permute([2, 1, 0])
    assert eigen_hash(chain) == eigen_hash(rotated)


def test_non_isomorphic_different_hash():
    chain = Pattern.from_adjacency([0, 0, 0], [[0, 1, 0], [1, 0, 1], [0, 1, 0]])
    triangle = Pattern.from_adjacency([0, 0, 0], [[0, 1, 1], [1, 0, 1], [1, 1, 0]])
    assert eigen_hash(chain) != eigen_hash(triangle)


def test_labels_separate_hashes():
    a = Pattern.from_adjacency([0, 0], [[0, 1], [1, 0]])
    b = Pattern.from_adjacency([0, 1], [[0, 1], [1, 0]])
    assert eigen_hash(a) != eigen_hash(b)


def test_hash_deterministic_across_calls():
    p = Pattern.from_adjacency([1, 2, 2], [[0, 1, 1], [1, 0, 0], [1, 0, 0]])
    assert eigen_hash(p) == eigen_hash(p)


def test_size_limit_enforced():
    with pytest.raises(EmbeddingSizeError):
        eigen_hash(Pattern((0,) * 9, 0))


# ----------------------------------------------------------------------
# Figure 6 counterexamples
# ----------------------------------------------------------------------
def test_harary_6_pair_is_cospectral_but_degree_separated():
    a, b = HARARY_COSPECTRAL_6
    poly_a = faddeev_leverrier(a.adjacency_matrix())
    poly_b = faddeev_leverrier(b.adjacency_matrix())
    assert poly_a == poly_b == (0, -7, -4, 7, 4, -1)  # the paper's polynomial
    assert not are_isomorphic(a, b)
    # Degree sequences differ, so EigenHash still separates the pair.
    assert sorted(a.degree_sequence()) != sorted(b.degree_sequence())
    assert eigen_hash(a) != eigen_hash(b)


def test_harary_9_pair_defeats_eigenhash_exactly_at_the_bound():
    a, b = HARARY_COSPECTRAL_9
    poly_a = faddeev_leverrier(a.adjacency_matrix())
    poly_b = faddeev_leverrier(b.adjacency_matrix())
    assert poly_a == poly_b == (0, -8, 0, 19, 0, -14, 0, 2, 0)  # paper's polynomial
    assert sorted(a.degree_sequence()) == sorted(b.degree_sequence())
    assert not are_isomorphic(a, b)
    # 9 vertices: the EigenHash guarantee no longer applies — the checker
    # refuses rather than silently colliding.
    with pytest.raises(EmbeddingSizeError):
        eigen_hash(a)


def test_exhaustive_no_collision_up_to_5_vertices():
    """Corollary 1 (k < 6, unlabeled): spectrum alone separates everything.

    Exhaustive over all graphs on 5 vertices: equal hash ⟺ isomorphic.
    """
    from itertools import combinations

    patterns: list[Pattern] = []
    cells = list(combinations(range(5), 2))
    for mask in range(1 << len(cells)):
        bits = 0
        for t in range(len(cells)):
            if mask >> t & 1:
                i, j = cells[t]
                from repro.core.pattern import triangle_index

                bits |= 1 << triangle_index(i, j, 5)
        patterns.append(Pattern((0,) * 5, bits))
    by_hash: dict[int, Pattern] = {}
    for p in patterns:
        h = eigen_hash(p)
        if h in by_hash:
            assert are_isomorphic(by_hash[h], p)
        else:
            by_hash[h] = p


# ----------------------------------------------------------------------
# PatternHasher cache
# ----------------------------------------------------------------------
def test_hasher_cache_hits():
    hasher = PatternHasher()
    chain = Pattern.from_adjacency([5, 5, 5], [[0, 1, 0], [1, 0, 1], [0, 1, 0]])
    h1 = hasher.hash_pattern(chain)
    h2 = hasher.hash_pattern(chain.permute([2, 1, 0]))
    assert h1 == h2
    assert hasher.hits == 1 and hasher.misses == 1
    assert len(hasher) == 1


def test_hasher_representative():
    hasher = PatternHasher()
    tri = Pattern.from_adjacency([0, 0, 0], [[0, 1, 1], [1, 0, 1], [1, 1, 0]])
    h = hasher.hash_pattern(tri)
    rep = hasher.representative(h)
    assert rep is not None and are_isomorphic(rep, tri)
    assert hasher.representative(12345) is None


def test_hasher_nbytes_grows():
    hasher = PatternHasher()
    before = hasher.nbytes
    hasher.hash_pattern(Pattern((0, 0), 1))
    assert hasher.nbytes > before
