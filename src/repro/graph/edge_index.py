"""Vertex → incident-edge-id index for edge-induced exploration.

Edge ids follow :meth:`repro.graph.Graph.edge_arrays`: lexicographic order
of ``(u, v)`` with ``u < v``.  The index is the CSR of the bipartite
vertex/edge incidence, giving the incident edge ids of a vertex in one
sorted slice.
"""

from __future__ import annotations

import numpy as np

from .graph import Graph

__all__ = ["EdgeIndex"]


class EdgeIndex:
    """Sorted incident-edge-id lists per vertex, plus id → endpoints."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        eu, ev = graph.edge_arrays()
        self.edge_u = eu
        self.edge_v = ev
        self._u_list: list[int] | None = None
        self._v_list: list[int] | None = None
        self._incident_lists: list[list[int]] | None = None
        self._incident_keys: np.ndarray | None = None
        m = eu.shape[0]
        n = graph.num_vertices
        endpoints = np.concatenate([eu, ev]).astype(np.int64)
        edge_ids = np.tile(np.arange(m, dtype=np.int64), 2)
        order = np.lexsort((edge_ids, endpoints))
        endpoints = endpoints[order]
        edge_ids = edge_ids[order]
        self.indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(self.indptr, endpoints + 1, 1)
        np.cumsum(self.indptr, out=self.indptr)
        self.incident = edge_ids.astype(np.int32)

    @property
    def num_edges(self) -> int:
        return self.edge_u.shape[0]

    @property
    def id_dtype(self) -> np.dtype:
        """Narrowest integer dtype that holds every edge id (mirrors
        :attr:`repro.graph.Graph.id_dtype` for edge-induced levels)."""
        if self.num_edges <= np.iinfo(np.int32).max:
            return np.dtype(np.int32)
        return np.dtype(np.int64)

    def incident_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The vertex → incident-edge CSR pair ``(indptr, incident)`` —
        the arrays the vectorized edge-expansion kernel gathers from."""
        return self.indptr, self.incident

    def incident_keys(self) -> np.ndarray:
        """Packed sorted incidence view: ``vertex * num_edges + edge_id``
        for every incidence, in CSR order.

        Incident lists are sorted per vertex and vertices are contiguous
        in the CSR, so the packed array is globally ascending — one
        ``searchsorted`` finds the first incident edge id ``>= bound``
        within any vertex's slice, which is how the restricted edge
        kernel fuses its symmetry-breaking lower bounds into the gather.
        Cached so repeated kernel-context builds reuse one array (the
        process executor keys pool reuse on context-array identity).
        """
        if self._incident_keys is None:
            counts = np.diff(self.indptr)
            owners = np.repeat(
                np.arange(self.graph.num_vertices, dtype=np.int64), counts
            )
            self._incident_keys = owners * self.num_edges + self.incident
        return self._incident_keys

    def endpoints(self, edge_id: int) -> tuple[int, int]:
        """The ``(u, v)`` endpoints (``u < v``) of an edge id."""
        return int(self.edge_u[edge_id]), int(self.edge_v[edge_id])

    def incident_edges(self, vertex: int) -> np.ndarray:
        """Sorted edge ids incident to ``vertex`` (a view)."""
        return self.incident[self.indptr[vertex] : self.indptr[vertex + 1]]

    def endpoint_lists(self) -> tuple[list[int], list[int]]:
        """Edge endpoints as plain Python lists (hot-path id decoding)."""
        if self._u_list is None:
            self._u_list = self.edge_u.tolist()
            self._v_list = self.edge_v.tolist()
        assert self._v_list is not None
        return self._u_list, self._v_list

    def incident_lists(self) -> list[list[int]]:
        """Per-vertex incident edge ids as Python lists (hot path)."""
        if self._incident_lists is None:
            indptr = self.indptr
            incident = self.incident.tolist()
            self._incident_lists = [
                incident[indptr[v] : indptr[v + 1]]
                for v in range(self.graph.num_vertices)
            ]
        return self._incident_lists

    def edge_id(self, u: int, v: int) -> int:
        """Edge id of ``(u, v)``; raises ``KeyError`` if absent."""
        if u > v:
            u, v = v, u
        ids = self.incident_edges(u)
        # incident lists are sorted by edge id; edge ids of a fixed u are
        # ordered by v, so binary search on the v endpoint works.
        vs = self.edge_v[ids]
        us = self.edge_u[ids]
        for eid, uu, vv in zip(ids.tolist(), us.tolist(), vs.tolist()):
            if uu == u and vv == v:
                return int(eid)
        raise KeyError(f"edge ({u}, {v}) not in graph")

    @property
    def nbytes(self) -> int:
        return self.indptr.nbytes + self.incident.nbytes
