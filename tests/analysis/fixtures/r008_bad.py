"""R008 fixture: unbalanced spans and unregistered metric names (4 hits)."""

#: Module-local registry stands in for repro/obs/bridge.py's table.
METRIC_REGISTRY = (
    "io.bytes_read",
    "queue.depth",
    "tenant.*.admitted",
)


class Pipeline:
    def __init__(self, tracer, metrics):
        self.tracer = tracer
        self.metrics = metrics

    def load(self, chunks):
        self.tracer.begin("load", chunks=len(chunks))  # hit 1: never ended
        for chunk in chunks:
            self.metrics.counter("io.bytes_read", len(chunk))
        return chunks

    def flush(self):
        # hit 2: closes a span this function never opened
        self.tracer.end("flush")

    def record(self, nbytes):
        # hit 3: name missing from METRIC_REGISTRY
        self.metrics.counter("io.bytes_discarded", nbytes)

    def admit(self, view):
        # hit 4: expands to tenant.*.backlog — not registered
        view.gauge("backlog", 1)
