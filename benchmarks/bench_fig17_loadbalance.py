"""Figure 17: prediction vs non-prediction load balance on hybrid storage.

The paper compares runtime and CPU-utilization rate of 4-Motif (MiCo,
Patent) and 4-FSM (Patent, two supports) with and without the
candidate-size prediction.  Prediction evens the per-part work, so the
work-stealing schedule's makespan shrinks (paper: ~1.2x) and utilization
rises.  Here the parts feed the deterministic schedule replay; we report
the simulated spans, utilizations, and the partition imbalance that
causes the difference.
"""

import tempfile

import pytest

from repro import FrequentSubgraphMining, KaleidoEngine, MotifCounting
from repro.bench import PROFILE, bench_graph, format_table, geomean

from conftest import run_once

CASES = [
    ("4-Motif(MC)", "mico", lambda: MotifCounting(4)),
    ("4-Motif(PA)", "patent", lambda: MotifCounting(4)),
    ("4-FSM(PA,s=20)", "patent", lambda: FrequentSubgraphMining(3, 20)),
    ("4-FSM(PA,s=30)", "patent", lambda: FrequentSubgraphMining(3, 30)),
]
WORKERS = 8


def _run(graph, factory, use_prediction):
    with tempfile.TemporaryDirectory(prefix="fig17-") as tmp:
        with KaleidoEngine(
            graph,
            workers=WORKERS,
            # One part per worker, as on-disk parts are not stealable —
            # each thread owns the part it writes/loads (Figure 7); this
            # is precisely where the size prediction earns its keep.
            parts_per_worker=1,
            use_prediction=use_prediction,
            storage_mode="spill-last",
            spill_dir=tmp,
        ) as engine:
            return engine.run(factory())


@pytest.mark.benchmark(group="fig17")
def test_fig17_prediction_loadbalance(benchmark, emit):
    rows = []
    gains = []

    def run_cases():
        for name, dataset, factory in CASES:
            graph = bench_graph(dataset)
            pred = _run(graph, factory, use_prediction=True)
            nopred = _run(graph, factory, use_prediction=False)
            assert sorted(pred.value.values()) == sorted(nopred.value.values())
            gain = nopred.simulated_seconds / max(pred.simulated_seconds, 1e-9)
            gains.append(gain)
            rows.append(
                [
                    name,
                    f"{pred.simulated_seconds:.3f}",
                    f"{nopred.simulated_seconds:.3f}",
                    f"{gain:.2f}x",
                    f"{pred.utilization * 100:.0f}%",
                    f"{nopred.utilization * 100:.0f}%",
                ]
            )
        return rows

    run_once(benchmark, run_cases)
    table = format_table(
        [
            "App", "prediction (s)", "non-prediction (s)", "speedup",
            "util (pred)", "util (non-pred)",
        ],
        rows,
        title=(
            f"Figure 17 — prediction vs non-prediction on hybrid storage, "
            f"{WORKERS} workers (profile: {PROFILE})"
        ),
    )
    summary = f"\nGeoMean prediction speedup: {geomean(gains):.2f}x (paper: ~1.2x)"
    emit(table + summary, name="fig17_loadbalance")

    # Paper shape: prediction helps on aggregate.
    assert geomean(gains) > 1.0
