"""R005 fixture, service-flavoured: typed, re-raised failures (0 hits)."""


class ServiceError(Exception):
    pass


def serve_query(service, request, metrics):
    try:
        return service.query(request)
    except ValueError as exc:  # specific: legal
        raise ServiceError(f"malformed request: {exc}") from exc


def run_engine(session, app, metrics):
    try:
        return session.engine.run(app)
    except Exception as exc:  # catch-all, but accounted and re-raised: legal
        metrics.counter("service.failed").inc()
        raise
