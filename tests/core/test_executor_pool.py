"""ThreadedExecutor's persistent worker pool (the service-tier contract)."""

import threading

import pytest

from repro.core.executor import ThreadedExecutor


def tasks(n):
    return [lambda i=i: i * i for i in range(n)]


def test_pool_persists_across_runs():
    executor = ThreadedExecutor(max_workers=2)
    try:
        executor.run(tasks(4), workers=2)
        first_pool = executor._pool
        assert first_pool is not None
        executor.run(tasks(4), workers=2)
        assert executor._pool is first_pool
        assert executor.pool_size == 2
    finally:
        executor.close()


def test_close_releases_then_rebuilds_lazily():
    executor = ThreadedExecutor(max_workers=2)
    executor.run(tasks(2), workers=2)
    executor.close()
    assert executor.pool_size == 0
    report = executor.run(tasks(3), workers=2)
    assert [r for r in report.results] == [0, 1, 4]
    assert executor.pool_size == 2
    executor.close()
    executor.close()  # idempotent


def test_unpinned_pool_resizes_only_when_idle():
    executor = ThreadedExecutor()
    try:
        executor.run(tasks(2), workers=2)
        assert executor.pool_size == 2
        executor.run(tasks(2), workers=3)
        assert executor.pool_size == 3
    finally:
        executor.close()


def test_pinned_pool_ignores_per_run_workers():
    executor = ThreadedExecutor(max_workers=2)
    try:
        executor.run(tasks(2), workers=8)
        assert executor.pool_size == 2
    finally:
        executor.close()


def test_failing_run_leaves_pool_usable():
    executor = ThreadedExecutor(max_workers=2)

    def boom():
        raise RuntimeError("task failed")

    try:
        with pytest.raises(RuntimeError, match="task failed"):
            executor.run([boom], workers=2)
        report = executor.run(tasks(3), workers=2)
        assert list(report.results) == [0, 1, 4]
    finally:
        executor.close()


def test_concurrent_runs_share_one_pool():
    executor = ThreadedExecutor(max_workers=3)
    barrier = threading.Barrier(2)
    reports = {}

    def drive(name):
        barrier.wait(timeout=30)
        reports[name] = executor.run(tasks(6), workers=3)

    threads = [
        threading.Thread(target=drive, args=(f"run{i}",)) for i in range(2)
    ]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert list(reports["run0"].results) == [i * i for i in range(6)]
        assert list(reports["run1"].results) == [i * i for i in range(6)]
        assert executor.pool_size == 3
    finally:
        executor.close()
