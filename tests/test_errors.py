"""The exception hierarchy is catchable at one API boundary."""

import pytest

from repro import errors


def test_hierarchy():
    for exc_type in (
        errors.GraphFormatError,
        errors.GraphConstructionError,
        errors.EmbeddingSizeError,
        errors.StorageError,
        errors.BudgetExceededError,
        errors.PlanError,
        errors.UnknownDatasetError,
    ):
        assert issubclass(exc_type, errors.KaleidoError)
    assert issubclass(errors.BudgetExceededError, errors.StorageError)


def test_library_raises_kaleido_errors_only():
    """A few representative failures are all caught by KaleidoError."""
    from repro.graph import GraphBuilder, load

    with pytest.raises(errors.KaleidoError):
        GraphBuilder().add_edge(1, 1)
    with pytest.raises(errors.KaleidoError):
        load("missing-dataset")
    from repro.core import Pattern, eigen_hash

    with pytest.raises(errors.KaleidoError):
        eigen_hash(Pattern((0,) * 10, 0))
