"""Tenant quotas: admission control, release pairing, budget clamps."""

import pytest

from repro.errors import QuotaExceededError
from repro.obs import MetricsRegistry
from repro.service import TenantQuota, TenantRegistry


def test_quota_validates_concurrency():
    with pytest.raises(ValueError):
        TenantQuota(max_concurrent=0)


def test_admit_until_quota_then_reject():
    metrics = MetricsRegistry()
    tenants = TenantRegistry(TenantQuota(max_concurrent=2), metrics=metrics)
    tenants.admit("alice")
    tenants.admit("alice")
    with pytest.raises(QuotaExceededError, match="alice"):
        tenants.admit("alice")
    # other tenants are unaffected
    tenants.admit("bob")
    snap = metrics.snapshot()
    assert snap["tenant.alice.admitted"]["value"] == 2
    assert snap["tenant.alice.rejected"]["value"] == 1
    assert snap["tenant.alice.inflight"]["value"] == 2
    assert snap["tenant.bob.admitted"]["value"] == 1


def test_release_frees_a_slot():
    tenants = TenantRegistry(TenantQuota(max_concurrent=1))
    tenants.admit("alice")
    tenants.release("alice")
    tenants.admit("alice")
    assert tenants.inflight("alice") == 1


def test_release_without_admit_is_an_error():
    tenants = TenantRegistry()
    with pytest.raises(ValueError, match="release without admit"):
        tenants.release("ghost")


def test_per_tenant_quota_overrides_default():
    tenants = TenantRegistry(TenantQuota(max_concurrent=4))
    tenants.set_quota("cheap", TenantQuota(max_concurrent=1))
    tenants.admit("cheap")
    with pytest.raises(QuotaExceededError):
        tenants.admit("cheap")


def test_clamp_budget_takes_the_minimum():
    tenants = TenantRegistry()
    tenants.set_quota("t", TenantQuota(max_embeddings=100))
    assert tenants.clamp_budget("t", None) == 100
    assert tenants.clamp_budget("t", 50) == 50
    assert tenants.clamp_budget("t", 500) == 100
    assert tenants.clamp_budget("unlimited", None) is None
    assert tenants.clamp_budget("unlimited", 7) == 7


def test_view_is_scoped_to_the_tenant():
    metrics = MetricsRegistry()
    tenants = TenantRegistry(metrics=metrics)
    tenants.view("alice").counter("queries").inc()
    assert metrics.snapshot()["tenant.alice.queries"]["value"] == 1
