"""Unit tests for triangle counting."""

from repro import KaleidoEngine, TriangleCounting
from repro.apps.reference import count_triangles_naive
from repro.graph import from_edge_list
from tests.conftest import random_labeled_graph


def test_paper_example(paper_graph):
    assert KaleidoEngine(paper_graph).run(TriangleCounting()).value == 3


def test_triangle_free():
    g = from_edge_list([(0, 1), (1, 2), (2, 3)])
    assert KaleidoEngine(g).run(TriangleCounting()).value == 0


def test_complete_graph():
    k5 = from_edge_list([(i, j) for i in range(5) for j in range(i + 1, 5)])
    assert KaleidoEngine(k5).run(TriangleCounting()).value == 10  # C(5,3)


def test_matches_naive_on_random_graphs():
    for seed in range(5):
        g = random_labeled_graph(15, 35, 2, seed=seed)
        got = KaleidoEngine(g).run(TriangleCounting()).value
        assert got == count_triangles_naive(g), seed


def test_disjoint_triangles():
    g = from_edge_list([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
    assert KaleidoEngine(g).run(TriangleCounting()).value == 2


def test_app_name():
    assert TriangleCounting().name == "TC"
