"""Figure 14: scalability in 2..32 workers.

The paper runs 3-FSM (support 5000), 3-Motif and 5-Clique over Patent at
2..32 threads.  In this reproduction parallelism is the deterministic
work-stealing schedule replay (DESIGN.md substitution): exploration /
aggregation part timings are measured serially and scheduled onto N
modelled workers; the reported time is the resulting makespan.

Paper shapes asserted: Motif and Clique scale near-ideally; FSM is
sublinear (serial per-thread pattern-map merge) and its memory *grows*
with the worker count (per-thread hashmaps).
"""

import pytest

from repro import CliqueDiscovery, FrequentSubgraphMining, KaleidoEngine, MotifCounting
from repro.bench import PROFILE, bench_graph, format_table

from conftest import run_once

WORKERS = [2, 4, 8, 16, 32]
FSM_SUPPORT = 5


def _apps():
    return {
        f"3-FSM-{FSM_SUPPORT}": lambda: FrequentSubgraphMining(2, FSM_SUPPORT),
        "3-Motif": lambda: MotifCounting(3),
        "5-Clique": lambda: CliqueDiscovery(5),
    }


@pytest.mark.benchmark(group="fig14")
def test_fig14_scalability(benchmark, emit):
    results: dict[str, list[tuple[int, float, float]]] = {}

    def run_grid():
        graph = bench_graph("patent")
        for name, factory in _apps().items():
            series = []
            for workers in WORKERS:
                result = KaleidoEngine(
                    graph, workers=workers, parts_per_worker=4
                ).run(factory())
                series.append(
                    (workers, result.simulated_seconds,
                     result.peak_memory_bytes / 1e6)
                )
            results[name] = series
        return results

    run_once(benchmark, run_grid)

    rows = []
    for name, series in results.items():
        base = series[0][1] * series[0][0]  # ~serial work estimate
        for workers, seconds, mem in series:
            ideal = base / workers
            rows.append(
                [name, str(workers), f"{seconds:.3f}", f"{ideal:.3f}", f"{mem:.2f}"]
            )
    table = format_table(
        ["App", "workers", "simulated (s)", "ideal (s)", "memory (MB)"],
        rows,
        title=f"Figure 14 — scalability, Patent (profile: {PROFILE})",
    )
    emit(table, name="fig14_scalability")

    for name, series in results.items():
        times = [t for _, t, _ in series]
        # More workers never slower (modulo tiny jitter).
        assert times[-1] <= times[0] * 1.10, (name, times)
        speedup_2_to_32 = times[0] / max(times[-1], 1e-9)
        if name.startswith("3-FSM"):
            # Sublinear: far from the 16x ideal between 2 and 32 workers.
            assert speedup_2_to_32 < 12.0, (name, speedup_2_to_32)
            mems = [m for _, _, m in series]
            assert mems[-1] >= mems[0]  # per-thread maps grow memory
        else:
            # Near-ideal-ish: at least 3x from 2 to 32 workers.
            assert speedup_2_to_32 > 3.0, (name, speedup_2_to_32)
