"""The Kaleido programming API (Listing 1 of the paper).

Graph mining applications subclass :class:`MiningApplication` and provide
the hooks of Listing 1:

* ``init``                — seed embeddings (vertices for vertex-induced
  exploration, edge ids for edge-induced);
* ``embedding_filter``    — optional pruning of candidates during
  exploration (the canonical filter is always applied first, as the
  paper's "default embedding filter");
* ``map_embedding``       — the AggregatingMapper: fold one embedding into
  a PatternMap (a pure per-part function; side outputs go through the
  ``start_part`` / ``finish_part`` part-state hooks so concurrent
  executors stay deterministic);
* ``reduce``              — the AggregatingReducer: merge per-worker
  PatternMaps and apply the PatternFilter;
* ``pattern_filter``      — optional pruning of aggregated patterns.

The engine (:class:`repro.core.engine.KaleidoEngine`) drives the two
phases: embedding exploration then pattern aggregation.  Applications that
aggregate *every* iteration (FSM) set ``aggregate_every_iteration`` and get
a ``prune`` callback to drop embeddings of infrequent patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from ..graph.edge_index import EdgeIndex
from ..graph.graph import Graph
from .cse import CSE

if TYPE_CHECKING:  # pragma: no cover
    from .engine import KaleidoEngine

__all__ = ["PatternMap", "EngineContext", "MiningApplication", "MiningResult"]

#: Pattern hash → application-defined aggregate (count, MNI domains, ...).
PatternMap = dict[int, Any]


@dataclass
class EngineContext:
    """Everything a mining application may need while running."""

    graph: Graph
    engine: "KaleidoEngine"
    edge_index: EdgeIndex | None = None

    def hash_pattern(self, pattern) -> int:
        """Fingerprint a pattern with the engine's isomorphism checker."""
        return self.engine.hasher.hash_pattern(pattern)


class MiningApplication:
    """Base class for Kaleido mining applications (Listing 1)."""

    #: "vertex" or "edge" — which induced exploration to run.
    induced: str = "vertex"
    #: Run map/reduce after every exploration iteration (FSM) instead of
    #: once at the end.
    aggregate_every_iteration: bool = False
    #: Whether ``map_embedding``'s cost scales with the embedding's
    #: candidate count (motif counting expands candidates on the fly) —
    #: if so, the engine partitions the aggregation phase by the
    #: candidate-size prediction; otherwise per-embedding cost is roughly
    #: uniform and an even count split balances better.
    mapper_cost_tracks_candidates: bool = False

    # ------------------------------------------------------------------
    # Phase 1 hooks
    # ------------------------------------------------------------------
    def init(self, ctx: EngineContext) -> np.ndarray:
        """Seed ids for level 1 (vertex ids or edge ids).

        Default: every vertex for vertex-induced exploration, every edge
        for edge-induced."""
        if self.induced == "vertex":
            return np.arange(ctx.graph.num_vertices, dtype=np.int32)
        assert ctx.edge_index is not None
        return np.arange(ctx.edge_index.num_edges, dtype=np.int32)

    def iterations(self) -> int:
        """How many expansion iterations to run after ``init``."""
        raise NotImplementedError

    def embedding_filter(self, embedding: tuple[int, ...], candidate) -> bool:
        """Listing 1's EmbeddingFilter; default accepts everything."""
        return True

    def overrides_embedding_filter(self) -> bool:
        """Whether this app installs a real (non-default) embedding filter.

        The engine checks this to pick the expansion path: the default
        accept-everything filter lets the vectorized block kernels run;
        an overridden filter must be called per candidate, which forces
        the scalar per-embedding fallback.
        """
        return type(self).embedding_filter is not MiningApplication.embedding_filter

    def query_pattern(self):
        """The single query :class:`~repro.core.pattern.Pattern` this app
        mines, or None for apps that mine all patterns at once (FSM,
        motif counting).

        The planner compiles the pattern's automorphism group into a
        symmetry-breaking :class:`~repro.core.restrictions.RestrictionSet`
        and attaches each level's ordering constraints to its
        :class:`~repro.core.plan.LevelPlan`; the compiled set is also
        surfaced in the run result's ``extra["pattern_restrictions"]``.
        """
        return None

    # ------------------------------------------------------------------
    # Phase 2 hooks
    # ------------------------------------------------------------------
    def start_part(self, ctx: EngineContext) -> Any:
        """Create one mapper part's local state (default ``None``).

        The engine may run mapper parts concurrently, so
        ``map_embedding`` must not mutate application attributes.  Any
        side output beyond the part's PatternMap — positional hash
        lists, materialised embeddings, counters — belongs in the object
        returned here; the engine passes it to every ``map_embedding``
        call of that part and hands all part states to ``finish_part``
        serially in part-index order, which keeps results deterministic
        whatever order parts completed in.

        Returning ``None`` (the default) keeps the three-argument
        ``map_embedding`` calling convention for apps with no side
        output."""
        return None

    def map_embedding(
        self,
        ctx: EngineContext,
        embedding: tuple[int, ...],
        pmap: PatternMap,
        part: Any = None,
    ) -> None:
        """AggregatingMapper: fold one embedding into ``pmap``.

        Must be a pure function of ``(embedding, pmap, part)`` —
        concurrent executors run parts on pool threads, so shared
        application state may only be *read* here.  ``part`` is the
        state from ``start_part`` (omitted when that returned None)."""
        raise NotImplementedError

    def finish_part(self, ctx: EngineContext, part: Any) -> None:
        """Absorb one part's mapper state into the application.

        Called from the coordinating thread, serially and in part-index
        order, after the executor has run every part."""

    def reduce(self, ctx: EngineContext, pmaps: list[PatternMap]) -> PatternMap:
        """AggregatingReducer: merge per-worker maps, apply PatternFilter.

        Default implementation sums numeric values and drops patterns the
        pattern filter rejects."""
        merged: PatternMap = {}
        for pmap in pmaps:
            for key, value in pmap.items():
                merged[key] = merged.get(key, 0) + value
        return {k: v for k, v in merged.items() if self.pattern_filter(k, v)}

    def pattern_filter(self, pattern_hash: int, value: Any) -> bool:
        """Listing 1's PatternFilter; default accepts everything."""
        return True

    # ------------------------------------------------------------------
    # Iteration-coupled aggregation (FSM)
    # ------------------------------------------------------------------
    def prune(
        self, ctx: EngineContext, cse: CSE, reduced: PatternMap
    ) -> np.ndarray | None:
        """Return a keep-mask over the top level, or None to keep all.

        Only called when ``aggregate_every_iteration`` is set."""
        return None

    # ------------------------------------------------------------------
    # Mid-run checkpointing (crash recovery)
    # ------------------------------------------------------------------
    def checkpoint_state(self, ctx: EngineContext) -> Any:
        """Cross-iteration state to carry in a mid-run checkpoint.

        Whatever is returned is pickled into the engine's per-level
        checkpoint and handed back to :meth:`restore_state` on resume.
        Only state that *accumulates across iterations* belongs here
        (derived caches are rebuilt; ``init`` runs again on resume);
        the default ``None`` suits stateless applications."""
        return None

    def restore_state(self, ctx: EngineContext, state: Any) -> None:
        """Reinstall :meth:`checkpoint_state`'s value after a resume."""

    # ------------------------------------------------------------------
    def pmap_nbytes(self, pmap: PatternMap) -> int:
        """Accounted size of one PatternMap (override for rich values)."""
        return 160 * len(pmap)

    def finalize(self, ctx: EngineContext, cse: CSE, pmap: PatternMap) -> Any:
        """Turn the final PatternMap into the application's result value."""
        return pmap

    @property
    def name(self) -> str:
        return type(self).__name__


@dataclass
class MiningResult:
    """What one engine run produced and what it cost."""

    app_name: str
    value: Any
    pattern_map: PatternMap
    wall_seconds: float
    simulated_seconds: float
    peak_memory_bytes: int
    level_sizes: list[int] = field(default_factory=list)
    phase_spans: dict[str, float] = field(default_factory=dict)
    io_bytes_read: int = 0
    io_bytes_written: int = 0
    memory_snapshot: dict[str, int] = field(default_factory=dict)
    schedules: list[Any] = field(default_factory=list)
    utilization: float = 1.0
    extra: dict[str, Any] = field(default_factory=dict)

    def summary(self) -> str:
        return (
            f"{self.app_name}: {self.wall_seconds:.3f}s wall, "
            f"{self.simulated_seconds:.3f}s simulated, "
            f"peak {self.peak_memory_bytes / 1e6:.2f} MB, "
            f"levels {self.level_sizes}"
        )
