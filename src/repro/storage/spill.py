"""Disk-backed CSE parts and spilled levels (Section 4.1, Figure 7).

A spilled level's vertex array lives on disk as a sequence of per-part
``.npy`` files, produced by the per-thread partitioning of the exploration;
the offset array stays in memory when it fits, mirroring the paper's
"merge t parts of off in memory" rule.

Every part write is *atomic* (temp file → fsync → rename, so a part is
either whole or absent — a crash never leaves a torn file under a final
name) and *checksummed* (a CRC32 carried on the :class:`PartHandle` and
verified on load, so silent corruption raises
:class:`~repro.errors.CorruptPartError` instead of producing a wrong
answer).  Transient I/O failures are retried with capped exponential
backoff per the store's :class:`~repro.storage.retry.RetryPolicy`; the
raw byte-level operations are isolated in ``_write_payload`` /
``_read_payload`` / ``_remove_file`` hooks so the fault-injection layer
(:mod:`repro.storage.faults`) can subclass the store and misbehave
underneath the retry and integrity machinery.
"""

from __future__ import annotations

import io
import logging
import os
import shutil
import tempfile
import time
import uuid
import zlib
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..core.kernels import DEFAULT_ID_DTYPE
from ..errors import CorruptPartError, DiskFullError, StorageError, TransientStorageError
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_TRACER, NullTracer, Tracer
from .meter import IOStats
from .retry import RetryPolicy, is_disk_full_oserror, is_transient_oserror
from .window import SlidingWindowReader

__all__ = ["PartHandle", "PartStore", "SpilledLevel"]

logger = logging.getLogger("repro.storage")

#: Suffix of in-flight temp files; anything left over is a crash orphan.
_TMP_SUFFIX = ".tmp"


@dataclass(frozen=True)
class PartHandle:
    """One on-disk array part.

    ``checksum`` is the CRC32 of the serialized payload; ``None`` only
    for handles created before checksumming existed (never verified).
    """

    path: str
    length: int
    nbytes: int
    checksum: int | None = None


def _fsync_dir(directory: str) -> None:
    """Flush a directory entry so a rename survives a crash (best effort)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


class PartStore:
    """Owns a spill directory and tracks every byte moved through it."""

    def __init__(
        self,
        directory: str | None = None,
        retry: RetryPolicy | None = None,
        tracer: "Tracer | NullTracer | None" = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        #: Observability hooks, shared with the writing queue and the
        #: sliding-window reader layered over this store.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        if directory is None:
            self._tmp = tempfile.mkdtemp(prefix="kaleido-spill-")
            self.directory = self._tmp
        else:
            existed = os.path.isdir(directory)
            os.makedirs(directory, exist_ok=True)
            self._tmp = None
            self.directory = directory
            if existed:
                self._collect_orphans()
        self.retry = retry if retry is not None else RetryPolicy()
        self.io = IOStats()
        self._counter = 0

    # ------------------------------------------------------------------
    # Raw byte-level operations — the fault-injection seam.
    # ------------------------------------------------------------------
    def _write_payload(self, path: str, payload: bytes) -> None:
        """Atomically materialise ``payload`` at ``path`` (tmp → fsync →
        rename); on any failure the temp file is removed and ``path`` is
        untouched."""
        tmp_path = f"{path}{_TMP_SUFFIX}"
        try:
            with open(tmp_path, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            raise
        _fsync_dir(os.path.dirname(path) or ".")

    def _read_payload(self, path: str) -> bytes:
        with open(path, "rb") as handle:
            return handle.read()

    def _mmap_payload(self, path: str) -> np.ndarray:
        """Map a part file read-only without deserializing it.

        A fault seam like ``_read_payload``: the fault-injection store
        overrides this to damage the file or misbehave before mapping.
        """
        return np.load(path, mmap_mode="r", allow_pickle=False)

    def _remove_file(self, path: str) -> None:
        os.remove(path)

    # ------------------------------------------------------------------
    def _collect_orphans(self) -> None:
        """Remove temp files a crashed run left in a reused directory."""
        removed = 0
        try:
            names = os.listdir(self.directory)
        except OSError:  # pragma: no cover - directory vanished
            return
        for name in names:
            if name.endswith(_TMP_SUFFIX):
                try:
                    os.remove(os.path.join(self.directory, name))
                    removed += 1
                except OSError:
                    pass
        if removed:
            logger.warning(
                "removed %d orphaned temp file(s) from %s", removed, self.directory
            )

    @staticmethod
    def _classify(exc: OSError, path: str, verb: str) -> StorageError:
        """Map a non-retryable OSError onto the storage taxonomy."""
        if is_disk_full_oserror(exc):
            return DiskFullError(f"no space left while {verb} {path}: {exc}")
        return StorageError(f"failed {verb} {path}: {exc}")

    def _with_retries(self, operation, path: str, verb: str):
        """Run ``operation`` under the retry policy; raises the taxonomy."""
        last: OSError | None = None
        for attempt in range(self.retry.attempts):
            try:
                return operation()
            except OSError as exc:
                if not is_transient_oserror(exc):
                    raise self._classify(exc, path, verb) from exc
                last = exc
                if attempt + 1 < self.retry.attempts:
                    self.io.record_retry()
                    if self.tracer.enabled:
                        self.tracer.instant("retry", op=verb, attempt=attempt)
                    self.retry.backoff(attempt)
        raise TransientStorageError(
            f"still failing {verb} {path} after {self.retry.attempts} "
            f"attempts: {last}"
        ) from last

    # ------------------------------------------------------------------
    def save(self, array: np.ndarray, tag: str = "part") -> PartHandle:
        """Write an array as one part file; returns its handle."""
        self._counter += 1
        path = os.path.join(
            self.directory, f"{tag}-{self._counter:06d}-{uuid.uuid4().hex[:8]}.npy"
        )
        buffer = io.BytesIO()
        np.save(buffer, array, allow_pickle=False)
        payload = buffer.getvalue()
        checksum = zlib.crc32(payload)
        started = time.perf_counter()
        self._with_retries(
            lambda: self._write_payload(path, payload), path, "writing spill part"
        )
        self.io.record("write", len(payload), time.perf_counter() - started)
        return PartHandle(
            path=path,
            length=int(array.shape[0]),
            nbytes=len(payload),
            checksum=checksum,
        )

    def load(self, handle: PartHandle) -> np.ndarray:
        """Read one part back, verifying its checksum and length."""
        started = time.perf_counter()
        payload = self._with_retries(
            lambda: self._read_payload(handle.path), handle.path, "reading spill part"
        )
        if handle.checksum is not None and zlib.crc32(payload) != handle.checksum:
            raise CorruptPartError(
                f"checksum mismatch for spill part {handle.path} "
                f"({len(payload)} bytes read, {handle.nbytes} written)"
            )
        try:
            array = np.load(io.BytesIO(payload), allow_pickle=False)
        except (ValueError, EOFError, OSError) as exc:
            raise CorruptPartError(
                f"undecodable spill part {handle.path}: {exc}"
            ) from exc
        if int(array.shape[0]) != handle.length:
            raise CorruptPartError(
                f"spill part {handle.path} holds {array.shape[0]} entries, "
                f"expected {handle.length}"
            )
        self.io.record("read", len(payload), time.perf_counter() - started)
        return array

    def open_mmap(self, handle: PartHandle) -> np.ndarray:
        """Map one part read-only so the page cache is the only copy.

        The zero-copy read path: no payload deserialize, no CRC pass —
        integrity is covered by the write-time checksum carried on the
        handle plus the explicit :meth:`verify` sweep.  A torn or
        truncated file still fails fast here (the npy header or the
        mapped length no longer parses) as :class:`CorruptPartError`;
        silent bit flips are only caught by :meth:`verify`.
        """
        started = time.perf_counter()
        try:
            array = self._with_retries(
                lambda: self._mmap_payload(handle.path),
                handle.path,
                "mapping spill part",
            )
        except (ValueError, EOFError) as exc:
            raise CorruptPartError(
                f"unmappable spill part {handle.path}: {exc}"
            ) from exc
        if int(array.shape[0]) != handle.length:
            raise CorruptPartError(
                f"spill part {handle.path} maps {array.shape[0]} entries, "
                f"expected {handle.length}"
            )
        # The map itself moves no bytes; account the part as one read so
        # io_bytes_read still reflects the data served (page-cache hits
        # make the effective rate look fast, which is the truth).
        self.io.record("read", handle.nbytes, time.perf_counter() - started)
        return array

    def verify(self, handle: PartHandle) -> None:
        """Re-read one part and check its CRC; raises on any damage.

        The explicit integrity pass that complements :meth:`open_mmap`:
        checkpoint restore and recovery sweeps call this before trusting
        mmap-served parts.
        """
        payload = self._with_retries(
            lambda: self._read_payload(handle.path),
            handle.path,
            "verifying spill part",
        )
        if handle.checksum is not None and zlib.crc32(payload) != handle.checksum:
            raise CorruptPartError(
                f"checksum mismatch for spill part {handle.path} "
                f"({len(payload)} bytes read, {handle.nbytes} written)"
            )
        if len(payload) != handle.nbytes:
            raise CorruptPartError(
                f"spill part {handle.path} is {len(payload)} bytes, "
                f"expected {handle.nbytes}"
            )

    def delete(self, handle: PartHandle) -> None:
        """Remove one part file (best effort, but counted and logged)."""
        try:
            self._remove_file(handle.path)
        except FileNotFoundError:
            self.io.record_delete(ok=True)
        except OSError as exc:
            self.io.record_delete(ok=False)
            logger.warning("failed to delete spill part %s: %s", handle.path, exc)
        else:
            self.io.record_delete(ok=True)

    def close(self) -> None:
        """Remove the spill directory if this store created it."""
        if self._tmp is not None:
            shutil.rmtree(self._tmp, ignore_errors=True)
            self._tmp = None

    def __enter__(self) -> "PartStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SpilledLevel:
    """A CSE level whose vertex array lives on disk in parts.

    Satisfies the :class:`repro.core.cse.Level` protocol.  Sequential
    iteration streams parts through a sliding window with one-part-ahead
    prefetch (Figure 7's main part / candidate part scheme).

    With ``mmap=True`` (the default) the part files are served as
    read-only memory maps: random block decode gathers through a
    :class:`repro.core.shm.PartedVector` over the maps
    (``supports_block_decode``), streaming iteration maps parts instead
    of deserializing them, and worker processes attach to the very same
    files — a spilled part IS the IPC buffer.
    """

    def __init__(
        self,
        store: PartStore,
        parts: list[PartHandle],
        off: np.ndarray | None,
        prefetch: bool = True,
        prefetch_depth: int = 1,
        dtype: np.dtype | None = None,
        mmap: bool = True,
    ) -> None:
        self.store = store
        self.parts = parts
        self.off = None if off is None else np.ascontiguousarray(off, dtype=np.int64)
        self.prefetch = prefetch
        self.prefetch_depth = prefetch_depth
        self.mmap = mmap
        self._dtype = None if dtype is None else np.dtype(dtype)
        self._accessor = None
        self._length = sum(p.length for p in parts)
        if self.off is not None and self.off[-1] != self._length:
            raise StorageError(
                f"off spans {self.off[-1]} but parts hold {self._length} entries"
            )

    @property
    def num_embeddings(self) -> int:
        return self._length

    @property
    def num_parts(self) -> int:
        return len(self.parts)

    def off_array(self) -> np.ndarray | None:
        return self.off

    @property
    def dtype(self) -> np.dtype:
        """Id storage width of this level (recorded at spill time)."""
        return self._dtype if self._dtype is not None else DEFAULT_ID_DTYPE

    @property
    def supports_block_decode(self) -> bool:
        """Whether block decode may gather this level without loading it."""
        return self.mmap

    def vert_accessor(self):
        """Gatherable view of the whole level without materialising it.

        A :class:`repro.core.shm.PartedVector` over read-only memory maps
        of the part files, cached until :meth:`drop`.  Only available in
        mmap mode; callers fall back to :meth:`vert_array` otherwise.
        """
        if not self.mmap:
            return self.vert_array()
        if self._accessor is None:
            from ..core.shm import PartedVector

            self._accessor = PartedVector(
                [self.store.open_mmap(p) for p in self.parts], dtype=self.dtype
            )
        return self._accessor

    def vert_array(self) -> np.ndarray:
        chunks = [self.store.load(p) for p in self.parts]
        if not chunks:
            return np.zeros(0, dtype=self.dtype)
        return np.concatenate(chunks)

    def verify(self) -> None:
        """CRC-check every part (raises :class:`CorruptPartError`).

        The explicit integrity pass for mmap-served levels: the zero-copy
        read path skips per-read CRC, so recovery and checkpoint restore
        sweep the parts through here before trusting them.
        """
        for part in self.parts:
            self.store.verify(part)

    def iter_vert_chunks(self) -> Iterator[np.ndarray]:
        reader = SlidingWindowReader(
            self.store,
            self.parts,
            prefetch=self.prefetch,
            depth=self.prefetch_depth,
            loader=self.store.open_mmap if self.mmap else None,
        )
        yield from reader

    @property
    def nbytes_in_memory(self) -> int:
        # Only the off array (plus one window part while iterating, which
        # the engine accounts separately as its streaming buffer).
        return 0 if self.off is None else self.off.nbytes

    @property
    def nbytes_total(self) -> int:
        return self.nbytes_in_memory + sum(p.nbytes for p in self.parts)

    @property
    def nbytes_on_disk(self) -> int:
        return sum(p.nbytes for p in self.parts)

    def drop(self) -> None:
        """Delete the level's part files."""
        self._accessor = None
        for part in self.parts:
            self.store.delete(part)
        self.parts = []
        self._length = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SpilledLevel(n={self.num_embeddings}, parts={len(self.parts)}, "
            f"disk={self.nbytes_on_disk / 1e6:.2f}MB)"
        )
