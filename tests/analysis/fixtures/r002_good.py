"""R002 fixture: injected clocks, seeded generators, sorted sets."""

import random
import time

import numpy as np


def measure(work):
    started = time.perf_counter()  # monotonic timing is legal
    work()
    return time.monotonic() - started


def shuffle_parts(parts, seed):
    rng = random.Random(seed)  # seeded generator is legal
    rng.shuffle(parts)
    return parts


def jitter(array, seed):
    rng = np.random.default_rng(seed)  # seeded numpy generator is legal
    rng.shuffle(array)
    return array


def merge(vertices):
    out = []
    for v in sorted({v for vs in vertices for v in vs}):  # sorted: legal
        out.append(v)
    return out
