"""The Kaleido engine: exploration + aggregation over CSE (Sections 3-4).

One :class:`KaleidoEngine` instance runs one mining application over one
graph.  Responsibilities:

* drive the vertex- or edge-induced exploration level by level, applying
  the canonical filter and the application's EmbeddingFilter;
* decide, per level, whether the new level lives in memory or spills to
  disk (the hybrid storage policy, driven by the memory budget);
* partition each level's work by the candidate-size prediction and replay
  the measured part times through the work-stealing scheduler model to
  obtain simulated parallel runtimes and utilization;
* run the pattern aggregation phase through the configured isomorphism
  fingerprint (EigenHash by default, a bliss-like canonical labeler for
  the Figure-12 comparison);
* account every live data structure in a :class:`MemoryMeter`.
"""

from __future__ import annotations

import logging
import time

import numpy as np

from ..balance.partition import balanced_parts
from ..balance.predict import predict_edge_costs, predict_vertex_costs
from ..balance.worksteal import Schedule, simulate_work_stealing
from ..graph.edge_index import EdgeIndex
from ..graph.graph import Graph
from ..storage.hybrid import StoragePolicy
from ..storage.meter import MemoryBudget, MemoryMeter
from ..storage.spill import PartStore
from .api import EngineContext, MiningApplication, MiningResult, PatternMap
from .cse import CSE
from .eigenhash import PatternHasher
from .explore import even_parts, expand_edge_level, expand_vertex_level

__all__ = ["KaleidoEngine"]

logger = logging.getLogger("repro.engine")


class KaleidoEngine:
    """Configurable two-phase graph mining engine.

    Parameters
    ----------
    graph:
        The input graph.
    workers:
        Modelled worker count; part timings are replayed through the
        work-stealing schedule for this many workers.
    hasher:
        Isomorphism fingerprinter; defaults to the paper's EigenHash.
        Pass ``repro.baselines.BlissLikeHasher()`` for the Fig.-12 study.
    memory_limit_bytes:
        Budget for intermediate data; exceeding it spills CSE levels.
    storage_mode:
        ``"auto"`` (spill when over budget), ``"memory"`` (never spill;
        budget ignored), or ``"spill-last"`` (always spill newly explored
        levels — the Table-4 "hybrid" configuration).
    use_prediction:
        Partition exploration work by predicted candidate sizes (paper
        default) or by plain embedding counts (the Fig.-17 baseline).
    parts_per_worker:
        Task granularity for the scheduler model.
    synchronous_io / prefetch:
        Writing-queue and sliding-window behaviour (async + prefetch by
        default, like the paper; tests turn them off for determinism).
    """

    def __init__(
        self,
        graph: Graph,
        workers: int = 1,
        hasher: PatternHasher | None = None,
        memory_limit_bytes: int | None = None,
        storage_mode: str = "auto",
        spill_dir: str | None = None,
        use_prediction: bool = True,
        parts_per_worker: int = 4,
        synchronous_io: bool = False,
        prefetch: bool = True,
        max_embeddings: int | None = None,
    ) -> None:
        if storage_mode not in ("auto", "memory", "spill-last"):
            raise ValueError(f"unknown storage_mode {storage_mode!r}")
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.graph = graph
        self.workers = workers
        self.hasher = hasher if hasher is not None else PatternHasher()
        self.meter = MemoryMeter()
        self.budget = MemoryBudget(memory_limit_bytes)
        self.storage_mode = storage_mode
        self.use_prediction = use_prediction
        self.parts_per_worker = parts_per_worker
        self.synchronous_io = synchronous_io
        self.prefetch = prefetch
        #: Safety valve: abort (PlanError) if any level would exceed this
        #: many embeddings.  Exploration is exponential in depth; a guard
        #: beats an out-of-control run in production settings.
        self.max_embeddings = max_embeddings
        self._store: PartStore | None = (
            PartStore(spill_dir) if spill_dir is not None else None
        )
        self._policy = StoragePolicy(
            self.budget,
            self.meter,
            store=self._store,
            synchronous_io=synchronous_io,
            prefetch=prefetch,
            force_spill_last=(storage_mode == "spill-last"),
        )

    # ------------------------------------------------------------------
    def run(self, app: MiningApplication) -> MiningResult:
        """Run one application start to finish and report costs."""
        started = time.perf_counter()
        schedules: list[Schedule] = []
        schedule_phases: list[str] = []
        phase_spans: dict[str, float] = {}

        ctx = EngineContext(graph=self.graph, engine=self)
        self.meter.set("graph", self.graph.nbytes)
        if app.induced == "edge":
            ctx.edge_index = EdgeIndex(self.graph)
            self.meter.set("edge_index", ctx.edge_index.nbytes)
        elif app.induced != "vertex":
            raise ValueError(f"unknown induced mode {app.induced!r}")

        roots = app.init(ctx)
        cse = CSE(roots)
        self.meter.set("cse", cse.nbytes_in_memory)
        level_sizes = [cse.size()]
        reduced: PatternMap = {}

        # ---------------- Phase 1: embedding exploration ----------------
        explore_span = 0.0
        aggregated = False
        for _ in range(app.iterations()):
            costs = self._predict_costs(ctx, cse)
            if (
                self.max_embeddings is not None
                and costs is not None
                and int(costs.sum()) > self.max_embeddings
            ):
                from ..errors import PlanError

                raise PlanError(
                    f"next level predicted at {int(costs.sum()):,} embeddings, "
                    f"above the max_embeddings guard of {self.max_embeddings:,}"
                )
            num_parts = max(1, self.workers * self.parts_per_worker)
            if costs is not None:
                parts = balanced_parts(costs, num_parts)
                predicted_entries = int(costs.sum())
            else:
                parts = even_parts(cse.size(), num_parts)
                predicted_entries = cse.size() * max(1, int(self.graph.average_degree))
            sink = None
            if self.storage_mode != "memory":
                sink = self._policy.sink_for_next_level(cse, predicted_entries)
            if app.induced == "vertex":
                stats = expand_vertex_level(
                    self.graph, cse, app.embedding_filter, parts=parts, sink=sink
                )
            else:
                assert ctx.edge_index is not None
                stats = expand_edge_level(
                    self.graph, ctx.edge_index, cse,
                    app.embedding_filter, parts=parts, sink=sink,
                )
            schedule = simulate_work_stealing(stats.part_seconds, self.workers)
            schedules.append(schedule)
            schedule_phases.append("explore")
            explore_span += schedule.span_seconds
            level_sizes.append(cse.size())
            self.meter.set("cse", cse.nbytes_in_memory)
            logger.debug(
                "%s: level %d -> %d embeddings (%d candidates examined, "
                "%.3fs span, %.2f MB accounted)",
                app.name, cse.depth, cse.size(), stats.candidates_examined,
                schedule.span_seconds, self.meter.current_bytes / 1e6,
            )

            if app.aggregate_every_iteration:
                reduced, agg_span = self._aggregate(
                    ctx, app, cse, schedules, schedule_phases
                )
                aggregated = True
                explore_span += agg_span
                mask = app.prune(ctx, cse, reduced)
                if mask is not None:
                    cse.filter_top_level(mask)
                    level_sizes[-1] = cse.size()
                    self.meter.set("cse", cse.nbytes_in_memory)
                if cse.size() == 0:
                    break
        phase_spans["explore"] = explore_span

        # ---------------- Phase 2: pattern aggregation ------------------
        if not app.aggregate_every_iteration or not aggregated:
            reduced, agg_span = self._aggregate(
                ctx, app, cse, schedules, schedule_phases
            )
            phase_spans["aggregate"] = agg_span

        value = app.finalize(ctx, cse, reduced)
        wall = time.perf_counter() - started
        logger.info(
            "%s over %s: %.3fs wall, %d patterns, peak %.2f MB",
            app.name, self.graph.name, wall, len(reduced),
            self.meter.peak_bytes / 1e6,
        )
        io_read, io_written = self._io_totals()
        result = MiningResult(
            app_name=app.name,
            value=value,
            pattern_map=reduced,
            wall_seconds=wall,
            simulated_seconds=sum(phase_spans.values()),
            peak_memory_bytes=self.meter.peak_bytes,
            level_sizes=level_sizes,
            phase_spans=phase_spans,
            io_bytes_read=io_read,
            io_bytes_written=io_written,
            memory_snapshot=self.meter.snapshot(),
            schedules=schedules,
            utilization=(
                sum(s.busy_seconds for s in schedules)
                / max(1e-12, sum(s.span_seconds for s in schedules) * self.workers)
            ),
            extra={
                "schedule_phases": schedule_phases,
                "hasher_cache_entries": len(self.hasher)
                if hasattr(self.hasher, "__len__")
                else None,
                "spilled_levels": self._policy.spilled_levels,
            },
        )
        return result

    # ------------------------------------------------------------------
    def _predict_costs(self, ctx: EngineContext, cse: CSE) -> np.ndarray | None:
        if not self.use_prediction:
            return None
        if ctx.edge_index is not None:
            return predict_edge_costs(ctx.edge_index, cse)
        return predict_vertex_costs(self.graph, cse)

    def _aggregate(
        self,
        ctx: EngineContext,
        app: MiningApplication,
        cse: CSE,
        schedules: list[Schedule],
        schedule_phases: list[str],
    ) -> tuple[PatternMap, float]:
        """Run the Mapper over the top level in parts, then the Reducer.

        Per-thread PatternMaps are modelled faithfully: each part owns its
        own map (the paper's FSM avoids a concurrent hashmap the same way),
        so accounted memory grows with the worker count and the final merge
        is serial — which is exactly why FSM scales sublinearly (Fig. 14).
        """
        num_parts = max(1, self.workers * self.parts_per_worker)
        # Parts follow the candidate-size prediction only when the app's
        # Mapper cost tracks candidate counts (motif counting expands
        # every embedding on the fly — the Figure-17 balance effect);
        # otherwise per-embedding cost is uniform and an even count split
        # is the better balance.
        costs = (
            self._predict_costs(ctx, cse)
            if app.mapper_cost_tracks_candidates
            else None
        )
        if costs is not None:
            bounds = balanced_parts(costs, num_parts)
        else:
            bounds = even_parts(cse.size(), num_parts)
        pmaps: list[PatternMap] = []
        durations: list[float] = []
        part_iter = iter(bounds)
        current = next(part_iter, None)
        pmap: PatternMap = {}
        part_started = time.perf_counter()
        for pos, emb in cse.iter_embeddings():
            while current is not None and pos >= current[1]:
                durations.append(time.perf_counter() - part_started)
                pmaps.append(pmap)
                pmap = {}
                part_started = time.perf_counter()
                current = next(part_iter, None)
            app.map_embedding(ctx, emb, pmap)
        while current is not None:
            durations.append(time.perf_counter() - part_started)
            pmaps.append(pmap)
            pmap = {}
            part_started = time.perf_counter()
            current = next(part_iter, None)

        self.meter.set("pattern_maps", sum(app.pmap_nbytes(m) for m in pmaps))
        if hasattr(self.hasher, "nbytes"):
            self.meter.set("hasher_cache", self.hasher.nbytes)
        schedule = simulate_work_stealing(durations, self.workers)
        schedules.append(schedule)
        schedule_phases.append("aggregate")

        reduce_started = time.perf_counter()
        reduced = app.reduce(ctx, pmaps)
        reduce_seconds = time.perf_counter() - reduce_started
        self.meter.set("pattern_maps", app.pmap_nbytes(reduced))
        return reduced, schedule.span_seconds + reduce_seconds

    def _io_totals(self) -> tuple[int, int]:
        store = self._policy.store
        if store is None:
            return 0, 0
        return store.io.bytes_read, store.io.bytes_written

    @property
    def io_stats(self):
        """The spill store's IOStats (None when nothing ever spilled)."""
        store = self._policy.store
        return None if store is None else store.io

    def close(self) -> None:
        """Delete spill files (safe to call twice)."""
        self._policy.close()

    def __enter__(self) -> "KaleidoEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
