"""R002 fixture: wall clocks, global RNG, set-order iteration (6 hits)."""

import os
import random
import time

import numpy as np
from time import time as wall_clock


def stamp(result):
    result["at"] = time.time()  # hit 1: wall clock
    result["t2"] = wall_clock()  # hit 2: from-import alias of time.time
    return result


def shuffle_parts(parts):
    random.shuffle(parts)  # hit 3: global RNG state
    return parts


def salt():
    return os.urandom(8)  # hit 4: entropy source


def jitter(array):
    np.random.shuffle(array)  # hit 5: numpy global RNG
    return array


def merge(vertices):
    out = []
    for v in {v for vs in vertices for v in vs}:  # hit 6: set iteration
        out.append(v)
    return out
