"""Integration: hybrid storage produces identical results with real I/O."""

import pytest

from repro import (
    CliqueDiscovery,
    FrequentSubgraphMining,
    KaleidoEngine,
    MotifCounting,
    TriangleCounting,
)
from repro.graph import datasets


@pytest.fixture(scope="module")
def graph():
    return datasets.load("citeseer", "tiny")


def _run(graph, app, **kwargs):
    with KaleidoEngine(graph, **kwargs) as engine:
        return engine.run(app)


@pytest.mark.parametrize(
    "app_factory",
    [
        lambda: MotifCounting(3),
        lambda: CliqueDiscovery(4),
        lambda: TriangleCounting(),
    ],
    ids=["motif", "clique", "tc"],
)
def test_spill_last_matches_memory(graph, app_factory, tmp_path):
    in_mem = _run(graph, app_factory(), storage_mode="memory")
    hybrid = _run(
        graph,
        app_factory(),
        storage_mode="spill-last",
        spill_dir=str(tmp_path),
        synchronous_io=True,
        prefetch=False,
    )
    if isinstance(in_mem.value, dict):
        assert dict(in_mem.value) == dict(hybrid.value)
    else:
        assert in_mem.value == hybrid.value
    assert hybrid.io_bytes_written > 0


def test_budget_triggers_spill(graph, tmp_path):
    """A tight budget spills automatically and still gets the answer."""
    unlimited = _run(graph, MotifCounting(4), storage_mode="memory")
    capped = _run(
        graph,
        MotifCounting(4),
        memory_limit_bytes=int(unlimited.peak_memory_bytes * 0.5),
        storage_mode="auto",
        spill_dir=str(tmp_path),
        synchronous_io=True,
        prefetch=False,
    )
    assert dict(unlimited.value) == dict(capped.value)
    assert capped.extra["spilled_levels"] >= 1
    assert capped.io_bytes_written > 0


def test_generous_budget_never_spills(graph):
    result = _run(
        graph, MotifCounting(3), memory_limit_bytes=1 << 34, storage_mode="auto"
    )
    assert result.extra["spilled_levels"] == 0
    assert result.io_bytes_written == 0


def test_hybrid_memory_reduced(graph, tmp_path):
    """Accounted in-memory footprint shrinks when the last level spills
    (Table 4's 4-FSM rows)."""
    in_mem = _run(graph, FrequentSubgraphMining(3, 3), storage_mode="memory")
    hybrid = _run(
        graph,
        FrequentSubgraphMining(3, 3),
        storage_mode="spill-last",
        spill_dir=str(tmp_path),
        synchronous_io=True,
        prefetch=False,
    )
    assert dict(in_mem.value) == dict(hybrid.value)


def test_async_prefetch_same_results(graph, tmp_path):
    sync = _run(
        graph,
        MotifCounting(4),
        storage_mode="spill-last",
        spill_dir=str(tmp_path / "sync"),
        synchronous_io=True,
        prefetch=False,
    )
    fancy = _run(
        graph,
        MotifCounting(4),
        storage_mode="spill-last",
        spill_dir=str(tmp_path / "async"),
        synchronous_io=False,
        prefetch=True,
    )
    assert dict(sync.value) == dict(fancy.value)
