"""Unit tests for pattern matching (Figure 1)."""

import pytest

from repro import KaleidoEngine
from repro.apps.matching import PatternMatching
from repro.core import Pattern, are_isomorphic
from repro.apps.reference import connected_vertex_sets
from repro.graph import from_edge_list
from tests.conftest import random_labeled_graph


def _figure1_graph():
    """Figure 1's input graph: vertices 1..5, two label colors."""
    return from_edge_list(
        [(1, 2), (1, 5), (2, 5), (2, 3), (3, 4), (3, 5), (4, 5)],
        labels=[0, 1, 0, 1, 1, 0],  # vertex 0 unused; 2 and 5 share a color
    )


def test_figure1_pattern_matching():
    """Figure 1: pattern p (a 3-chain with colored endpoints) has
    embeddings a=(1,2,5)... — we verify against brute force below; here
    the chain 1-2-5 must match."""
    graph = _figure1_graph()
    # Pattern: chain x - y - z with labels like (1, 0, 0): a triangle in
    # Figure 1 is (1,2,5) with labels (1, 0, 0).
    pattern = Pattern.from_vertex_embedding(graph, [1, 2, 5])
    result = KaleidoEngine(graph).run(PatternMatching(pattern, materialize=True))
    assert result.value.count >= 1
    assert any(sorted(m) == [1, 2, 5] for m in result.value.matches)


def _naive_matches(graph, pattern):
    k = pattern.num_vertices
    return sum(
        1
        for verts in connected_vertex_sets(graph, k)
        if are_isomorphic(Pattern.from_vertex_embedding(graph, verts), pattern)
    )


@pytest.mark.parametrize("seed", range(3))
def test_matches_naive(seed):
    graph = random_labeled_graph(12, 26, 2, seed=seed)
    sets3 = connected_vertex_sets(graph, 3)
    if not sets3:
        pytest.skip("degenerate random graph")
    pattern = Pattern.from_vertex_embedding(graph, sets3[len(sets3) // 2])
    got = KaleidoEngine(graph).run(PatternMatching(pattern)).value.count
    assert got == _naive_matches(graph, pattern)


def test_label_mismatch_yields_zero():
    graph = from_edge_list([(0, 1), (1, 2)], labels=[0, 0, 0])
    pattern = Pattern.from_adjacency([7, 7, 7], [[0, 1, 0], [1, 0, 1], [0, 1, 0]])
    assert KaleidoEngine(graph).run(PatternMatching(pattern)).value.count == 0


def test_triangle_pattern_counts_triangles(paper_graph):
    pattern = Pattern.from_adjacency([0] * 3, [[0, 1, 1], [1, 0, 1], [1, 1, 0]])
    result = KaleidoEngine(paper_graph).run(PatternMatching(pattern))
    assert result.value == 3


def test_induced_semantics(paper_graph):
    """A 3-chain pattern does NOT match vertex sets that induce triangles."""
    chain = Pattern.from_adjacency([0] * 3, [[0, 1, 0], [1, 0, 1], [0, 1, 0]])
    result = KaleidoEngine(paper_graph).run(PatternMatching(chain))
    assert result.value == 5  # 8 connected triples - 3 triangles


def test_validates_pattern():
    with pytest.raises(ValueError):
        PatternMatching(Pattern((0,), 0))
    disconnected = Pattern.from_adjacency([0] * 4, [[0, 1, 0, 0], [1, 0, 0, 0],
                                                    [0, 0, 0, 1], [0, 0, 1, 0]])
    with pytest.raises(ValueError):
        PatternMatching(disconnected)


def test_result_equality():
    graph = _figure1_graph()
    pattern = Pattern.from_vertex_embedding(graph, [1, 2, 5])
    a = KaleidoEngine(graph).run(PatternMatching(pattern)).value
    b = KaleidoEngine(graph).run(PatternMatching(pattern)).value
    assert a == b
    assert a == a.count
