"""Level planning — stage 1 of the plan → execute → aggregate pipeline.

Before each expansion the planner produces a :class:`LevelPlan`: the
predicted per-embedding candidate costs (Figure 8), the balanced part
bounds derived from them, the predicted size of the next level, the
guard check against ``max_embeddings``, and the storage decision (memory
vs spilling sink, via :class:`repro.storage.StoragePolicy`).  Before each
aggregation it produces the analogous :class:`AggregatePlan` for the
mapper parts.

This logic used to be inlined in ``KaleidoEngine.run()``; pulling it out
gives every executor the same deterministic work decomposition and makes
the planning stage independently testable and timeable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..balance.partition import balanced_parts
from ..balance.predict import IOPlan, predict_edge_costs, predict_vertex_costs
from ..errors import PlanError
from ..graph.graph import Graph
from .api import EngineContext, MiningApplication
from .cse import CSE
from .explore import InMemorySink, LevelSink, even_parts
from .restrictions import (
    KernelRestrictions,
    LevelConstraint,
    RestrictionSet,
    canonical_level_restrictions,
    compile_restrictions,
)

__all__ = ["LevelPlan", "AggregatePlan", "Planner"]


@dataclass
class LevelPlan:
    """One exploration iteration's plan: how to cut, where to write."""

    #: CSE depth before the expansion (the level being extended).
    depth: int
    #: Embedding count of the level being extended.
    size: int
    #: Predicted per-embedding candidate counts, or None when prediction
    #: is off (the Fig.-17 baseline splits evenly instead).
    costs: np.ndarray | None
    #: Contiguous part bounds over the level, one task per part.
    part_bounds: list[tuple[int, int]]
    #: Predicted entry count of the next level (sink sizing).
    predicted_entries: int
    #: Whether the new level goes to disk.
    spill: bool
    #: The sink to expand into; None means plain in-memory (storage_mode
    #: "memory", where no policy is consulted at all).
    sink: LevelSink | None
    #: The storage policy's I/O mode when this plan was made (e.g.
    #: "async+prefetch", or "sync+no-prefetch" after degradation) —
    #: "memory" when no policy was consulted.
    io_mode: str = "memory"
    #: Fused symmetry-breaking bounds for this level's kernel gather
    #: (:func:`repro.core.restrictions.canonical_level_restrictions`), or
    #: None when restrictions are disabled.  Ignored by the scalar
    #: fallback, which keeps the unrestricted canonical filter.
    restrictions: KernelRestrictions | None = None
    #: The query pattern's ordering constraints on the vertex this level
    #: binds (from the app's compiled
    #: :class:`~repro.core.restrictions.RestrictionSet`), or None when
    #: the app mines no single pattern or the level is past the pattern.
    pattern_constraints: LevelConstraint | None = None
    #: The adaptive I/O scheduler's choice for this level (part size,
    #: prefetch depth) when it spills; None for in-memory levels.
    io_plan: IOPlan | None = None

    @property
    def num_parts(self) -> int:
        return len(self.part_bounds)


@dataclass
class AggregatePlan:
    """One aggregation pass's plan: mapper part bounds over the top level."""

    size: int
    costs: np.ndarray | None
    part_bounds: list[tuple[int, int]]

    @property
    def num_parts(self) -> int:
        return len(self.part_bounds)


class Planner:
    """Produces per-level and per-aggregation plans for the engine."""

    def __init__(
        self,
        graph: Graph,
        policy,
        *,
        workers: int = 1,
        parts_per_worker: int = 4,
        use_prediction: bool = True,
        storage_mode: str = "auto",
        max_embeddings: int | None = None,
        use_restrictions: bool = True,
    ) -> None:
        self.graph = graph
        self.policy = policy
        self.workers = workers
        self.parts_per_worker = parts_per_worker
        self.use_prediction = use_prediction
        self.storage_mode = storage_mode
        self.max_embeddings = max_embeddings
        #: Whether plans carry fused symmetry-breaking restrictions for
        #: the kernels (the engine's --no-restrictions escape hatch
        #: clears it; results are byte-identical either way).
        self.use_restrictions = use_restrictions
        #: The active app's compiled pattern restrictions, set by the
        #: engine at the start of each run (None between runs or for
        #: apps without a single query pattern).
        self.active_restriction_set: RestrictionSet | None = None
        self._pattern_cache: dict[object, RestrictionSet] = {}

    def pattern_restrictions(self, app: MiningApplication) -> RestrictionSet | None:
        """Compile (and memoise) the app's query-pattern restriction set.

        Apps expose their pattern through
        :meth:`~repro.core.api.MiningApplication.query_pattern`; apps
        that mine all patterns at once (FSM, motif counting) return
        None and get no pattern-level restrictions.
        """
        pattern = app.query_pattern()
        if pattern is None:
            return None
        cached = self._pattern_cache.get(pattern)
        if cached is None:
            cached = compile_restrictions(pattern)
            self._pattern_cache[pattern] = cached
        return cached

    @property
    def num_parts(self) -> int:
        """Task granularity: parts per level."""
        return max(1, self.workers * self.parts_per_worker)

    # ------------------------------------------------------------------
    def predict_costs(self, ctx: EngineContext, cse: CSE) -> np.ndarray | None:
        """Figure-8 candidate-size prediction over the top level."""
        if not self.use_prediction:
            return None
        if ctx.edge_index is not None:
            return predict_edge_costs(ctx.edge_index, cse)
        return predict_vertex_costs(self.graph, cse)

    def plan_level(self, ctx: EngineContext, cse: CSE) -> LevelPlan:
        """Plan the next expansion; raises :class:`PlanError` on the guard."""
        costs = self.predict_costs(ctx, cse)
        if (
            self.max_embeddings is not None
            and costs is not None
            and int(costs.sum()) > self.max_embeddings
        ):
            raise PlanError(
                f"next level predicted at {int(costs.sum()):,} embeddings, "
                f"above the max_embeddings guard of {self.max_embeddings:,}"
            )
        if costs is not None:
            predicted_entries = int(costs.sum())
        else:
            predicted_entries = cse.size() * max(1, int(self.graph.average_degree))
        sink: LevelSink | None = None
        spill = False
        io_mode = "memory"
        io_plan: IOPlan | None = None
        if self.storage_mode != "memory":
            # The emitted level stores ids of the exploration's id space:
            # edge ids for edge-induced apps, vertex ids otherwise.  Its
            # dtype drives both the sink's storage width and the
            # bytes-per-entry the spill decision sizes with.
            dtype = (
                ctx.edge_index.id_dtype
                if ctx.edge_index is not None
                else self.graph.id_dtype
            )
            sink = self.policy.sink_for_next_level(
                cse, predicted_entries, bytes_per_entry=dtype.itemsize, dtype=dtype
            )
            spill = not isinstance(sink, InMemorySink)
            io_mode = self.policy.io_mode
            if spill:
                io_plan = getattr(self.policy, "last_io_plan", None)
        # When the level spills, each expansion part becomes one on-disk
        # part — so the scheduler's part size, not the fixed
        # parts-per-worker knob, sets the cut (bounded to keep task
        # overhead sane on huge levels).
        num_parts = self.num_parts
        if io_plan is not None and predicted_entries > 0:
            target = math.ceil(predicted_entries / io_plan.part_entries)
            num_parts = max(num_parts, min(target, 64 * max(1, self.workers)))
        if costs is not None:
            part_bounds = balanced_parts(costs, num_parts)
        else:
            part_bounds = even_parts(cse.size(), num_parts)
        restrictions = None
        if self.use_restrictions:
            kind = "edge" if ctx.edge_index is not None else "vertex"
            restrictions = canonical_level_restrictions(kind, cse.depth)
        pattern_constraints = None
        rset = self.active_restriction_set
        if rset is not None and cse.depth < rset.num_vertices:
            # This expansion binds pattern position `depth` (0-based).
            pattern_constraints = rset.constraints_at(cse.depth)
        return LevelPlan(
            depth=cse.depth,
            size=cse.size(),
            costs=costs,
            part_bounds=part_bounds,
            predicted_entries=predicted_entries,
            spill=spill,
            sink=sink,
            io_mode=io_mode,
            restrictions=restrictions,
            pattern_constraints=pattern_constraints,
            io_plan=io_plan,
        )

    def plan_aggregate(
        self, ctx: EngineContext, app: MiningApplication, cse: CSE
    ) -> AggregatePlan:
        """Plan the mapper parts over the top level.

        Parts follow the candidate-size prediction only when the app's
        Mapper cost tracks candidate counts (motif counting expands every
        embedding on the fly — the Figure-17 balance effect); otherwise
        per-embedding cost is uniform and an even count split is the
        better balance.
        """
        costs = (
            self.predict_costs(ctx, cse)
            if app.mapper_cost_tracks_candidates
            else None
        )
        if costs is not None:
            part_bounds = balanced_parts(costs, self.num_parts)
        else:
            part_bounds = even_parts(cse.size(), self.num_parts)
        return AggregatePlan(size=cse.size(), costs=costs, part_bounds=part_bounds)
