"""Table 3: memory consumption of the three systems over CiteSeer.

The paper reports per-application peak memory (MB) on CiteSeer for
Kaleido, Arabesque and RStream; Arabesque's ~1.9 GB constant JVM/Giraph
heap is a known deviation we do not fabricate (see EXPERIMENTS.md), so
the comparison here is of the accounted data-structure footprints.
"""

import pytest

from repro.bench import (
    PROFILE,
    TABLE2_GRID,
    bench_graph,
    format_table,
    run_arabesque,
    run_kaleido,
    run_rstream,
)

from conftest import run_once


@pytest.mark.benchmark(group="table3")
def test_table3_memory_citeseer(benchmark, emit):
    graph = bench_graph("citeseer")
    grid = [(k, o) for k, o in TABLE2_GRID if not (k == "motif" and o == 4)]
    # 4-Motif on full-scale CiteSeer is included separately for Kaleido
    # only; the baselines take minutes there for no extra signal.
    records = {}

    def run_grid():
        for kind, option in grid:
            ka = run_kaleido(graph, kind, option, "citeseer")
            ar = run_arabesque(graph, kind, option, "citeseer")
            rs = run_rstream(graph, kind, option, "citeseer")
            records[(kind, str(option))] = (ka, ar, rs)
        return records

    run_once(benchmark, run_grid)

    rows = []
    for (kind, option), (ka, ar, rs) in records.items():
        rows.append(
            [
                ka.app,
                option,
                f"{ka.memory_mb:.2f}",
                f"{ar.memory_mb:.2f}",
                f"{rs.memory_mb:.2f}",
            ]
        )
    table = format_table(
        ["App", "Option", "Kaleido MB", "Arabesque MB", "RStream MB"],
        rows,
        title=f"Table 3 — memory consumption over CiteSeer (profile: {PROFILE})",
    )
    emit(table, name="table3_memory")

    # Shape: Kaleido's footprint is the smallest in the wide majority of
    # cells (the paper's Table 3 shows the same with two FSM exceptions
    # where RStream's partitioned tables are small).
    wins = sum(
        1
        for (ka, ar, rs) in records.values()
        if ka.memory_bytes <= ar.memory_bytes and ka.memory_bytes <= rs.memory_bytes
    )
    assert wins >= len(records) * 0.6
    # And always below Arabesque's embedding-object store.
    for ka, ar, _ in records.values():
        assert ka.memory_bytes <= ar.memory_bytes
