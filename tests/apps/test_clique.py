"""Unit tests for clique discovery."""

import pytest

from repro import CliqueDiscovery, KaleidoEngine
from repro.apps.reference import count_cliques_naive
from repro.graph import from_edge_list
from tests.conftest import random_labeled_graph


def test_paper_example_3cliques(paper_graph):
    result = KaleidoEngine(paper_graph).run(CliqueDiscovery(3))
    assert result.value.count == 3


def test_figure9_triangles_materialized(paper_graph):
    result = KaleidoEngine(paper_graph).run(CliqueDiscovery(3, materialize=True))
    assert set(result.value.cliques) == {(1, 2, 5), (2, 3, 5), (3, 4, 5)}


def test_k4_in_paper_graph(paper_graph):
    assert KaleidoEngine(paper_graph).run(CliqueDiscovery(4)).value.count == 0


def test_complete_graph_counts():
    k6 = from_edge_list([(i, j) for i in range(6) for j in range(i + 1, 6)])
    for k, expected in [(3, 20), (4, 15), (5, 6), (6, 1)]:
        assert KaleidoEngine(k6).run(CliqueDiscovery(k)).value.count == expected


def test_matches_naive_random():
    for seed in range(4):
        g = random_labeled_graph(14, 45, 2, seed=100 + seed)
        for k in (3, 4):
            got = KaleidoEngine(g).run(CliqueDiscovery(k)).value.count
            assert got == count_cliques_naive(g, k), (seed, k)


def test_2cliques_are_edges(paper_graph):
    assert KaleidoEngine(paper_graph).run(CliqueDiscovery(2)).value.count == 7


def test_validates_k():
    with pytest.raises(ValueError):
        CliqueDiscovery(1)


def test_result_equality_semantics(paper_graph):
    result = KaleidoEngine(paper_graph).run(CliqueDiscovery(3))
    assert result.value == 3
    assert result.value == KaleidoEngine(paper_graph).run(CliqueDiscovery(3)).value


def test_name():
    assert CliqueDiscovery(5).name == "5-Clique"
