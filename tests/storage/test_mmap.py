"""Mmap-served spill parts: content, accounting, corruption, resume."""

import tempfile

import numpy as np
import pytest

from repro.apps import MotifCounting
from repro.core import CSE
from repro.core.engine import KaleidoEngine
from repro.core.explore import expand_vertex_level
from repro.errors import CorruptPartError
from repro.storage import (
    FaultPlan,
    FaultSpec,
    FaultyPartStore,
    PartStore,
    RetryPolicy,
    SpilledLevel,
)
from repro.storage.faults import _corrupt_file
from repro.storage.hybrid import spill_level


def _no_sleep_retry(attempts=4):
    return RetryPolicy(attempts=attempts, sleep=lambda _t: None)


# ----------------------------------------------------------------------
# PartStore.open_mmap / verify
# ----------------------------------------------------------------------
def test_open_mmap_content_and_accounting(tmp_path):
    store = PartStore(str(tmp_path))
    data = np.arange(1000, dtype=np.int32)
    handle = store.save(data)
    read_before = store.io.bytes_read
    mapped = store.open_mmap(handle)
    assert isinstance(mapped, np.memmap)
    assert np.array_equal(mapped, data)
    assert not mapped.flags.writeable
    # The map is accounted as one read of the part's bytes.
    assert store.io.bytes_read == read_before + handle.nbytes


def test_open_mmap_length_mismatch(tmp_path):
    store = PartStore(str(tmp_path))
    handle = store.save(np.arange(10, dtype=np.int32))
    bad = type(handle)(
        path=handle.path,
        length=handle.length + 5,
        nbytes=handle.nbytes,
        checksum=handle.checksum,
    )
    with pytest.raises(CorruptPartError):
        store.open_mmap(bad)


def test_torn_part_fails_fast_at_mmap(tmp_path):
    plan = FaultPlan(
        [FaultSpec(op="load", kind="torn", at=1)], sleep=lambda _t: None
    )
    store = FaultyPartStore(str(tmp_path), plan=plan, retry=_no_sleep_retry())
    handle = store.save(np.arange(500, dtype=np.int32))
    with pytest.raises(CorruptPartError):
        store.open_mmap(handle)


def test_byte_flip_silent_at_mmap_caught_by_verify(tmp_path):
    store = PartStore(str(tmp_path))
    data = np.arange(256, dtype=np.int32)
    handle = store.save(data)
    store.verify(handle)  # intact: no complaint
    _corrupt_file(handle.path, torn=False)
    # A flipped payload byte still maps (zero-copy reads skip the CRC)...
    mapped = store.open_mmap(handle)
    assert mapped.shape[0] == handle.length
    # ...but the explicit integrity pass catches it.
    with pytest.raises(CorruptPartError):
        store.verify(handle)
    # And the CRC-checked load path still refuses it too.
    with pytest.raises(CorruptPartError):
        store.load(handle)


def test_spilled_level_verify_sweeps_all_parts(tmp_path):
    store = PartStore(str(tmp_path))
    handles = [store.save(np.arange(8, dtype=np.int32)) for _ in range(3)]
    level = SpilledLevel(store, handles, None)
    level.verify()  # intact
    _corrupt_file(handles[1].path, torn=False)
    with pytest.raises(CorruptPartError):
        level.verify()


# ----------------------------------------------------------------------
# Mmap-backed block decode
# ----------------------------------------------------------------------
def test_spilled_level_block_decode_matches_walk(paper_graph, tmp_path):
    cse = CSE(np.arange(paper_graph.num_vertices))
    expand_vertex_level(paper_graph, cse)
    expand_vertex_level(paper_graph, cse)
    store = PartStore(str(tmp_path))
    top = cse.pop_level()
    expected = [(pos, emb) for pos, emb in _walk(cse, top)]
    cse.append_level(spill_level(top, store, part_entries=3))
    assert cse.block_decodable()
    block = cse.decode_block(0, cse.size())
    for pos, emb in expected:
        assert tuple(int(v) for v in block[pos]) == emb


def _walk(cse, top):
    cse.append_level(top)
    try:
        yield from cse.iter_embeddings()
    finally:
        cse.pop_level()


def test_spilled_level_non_mmap_falls_back(paper_graph, tmp_path):
    cse = CSE(np.arange(paper_graph.num_vertices))
    expand_vertex_level(paper_graph, cse)
    store = PartStore(str(tmp_path))
    top = cse.pop_level()
    spilled = spill_level(top, store, part_entries=3)
    spilled.mmap = False
    cse.append_level(spilled)
    assert not cse.block_decodable()
    # vert_accessor degrades to a materialised array.
    assert np.array_equal(spilled.vert_accessor(), spilled.vert_array())


# ----------------------------------------------------------------------
# Checkpoint resume over mmap-served levels
# ----------------------------------------------------------------------
def test_resume_from_mmap_served_levels(paper_graph, tmp_path):
    checkpoint_dir = str(tmp_path / "ckpt")
    with tempfile.TemporaryDirectory() as spill_dir:
        engine = KaleidoEngine(
            paper_graph,
            workers=2,
            executor="processes",
            storage_mode="spill-last",
            spill_dir=spill_dir,
            checkpoint_dir=checkpoint_dir,
        )
        try:
            baseline = engine.run(MotifCounting(3))
        finally:
            engine.close()
    with tempfile.TemporaryDirectory() as spill_dir:
        engine = KaleidoEngine(
            paper_graph,
            workers=2,
            executor="processes",
            storage_mode="spill-last",
            spill_dir=spill_dir,
            checkpoint_dir=checkpoint_dir,
        )
        try:
            resumed = engine.run(MotifCounting(3), resume=True)
        finally:
            engine.close()
    assert resumed.pattern_map == baseline.pattern_map
    assert resumed.extra["resumed_from_level"] is not None
