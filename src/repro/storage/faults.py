"""Deterministic storage fault injection.

Out-of-core mining is only as robust as its worst I/O day, so the fault
layer makes bad days reproducible: a :class:`FaultPlan` is a seeded
schedule of faults over the store's raw operations, and a
:class:`FaultyPartStore` is a :class:`~repro.storage.spill.PartStore`
whose byte-level hooks consult the plan before (or after) touching disk.
Because the hooks sit *underneath* the store's retry and integrity
machinery, the injected faults exercise exactly the production paths:

* ``transient``  — raise ``OSError(EIO)``; the retry policy should absorb
  it (each retry consumes one more planned fault, so ``repeat`` controls
  how many attempts fail before one succeeds).
* ``permanent``  — raise ``OSError(EACCES)``; never retried, surfaces as
  :class:`~repro.errors.StorageError`.
* ``full``       — raise ``OSError(ENOSPC)``; surfaces as
  :class:`~repro.errors.DiskFullError`, the engine's degradation trigger.
* ``torn``       — let the write land, then truncate the file (simulated
  media corruption; the CRC check turns it into
  :class:`~repro.errors.CorruptPartError` at load).
* ``corrupt``    — let the operation land, then flip a payload byte
  (same detection path as ``torn``).
* ``slow``       — call the plan's ``sleep`` with ``delay_seconds`` and
  then proceed normally (injectable, so tests never really wait).

Faults trigger either at an exact 1-based per-op call count (``at=``) or
with a seeded pseudo-random ``probability`` — either way the schedule is
a pure function of the plan's construction and the call sequence.
"""

from __future__ import annotations

import errno
import os
import random
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from .retry import RetryPolicy
from .spill import PartStore

__all__ = ["FaultSpec", "FaultPlan", "FaultyPartStore"]

_KINDS = frozenset({"transient", "permanent", "full", "torn", "corrupt", "slow"})
_OPS = frozenset({"save", "load", "delete"})


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: which operation, what kind, and when.

    ``at`` fires on the Nth call of ``op`` (1-based) and then for the
    following ``repeat - 1`` calls; with ``at=None`` every call fires
    independently with ``probability`` under the plan's seeded RNG.
    """

    op: str
    kind: str
    at: int | None = None
    probability: float = 0.0
    repeat: int = 1
    delay_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"op must be one of {sorted(_OPS)}, got {self.op!r}")
        if self.kind not in _KINDS:
            raise ValueError(
                f"kind must be one of {sorted(_KINDS)}, got {self.kind!r}"
            )
        if self.at is not None and self.at < 1:
            raise ValueError("at is 1-based; must be >= 1")
        if self.repeat < 1:
            raise ValueError("repeat must be >= 1")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")


class FaultPlan:
    """A deterministic, seeded fault schedule over store operations."""

    def __init__(
        self,
        specs: Sequence[FaultSpec] = (),
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.specs = list(specs)
        self.sleep = sleep
        self._rng = random.Random(seed)
        self._counts = {op: 0 for op in _OPS}
        #: Every fault actually fired, as (op, kind, call_number).
        self.fired: list[tuple[str, str, int]] = []

    def draw(self, op: str) -> FaultSpec | None:
        """Advance the ``op`` counter and return the fault to inject, if any."""
        self._counts[op] += 1
        count = self._counts[op]
        for spec in self.specs:
            if spec.op != op:
                continue
            if spec.at is not None:
                hit = spec.at <= count < spec.at + spec.repeat
            else:
                hit = spec.probability > 0 and self._rng.random() < spec.probability
            if hit:
                self.fired.append((op, spec.kind, count))
                return spec
        return None

    def calls(self, op: str) -> int:
        """How many times ``op`` has been attempted so far."""
        return self._counts[op]


def _corrupt_file(path: str, torn: bool) -> None:
    """Damage a file in place: truncate it (torn) or flip one byte."""
    size = os.path.getsize(path)
    if torn:
        with open(path, "r+b") as handle:
            handle.truncate(max(0, size // 2))
        return
    with open(path, "r+b") as handle:
        handle.seek(max(0, size - 1))
        byte = handle.read(1)
        handle.seek(max(0, size - 1))
        handle.write(bytes([byte[0] ^ 0xFF]) if byte else b"\xff")


class FaultyPartStore(PartStore):
    """A :class:`PartStore` that misbehaves according to a fault plan.

    Faults are injected in the raw ``_write_payload`` / ``_read_payload``
    / ``_remove_file`` hooks, underneath the retry loop and the checksum
    verification, so the store's recovery machinery is what gets tested.
    """

    def __init__(
        self,
        directory: str | None = None,
        plan: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        super().__init__(directory, retry=retry)
        self.plan = plan if plan is not None else FaultPlan()

    # ------------------------------------------------------------------
    def _raise_for(self, fault: FaultSpec, path: str) -> None:
        if fault.kind == "transient":
            raise OSError(errno.EIO, "injected transient I/O fault", path)
        if fault.kind == "permanent":
            raise OSError(errno.EACCES, "injected permanent I/O fault", path)
        if fault.kind == "full":
            raise OSError(errno.ENOSPC, "injected disk-full fault", path)
        raise AssertionError(f"not a raising fault: {fault.kind}")

    def _write_payload(self, path: str, payload: bytes) -> None:
        fault = self.plan.draw("save")
        if fault is None:
            super()._write_payload(path, payload)
            return
        if fault.kind in ("transient", "permanent", "full"):
            self._raise_for(fault, path)
        if fault.kind == "slow":
            self.plan.sleep(fault.delay_seconds)
            super()._write_payload(path, payload)
            return
        # torn / corrupt: the write "succeeds" but the bytes on disk rot.
        super()._write_payload(path, payload)
        _corrupt_file(path, torn=(fault.kind == "torn"))

    def _read_payload(self, path: str) -> bytes:
        fault = self.plan.draw("load")
        if fault is None:
            return super()._read_payload(path)
        if fault.kind in ("transient", "permanent", "full"):
            self._raise_for(fault, path)
        if fault.kind == "slow":
            self.plan.sleep(fault.delay_seconds)
            return super()._read_payload(path)
        # torn / corrupt on load: damage the on-disk file, then read it.
        _corrupt_file(path, torn=(fault.kind == "torn"))
        return super()._read_payload(path)

    def _mmap_payload(self, path: str):
        # Maps share the "load" schedule: one op class for all part reads.
        fault = self.plan.draw("load")
        if fault is None:
            return super()._mmap_payload(path)
        if fault.kind in ("transient", "permanent", "full"):
            self._raise_for(fault, path)
        if fault.kind == "slow":
            self.plan.sleep(fault.delay_seconds)
            return super()._mmap_payload(path)
        # torn / corrupt on map: damage the on-disk file, then map it.
        _corrupt_file(path, torn=(fault.kind == "torn"))
        return super()._mmap_payload(path)

    def _remove_file(self, path: str) -> None:
        fault = self.plan.draw("delete")
        if fault is None:
            super()._remove_file(path)
            return
        if fault.kind in ("transient", "permanent", "full"):
            self._raise_for(fault, path)
        if fault.kind == "slow":
            self.plan.sleep(fault.delay_seconds)
        super()._remove_file(path)
