"""Pattern structure: label array + upper-triangle adjacency bitmap.

Figure 5 of the paper: a k-vertex pattern is stored as a label array of
length ``k`` plus the upper triangle of its adjacency matrix packed into a
bitmap of ``k(k-1)/2`` bits.  We pack the bitmap into a single Python
integer (bit ``t`` set means the t-th upper-triangle cell, row-major, holds
an edge).

One pattern can be represented by many (automorphic) structures; identity
of the *pattern* is decided by the EigenHash fingerprint
(:mod:`repro.core.eigenhash`) or, exactly, by
:func:`repro.core.isomorphism.canonical_key`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..errors import EmbeddingSizeError
from ..graph.graph import Graph

__all__ = ["Pattern", "triangle_index", "MAX_EIGENHASH_VERTICES"]

#: Largest embedding size for which the EigenHash fingerprint is proven
#: collision-free (Corollary 1: same degrees + same spectrum + < 9 vertices).
MAX_EIGENHASH_VERTICES = 8


def triangle_index(i: int, j: int, k: int) -> int:
    """Bit position of upper-triangle cell ``(i, j)``, ``i < j``, in a
    ``k``-vertex pattern bitmap (row-major over the gray area of Fig. 5b)."""
    if not 0 <= i < j < k:
        raise ValueError(f"need 0 <= i < j < k, got i={i}, j={j}, k={k}")
    # Cells before row i: sum_{r<i} (k-1-r); then offset within row i.
    return i * (k - 1) - (i * (i - 1)) // 2 + (j - i - 1)


@dataclass(frozen=True)
class Pattern:
    """An immutable k-vertex pattern (template graph).

    Attributes
    ----------
    labels:
        Vertex labels in structure order.
    bits:
        Upper-triangle adjacency bitmap as an arbitrary-precision int.
    edge_labels:
        Optional labels of the *present* edges, one per set bit of
        ``bits`` in ascending cell order (Definition 1's L(u, v)); ``None``
        for the common vertex-labeled-only case.
    """

    labels: tuple[int, ...]
    bits: int
    edge_labels: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.edge_labels is not None and len(self.edge_labels) != self.bits.bit_count():
            raise ValueError(
                f"{len(self.edge_labels)} edge labels for "
                f"{self.bits.bit_count()} edges"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_vertex_embedding(
        cls, graph: Graph, vertices: Sequence[int], use_labels: bool = True
    ) -> "Pattern":
        """Pattern of a vertex-induced embedding: *all* edges among
        ``vertices`` present in ``graph`` are part of the pattern.

        ``use_labels=False`` zeroes the labels — motif counting treats the
        input graph as unlabeled (Section 6.2)."""
        verts = [int(v) for v in vertices]
        k = len(verts)
        if use_labels:
            labels = tuple(graph.label(v) for v in verts)
        else:
            labels = (0,) * k
        bits = 0
        edge_labels: list[int] = []
        for i in range(k):
            for j in range(i + 1, k):
                if graph.has_edge(verts[i], verts[j]):
                    bits |= 1 << triangle_index(i, j, k)
                    if graph.has_edge_labels:
                        edge_labels.append(graph.edge_label(verts[i], verts[j]))
        return cls(labels, bits, tuple(edge_labels) if graph.has_edge_labels else None)

    @classmethod
    def from_edge_embedding(
        cls, graph: Graph, edges: Iterable[tuple[int, int]]
    ) -> "Pattern":
        """Pattern of an edge-induced embedding: exactly the given edges.

        Vertices are numbered in first-appearance order over the edge list,
        so two embeddings with the same edge sequence produce the same
        structure.
        """
        order: dict[int, int] = {}
        pairs: list[tuple[int, int]] = []
        for u, v in edges:
            u, v = int(u), int(v)
            for w in (u, v):
                if w not in order:
                    order[w] = len(order)
            pairs.append((order[u], order[v]))
        k = len(order)
        inv = [0] * k
        for vert, idx in order.items():
            inv[idx] = vert
        labels = tuple(graph.label(v) for v in inv)
        bits = 0
        for a, b in pairs:
            i, j = (a, b) if a < b else (b, a)
            bits |= 1 << triangle_index(i, j, k)
        if not graph.has_edge_labels:
            return cls(labels, bits)
        # Edge labels in ascending cell order of the structure.
        edge_labels = []
        for i in range(k):
            for j in range(i + 1, k):
                if bits >> triangle_index(i, j, k) & 1:
                    edge_labels.append(graph.edge_label(inv[i], inv[j]))
        return cls(labels, bits, tuple(edge_labels))

    @classmethod
    def from_adjacency(
        cls, labels: Sequence[int], matrix: Sequence[Sequence[int]] | np.ndarray
    ) -> "Pattern":
        """Build from an explicit (symmetric 0/1) adjacency matrix."""
        k = len(labels)
        bits = 0
        for i in range(k):
            for j in range(i + 1, k):
                if matrix[i][j]:
                    bits |= 1 << triangle_index(i, j, k)
        return cls(tuple(int(x) for x in labels), bits)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.labels)

    def has_edge(self, i: int, j: int) -> bool:
        """Whether structure positions ``i`` and ``j`` are adjacent."""
        if i == j:
            return False
        if i > j:
            i, j = j, i
        return bool(self.bits >> triangle_index(i, j, self.num_vertices) & 1)

    @property
    def num_edges(self) -> int:
        return self.bits.bit_count()

    def degree_sequence(self) -> tuple[int, ...]:
        """Degree of each position within the pattern, in structure order."""
        k = self.num_vertices
        degrees = [0] * k
        for i in range(k):
            for j in range(i + 1, k):
                if self.bits >> triangle_index(i, j, k) & 1:
                    degrees[i] += 1
                    degrees[j] += 1
        return tuple(degrees)

    def adjacency_matrix(self) -> np.ndarray:
        """Dense symmetric 0/1 adjacency matrix (``int64``)."""
        k = self.num_vertices
        mat = np.zeros((k, k), dtype=np.int64)
        for i in range(k):
            for j in range(i + 1, k):
                if self.bits >> triangle_index(i, j, k) & 1:
                    mat[i, j] = mat[j, i] = 1
        return mat

    def is_connected(self) -> bool:
        """Whether the pattern is a connected graph."""
        k = self.num_vertices
        if k == 0:
            return True
        seen = {0}
        frontier = [0]
        while frontier:
            i = frontier.pop()
            for j in range(k):
                if j not in seen and self.has_edge(i, j):
                    seen.add(j)
                    frontier.append(j)
        return len(seen) == k

    def edge_label_at(self, i: int, j: int) -> int:
        """Label of the edge between positions ``i`` and ``j`` (0 when the
        pattern is edge-unlabeled); ``KeyError`` if no edge is there."""
        if not self.has_edge(i, j):
            raise KeyError(f"no edge between positions {i} and {j}")
        if self.edge_labels is None:
            return 0
        if i > j:
            i, j = j, i
        cell = triangle_index(i, j, self.num_vertices)
        # Rank of this cell among the set bits below it.
        rank = (self.bits & ((1 << cell) - 1)).bit_count()
        return self.edge_labels[rank]

    def permute(self, perm: Sequence[int]) -> "Pattern":
        """Apply a vertex permutation: position ``t`` of the result is
        position ``perm[t]`` of this pattern."""
        k = self.num_vertices
        if sorted(perm) != list(range(k)):
            raise ValueError(f"{perm!r} is not a permutation of 0..{k - 1}")
        labels = tuple(self.labels[p] for p in perm)
        bits = 0
        new_edge_labels: list[int] | None = [] if self.edge_labels is not None else None
        for i in range(k):
            for j in range(i + 1, k):
                if self.has_edge(perm[i], perm[j]):
                    bits |= 1 << triangle_index(i, j, k)
                    if new_edge_labels is not None:
                        new_edge_labels.append(self.edge_label_at(perm[i], perm[j]))
        return Pattern(
            labels,
            bits,
            None if new_edge_labels is None else tuple(new_edge_labels),
        )

    def sorted_by_label_degree(self) -> tuple["Pattern", tuple[int, ...]]:
        """Algorithm-1 normalisation: stable sort of positions by
        ``(label, degree)`` ascending (lines 29-33 of the paper).

        Returns the permuted pattern and the permutation used, where
        ``perm[t]`` is the original position now at position ``t`` — the
        FSM MNI counter needs the permutation to map embedding vertices to
        normalised pattern positions.
        """
        degrees = self.degree_sequence()
        perm = tuple(
            sorted(range(self.num_vertices), key=lambda i: (self.labels[i], degrees[i]))
        )
        return self.permute(perm), perm

    @property
    def storage_bits(self) -> int:
        """Size in bits of the Fig.-5 representation (labels excluded)."""
        k = self.num_vertices
        return k * (k - 1) // 2

    @property
    def nbytes(self) -> int:
        """Approximate bytes of the compact representation: one byte per
        label plus the bitmap rounded up to whole bytes (Fig. 5c)."""
        return self.num_vertices + (self.storage_bits + 7) // 8

    def check_eigenhash_size(self) -> None:
        """Raise if this pattern is too large for the EigenHash guarantee."""
        if self.num_vertices > MAX_EIGENHASH_VERTICES:
            raise EmbeddingSizeError(
                f"EigenHash is only collision-free below 9 vertices; "
                f"pattern has {self.num_vertices}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Pattern(labels={self.labels}, bits={self.bits:#x})"
