"""The JSON line protocol: stream handling, error shaping, TCP server."""

import io
import json

import pytest

from repro.service import MiningService, QueryRequest
from repro.service.protocol import (
    ServiceServer,
    handle_payload,
    parse_request,
    request_over_socket,
    serve_stream,
)


@pytest.fixture
def service():
    svc = MiningService(pool_workers=1)
    yield svc
    svc.close()


def run_lines(service, payloads):
    lines = [json.dumps(p) if isinstance(p, dict) else p for p in payloads]
    out = io.StringIO()
    served = serve_stream(service, iter(line + "\n" for line in lines), out)
    responses = [json.loads(line) for line in out.getvalue().splitlines()]
    return served, responses


def test_parse_request_full_payload():
    request = parse_request(
        {
            "app": "motif",
            "k": 4,
            "dataset": "citeseer",
            "profile": "tiny",
            "tenant": "alice",
            "mode": "approximate",
            "params": {"seed": 7},
            "budget": {"max_embeddings": 10, "samples": 50},
        }
    )
    assert isinstance(request, QueryRequest)
    assert request.k == 4 and request.tenant == "alice"
    assert request.budget is not None and request.budget.samples == 50


def test_parse_request_requires_app():
    with pytest.raises(ValueError, match="'app'"):
        parse_request({"dataset": "citeseer"})


def test_query_round_trip_over_stream(service, paper_graph):
    # seed the service in process, then hit the cache over the wire
    service.query(QueryRequest(app="tc", graph=paper_graph))
    served, responses = run_lines(
        service,
        [
            {"id": 1, "op": "ping"},
            {"id": 2, "app": "tc", "dataset": "citeseer", "profile": "tiny"},
            {"id": 3, "app": "tc", "dataset": "citeseer", "profile": "tiny"},
        ],
    )
    assert served == 3
    ping, first, second = responses
    assert ping == {"id": 1, "op": "ping", "status": "ok"}
    assert first["status"] == "ok" and first["cache"] == "miss"
    assert second["cache"] == "hit" and second["route"] == "GREEN"
    assert second["patterns"] == first["patterns"]


def test_bad_json_yields_error_line_not_a_crash(service):
    served, responses = run_lines(service, ["{not json", '{"op": "ping"}'])
    assert served == 2
    assert responses[0]["status"] == "error"
    assert responses[1]["status"] == "ok"


def test_unknown_app_is_a_typed_error_response(service):
    _, responses = run_lines(
        service, [{"id": 9, "app": "pagerank", "dataset": "citeseer"}]
    )
    assert responses[0]["status"] == "error"
    assert responses[0]["error"] == "ValueError"
    assert responses[0]["id"] == 9


def test_quota_op_and_rejection_shape(service):
    _, responses = run_lines(
        service,
        [
            {"op": "quota", "tenant": "limited", "max_concurrent": 1},
        ],
    )
    assert responses[0]["status"] == "ok"
    service.tenants.admit("limited")
    response = handle_payload(
        service,
        {"app": "tc", "dataset": "citeseer", "profile": "tiny", "tenant": "limited"},
    )
    service.tenants.release("limited")
    assert response["status"] == "error"
    assert response["error"] == "QuotaExceededError"


def test_invalidate_op(service):
    payload = {"app": "tc", "dataset": "citeseer", "profile": "tiny"}
    handle_payload(service, payload)
    response = handle_payload(service, {**payload, "op": "invalidate"})
    assert response == {"status": "ok", "op": "invalidate", "dropped": 1}


def test_shutdown_stops_the_stream(service):
    served, responses = run_lines(
        service, [{"op": "shutdown"}, {"op": "ping"}]
    )
    assert served == 1
    assert responses[0]["op"] == "shutdown"


def test_stats_op_reports_metrics(service):
    _, responses = run_lines(service, [{"op": "stats"}])
    assert responses[0]["status"] == "ok"
    assert "service.requests" in responses[0]["stats"]["metrics"]


def test_tcp_server_round_trip(service):
    server = ServiceServer(service, "127.0.0.1", 0)
    thread = server.serve_background()
    host, port = server.address
    try:
        ping = request_over_socket(host, port, {"op": "ping"})
        assert ping["status"] == "ok"
        mined = request_over_socket(
            host, port, {"app": "tc", "dataset": "citeseer", "profile": "tiny"}
        )
        assert mined["status"] == "ok" and mined["route"] in ("RED", "GREEN")
    finally:
        server.stop()
        thread.join(timeout=10)
