"""Unit tests for counters, gauges, histograms and the registry."""

import threading

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_inc_and_snapshot():
    counter = Counter()
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    assert counter.snapshot() == {"type": "counter", "value": 5}


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter().inc(-1)


def test_counter_merge_adds():
    a, b = Counter(), Counter()
    a.inc(2)
    b.inc(3)
    a.merge(b)
    assert a.value == 5
    assert b.value == 3  # merge does not mutate the source


def test_gauge_tracks_peak():
    gauge = Gauge()
    gauge.set(10)
    gauge.set(3)
    gauge.add(2)
    assert gauge.value == 5
    assert gauge.peak == 10
    assert gauge.snapshot() == {"type": "gauge", "value": 5, "peak": 10}


def test_gauge_merge_keeps_maxima():
    a, b = Gauge(), Gauge()
    a.set(8)
    a.set(2)
    b.set(5)
    a.merge(b)
    assert a.value == 5
    assert a.peak == 8


def test_histogram_summary():
    hist = Histogram()
    for value in (1.0, 3.0, 2.0):
        hist.observe(value)
    assert hist.count == 3
    assert hist.total == pytest.approx(6.0)
    assert hist.mean == pytest.approx(2.0)
    assert hist.min == 1.0 and hist.max == 3.0
    assert Histogram().mean == 0.0


def test_histogram_merge():
    a, b = Histogram(), Histogram()
    a.observe(1.0)
    b.observe(5.0)
    b.observe(3.0)
    a.merge(b)
    assert a.count == 3
    assert a.min == 1.0 and a.max == 5.0
    empty = Histogram()
    empty.merge(a)  # None min/max handled on both sides
    assert empty.count == 3 and empty.min == 1.0
    a.merge(Histogram())
    assert a.count == 3


def test_registry_get_or_create_and_kind_conflict():
    registry = MetricsRegistry()
    counter = registry.counter("io.retries")
    assert registry.counter("io.retries") is counter
    with pytest.raises(ValueError, match="counter"):
        registry.gauge("io.retries")
    registry.gauge("queue.depth")
    registry.histogram("io.write_seconds")
    assert registry.names() == ["io.retries", "io.write_seconds", "queue.depth"]
    assert len(registry) == 3


def test_registry_snapshot_sorted_and_json_shaped():
    registry = MetricsRegistry()
    registry.counter("b").inc(2)
    registry.gauge("a").set(7)
    snap = registry.snapshot()
    assert list(snap) == ["a", "b"]
    assert snap["b"]["value"] == 2


def test_registry_merge_creates_and_folds():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("hits").inc(1)
    b.counter("hits").inc(2)
    b.gauge("depth").set(9)
    a.merge(b)
    assert a.counter("hits").value == 3
    assert a.gauge("depth").value == 9


def test_registry_merge_kind_conflict_raises():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("x")
    b.gauge("x")
    with pytest.raises(ValueError):
        a.merge(b)


def test_counter_thread_safety():
    counter = Counter()

    def bump():
        for _ in range(1000):
            counter.inc()

    threads = [threading.Thread(target=bump) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert counter.value == 8000
