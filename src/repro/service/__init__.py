"""Mining-as-a-service: the multi-tenant query tier.

A long-running :class:`MiningService` multiplexes concurrent
:class:`QueryRequest`s over one shared executor pool and one shared
pattern-hash cache, with per-tenant admission control
(:class:`TenantQuota`), a content-keyed :class:`ResultCache` and
GREEN / YELLOW / RED complexity routing: cache hits are served
instantly, interactive queries ride the sampling estimator, and only
genuinely heavy queries get a full out-of-core engine run on a warm
session.  :mod:`repro.service.protocol` speaks line-delimited JSON for
the ``repro serve`` / ``repro query`` CLI front end.
"""

from .cache import CachedAnswer, CacheKey, ResultCache
from .protocol import ServiceServer, handle_payload, parse_request, serve_stream
from .request import (
    APP_NAMES,
    APPROXIMABLE_APPS,
    QueryBudget,
    QueryRequest,
    QueryResult,
    Route,
    build_app,
)
from .router import ComplexityRouter, RouteDecision, estimate_embeddings
from .service import MiningService
from .sessions import EngineSession, SessionPool
from .tenants import TenantQuota, TenantRegistry

__all__ = [
    "APP_NAMES",
    "APPROXIMABLE_APPS",
    "CacheKey",
    "CachedAnswer",
    "ComplexityRouter",
    "EngineSession",
    "MiningService",
    "QueryBudget",
    "QueryRequest",
    "QueryResult",
    "ResultCache",
    "Route",
    "RouteDecision",
    "ServiceServer",
    "SessionPool",
    "TenantQuota",
    "TenantRegistry",
    "build_app",
    "estimate_embeddings",
    "handle_payload",
    "parse_request",
    "serve_stream",
]
