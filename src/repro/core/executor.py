"""Pluggable part executors — stage 2 of the plan → execute → aggregate
pipeline.

The planner (:mod:`repro.core.plan`) cuts a level into contiguous parts;
an executor runs one task per part and hands the per-part results back in
*part order*, whatever order they finished in.  Four executors ship:

* :class:`SerialExecutor` — runs parts one after another on the calling
  thread and reports the real one-worker timeline.
* :class:`ThreadedExecutor` — a :class:`concurrent.futures.ThreadPoolExecutor`
  backed executor.  Parts run concurrently (numpy candidate kernels and the
  spill I/O release the GIL); completed parts are delivered to the caller's
  ``on_result`` callback from the coordinating thread as they finish, so
  sinks never need locks, and the reported schedule carries the measured
  wall-clock intervals.
* :class:`ProcessExecutor` — a spawn-based
  :class:`concurrent.futures.ProcessPoolExecutor` for the GIL-free hot
  path.  The graph's kernel context is shipped to each worker *once*
  through the pool initializer; each task's pickle then carries only its
  embedding block, and results come back as pickled
  :class:`~repro.core.explore.PartExpansion` objects.  Tasks that carry no
  shared context (aggregation closures, scalar-fallback parts over
  unpicklable graph objects) run inline on the coordinating thread.
* :class:`SimulatedSchedule` — wraps another executor (serial by default)
  and replays its measured part durations through the deterministic
  work-stealing model (:func:`repro.balance.simulate_work_stealing`).
  This is the engine default and preserves the modelled-parallelism
  behaviour every Fig. 14/17/18 benchmark is built on.

Tasks must be pure functions of their part (no shared mutable state) so an
executor may run them in any order; result merging is deterministic because
it always happens in part-index order.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent import futures as _futures
from dataclasses import dataclass, field
from itertools import chain
from typing import Any, Callable, Iterable

from ..balance.worksteal import Schedule, TaskInterval, simulate_work_stealing
from ..obs.trace import Tracer
from . import kernels, shm

__all__ = [
    "ExecutionReport",
    "PartExecutor",
    "SerialExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "SimulatedSchedule",
    "emit_part_spans",
    "resolve_executor",
    "EXECUTOR_CHOICES",
]

#: Called with ``(part_index, result)`` as each part completes — possibly
#: out of part order for concurrent executors, but always from the
#: coordinating thread.
ResultCallback = Callable[[int, Any], None]


@dataclass
class ExecutionReport:
    """What one executor run produced.

    ``results`` and ``durations`` are indexed by *task order* (part index),
    regardless of the order parts completed in.
    """

    results: list[Any] = field(default_factory=list)
    durations: list[float] = field(default_factory=list)
    schedule: Schedule = field(default_factory=lambda: Schedule(num_workers=1))


def emit_part_spans(
    tracer: "Tracer | None",
    schedule: Schedule,
    phase: str,
    base: float,
) -> None:
    """Emit one ``part`` complete-span per schedule interval.

    Each interval becomes a span on its worker's track (``worker-N``),
    offset by ``base`` — the tracer time at which the executor run
    started — so the worker tracks line up with the engine's stack spans
    in the exported timeline.  For the work-stealing replay the interval
    times are *modelled*, which is exactly the Fig.-17/18 view the
    benchmarks plot; for the thread pool they are measured wall clock.
    """
    if tracer is None or not tracer.enabled:
        return
    for interval in schedule.intervals:
        tracer.complete(
            "part",
            start=base + interval.start,
            end=base + interval.end,
            track=f"worker-{interval.worker}",
            parent=phase,
            task=interval.task_index,
            worker=interval.worker,
        )


class PartExecutor:
    """Runs per-part tasks and reports results in deterministic part order.

    ``tracer``/``phase`` are the observability hooks: when a real tracer
    is passed, the executor emits one ``part`` span per schedule interval
    on a per-worker track (via :func:`emit_part_spans`) after the run.
    """

    name = "base"

    def run(
        self,
        tasks: Iterable[Callable[[], Any]],
        workers: int = 1,
        on_result: ResultCallback | None = None,
        tracer: "Tracer | None" = None,
        phase: str = "execute",
    ) -> ExecutionReport:  # pragma: no cover - protocol
        raise NotImplementedError

    def close(self) -> None:
        """Release executor-held resources (worker pools).  Idempotent."""


class SerialExecutor(PartExecutor):
    """Runs every part on the calling thread, in part order."""

    name = "serial"

    def run(
        self,
        tasks: Iterable[Callable[[], Any]],
        workers: int = 1,
        on_result: ResultCallback | None = None,
        tracer: "Tracer | None" = None,
        phase: str = "execute",
    ) -> ExecutionReport:
        base = tracer.now() if tracer is not None and tracer.enabled else 0.0
        report = ExecutionReport(schedule=Schedule(num_workers=1))
        clock = 0.0
        for index, task in enumerate(tasks):
            started = time.perf_counter()
            result = task()
            elapsed = time.perf_counter() - started
            report.results.append(result)
            report.durations.append(elapsed)
            report.schedule.intervals.append(
                TaskInterval(worker=0, start=clock, end=clock + elapsed, task_index=index)
            )
            clock += elapsed
            if on_result is not None:
                on_result(index, result)
        emit_part_spans(tracer, report.schedule, phase, base)
        return report


class SimulatedSchedule(PartExecutor):
    """Work-stealing replay over another executor's measured durations.

    The inner executor (serial by default) produces the part results; the
    reported schedule is the deterministic work-stealing replay of its part
    durations onto ``workers`` modelled workers — exactly the engine's
    pre-refactor behaviour, kept as the default so the simulated-parallel
    benchmarks (Fig. 14/17/18) are unchanged.
    """

    name = "simulated"

    def __init__(self, inner: PartExecutor | None = None) -> None:
        self.inner = inner if inner is not None else SerialExecutor()

    def run(
        self,
        tasks: Iterable[Callable[[], Any]],
        workers: int = 1,
        on_result: ResultCallback | None = None,
        tracer: "Tracer | None" = None,
        phase: str = "execute",
    ) -> ExecutionReport:
        # The inner executor runs untraced: the part spans that matter
        # are the replayed (modelled-parallel) intervals, emitted below.
        base = tracer.now() if tracer is not None and tracer.enabled else 0.0
        report = self.inner.run(tasks, workers=1, on_result=on_result)
        report.schedule = simulate_work_stealing(report.durations, workers)
        emit_part_spans(tracer, report.schedule, phase, base)
        return report


class ThreadedExecutor(PartExecutor):
    """Real thread-pool execution of parts.

    Parts are submitted as the task iterable yields them and may complete
    out of order; ``on_result`` fires from the coordinating thread on each
    completion, and the final report is re-ordered by part index.  The
    schedule holds the measured wall-clock intervals, with each pool thread
    mapped to a stable worker slot.

    The worker pool *persists across* ``run`` calls (matching
    :class:`ProcessExecutor`'s pool-reuse semantics): it is created
    lazily on the first run and only released by :meth:`close` — per-run
    pool spin-up is pure overhead once an executor serves many runs, as
    under the service tier's shared-pool model.  With ``max_workers``
    set the pool size is pinned (the shared-pool configuration: several
    engines may run concurrently over the one pool, and ``submit`` is
    thread-safe); without it the pool is sized to each run's ``workers``
    and transparently rebuilt when an *idle* executor is asked for a
    different size.  A failing run cancels only its own queued parts —
    the pool survives for concurrent and future runs.
    """

    name = "threads"

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers
        self._pool: _futures.ThreadPoolExecutor | None = None  # guarded-by: _pool_lock
        self._pool_size = 0  # guarded-by: _pool_lock
        self._active_runs = 0  # guarded-by: _pool_lock
        self._pool_lock = threading.Lock()

    @property
    def pool_size(self) -> int:
        """Current pool capacity (0 before first use / after close)."""
        return self._pool_size

    def _acquire_pool(self, pool_size: int) -> tuple[_futures.ThreadPoolExecutor, int]:
        """Get the persistent pool, (re)building it when allowed.

        A size mismatch only rebuilds when no other run is in flight and
        the size is not pinned; otherwise the existing pool is shared
        as-is (capacity is a resource bound, not a correctness knob).
        """
        with self._pool_lock:
            if self._pool is None:
                self._pool = _futures.ThreadPoolExecutor(
                    max_workers=pool_size, thread_name_prefix="kaleido-part"
                )
                self._pool_size = pool_size
            elif (
                self.max_workers is None
                and pool_size != self._pool_size
                and self._active_runs == 0
            ):
                self._pool.shutdown(wait=True)
                self._pool = _futures.ThreadPoolExecutor(
                    max_workers=pool_size, thread_name_prefix="kaleido-part"
                )
                self._pool_size = pool_size
            self._active_runs += 1
            return self._pool, self._pool_size

    def _release_pool(self) -> None:
        with self._pool_lock:
            self._active_runs -= 1

    def close(self) -> None:
        """Shut the persistent pool down (idempotent).

        Must not be called while a run is in flight; a later ``run``
        lazily builds a fresh pool, so a closed executor remains usable.
        """
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True, cancel_futures=True)
                self._pool = None
                self._pool_size = 0

    def run(
        self,
        tasks: Iterable[Callable[[], Any]],
        workers: int = 1,
        on_result: ResultCallback | None = None,
        tracer: "Tracer | None" = None,
        phase: str = "execute",
    ) -> ExecutionReport:
        requested = self.max_workers if self.max_workers is not None else max(1, workers)
        base = tracer.now() if tracer is not None and tracer.enabled else 0.0
        epoch = time.perf_counter()

        def timed(index: int, task: Callable[[], Any]):
            started = time.perf_counter()
            result = task()
            ended = time.perf_counter()
            return index, result, started - epoch, ended - epoch, threading.get_ident()

        pool, pool_size = self._acquire_pool(requested)

        # Bounded in-flight window: the task iterable decodes a part's
        # embeddings lazily as it is pulled, so submitting everything up
        # front would materialise the whole level (defeating the spilled
        # streaming bound).  Keep at most ~2x the pool in flight, pulling
        # the next task only as completions drain.
        window = 2 * pool_size
        task_iter = enumerate(tasks)
        records: dict[int, tuple[Any, float, float, int]] = {}

        def fill(pending: set) -> None:
            while len(pending) < window:
                try:
                    index, task = next(task_iter)
                except StopIteration:
                    return
                pending.add(pool.submit(timed, index, task))

        pending: set = set()
        try:
            fill(pending)
            while pending:
                done, pending = _futures.wait(
                    pending, return_when=_futures.FIRST_COMPLETED
                )
                for future in done:
                    index, result, started, ended, ident = future.result()
                    records[index] = (result, started, ended, ident)
                    if on_result is not None:
                        on_result(index, result)
                fill(pending)
        except BaseException:
            # Cancel only this run's queued parts; the shared pool and
            # any concurrent runs on it stay healthy.
            for future in pending:
                future.cancel()
            raise
        finally:
            self._release_pool()

        report = ExecutionReport(schedule=Schedule(num_workers=pool_size))
        slots: dict[int, int] = {}
        for index in range(len(records)):
            result, started, ended, ident = records[index]
            slot = slots.setdefault(ident, len(slots))
            report.results.append(result)
            report.durations.append(ended - started)
            report.schedule.intervals.append(
                TaskInterval(worker=slot, start=started, end=ended, task_index=index)
            )
        emit_part_spans(tracer, report.schedule, phase, base)
        return report


def _timed_process_task(index: int, task: Callable[[], Any]):
    """Worker-side wrapper: run one task and report monotonic timestamps.

    ``time.monotonic`` is CLOCK_MONOTONIC — system-wide, so the child's
    timestamps are directly comparable with the coordinator's epoch (a
    per-process clock like ``perf_counter`` would not be).
    """
    started = time.monotonic()
    result = task()
    ended = time.monotonic()
    return index, result, started, ended, os.getpid()


def _contexts_match(a: Any, b: Any) -> bool:
    """Whether two kernel contexts describe the same data.

    Keys on :func:`repro.core.shm.context_fingerprint` — a content hash
    memoized per array object — rather than ndarray identity, so a warm
    process pool survives a context rebuilt around equal arrays (two
    ``engine.run`` calls on one engine reuse one pool).  The common case
    (same cached graph arrays, hence memo hits) never re-reads contents.
    """
    if a is b:
        return True
    if a is None or b is None or type(a) is not type(b):
        return False
    return shm.context_fingerprint(a) == shm.context_fingerprint(b)


class ProcessExecutor(PartExecutor):
    """Real process-pool execution of block tasks (no GIL, own memory).

    Workers are spawned (fork-safety: the coordinator holds live threads
    and numpy state) and each attaches to the run's *shared context* — the
    kernel's graph-array bundle, read off the first task's
    ``shared_context`` attribute, exported once into a
    :class:`repro.core.shm.SharedKernelContext` segment — by name via the
    pool initializer (:func:`repro.core.kernels.install_worker_context`).
    Task pickles then carry only block *bounds* (the expansion driver
    shares the CSE level arrays the same way); results return as pickled
    :class:`~repro.core.explore.PartExpansion` objects.

    The pool persists across ``run`` calls (one spawn per engine run, not
    per level) and is rebuilt only when the context *contents* or the
    worker count change — :func:`_contexts_match` keys on content
    fingerprints, so per-level context rebuilds keep the warm pool.
    Tasks *without* a shared context — aggregation closures,
    scalar-fallback parts closing over unpicklable graph objects — run
    inline on the coordinating thread instead, so the executor is a
    drop-in for every engine stage.  Call :meth:`close` (the engine does)
    to reap the workers and unlink the shared segment — close is safe to
    call repeatedly and runs on mid-run failures too, so crash paths
    leak nothing.
    """

    name = "processes"

    #: The expansion driver checks this to share CSE levels by name
    #: instead of pickling decoded blocks into every task.
    zero_copy = True

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers
        self._pool: _futures.ProcessPoolExecutor | None = None
        self._pool_ctx: Any = None
        self._pool_size = 0
        self._shared_ctx: "shm.SharedKernelContext | None" = None
        #: Spawn count, observable by pool-reuse regression tests.
        self.pools_created = 0

    def _ensure_pool(self, ctx: Any, pool_size: int) -> _futures.ProcessPoolExecutor:
        if (
            self._pool is not None
            and self._pool_size == pool_size
            and _contexts_match(self._pool_ctx, ctx)
        ):
            return self._pool
        self.close()
        fingerprint = shm.context_fingerprint(ctx)
        initarg: Any = ctx
        try:
            self._shared_ctx = shm.SharedKernelContext(ctx, fingerprint=fingerprint)
            initarg = self._shared_ctx.handle
        except OSError:  # no shared memory on this platform: ship the pickle
            self._shared_ctx = None
        self._pool = _futures.ProcessPoolExecutor(
            max_workers=pool_size,
            mp_context=multiprocessing.get_context("spawn"),
            initializer=kernels.install_worker_context,
            initargs=(initarg,),
        )
        self.pools_created += 1
        self._pool_ctx = ctx
        self._pool_size = pool_size
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
            self._pool_ctx = None
            self._pool_size = 0
        if self._shared_ctx is not None:
            # After the workers are gone: unlink exactly once (idempotent).
            self._shared_ctx.close()
            self._shared_ctx = None

    def run(
        self,
        tasks: Iterable[Callable[[], Any]],
        workers: int = 1,
        on_result: ResultCallback | None = None,
        tracer: "Tracer | None" = None,
        phase: str = "execute",
    ) -> ExecutionReport:
        task_iter = iter(tasks)
        try:
            first = next(task_iter)
        except StopIteration:
            return ExecutionReport(schedule=Schedule(num_workers=1))
        ctx = getattr(first, "shared_context", None)
        if ctx is None:
            # Not a block task (aggregation / scalar fallback): these
            # close over unpicklable state, so run them in-process.
            return SerialExecutor().run(
                chain([first], task_iter),
                workers=workers,
                on_result=on_result,
                tracer=tracer,
                phase=phase,
            )

        pool_size = self.max_workers if self.max_workers is not None else max(1, workers)
        base = tracer.now() if tracer is not None and tracer.enabled else 0.0
        pool = self._ensure_pool(ctx, pool_size)
        epoch = time.monotonic()

        # Bounded in-flight window, as in ThreadedExecutor: blocks are
        # decoded lazily as tasks are pulled, so keep at most ~2x the
        # pool pickled/queued at once.
        window = 2 * pool_size
        indexed = enumerate(chain([first], task_iter))
        records: dict[int, tuple[Any, float, float, int]] = {}

        def fill(pending: set) -> None:
            while len(pending) < window:
                try:
                    index, task = next(indexed)
                except StopIteration:
                    return
                pending.add(pool.submit(_timed_process_task, index, task))

        pending: set = set()
        try:
            fill(pending)
            while pending:
                done, pending = _futures.wait(
                    pending, return_when=_futures.FIRST_COMPLETED
                )
                for future in done:
                    index, result, started, ended, pid = future.result()
                    records[index] = (result, started - epoch, ended - epoch, pid)
                    if on_result is not None:
                        on_result(index, result)
                fill(pending)
        except BaseException:
            # A worker crash (BrokenProcessPool) poisons the pool; drop
            # it so a later run can rebuild cleanly.
            self.close()
            raise

        report = ExecutionReport(schedule=Schedule(num_workers=pool_size))
        slots: dict[int, int] = {}
        for index in range(len(records)):
            result, started, ended, pid = records[index]
            slot = slots.setdefault(pid, len(slots))
            report.results.append(result)
            report.durations.append(ended - started)
            report.schedule.intervals.append(
                TaskInterval(worker=slot, start=started, end=ended, task_index=index)
            )
        emit_part_spans(tracer, report.schedule, phase, base)
        return report


#: Executor specs accepted by the engine and the CLI's ``--executor`` flag.
EXECUTOR_CHOICES = ("serial", "threads", "processes")


def resolve_executor(spec: "str | PartExecutor") -> PartExecutor:
    """Turn an executor spec (name or instance) into a :class:`PartExecutor`.

    ``"serial"`` is the default: serial execution with the work-stealing
    replay (:class:`SimulatedSchedule` around :class:`SerialExecutor`).
    ``"threads"`` runs parts on a real thread pool sized to the engine's
    worker count; ``"processes"`` on a real spawn-based process pool
    (block tasks only — other stages run inline).
    """
    if isinstance(spec, PartExecutor):
        return spec
    if spec == "serial":
        return SimulatedSchedule(SerialExecutor())
    if spec == "threads":
        return ThreadedExecutor()
    if spec == "processes":
        return ProcessExecutor()
    raise ValueError(
        f"unknown executor {spec!r} (choose from {', '.join(EXECUTOR_CHOICES)})"
    )
