"""The memoised and per-embedding hashing regimes agree everywhere."""

from repro import FrequentSubgraphMining, KaleidoEngine, MotifCounting
from repro.baselines import BlissLikeHasher
from repro.core import PatternHasher
from tests.conftest import random_labeled_graph


def test_motif_modes_agree(paper_graph):
    memo = KaleidoEngine(paper_graph).run(MotifCounting(4))
    per = KaleidoEngine(paper_graph).run(MotifCounting(4, hash_every_embedding=True))
    assert dict(memo.value) == dict(per.value)


def test_fsm_modes_agree():
    graph = random_labeled_graph(14, 30, 2, seed=303)
    memo = KaleidoEngine(graph).run(FrequentSubgraphMining(2, 3, exact_mni=True))
    per = KaleidoEngine(graph).run(
        FrequentSubgraphMining(2, 3, exact_mni=True, hash_every_embedding=True)
    )
    assert dict(memo.value) == dict(per.value)


def test_pattern_hasher_cache_off_still_correct(paper_graph):
    cached = KaleidoEngine(paper_graph, hasher=PatternHasher(cache=True)).run(
        MotifCounting(3)
    )
    uncached = KaleidoEngine(paper_graph, hasher=PatternHasher(cache=False)).run(
        MotifCounting(3)
    )
    assert dict(cached.value) == dict(uncached.value)


def test_cache_off_counts_every_miss(paper_graph):
    hasher = PatternHasher(cache=False)
    engine = KaleidoEngine(paper_graph, hasher=hasher)
    engine.run(MotifCounting(3, hash_every_embedding=True))
    # 8 3-embeddings hashed individually, zero hits.
    assert hasher.misses == 8
    assert hasher.hits == 0


def test_bliss_cache_off_counts(paper_graph):
    hasher = BlissLikeHasher(cache=False)
    engine = KaleidoEngine(paper_graph, hasher=hasher)
    engine.run(MotifCounting(3, hash_every_embedding=True))
    assert hasher.misses == 8
    assert hasher.total_allocations > 0


def test_fsm_insertion_counters():
    graph = random_labeled_graph(14, 30, 2, seed=404)
    app = FrequentSubgraphMining(2, 3)
    KaleidoEngine(graph).run(app)
    assert app.total_mapped > 0
    assert app.total_insertions > 0
    # Exact mode inserts at least as much as the short-circuit mode.
    exact = FrequentSubgraphMining(2, 3, exact_mni=True)
    KaleidoEngine(graph).run(exact)
    assert exact.total_insertions >= app.total_insertions
