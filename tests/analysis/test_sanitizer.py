"""The part-purity sanitizer: rejects raced apps, leaves pure apps alone."""

import pytest

from repro.analysis import PartPuritySanitizer
from repro.apps import FrequentSubgraphMining, MotifCounting, TriangleCounting
from repro.core.api import MiningApplication
from repro.core.engine import KaleidoEngine
from repro.errors import KaleidoError, PartPurityError


class RacyCounting(MiningApplication):
    """The PR 1 bug class: a shared instance counter updated per part."""

    def __init__(self):
        self.count = 0

    def iterations(self):
        return 1

    def map_embedding(self, ctx, embedding, pmap, part=None):
        self.count += 1  # the race: shared state mutated on pool threads
        pmap[0] = self.count

    def finalize(self, ctx, cse, pmap):
        return self.count


class PartStateCounting(MiningApplication):
    """The legal version: mutation lives in the per-part state."""

    def __init__(self):
        self.count = 0

    def iterations(self):
        return 1

    def start_part(self, ctx):
        return {"count": 0}

    def map_embedding(self, ctx, embedding, pmap, part=None):
        part["count"] += 1
        pmap[0] = pmap.get(0, 0) + 1

    def finish_part(self, ctx, part):
        self.count += part["count"]

    def finalize(self, ctx, cse, pmap):
        return self.count


@pytest.mark.parametrize("executor", ["serial", "threads", "processes"])
def test_sanitizer_rejects_raced_app(paper_graph, sanitized_engine, executor):
    # "processes" works too: the app's hot loop runs on the coordinator
    # (workers only expand embeddings), so the class swap still polices
    # every map_embedding write.
    engine = sanitized_engine(paper_graph, workers=4, executor=executor)
    with pytest.raises(PartPurityError, match="count"):
        engine.run(RacyCounting())


def test_raced_app_passes_unsanitized(paper_graph):
    # Without --sanitize the race goes undetected — that is the gap the
    # sanitizer exists to close.
    with KaleidoEngine(paper_graph, workers=4) as engine:
        result = engine.run(RacyCounting())
    assert result.value == 7  # 7 two-embeddings in the paper graph


def test_part_state_app_passes_sanitized(paper_graph, sanitized_engine):
    engine = sanitized_engine(paper_graph, workers=4, executor="threads")
    result = engine.run(PartStateCounting())
    assert result.value == 7
    assert result.extra["sanitize"] is True


def test_part_purity_error_is_kaleido_error():
    assert issubclass(PartPurityError, KaleidoError)


def test_error_names_attribute_and_app(paper_graph, sanitized_engine):
    engine = sanitized_engine(paper_graph, workers=2)
    with pytest.raises(PartPurityError) as excinfo:
        engine.run(RacyCounting())
    message = str(excinfo.value)
    assert "RacyCounting" in message
    assert "'count'" in message
    assert "start_part" in message


@pytest.mark.parametrize(
    "make_app",
    [
        TriangleCounting,
        lambda: MotifCounting(3),
        lambda: FrequentSubgraphMining(num_edges=2, support=2),
    ],
    ids=["tc", "motif", "fsm"],
)
@pytest.mark.parametrize("executor", ["serial", "threads"])
def test_shipped_apps_byte_identical_under_sanitizer(
    paper_graph, sanitized_engine, make_app, executor
):
    with KaleidoEngine(paper_graph, workers=4, executor=executor) as plain_engine:
        plain = plain_engine.run(make_app())
    sanitized = sanitized_engine(
        paper_graph, workers=4, executor=executor
    ).run(make_app())
    assert sanitized.pattern_map == plain.pattern_map
    assert sanitized.level_sizes == plain.level_sizes


def test_sanitized_processes_run_matches_plain(paper_graph, sanitized_engine):
    # The sanitizer must not perturb the zero-copy process path either.
    with KaleidoEngine(paper_graph, workers=2, executor="processes") as plain_engine:
        plain = plain_engine.run(TriangleCounting())
    sanitized = sanitized_engine(
        paper_graph, workers=2, executor="processes"
    ).run(TriangleCounting())
    assert sanitized.pattern_map == plain.pattern_map
    assert sanitized.extra["sanitize"] is True


def test_app_class_and_name_survive_the_swap(paper_graph, sanitized_engine):
    app = PartStateCounting()
    original = type(app)
    engine = sanitized_engine(paper_graph, workers=2)
    engine.run(app)
    assert type(app) is original  # class restored after the run
    assert app.name == "PartStateCounting"


def test_sanitizer_records_cold_writes():
    class Thing:
        pass

    thing = Thing()
    sanitizer = PartPuritySanitizer(thing)
    with sanitizer:
        thing.cold = 1  # outside hot phase: allowed, recorded
        with sanitizer.hot_phase():
            with pytest.raises(PartPurityError):
                thing.hot = 2
        thing.after = 3
    assert [w.attribute for w in sanitizer.writes] == ["cold", "hot", "after"]
    assert [w.attribute for w in sanitizer.hot_writes] == ["hot"]
    # delete is policed too
    with sanitizer:
        with sanitizer.hot_phase():
            with pytest.raises(PartPurityError):
                del thing.cold
