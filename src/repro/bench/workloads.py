"""Workload runners shared by the benchmark files.

One function per (system, application) that returns a
:class:`~repro.bench.record.RunRecord`; the Table-2 grid iterates these.
Dataset profile and the support/k grids are chosen so a full benchmark run
finishes in minutes in pure Python while preserving the paper's ranking
shapes (see DESIGN.md substitutions).
"""

from __future__ import annotations

import os
import tempfile
from typing import Any

from ..apps import (
    CliqueDiscovery,
    FrequentSubgraphMining,
    MotifCounting,
    TriangleCounting,
)
from ..baselines import ArabesqueLikeEngine, RStreamLikeEngine
from ..core.api import MiningResult
from ..core.engine import KaleidoEngine
from ..graph import datasets
from ..graph.graph import Graph
from .record import RunRecord

__all__ = [
    "PROFILE",
    "bench_graph",
    "run_kaleido",
    "run_arabesque",
    "run_rstream",
    "digest",
    "TABLE2_GRID",
]

#: Dataset profile used across the benchmark harness; override with the
#: REPRO_PROFILE environment variable (tiny / bench / large).
PROFILE = os.environ.get("REPRO_PROFILE", "bench")

#: Supports used in the FSM sweeps per dataset (scaled from the paper's
#: 300/500/1000/5000 grid to the stand-in graph sizes).
FSM_SUPPORTS = {
    "citeseer": [3, 5, 10, 50],
    "mico": [3, 5, 10, 50],
    "patent": [3, 5, 10, 50],
    "youtube": [3, 5, 10, 50],
}

#: The Table-2 application grid: (app kind, option) pairs.
TABLE2_GRID: list[tuple[str, Any]] = (
    [("fsm", s) for s in (3, 5, 10, 50)]
    + [("motif", 3), ("motif", 4)]
    + [("clique", 3), ("clique", 4), ("clique", 5)]
    + [("tc", None)]
)


def bench_graph(name: str) -> Graph:
    return datasets.load(name, PROFILE)


def digest(value: Any) -> Any:
    """Comparable digest of an app result for cross-system agreement.

    FSM results compare by frequent-pattern count: Kaleido's production
    counter short-circuits supports at the threshold while the baselines
    report exact values, and the pattern hashes come from different
    fingerprint functions — the frequent *set size* is the invariant.
    """
    from ..apps.fsm import FSMResult

    if isinstance(value, FSMResult):
        return len(value)
    if isinstance(value, dict):
        return sorted(value.values())
    if hasattr(value, "count"):
        return value.count
    return value


def _record(system: str, dataset: str, options: str, result: MiningResult) -> RunRecord:
    return RunRecord(
        system=system,
        app=result.app_name,
        dataset=dataset,
        options=options,
        seconds=result.wall_seconds,
        memory_bytes=result.peak_memory_bytes,
        io_read_bytes=result.io_bytes_read,
        io_write_bytes=result.io_bytes_written,
        value_digest=digest(result.value),
    )


def _make_app(kind: str, option: Any):
    if kind == "fsm":
        return FrequentSubgraphMining(num_edges=2, support=int(option))
    if kind == "motif":
        return MotifCounting(int(option))
    if kind == "clique":
        return CliqueDiscovery(int(option))
    if kind == "tc":
        return TriangleCounting()
    raise ValueError(f"unknown app kind {kind!r}")


def _options_str(kind: str, option: Any) -> str:
    if kind == "fsm":
        return f"support={option}"
    if kind in ("motif", "clique"):
        return f"k={option}"
    return ""


def run_kaleido(
    graph: Graph,
    kind: str,
    option: Any,
    dataset: str,
    executor: str = "serial",
    **engine_kwargs,
) -> RunRecord:
    """Run one Kaleido workload.

    ``executor`` selects the part executor ("serial" keeps the
    work-stealing replay every figure benchmark is calibrated on;
    "threads" runs parts on a real thread pool).
    """
    app = _make_app(kind, option)
    with KaleidoEngine(graph, executor=executor, **engine_kwargs) as engine:
        result = engine.run(app)
    return _record("kaleido", dataset, _options_str(kind, option), result)


def run_arabesque(graph: Graph, kind: str, option: Any, dataset: str) -> RunRecord:
    engine = ArabesqueLikeEngine(graph)
    if kind == "fsm":
        result = engine.run_fsm(2, int(option))
    elif kind == "motif":
        result = engine.run_motif(int(option))
    elif kind == "clique":
        result = engine.run_clique(int(option))
    elif kind == "tc":
        result = engine.run_triangles()
    else:
        raise ValueError(kind)
    return _record("arabesque", dataset, _options_str(kind, option), result)


def run_rstream(
    graph: Graph,
    kind: str,
    option: Any,
    dataset: str,
    max_intermediate_bytes: int | None = None,
) -> RunRecord:
    with tempfile.TemporaryDirectory(prefix="rstream-") as tmp:
        with RStreamLikeEngine(
            graph, spill_dir=tmp, max_intermediate_bytes=max_intermediate_bytes
        ) as engine:
            if kind == "fsm":
                result = engine.run_fsm(2, int(option))
            elif kind == "motif":
                result = engine.run_motif(int(option))
            elif kind == "clique":
                result = engine.run_clique(int(option))
            elif kind == "tc":
                result = engine.run_triangles()
            else:
                raise ValueError(kind)
    return _record("rstream", dataset, _options_str(kind, option), result)
