"""Cost-driven contiguous partitioning of exploration work (Section 4.2).

Given per-embedding predicted costs, split the level into contiguous parts
with near-equal cost sums.  Contiguity matters: parts map one-to-one onto
spilled part files, so they must follow CSE storage order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PlanError

__all__ = ["balanced_parts", "PartitionQuality", "partition_quality"]


def balanced_parts(costs: np.ndarray, num_parts: int) -> list[tuple[int, int]]:
    """Contiguous parts with near-equal predicted cost.

    Boundaries are placed at the cost-quantile positions of the prefix-sum
    curve.  Degenerate cases (more parts than items, all-zero costs)
    degrade to an even count split.
    """
    if num_parts <= 0:
        raise PlanError("num_parts must be positive")
    costs = np.asarray(costs, dtype=np.float64)
    total_items = costs.shape[0]
    if total_items == 0:
        return [(0, 0)] * num_parts
    total_cost = float(costs.sum())
    if total_cost <= 0:
        bounds = np.linspace(0, total_items, num_parts + 1).astype(np.int64)
    else:
        prefix = np.cumsum(costs)
        targets = np.linspace(0, total_cost, num_parts + 1)[1:-1]
        cuts = np.searchsorted(prefix, targets, side="left") + 1
        bounds = np.concatenate([[0], cuts, [total_items]]).astype(np.int64)
        bounds = np.maximum.accumulate(np.clip(bounds, 0, total_items))
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(num_parts)]


@dataclass(frozen=True)
class PartitionQuality:
    """How even a partition came out, under the true (or predicted) costs."""

    part_costs: tuple[float, ...]
    max_cost: float
    mean_cost: float

    @property
    def imbalance(self) -> float:
        """``max / mean`` — 1.0 is perfect, higher is worse."""
        if self.mean_cost == 0:
            return 1.0
        return self.max_cost / self.mean_cost


def partition_quality(
    parts: list[tuple[int, int]], costs: np.ndarray
) -> PartitionQuality:
    """Evaluate a partition against per-item costs."""
    costs = np.asarray(costs, dtype=np.float64)
    sums = tuple(float(costs[start:end].sum()) for start, end in parts)
    mx = max(sums, default=0.0)
    mean = (sum(sums) / len(sums)) if sums else 0.0
    return PartitionQuality(part_costs=sums, max_cost=mx, mean_cost=mean)
