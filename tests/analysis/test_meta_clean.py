"""The shipped source tree is violation-free — the acceptance gate.

If this test fails, either new code broke an engine contract (fix the
code) or the new code is a justified exception (add a
``# repro: ignore[RULE]`` with a rationale).
"""

from pathlib import Path

from repro.analysis import lint_paths, lint_paths_report

SRC = Path(__file__).parents[2] / "src" / "repro"


def test_src_tree_is_violation_free():
    diagnostics = lint_paths([SRC])
    assert diagnostics == [], "\n".join(diag.format() for diag in diagnostics)


def test_src_tree_has_no_unused_ignores():
    # Every '# repro: ignore[...]' in the tree must still be earning
    # its keep — stale suppressions hide future regressions.
    report = lint_paths_report([SRC], report_unused_ignores=True)
    assert report.all() == [], "\n".join(diag.format() for diag in report.all())


def test_src_tree_has_expected_shape():
    # Guard against the meta-test silently linting nothing.
    files = list(SRC.rglob("*.py"))
    assert len(files) > 30
    assert (SRC / "core" / "engine.py").exists()
