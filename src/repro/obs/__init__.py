"""Run-scoped observability: tracing, metrics, exporters.

One subsystem replaces the scattered ad-hoc instrumentation the
benchmarks used to reinvent per figure:

* :class:`Tracer` / :data:`NULL_TRACER` — nested spans
  (``run → level → {plan, execute, aggregate} → part``) and instant
  events (spill, prefetch hit/miss, retry, degradation, checkpoint),
  thread-safe, with an injected clock for deterministic tests.  The
  null tracer is the default and costs one attribute check on hot paths.
* :class:`MetricsRegistry` — named counters/gauges/histograms with an
  associative merge; :mod:`repro.obs.bridge` folds the pre-existing
  ``IOStats`` / ``MemoryMeter`` / ``PatternHasher`` state in.
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (open in
  ``chrome://tracing`` or Perfetto), flat JSONL, and a text summary;
  :func:`worker_busy_fractions` derives the Fig.-17 load-balance view
  straight from the trace.

Enable on an engine with ``KaleidoEngine(graph, tracer=Tracer())`` or
from the CLI with ``repro run <app> --trace-out t.json``.
"""

from .bridge import absorb_engine, absorb_hasher, absorb_io_stats, absorb_memory_meter
from .export import (
    chrome_trace,
    text_summary,
    worker_busy_fractions,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, MetricsView
from .trace import (
    NULL_TRACER,
    NullTracer,
    SHAPE_IGNORED_ARGS,
    TraceEvent,
    Tracer,
    span_tree_shape,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceEvent",
    "span_tree_shape",
    "SHAPE_IGNORED_ARGS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsView",
    "absorb_engine",
    "absorb_io_stats",
    "absorb_memory_meter",
    "absorb_hasher",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "text_summary",
    "worker_busy_fractions",
]
