"""Unit tests for the dataset registry."""

import pytest

from repro.errors import UnknownDatasetError
from repro.graph import PAPER_STATS, dataset_names, load, patent_with_labels


def test_names():
    assert dataset_names() == ["citeseer", "mico", "patent", "youtube"]


def test_unknown_dataset():
    with pytest.raises(UnknownDatasetError):
        load("nope")


def test_unknown_profile():
    with pytest.raises(UnknownDatasetError):
        load("mico", "giant")


def test_citeseer_bench_is_paper_scale():
    g = load("citeseer", "bench")
    assert g.num_vertices == PAPER_STATS["citeseer"]["vertices"]
    assert g.num_labels == PAPER_STATS["citeseer"]["labels"]


def test_label_counts_match_paper():
    for name in dataset_names():
        g = load(name, "tiny")
        assert g.num_labels == PAPER_STATS[name]["labels"], name


def test_load_cached():
    assert load("mico", "tiny") is load("mico", "tiny")


def test_no_isolated_vertices():
    for name in dataset_names():
        g = load(name, "tiny")
        assert int(g.degrees().min()) > 0


def test_patent_relabeling():
    g37 = load("patent", "tiny")
    g7 = patent_with_labels(7, "tiny")
    assert g7.num_labels == 7
    assert g7.num_edges == g37.num_edges
    # Coarsening is consistent: same 37-label ⇒ same 7-label.
    group = {}
    for old, new in zip(g37.labels.tolist(), g7.labels.tolist()):
        assert group.setdefault(old, new) == new


def test_patent_relabel_identity():
    g = load("patent", "tiny")
    assert patent_with_labels(g.num_labels, "tiny") is g


def test_avg_degree_in_ballpark():
    # The scaled stand-ins should keep the paper's density character:
    # mico densest, citeseer sparsest.
    mico = load("mico", "bench").average_degree
    citeseer = load("citeseer", "bench").average_degree
    assert mico > 2 * citeseer
