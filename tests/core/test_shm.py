"""Zero-copy IPC primitives: shared contexts, parted vectors, level export."""

import numpy as np
import pytest

from repro.core import CSE, InMemoryLevel, shm
from repro.core.cse import decode_block_arrays
from repro.core.explore import expand_vertex_level
from repro.core.kernels import (
    edge_kernel_context,
    vertex_kernel_context,
)
from repro.graph.edge_index import EdgeIndex
from repro.storage.hybrid import spill_level
from repro.storage.spill import PartStore


@pytest.fixture
def paper_cse(paper_graph):
    cse = CSE(np.arange(paper_graph.num_vertices))
    expand_vertex_level(paper_graph, cse)
    expand_vertex_level(paper_graph, cse)
    return cse


# ----------------------------------------------------------------------
# Context fingerprints
# ----------------------------------------------------------------------
def test_fingerprint_content_based(paper_graph):
    a = vertex_kernel_context(paper_graph)
    # A rebuilt context over *copies* of the same arrays fingerprints
    # identically — that is the key the warm pool survives on.
    b = type(a)(
        indptr=a.indptr.copy(),
        indices=a.indices.copy(),
        num_vertices=a.num_vertices,
        out_dtype=a.out_dtype,
        adjacency_keys=None if a.adjacency_keys is None else a.adjacency_keys.copy(),
    )
    assert shm.context_fingerprint(a) == shm.context_fingerprint(b)


def test_fingerprint_differs_on_content_change(paper_graph):
    a = vertex_kernel_context(paper_graph)
    indices = a.indices.copy()
    indices[0] += 1
    b = type(a)(
        indptr=a.indptr,
        indices=indices,
        num_vertices=a.num_vertices,
        out_dtype=a.out_dtype,
        adjacency_keys=a.adjacency_keys,
    )
    assert shm.context_fingerprint(a) != shm.context_fingerprint(b)


def test_fingerprint_differs_across_kinds(paper_graph):
    assert shm.context_fingerprint(
        vertex_kernel_context(paper_graph)
    ) != shm.context_fingerprint(edge_kernel_context(EdgeIndex(paper_graph)))


# ----------------------------------------------------------------------
# Shared kernel contexts
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", ["vertex", "edge"])
def test_context_roundtrip(paper_graph, kind):
    if kind == "vertex":
        ctx = vertex_kernel_context(paper_graph)
    else:
        ctx = edge_kernel_context(EdgeIndex(paper_graph))
    shared = shm.SharedKernelContext(ctx)
    try:
        attached, segment = shm.attach_context(shared.handle)
        try:
            assert type(attached) is type(ctx)
            import dataclasses

            for field in dataclasses.fields(ctx):
                original = getattr(ctx, field.name)
                rebuilt = getattr(attached, field.name)
                if isinstance(original, np.ndarray):
                    assert np.array_equal(rebuilt, original)
                    assert rebuilt.dtype == original.dtype
                    assert not rebuilt.flags.writeable
                else:
                    assert rebuilt == original
        finally:
            del attached
            segment.close()
    finally:
        shared.close()


def test_context_close_idempotent(paper_graph):
    shared = shm.SharedKernelContext(vertex_kernel_context(paper_graph))
    name = shared.handle.segment
    shared.close()
    shared.close()
    assert shared.closed
    # The segment is gone: attaching by name must fail.
    from multiprocessing import shared_memory

    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)


def test_handle_pickle_carries_no_arrays(paper_graph):
    import pickle

    ctx = vertex_kernel_context(paper_graph)
    shared = shm.SharedKernelContext(ctx)
    try:
        payload = pickle.dumps(shared.handle)
        # The handle is a name card — bounded regardless of graph size,
        # where pickling the context itself would scale with the arrays.
        assert len(payload) < 2048
    finally:
        shared.close()


# ----------------------------------------------------------------------
# PartedVector
# ----------------------------------------------------------------------
def test_parted_vector_matches_concatenation():
    parts = [
        np.array([3, 1, 4], dtype=np.int32),
        np.array([], dtype=np.int32),
        np.array([1, 5, 9, 2, 6], dtype=np.int32),
    ]
    flat = np.concatenate(parts)
    vec = shm.PartedVector(parts)
    assert len(vec) == flat.shape[0]
    assert vec.shape == flat.shape
    ordered = np.arange(flat.shape[0])
    assert np.array_equal(vec[ordered], flat)
    # Arbitrary (unsorted, repeated) gathers stay correct.
    scrambled = np.array([7, 0, 3, 3, 5, 1, 6], dtype=np.int64)
    assert np.array_equal(vec[scrambled], flat[scrambled])


def test_parted_vector_empty():
    vec = shm.PartedVector([])
    assert len(vec) == 0
    assert vec[np.array([], dtype=np.int64)].shape == (0,)


# ----------------------------------------------------------------------
# Level export / attach
# ----------------------------------------------------------------------
def _drain_levels_cache():
    while shm._LEVELS_CACHE:
        _, (segment, _, _) = shm._LEVELS_CACHE.popitem(last=False)
        if segment is not None:
            shm._release_segment(segment, unlink=False)


def test_export_levels_roundtrip_in_memory(paper_cse):
    share = shm.export_levels(paper_cse)
    assert share is not None
    try:
        verts, offs = shm.attach_levels(share.handle)
        size = paper_cse.size()
        block = decode_block_arrays(verts, offs, 0, size)
        assert np.array_equal(block, paper_cse.decode_block(0, size))
        # Partial bounds decode too.
        partial = decode_block_arrays(verts, offs, 2, 5)
        assert np.array_equal(partial, paper_cse.decode_block(2, 5))
    finally:
        _drain_levels_cache()
        share.close()
        share.close()  # idempotent


def test_export_levels_spilled_top_uses_mmap(paper_cse, tmp_path):
    store = PartStore(str(tmp_path))
    top = paper_cse.pop_level()
    paper_cse.append_level(spill_level(top, store, part_entries=3))
    share = shm.export_levels(paper_cse)
    assert share is not None
    try:
        spec = share.handle.levels[-1].vert
        assert isinstance(spec, shm.MmapVectorSpec)
        verts, offs = shm.attach_levels(share.handle)
        assert isinstance(verts[-1], shm.PartedVector)
        size = paper_cse.size()
        assert np.array_equal(
            decode_block_arrays(verts, offs, 0, size),
            paper_cse.decode_block(0, size),
        )
    finally:
        _drain_levels_cache()
        share.close()
        store.close()


def test_export_levels_refuses_non_mmap_spill(paper_cse, tmp_path):
    store = PartStore(str(tmp_path))
    top = paper_cse.pop_level()
    spilled = spill_level(top, store, part_entries=3)
    spilled.mmap = False  # pre-zero-copy behaviour: no block decode
    paper_cse.append_level(spilled)
    assert shm.export_levels(paper_cse) is None
    store.close()


def test_attach_levels_cache_bounded(paper_cse):
    _drain_levels_cache()
    shares = [shm.export_levels(paper_cse) for _ in range(4)]
    try:
        for share in shares:
            shm.attach_levels(share.handle)
        assert len(shm._LEVELS_CACHE) <= shm._LEVELS_CACHE_MAX
        # The most recent attachment is cached (same objects back).
        verts_a, _ = shm.attach_levels(shares[-1].handle)
        verts_b, _ = shm.attach_levels(shares[-1].handle)
        assert verts_a is verts_b
    finally:
        _drain_levels_cache()
        for share in shares:
            share.close()
