"""Smoke tests: the example programs run and produce sane output."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str, timeout: int = 600) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart_tiny():
    out = _run("quickstart.py", "citeseer", "tiny")
    assert "Triangles:" in out
    assert "3-motif census" in out
    assert "Frequent 2-edge patterns" in out


def test_fraud_cliques():
    out = _run("fraud_cliques.py")
    assert "planted rings recovered: 3/3" in out


def test_pattern_query():
    out = _run("pattern_query.py")
    assert "(1, 2, 5)" in out
    assert "(2, 3, 5)" in out


@pytest.mark.slow
def test_out_of_core_demo():
    out = _run("out_of_core_demo.py")
    assert "identical motif censuses" in out


def test_examples_exist_and_have_docstrings():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 6
    for script in scripts:
        text = script.read_text(encoding="utf-8")
        assert text.lstrip().startswith('"""'), script.name
        assert "def main" in text or "__main__" in text, script.name


def test_edge_labeled_fsm():
    out = _run("edge_labeled_fsm.py")
    assert "card" in out and "typed structure" in out
