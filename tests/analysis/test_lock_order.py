"""The lock-order sanitizer: inversions raise before they can deadlock."""

import threading

import pytest

from repro.analysis import LockOrderSanitizer, TrackedLock
from repro.apps import TriangleCounting
from repro.core.engine import KaleidoEngine
from repro.errors import KaleidoError, LockOrderError
from repro.service import MiningService, QueryRequest


class TwoLocks:
    def __init__(self):
        self.alpha = threading.Lock()
        self.beta = threading.Lock()


def test_inverted_pair_raises():
    # Thread 1 records alpha -> beta; the main thread then tries the
    # deliberately inverted beta -> alpha and must be stopped.
    sanitizer = LockOrderSanitizer()
    obj = TwoLocks()
    sanitizer.instrument(obj)

    def forward():
        with obj.alpha:
            with obj.beta:
                pass

    worker = threading.Thread(target=forward, name="forward-thread")
    worker.start()
    worker.join()

    with obj.beta:
        with pytest.raises(LockOrderError) as excinfo:
            obj.alpha.acquire()
    message = str(excinfo.value)
    assert "TwoLocks.alpha" in message
    assert "TwoLocks.beta" in message
    assert "forward-thread" in message
    assert "inversion" in message
    sanitizer.restore()


def test_inversion_detected_without_actual_contention():
    # No second thread is even blocked — the edge graph alone convicts.
    sanitizer = LockOrderSanitizer()
    obj = TwoLocks()
    sanitizer.instrument(obj)
    with obj.alpha:
        with obj.beta:
            pass
    with obj.beta:
        with pytest.raises(LockOrderError):
            with obj.alpha:
                pass
    sanitizer.restore()


def test_consistent_order_stays_silent():
    sanitizer = LockOrderSanitizer()
    obj = TwoLocks()
    sanitizer.instrument(obj)
    for _ in range(3):
        with obj.alpha:
            with obj.beta:
                pass
    assert sanitizer.edges() == frozenset({("TwoLocks.alpha", "TwoLocks.beta")})
    sanitizer.restore()


def test_transitive_cycle_detected():
    # a -> b and b -> c recorded; c -> a closes the cycle through b.
    class ThreeLocks:
        def __init__(self):
            self.a = threading.Lock()
            self.b = threading.Lock()
            self.c = threading.Lock()

    sanitizer = LockOrderSanitizer()
    obj = ThreeLocks()
    sanitizer.instrument(obj)
    with obj.a:
        with obj.b:
            pass
    with obj.b:
        with obj.c:
            pass
    with obj.c:
        with pytest.raises(LockOrderError):
            with obj.a:
                pass
    sanitizer.restore()


def test_reentrant_rlock_is_not_an_inversion():
    class Reentrant:
        def __init__(self):
            self.guard = threading.RLock()

    sanitizer = LockOrderSanitizer()
    obj = Reentrant()
    sanitizer.instrument(obj)
    with obj.guard:
        with obj.guard:  # same name on the held stack: no edge
            pass
    assert sanitizer.edges() == frozenset()
    sanitizer.restore()


def test_condition_wait_drops_and_reacquires():
    class Queue:
        def __init__(self):
            self.cond = threading.Condition()
            self.ready = False

    sanitizer = LockOrderSanitizer()
    obj = Queue()
    sanitizer.instrument(obj)

    def producer():
        with obj.cond:
            obj.ready = True
            obj.cond.notify()

    worker = threading.Thread(target=producer)
    with obj.cond:
        worker.start()
        assert obj.cond.wait_for(lambda: obj.ready, timeout=5)
        assert sanitizer.held_locks() == ("Queue.cond",)
    worker.join()
    assert sanitizer.held_locks() == ()
    sanitizer.restore()


def test_instrument_and_restore_round_trip():
    sanitizer = LockOrderSanitizer()
    obj = TwoLocks()
    raw_alpha = obj.alpha
    wrapped = sanitizer.instrument(obj)
    assert sorted(wrapped) == ["TwoLocks.alpha", "TwoLocks.beta"]
    assert isinstance(obj.alpha, TrackedLock)
    assert obj.alpha.inner is raw_alpha
    sanitizer.restore()
    assert obj.alpha is raw_alpha
    assert isinstance(obj.beta, type(threading.Lock()))


def test_lock_order_error_is_kaleido_error():
    assert issubclass(LockOrderError, KaleidoError)


# ----------------------------------------------------------------------
# Integration: the engine and service wiring
# ----------------------------------------------------------------------
def test_sanitized_engine_run_is_lock_order_clean(paper_graph):
    with KaleidoEngine(paper_graph, workers=4, executor="threads", sanitize=True) as engine:
        result = engine.run(TriangleCounting())
    assert result.pattern_map  # ran to completion: no inversions raised


def test_sanitized_service_round_trip(small_random):
    svc = MiningService(pool_workers=2, sanitize=True)
    try:
        instrumented = len(svc.lock_sanitizer._instrumented)
        assert instrumented > 0  # service-tier locks actually wrapped
        result = svc.query(QueryRequest(app="tc", graph=small_random, tenant="t0"))
        assert result.pattern_map is not None
    finally:
        svc.close()
    assert svc.lock_sanitizer is None  # restored and released on close


def test_unsanitized_service_has_no_sanitizer(small_random):
    svc = MiningService(pool_workers=1)
    try:
        assert svc.lock_sanitizer is None
    finally:
        svc.close()
