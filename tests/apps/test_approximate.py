"""Unit tests for the sampling-based approximate motif counter."""

import pytest

from repro import KaleidoEngine, MotifCounting
from repro.apps import ApproximateMotifCounting, approximate_motifs
from repro.graph import from_edge_list
from tests.conftest import random_labeled_graph


def test_full_sampling_has_small_error(paper_graph):
    """Sampling ~every parent should land close to the exact counts
    (sampling is with replacement, so not exactly equal)."""
    exact = KaleidoEngine(paper_graph).run(MotifCounting(3)).value
    approx = approximate_motifs(paper_graph, 3, samples=2000, seed=1)
    assert set(approx) == set(exact)
    for phash, estimate in approx.items():
        assert estimate.estimate == pytest.approx(exact[phash], rel=0.25)


def test_estimates_within_confidence_mostly():
    graph = random_labeled_graph(60, 200, 1, seed=3)
    exact = KaleidoEngine(graph).run(MotifCounting(3)).value
    approx = approximate_motifs(graph, 3, samples=400, seed=7)
    hits = sum(
        1
        for phash, est in approx.items()
        if est.low <= exact.get(phash, 0) <= est.high
    )
    assert hits >= max(1, len(approx) - 1)  # ~95% CIs; allow one miss


def test_deterministic_given_seed(paper_graph):
    a = approximate_motifs(paper_graph, 3, samples=50, seed=42)
    b = approximate_motifs(paper_graph, 3, samples=50, seed=42)
    assert {h: e.estimate for h, e in a.items()} == {
        h: e.estimate for h, e in b.items()
    }


def test_more_samples_tighter_intervals():
    graph = random_labeled_graph(50, 160, 1, seed=11)
    small = approximate_motifs(graph, 3, samples=50, seed=5)
    large = approximate_motifs(graph, 3, samples=2000, seed=5)
    common = set(small) & set(large)
    assert common
    small_width = sum(small[h].half_width for h in common)
    large_width = sum(large[h].half_width for h in common)
    assert large_width < small_width


def test_k4_sampling():
    graph = random_labeled_graph(30, 80, 1, seed=2)
    exact = KaleidoEngine(graph).run(MotifCounting(4)).value
    approx = approximate_motifs(graph, 4, samples=3000, seed=9)
    total_exact = sum(exact.values())
    total_est = sum(e.estimate for e in approx.values())
    assert total_est == pytest.approx(total_exact, rel=0.2)


def test_empty_graph():
    graph = from_edge_list([])
    assert approximate_motifs(graph, 3, samples=10) == {}


def test_validates_arguments():
    with pytest.raises(ValueError):
        ApproximateMotifCounting(2, 10)
    with pytest.raises(ValueError):
        ApproximateMotifCounting(3, 0)
