"""Exporters: Chrome ``trace_event`` JSON, flat JSONL, text summary.

The Chrome export is the Trace Event Format understood by
``chrome://tracing`` and https://ui.perfetto.dev — drop the file onto
either and the run renders as one timeline per track: the engine thread
with its nested ``run → level → {plan, execute, aggregate}`` spans, one
track per (real or modelled) worker carrying the per-part intervals,
plus instant markers for spills, retries, degradations and checkpoints.

:func:`worker_busy_fractions` derives the Figure-17 load-balance view
straight from the exported part spans — per-worker busy time over the
executor makespan — which is how ``scripts/bench_smoke.py`` and the
Fig. 17/18 benchmarks read utilization without private counters.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import IO, Any, Iterable

from .metrics import MetricsRegistry
from .trace import TraceEvent, Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "text_summary",
    "worker_busy_fractions",
]

_PID = 1


def _as_events(source: "Tracer | Iterable[TraceEvent]") -> list[TraceEvent]:
    if isinstance(source, Tracer):
        return source.events
    return list(source)


def _track_ids(events: list[TraceEvent]) -> dict[int | str, int]:
    """Stable small integer tid per distinct track, engine thread first.

    Named tracks (``"worker-N"`` strings) sort after thread-ident tracks
    in first-seen order, so the engine timeline renders on top.
    """
    tids: dict[int | str, int] = {}
    for event in events:
        if event.track not in tids:
            tids[event.track] = len(tids) + 1
    return tids


def _track_name(track: int | str, tid: int) -> str:
    if isinstance(track, str):
        return track
    return "engine" if tid == 1 else f"thread-{tid}"


def chrome_trace(source: "Tracer | Iterable[TraceEvent]") -> dict[str, Any]:
    """Convert recorded events into a Chrome Trace Event Format object.

    Stack spans become ``B``/``E`` pairs, complete spans become ``X``
    events with a duration, instants become ``i`` (thread-scoped);
    every track gets a ``thread_name`` metadata record.  Timestamps are
    microseconds since the tracer's epoch.
    """
    events = _as_events(source)
    tids = _track_ids(events)
    out: list[dict[str, Any]] = []
    for track, tid in tids.items():
        out.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": _PID,
                "tid": tid,
                "args": {"name": _track_name(track, tid)},
            }
        )
    phases = {"begin": "B", "end": "E", "instant": "i", "complete": "X"}
    for event in sorted(events, key=lambda e: e.ts):
        record: dict[str, Any] = {
            "ph": phases[event.kind],
            "name": event.name,
            "pid": _PID,
            "tid": tids[event.track],
            "ts": round(event.ts * 1e6, 3),
        }
        if event.kind == "complete":
            record["dur"] = round((event.dur or 0.0) * 1e6, 3)
        if event.kind == "instant":
            record["s"] = "t"
        if event.args:
            record["args"] = dict(event.args)
        out.append(record)
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path_or_file: "str | IO[str]", source: "Tracer | Iterable[TraceEvent]"
) -> None:
    """Write the Chrome trace JSON to a path or open text file."""
    payload = chrome_trace(source)
    if isinstance(path_or_file, str):
        with open(path_or_file, "w") as handle:
            json.dump(payload, handle)
            handle.write("\n")
    else:
        json.dump(payload, path_or_file)
        path_or_file.write("\n")


def write_jsonl(
    path_or_file: "str | IO[str]", source: "Tracer | Iterable[TraceEvent]"
) -> None:
    """Write one JSON object per event — the flat, grep-able log form."""
    events = _as_events(source)

    def dump(handle: IO[str]) -> None:
        for event in events:
            record = asdict(event)
            if record["dur"] is None:
                del record["dur"]
            handle.write(json.dumps(record) + "\n")

    if isinstance(path_or_file, str):
        with open(path_or_file, "w") as handle:
            dump(handle)
    else:
        dump(path_or_file)


def worker_busy_fractions(
    source: "Tracer | Iterable[TraceEvent]", span_name: str = "part"
) -> dict[str, float]:
    """Per-worker busy fraction from the part spans (the Fig.-17 view).

    Busy time is the sum of a worker track's ``part`` span durations;
    the denominator is the overall horizon spanned by *any* worker's
    parts, so an idle-tailed worker shows the imbalance directly.
    """
    events = [
        e
        for e in _as_events(source)
        if e.kind == "complete" and e.name == span_name and isinstance(e.track, str)
    ]
    if not events:
        return {}
    start = min(e.ts for e in events)
    horizon = max(e.ts + (e.dur or 0.0) for e in events) - start
    if horizon <= 0:
        return {str(e.track): 1.0 for e in events}
    busy: dict[str, float] = {}
    for event in events:
        busy[str(event.track)] = busy.get(str(event.track), 0.0) + (event.dur or 0.0)
    return {
        track: min(1.0, seconds / horizon) for track, seconds in sorted(busy.items())
    }


def text_summary(
    source: "Tracer | Iterable[TraceEvent]",
    metrics: MetricsRegistry | None = None,
) -> str:
    """Human-readable digest: span totals, instants, workers, metrics."""
    events = _as_events(source)
    lines: list[str] = []

    # Span totals from begin/end pairing per track, plus complete spans.
    totals: dict[str, tuple[int, float]] = {}
    open_spans: dict[tuple[int | str, str], list[float]] = {}
    for event in sorted(events, key=lambda e: e.ts):
        if event.kind == "begin":
            open_spans.setdefault((event.track, event.name), []).append(event.ts)
        elif event.kind == "end":
            starts = open_spans.get((event.track, event.name))
            if starts:
                count, seconds = totals.get(event.name, (0, 0.0))
                totals[event.name] = (count + 1, seconds + event.ts - starts.pop())
        elif event.kind == "complete":
            count, seconds = totals.get(event.name, (0, 0.0))
            totals[event.name] = (count + 1, seconds + (event.dur or 0.0))
    if totals:
        lines.append("spans:")
        for name, (count, seconds) in sorted(totals.items()):
            lines.append(f"  {name:<24} {count:>6}x  {seconds:10.6f}s total")

    instants: dict[str, int] = {}
    for event in events:
        if event.kind == "instant":
            instants[event.name] = instants.get(event.name, 0) + 1
    if instants:
        lines.append("instants:")
        for name, count in sorted(instants.items()):
            lines.append(f"  {name:<24} {count:>6}x")

    fractions = worker_busy_fractions(events)
    if fractions:
        lines.append("worker busy fractions:")
        for track, fraction in fractions.items():
            lines.append(f"  {track:<24} {fraction:6.1%}")

    if metrics is not None and len(metrics):
        lines.append("metrics:")
        for name, snap in metrics.snapshot().items():
            if snap["type"] == "histogram":
                value = (
                    f"count={snap['count']} mean={snap['mean']:.6f} "
                    f"min={snap['min']} max={snap['max']}"
                )
            elif snap["type"] == "gauge":
                value = f"{snap['value']} (peak {snap['peak']})"
            else:
                value = str(snap["value"])
            lines.append(f"  {name:<32} {value}")

    return "\n".join(lines) if lines else "(no events recorded)"
