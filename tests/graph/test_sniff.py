"""Unit tests for the format sniffer."""

import pytest

from repro.errors import GraphFormatError
from repro.graph import from_edge_list, load_auto, save_edge_list, save_labeled_adjacency, sniff_format


def test_sniffs_edge_list(tmp_path, paper_graph):
    path = tmp_path / "g.txt"
    save_edge_list(paper_graph, path)
    assert sniff_format(path) == "edges"
    assert list(load_auto(path).edges()) == list(paper_graph.edges())


def test_sniffs_adjacency(tmp_path):
    g = from_edge_list([(0, 1), (1, 2), (0, 2)], labels=[4, 5, 6])
    path = tmp_path / "g.adj"
    save_labeled_adjacency(g, path)
    assert sniff_format(path) == "adjacency"
    loaded = load_auto(path)
    assert loaded.labels.tolist() == [4, 5, 6]


def test_two_field_unique_lines_prefer_edges(tmp_path):
    # A star's edge list has unique first fields but no neighbor columns.
    path = tmp_path / "star.txt"
    path.write_text("0 9\n1 9\n2 9\n")
    assert sniff_format(path) == "edges"
    assert load_auto(path).num_edges == 3


def test_empty_file(tmp_path):
    path = tmp_path / "empty.txt"
    path.write_text("# nothing\n")
    assert sniff_format(path) == "edges"
    assert load_auto(path).num_vertices == 0


def test_non_integer_raises(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("a b c\n")
    with pytest.raises(GraphFormatError):
        sniff_format(path)
