"""Unit tests for memory metering, budgets and I/O stats."""

import pytest

from repro.storage import IOStats, MemoryBudget, MemoryMeter
from repro.storage.meter import IOEvent


def test_meter_set_and_peak():
    meter = MemoryMeter()
    meter.set("a", 100)
    meter.set("b", 50)
    assert meter.current_bytes == 150
    meter.set("a", 10)
    assert meter.current_bytes == 60
    assert meter.peak_bytes == 150


def test_meter_add_and_release():
    meter = MemoryMeter()
    meter.add("x", 30)
    meter.add("x", 20)
    assert meter.current_bytes == 50
    meter.release("x")
    assert meter.current_bytes == 0
    meter.release("never-set")  # no raise


def test_meter_negative_rejected():
    meter = MemoryMeter()
    with pytest.raises(ValueError):
        meter.set("a", -1)


def test_meter_snapshot_is_copy():
    meter = MemoryMeter()
    meter.set("a", 5)
    snap = meter.snapshot()
    snap["a"] = 999
    assert meter.current_bytes == 5


def test_budget_unlimited():
    budget = MemoryBudget(None)
    assert budget.fits(10**15)
    assert budget.headroom(123) is None


def test_budget_limits():
    budget = MemoryBudget(100)
    assert budget.fits(60, 40)
    assert not budget.fits(60, 41)
    assert budget.headroom(70) == 30
    assert budget.headroom(170) == 0


def test_budget_validates():
    with pytest.raises(ValueError):
        MemoryBudget(0)


def test_iostats_record_and_rates():
    io = IOStats()
    io.record("write", 1000, 0.1)
    io.record("read", 500, 0.05)
    assert io.bytes_written == 1000
    assert io.bytes_read == 500
    assert io.write_seconds == pytest.approx(0.1)
    series = io.rate_series("write", bins=4)
    assert len(series) == 4
    assert sum(mb for _, mb in series) > 0


def test_iostats_bad_kind():
    with pytest.raises(ValueError):
        IOStats().record("copy", 1, 0.0)


def test_iostats_merge():
    a, b = IOStats(), IOStats()
    a.record("write", 10, 0.0)
    b.record("write", 20, 0.0)
    b.record("read", 5, 0.0)
    a.merge(b)
    assert a.bytes_written == 30
    assert a.bytes_read == 5
    assert len(a.events) == 3


def test_rate_series_empty():
    assert IOStats().rate_series("read") == []


def test_iostats_merge_rebases_event_timestamps():
    # Regression: merged events used to keep timestamps relative to the
    # *other* object's epoch, so a queue's stats created 10s into the run
    # would land near t=0 in the merged rate series.
    a = IOStats(epoch=100.0)
    b = IOStats(epoch=110.0)
    a.events.append(IOEvent(1.0, "write", 10, 0.0))
    b.events.append(IOEvent(2.0, "write", 20, 0.0))  # absolute t=112
    a.merge(b)
    assert [e.at_seconds for e in a.events] == pytest.approx([1.0, 12.0])


def test_iostats_merge_is_associative_on_timestamps():
    # (a ⊕ b) ⊕ c and a ⊕ (b ⊕ c) must place every event at the same
    # time relative to the final epoch.
    def sample(epoch, ts):
        io = IOStats(epoch=epoch)
        io.events.append(IOEvent(ts, "read", 1, 0.0))
        return io

    left_a, left_b, left_c = sample(0.0, 1.0), sample(5.0, 1.0), sample(9.0, 1.0)
    left_a.merge(left_b)
    left_a.merge(left_c)

    right_a, right_b, right_c = sample(0.0, 1.0), sample(5.0, 1.0), sample(9.0, 1.0)
    right_b.merge(right_c)
    right_a.merge(right_b)

    left = sorted(e.at_seconds for e in left_a.events)
    right = sorted(e.at_seconds for e in right_a.events)
    assert left == pytest.approx([1.0, 6.0, 10.0])
    assert right == pytest.approx([1.0, 6.0, 10.0])
