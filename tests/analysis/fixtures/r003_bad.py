"""R003 fixture: unguarded tracer probes in a hot path (4 hits)."""


def expand(parts, tracer):
    tracer.begin("expand", parts=len(parts))  # hit 1: no guard
    for part in parts:
        tracer.instant("part", index=part)  # hit 2: no guard
    tracer.end("expand")  # hit 3: no guard


def load(store, part, tracer):
    if len(part):
        # guarded by the wrong condition — still a hit
        tracer.instant("load", part=part)  # hit 4
    return store
