"""The four evaluation applications (Section 5.1) plus references."""

from .approximate import ApproximateMotifCounting, MotifEstimate, approximate_motifs
from .matching import MatchResult, PatternMatching
from .clique import CliqueDiscovery, CliqueResult
from .fsm_vertex import VertexInducedFSM
from .fsm import FrequentSubgraphMining, FSMResult, edge_pattern_supports
from .mni import MNIDomains, merge_domains
from .motif import MOTIF_COUNTS, MotifCounting, MotifResult
from .triangle import TriangleCounting

__all__ = [
    "FrequentSubgraphMining",
    "FSMResult",
    "edge_pattern_supports",
    "MotifCounting",
    "MotifResult",
    "MOTIF_COUNTS",
    "CliqueDiscovery",
    "CliqueResult",
    "TriangleCounting",
    "MNIDomains",
    "merge_domains",
    "ApproximateMotifCounting",
    "MotifEstimate",
    "approximate_motifs",
    "PatternMatching",
    "MatchResult",
    "VertexInducedFSM",
]
