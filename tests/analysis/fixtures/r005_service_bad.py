"""R005 fixture, service-flavoured: swallowed tenant failures (3 hits).

A query tier that eats engine errors serves wrong answers with a 200:
the tenant sees an empty pattern map, not the failure.
"""


def serve_query(service, request):
    try:
        return service.query(request)
    except:  # hit 1: bare except around the whole query path
        return {"patterns": {}}


def run_engine(session, app):
    try:
        return session.engine.run(app)
    except Exception:  # hit 2: engine failure swallowed
        return None


def release_tenant(tenants, tenant):
    try:
        tenants.release(tenant)
    except (KeyError, BaseException):  # hit 3: catch-all hiding in a tuple
        return False
    return True
