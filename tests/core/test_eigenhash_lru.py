"""PatternHasher's bounded caches: LRU eviction and accounting."""

from repro.core import Pattern
from repro.core.eigenhash import PatternHasher


def chain(n, label=0):
    """An n-vertex path pattern (distinct structure per n)."""
    adjacency = [[0] * n for _ in range(n)]
    for i in range(n - 1):
        adjacency[i][i + 1] = adjacency[i + 1][i] = 1
    return Pattern.from_adjacency([label] * n, adjacency)


def test_default_capacity_is_large():
    hasher = PatternHasher()
    assert hasher.max_entries == PatternHasher.DEFAULT_MAX_ENTRIES
    assert hasher.evictions == 0


def test_eviction_counter_and_bound():
    hasher = PatternHasher(max_entries=2)
    for n in range(2, 7):
        hasher.hash_pattern(chain(n))
    assert len(hasher) <= 2
    assert hasher.evictions > 0


def test_evicted_pattern_rehashes_to_same_value():
    hasher = PatternHasher(max_entries=2)
    first = hasher.hash_pattern(chain(3))
    for n in range(4, 8):  # push the 3-chain out of the cache
        hasher.hash_pattern(chain(n))
    again = hasher.hash_pattern(chain(3))
    assert again == first


def test_lru_touch_protects_hot_entries():
    hasher = PatternHasher(max_entries=2)
    hot = chain(3)
    hasher.hash_pattern(hot)
    hasher.hash_pattern(chain(4))
    hasher.hash_pattern(hot)  # touch: 4-chain is now the LRU entry
    hasher.hash_pattern(chain(5))  # evicts the 4-chain, not the 3-chain
    hits_before = hasher.hits
    hasher.hash_pattern(hot)
    assert hasher.hits == hits_before + 1


def test_none_means_default_capacity():
    hasher = PatternHasher(max_entries=None)
    assert hasher.max_entries == PatternHasher.DEFAULT_MAX_ENTRIES
    for label in range(10):
        hasher.hash_pattern(chain(4, label))
    assert hasher.evictions == 0
    assert len(hasher) == 10


def test_representatives_are_bounded_too():
    hasher = PatternHasher(max_entries=2)
    for n in range(2, 8):
        value = hasher.hash_pattern(chain(n))
    assert len(hasher._representatives) <= 2
    # the most recently hashed structure still has its representative
    assert hasher.representative(value) is not None


def test_evicted_representative_reads_as_unseen():
    hasher = PatternHasher(max_entries=1)
    first = hasher.hash_pattern(chain(3))
    hasher.hash_pattern(chain(4))
    assert hasher.representative(first) is None


def test_stats_survive_eviction():
    hasher = PatternHasher(max_entries=2)
    hasher.hash_pattern(chain(3))
    hasher.hash_pattern(chain(3))
    hasher.hash_pattern(chain(4))
    hasher.hash_pattern(chain(5))
    assert hasher.misses == 3
    assert hasher.hits == 1
    assert 0.0 < hasher.hit_rate < 1.0
