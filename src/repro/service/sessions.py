"""Engine sessions and the per-graph session pool.

A *session* is one :class:`~repro.core.engine.KaleidoEngine` kept warm
between queries: its executor's worker pool, its pattern-hash caches and
the graph's derived structures (adjacency views, the lazily built edge
index) all survive from run to run.  Runs on one engine must be
serialized, so each session carries a lock and the pool hands a session
to exactly one query at a time.

The pool is keyed by graph *fingerprint* (content identity, not object
identity): queries over the same data share warm sessions even when the
graph was reloaded.  Up to ``max_sessions_per_graph`` sessions exist per
graph so concurrent queries mine in parallel; past the cap, acquirers
block on a condition variable until a session frees.  All sessions share
one caller-supplied executor and one hasher (both thread-safe), which is
how N concurrent queries multiplex over a single worker pool.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterator

from ..core.engine import KaleidoEngine
from ..graph.graph import Graph
from ..obs.metrics import MetricsRegistry

__all__ = ["EngineSession", "SessionPool"]


class EngineSession:
    """One warm engine plus the lock that serializes its runs."""

    def __init__(self, graph: Graph, engine: KaleidoEngine) -> None:
        self.graph = graph
        self.engine = engine
        self._lock = threading.Lock()

    def try_acquire(self) -> bool:
        return self._lock.acquire(blocking=False)

    def release(self) -> None:
        self._lock.release()

    @property
    def runs_completed(self) -> int:
        return self.engine.runs_completed

    def close(self) -> None:
        self.engine.close()


class SessionPool:
    """Bounded pool of warm engine sessions, keyed by graph fingerprint."""

    def __init__(
        self,
        engine_factory: Callable[[Graph], KaleidoEngine],
        max_sessions_per_graph: int = 4,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_sessions_per_graph < 1:
            raise ValueError("max_sessions_per_graph must be positive")
        self._engine_factory = engine_factory
        self.max_sessions_per_graph = max_sessions_per_graph
        self._cond = threading.Condition()
        self._sessions: dict[str, list[EngineSession]] = {}
        self._closed = False
        metrics = metrics if metrics is not None else MetricsRegistry()
        self._created = metrics.counter("service.sessions.created")
        self._reused = metrics.counter("service.sessions.reused")
        self._live = metrics.gauge("service.sessions.live")

    @contextmanager
    def session(self, graph: Graph) -> Iterator[EngineSession]:
        """Borrow a session for ``graph``, blocking at the per-graph cap."""
        acquired = self._acquire(graph)
        try:
            yield acquired
        finally:
            self._release(acquired)

    def _acquire(self, graph: Graph) -> EngineSession:
        fingerprint = graph.fingerprint()
        with self._cond:
            while True:
                if self._closed:
                    raise RuntimeError("session pool is closed")
                sessions = self._sessions.setdefault(fingerprint, [])
                for candidate in sessions:
                    if candidate.try_acquire():
                        self._reused.inc()
                        return candidate
                if len(sessions) < self.max_sessions_per_graph:
                    session = EngineSession(graph, self._engine_factory(graph))
                    session.try_acquire()
                    sessions.append(session)
                    self._created.inc()
                    self._live.set(self._total_locked())
                    return session
                self._cond.wait()

    def _release(self, session: EngineSession) -> None:
        with self._cond:
            session.release()
            self._cond.notify()

    def _total_locked(self) -> int:
        return sum(len(sessions) for sessions in self._sessions.values())

    def drop_graph(self, fingerprint: str) -> int:
        """Close and forget every idle session for one fingerprint.

        A busy session (query in flight) is left to its borrower and
        simply forgotten here; its engine closes when the pool does not
        know it any more and the run finishes.  Returns the number of
        sessions dropped.
        """
        with self._cond:
            doomed = self._sessions.pop(fingerprint, [])
            self._live.set(self._total_locked())
            self._cond.notify_all()
        closed = 0
        for session in doomed:
            if session.try_acquire():
                session.close()
                session.release()
                closed += 1
        return len(doomed)

    def __len__(self) -> int:
        with self._cond:
            return self._total_locked()

    def close(self) -> None:
        """Close every session's engine (idempotent)."""
        with self._cond:
            self._closed = True
            doomed = [s for sessions in self._sessions.values() for s in sessions]
            self._sessions.clear()
            self._live.set(0)
            self._cond.notify_all()
        for session in doomed:
            session.close()
