#!/usr/bin/env python
"""Pipeline smoke benchmark: one small motif workload, both executors.

Runs 3-motif counting on the tiny citeseer stand-in under the serial
(work-stealing replay) executor and the real thread-pool executor, and
writes a ``BENCH_pipeline.json`` record with wall seconds, peak bytes,
and utilization per executor plus the per-stage phase spans.  The serial
run is traced, and Fig-17-style per-worker busy fractions are derived
from its part spans (plus a validity check on the Chrome trace_event
export).  Also exercises the crash-recovery path once: a 4-motif run is
killed right after its first checkpoint and resumed, and the resumed
pattern map must match an uninterrupted run.  Meant as a cheap CI guard
that the plan → execute → aggregate pipeline, the observability layer,
and the resume path stay wired up, not as a performance measurement.

Usage::

    PYTHONPATH=src python scripts/bench_smoke.py [--out BENCH_pipeline.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import KaleidoEngine, MotifCounting  # noqa: E402
from repro.core.executor import EXECUTOR_CHOICES  # noqa: E402
from repro.graph import datasets  # noqa: E402
from repro.obs import Tracer, chrome_trace, worker_busy_fractions  # noqa: E402


def run_one(
    graph, executor: str, tracer: Tracer | None = None, sanitize: bool = False
) -> dict:
    with KaleidoEngine(
        graph, workers=4, executor=executor, tracer=tracer, sanitize=sanitize
    ) as engine:
        result = engine.run(MotifCounting(3))
    record = {
        "executor": result.extra["executor"],
        "wall_seconds": result.wall_seconds,
        "peak_bytes": result.peak_memory_bytes,
        "utilization": result.utilization,
        "phase_spans": result.phase_spans,
        "pattern_counts": sorted(result.value.values()),
    }
    if tracer is not None:
        record["worker_busy_fractions"] = _fig17_record(tracer, engine)
    return record


def _fig17_record(tracer: Tracer, engine: KaleidoEngine) -> dict:
    """Fig-17-style per-worker busy fractions, derived from part spans.

    Also sanity-checks the Chrome export: every part span must land on a
    named worker track and the trace must be valid trace_event JSON.
    """
    trace = chrome_trace(tracer)
    json.dumps(trace)  # must serialize cleanly
    named = {e["args"]["name"] for e in trace["traceEvents"] if e["ph"] == "M"}
    part_tids = {e["tid"] for e in trace["traceEvents"] if e["ph"] == "X"}
    meta_tids = {
        e["tid"] for e in trace["traceEvents"] if e["ph"] == "M"
    }
    if not part_tids <= meta_tids:
        raise RuntimeError("part spans on unnamed tracks in the Chrome trace")
    if not any(name.startswith("worker-") for name in named):
        raise RuntimeError("no worker tracks in the Chrome trace")
    fractions = worker_busy_fractions(tracer)
    return {worker: round(frac, 4) for worker, frac in sorted(fractions.items())}


class _SimulatedCrash(BaseException):
    pass


def run_resume_smoke(graph, sanitize: bool = False) -> dict:
    """Crash a 4-motif run after its first checkpoint, resume, and verify
    the resumed pattern map matches an uninterrupted run."""
    with KaleidoEngine(graph, sanitize=sanitize) as engine:
        straight = engine.run(MotifCounting(4))

    with tempfile.TemporaryDirectory(prefix="kaleido-resume-smoke-") as ckpt:
        def crash(iteration: int, path: str) -> None:
            if iteration == 0:
                raise _SimulatedCrash

        try:
            KaleidoEngine(graph, checkpoint_dir=ckpt, on_checkpoint=crash).run(
                MotifCounting(4)
            )
            raise RuntimeError("simulated crash did not fire")
        except _SimulatedCrash:
            pass
        with KaleidoEngine(graph, checkpoint_dir=ckpt, sanitize=sanitize) as engine:
            resumed = engine.run(MotifCounting(4), resume=True)

    if resumed.pattern_map != straight.pattern_map:
        raise RuntimeError("resumed pattern map differs from uninterrupted run")
    return {
        "resumed_from_level": resumed.extra["resumed_from_level"],
        "pattern_counts": sorted(resumed.value.values()),
        "matches_uninterrupted": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_pipeline.json")
    parser.add_argument("--dataset", default="citeseer")
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run under the part-purity sanitizer (race check rides along)",
    )
    args = parser.parse_args(argv)

    graph = datasets.load(args.dataset, "tiny")
    runs = [
        run_one(
            graph,
            executor,
            tracer=Tracer() if executor == "serial" else None,
            sanitize=args.sanitize,
        )
        for executor in EXECUTOR_CHOICES
    ]

    counts = {tuple(run["pattern_counts"]) for run in runs}
    if len(counts) != 1:
        print("FAIL: executors disagree on pattern counts", file=sys.stderr)
        for run in runs:
            print(f"  {run['executor']}: {run['pattern_counts']}", file=sys.stderr)
        return 1

    resume = run_resume_smoke(graph, sanitize=args.sanitize)
    record = {
        "benchmark": "pipeline_smoke",
        "workload": {"app": "motif", "k": 3, "dataset": args.dataset, "profile": "tiny"},
        "sanitize": args.sanitize,
        "runs": runs,
        "resume_smoke": resume,
    }
    with open(args.out, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    for run in runs:
        print(
            f"{run['executor']:>10}: {run['wall_seconds']:.3f}s wall, "
            f"{run['peak_bytes']} peak bytes, {run['utilization']:.2f} utilization"
        )
        if "worker_busy_fractions" in run:
            busy = ", ".join(
                f"{worker}={frac:.2f}"
                for worker, frac in run["worker_busy_fractions"].items()
            )
            print(f"{'':>10}  busy fractions: {busy}")
    print(
        f"resume smoke: restarted from level {resume['resumed_from_level']}, "
        f"pattern map matches uninterrupted run"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
