"""Clique discovery in a synthetic financial transaction network.

The paper's introduction motivates clique discovery with fraud detection
in financial networks (Eberle et al.): a ring of accounts that all
transact with each other is suspicious.  This example plants collusion
rings inside a realistic sparse transaction graph, then uses Kaleido's
clique discovery to recover them.

Usage::

    python examples/fraud_cliques.py
"""

from __future__ import annotations

import numpy as np

from repro import CliqueDiscovery, KaleidoEngine
from repro.graph import GraphBuilder


RING_SIZE = 5
NUM_RINGS = 3
NUM_ACCOUNTS = 800
BACKGROUND_EDGES = 2400
SEED = 42


def build_transaction_network() -> tuple:
    """A sparse random transaction graph with planted collusion rings."""
    rng = np.random.default_rng(SEED)
    builder = GraphBuilder(NUM_ACCOUNTS)
    # Background traffic: random account-to-account transfers.
    seen = set()
    while len(seen) < BACKGROUND_EDGES:
        u = int(rng.integers(NUM_ACCOUNTS))
        v = int(rng.integers(NUM_ACCOUNTS))
        if u != v and (min(u, v), max(u, v)) not in seen:
            seen.add((min(u, v), max(u, v)))
            builder.add_edge(u, v)
    # Planted rings: every pair inside a ring transacts.
    rings = []
    accounts = rng.choice(NUM_ACCOUNTS, size=NUM_RINGS * RING_SIZE, replace=False)
    for r in range(NUM_RINGS):
        ring = sorted(int(a) for a in accounts[r * RING_SIZE : (r + 1) * RING_SIZE])
        rings.append(tuple(ring))
        for i, u in enumerate(ring):
            for v in ring[i + 1 :]:
                builder.add_edge(u, v)
    return builder.build(name="transactions"), rings


def main() -> None:
    graph, planted = build_transaction_network()
    print(f"Transaction network: {graph}")
    print(f"Planted {NUM_RINGS} collusion rings of size {RING_SIZE}\n")

    result = KaleidoEngine(graph).run(
        CliqueDiscovery(RING_SIZE, materialize=True)
    )
    print(f"{RING_SIZE}-cliques found: {result.value.count}")
    print(f"  runtime {result.wall_seconds:.3f}s, "
          f"peak memory {result.peak_memory_bytes / 1e6:.2f} MB")

    found = {tuple(sorted(c)) for c in result.value.cliques or []}
    recovered = sum(1 for ring in planted if ring in found)
    print(f"  planted rings recovered: {recovered}/{NUM_RINGS}")
    extras = found - set(planted)
    if extras:
        print(f"  additional dense groups worth investigating: {len(extras)}")
        for clique in sorted(extras)[:5]:
            print(f"    accounts {clique}")
    assert recovered == NUM_RINGS, "all planted rings must be recovered"


if __name__ == "__main__":
    main()
