"""Extension benchmark: exact vs sampling-based approximate motif counting.

Not a paper table — the paper's related work contrasts Kaleido with ASAP's
accuracy/latency trade-off (Section 7); this quantifies that trade-off
inside our engine: relative error and speedup of the parent-sampling
estimator versus the exhaustive count, across sampling budgets.
"""

import time

import pytest

from repro import KaleidoEngine, MotifCounting
from repro.apps import approximate_motifs
from repro.bench import PROFILE, bench_graph, format_table

from conftest import run_once

SAMPLE_BUDGETS = [100, 400, 1600, 6400]


@pytest.mark.benchmark(group="extension")
def test_extension_approximate_motifs(benchmark, emit):
    rows = []

    def run():
        graph = bench_graph("youtube")
        started = time.perf_counter()
        exact = KaleidoEngine(graph).run(MotifCounting(3)).value
        exact_seconds = time.perf_counter() - started
        total_exact = sum(exact.values())
        for samples in SAMPLE_BUDGETS:
            started = time.perf_counter()
            approx = approximate_motifs(graph, 3, samples=samples, seed=7)
            seconds = time.perf_counter() - started
            total_est = sum(e.estimate for e in approx.values())
            err = abs(total_est - total_exact) / total_exact
            per_class_err = max(
                abs(approx[h].estimate - exact.get(h, 0)) / max(1, exact.get(h, 0))
                for h in approx
            )
            rows.append(
                [
                    str(samples),
                    f"{seconds:.3f}",
                    f"{exact_seconds / max(seconds, 1e-9):.1f}x",
                    f"{err * 100:.2f}%",
                    f"{per_class_err * 100:.2f}%",
                ]
            )
        return rows, exact_seconds

    result_rows, exact_seconds = run_once(benchmark, run)
    table = format_table(
        ["samples", "time (s)", "speedup vs exact", "total err", "worst class err"],
        result_rows,
        title=(
            f"Extension — approximate 3-motif counting on youtube "
            f"(exact: {exact_seconds:.3f}s, profile: {PROFILE})"
        ),
    )
    emit(table, name="extension_approx")

    # Error shrinks as the budget grows (compare the ends of the ladder).
    first_err = float(result_rows[0][3].rstrip("%"))
    last_err = float(result_rows[-1][3].rstrip("%"))
    assert last_err <= first_err + 1e-9
    assert last_err < 10.0
