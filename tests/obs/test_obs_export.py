"""Unit tests for the Chrome/JSONL/text exporters and Fig-17 fractions."""

import io
import json

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    text_summary,
    worker_busy_fractions,
    write_chrome_trace,
    write_jsonl,
)


class FakeClock:
    def __init__(self) -> None:
        self.time = 0.0

    def __call__(self) -> float:
        self.time += 0.5
        return self.time


def _sample_tracer() -> Tracer:
    tracer = Tracer(clock=FakeClock())
    with tracer.span("run", app="motif"):
        with tracer.span("level", index=0):
            tracer.instant("spill", depth=1)
        tracer.complete("part", start=0.0, end=1.0, track="worker-0",
                        parent="execute", task=0, worker=0)
        tracer.complete("part", start=1.0, end=1.5, track="worker-1",
                        parent="execute", task=1, worker=1)
    return tracer


def test_chrome_trace_structure():
    trace = chrome_trace(_sample_tracer())
    assert trace["displayTimeUnit"] == "ms"
    events = trace["traceEvents"]
    json.dumps(trace)  # must be valid JSON end to end

    metas = [e for e in events if e["ph"] == "M"]
    assert {m["args"]["name"] for m in metas} == {"engine", "worker-0", "worker-1"}
    assert all(m["name"] == "thread_name" for m in metas)

    phases = sorted(e["ph"] for e in events if e["ph"] != "M")
    assert phases == ["B", "B", "E", "E", "X", "X", "i"]

    # B/E pairs nest: run opens before level and closes after it.
    begins = [e for e in events if e["ph"] == "B"]
    ends = [e for e in events if e["ph"] == "E"]
    assert begins[0]["name"] == "run" and begins[1]["name"] == "level"
    assert ends[0]["name"] == "level" and ends[1]["name"] == "run"

    completes = [e for e in events if e["ph"] == "X"]
    assert all("dur" in e for e in completes)
    assert completes[0]["dur"] == pytest.approx(1e6)

    (instant,) = [e for e in events if e["ph"] == "i"]
    assert instant["s"] == "t"
    assert instant["args"] == {"depth": 1}

    # Timestamps are microseconds, monotonically sorted.
    ts = [e["ts"] for e in events if e["ph"] != "M"]
    assert ts == sorted(ts)


def test_chrome_trace_engine_track_is_tid_one():
    trace = chrome_trace(_sample_tracer())
    engine_meta = next(
        e for e in trace["traceEvents"]
        if e["ph"] == "M" and e["args"]["name"] == "engine"
    )
    assert engine_meta["tid"] == 1
    run_begin = next(
        e for e in trace["traceEvents"] if e["ph"] == "B" and e["name"] == "run"
    )
    assert run_begin["tid"] == 1


def test_write_chrome_trace_to_path_and_file(tmp_path):
    tracer = _sample_tracer()
    path = tmp_path / "trace.json"
    write_chrome_trace(str(path), tracer)
    from_path = json.loads(path.read_text())
    buffer = io.StringIO()
    write_chrome_trace(buffer, tracer)
    from_file = json.loads(buffer.getvalue())
    assert from_path == from_file
    assert len(from_path["traceEvents"]) > 0


def test_write_jsonl_round_trip(tmp_path):
    tracer = _sample_tracer()
    path = tmp_path / "trace.jsonl"
    write_jsonl(str(path), tracer)
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(lines) == len(tracer.events)
    by_kind = {}
    for record in lines:
        by_kind.setdefault(record["kind"], []).append(record)
    assert len(by_kind["complete"]) == 2
    assert all("dur" in r for r in by_kind["complete"])
    assert all("dur" not in r for r in by_kind["begin"])


def test_worker_busy_fractions():
    tracer = Tracer(clock=FakeClock())
    # worker-0 busy 2s of a 2s horizon; worker-1 busy 1s.
    tracer.complete("part", start=0.0, end=1.0, track="worker-0")
    tracer.complete("part", start=1.0, end=2.0, track="worker-0")
    tracer.complete("part", start=0.5, end=1.5, track="worker-1")
    fractions = worker_busy_fractions(tracer)
    assert fractions == {"worker-0": pytest.approx(1.0), "worker-1": pytest.approx(0.5)}


def test_worker_busy_fractions_ignores_engine_thread_spans():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("run"):
        pass
    assert worker_busy_fractions(tracer) == {}


def test_text_summary_sections():
    tracer = _sample_tracer()
    registry = MetricsRegistry()
    registry.counter("io.retries").inc(2)
    registry.gauge("queue.depth").set(4)
    registry.histogram("io.write_seconds").observe(0.25)
    summary = text_summary(tracer, registry)
    assert "spans:" in summary
    assert "run" in summary and "part" in summary
    assert "instants:" in summary and "spill" in summary
    assert "worker busy fractions:" in summary
    assert "metrics:" in summary and "io.retries" in summary
    assert text_summary([]) == "(no events recorded)"
