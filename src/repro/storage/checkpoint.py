"""Checkpointing a CSE to disk and resuming from it.

Deep explorations are expensive; the level-by-level CSE layout makes the
whole intermediate state trivially serialisable — one ``.npy`` pair per
level plus a JSON manifest.  A later process can reload the CSE and keep
exploring (or aggregate) without redoing earlier iterations; spilled
levels are materialised through their chunk iterator, so checkpointing
works in hybrid mode too.
"""

from __future__ import annotations

import json
import os

import numpy as np

from ..core.cse import CSE, InMemoryLevel
from ..errors import StorageError

__all__ = ["save_cse", "load_cse"]

_MANIFEST = "cse_manifest.json"
_FORMAT_VERSION = 1


def save_cse(cse: CSE, directory: str | os.PathLike[str]) -> None:
    """Write every level of ``cse`` into ``directory``.

    The directory is created if needed; an existing checkpoint there is
    overwritten atomically enough for our purposes (manifest last).
    """
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    levels_meta = []
    for idx, level in enumerate(cse.levels):
        vert_path = os.path.join(directory, f"level{idx}_vert.npy")
        chunks = list(level.iter_vert_chunks())
        vert = np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.int32)
        np.save(vert_path, vert, allow_pickle=False)
        entry = {"vert": os.path.basename(vert_path), "count": int(vert.shape[0])}
        off = level.off_array()
        if off is not None:
            off_path = os.path.join(directory, f"level{idx}_off.npy")
            np.save(off_path, off, allow_pickle=False)
            entry["off"] = os.path.basename(off_path)
        levels_meta.append(entry)
    manifest = {"version": _FORMAT_VERSION, "levels": levels_meta}
    with open(os.path.join(directory, _MANIFEST), "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)


def load_cse(directory: str | os.PathLike[str]) -> CSE:
    """Reload a checkpointed CSE (all levels in memory)."""
    directory = os.fspath(directory)
    manifest_path = os.path.join(directory, _MANIFEST)
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise StorageError(f"cannot read CSE manifest at {manifest_path}: {exc}") from exc
    if manifest.get("version") != _FORMAT_VERSION:
        raise StorageError(
            f"unsupported CSE checkpoint version {manifest.get('version')!r}"
        )
    levels_meta = manifest.get("levels", [])
    if not levels_meta:
        raise StorageError("checkpoint contains no levels")
    try:
        root_vert = np.load(
            os.path.join(directory, levels_meta[0]["vert"]), allow_pickle=False
        )
    except OSError as exc:
        raise StorageError(f"missing checkpoint level file: {exc}") from exc
    cse = CSE(root_vert)
    for entry in levels_meta[1:]:
        try:
            vert = np.load(os.path.join(directory, entry["vert"]), allow_pickle=False)
            off = np.load(os.path.join(directory, entry["off"]), allow_pickle=False)
        except (OSError, KeyError) as exc:
            raise StorageError(f"corrupt checkpoint entry {entry!r}: {exc}") from exc
        cse.append_level(InMemoryLevel(vert, off))
    return cse
