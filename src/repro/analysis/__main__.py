"""CLI entry point: ``python -m repro.analysis [paths...]``.

Exit codes: 0 clean, 1 violations found, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys

from .linter import lint_paths
from .rules import RULES

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Invariant lint suite: machine-check the engine's "
        "concurrency and determinism contracts (rules R001-R005).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (also bypasses module "
        "scoping), e.g. --select R001,R003",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            scope = ", ".join(rule.scope) if rule.scope else "everywhere"
            print(f"{rule.id}  {rule.title}  [{scope}]")
        return 0

    select = None
    if args.select is not None:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
    try:
        diagnostics = lint_paths(args.paths, select=select)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for diag in diagnostics:
        print(diag.format())
    if diagnostics:
        noun = "violation" if len(diagnostics) == 1 else "violations"
        print(f"found {len(diagnostics)} {noun}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
