"""Project-specific static-analysis rules R001-R005.

Each rule encodes one engine contract that earlier PRs established by
review and that nothing previously machine-checked:

========  ==============================================================
R001      Part purity: ``MiningApplication`` subclasses must not write
          ``self.*`` inside per-part hot methods (``map_embedding``,
          ``embedding_filter``, ``start_part`` and anything they reach
          through ``self``).  Concurrent executors run parts on pool
          threads; shared-state mutation there is the exact bug class
          the PR 1 review found in FSM.  Mutation belongs in the part
          state returned by ``start_part`` and absorbed serially by
          ``finish_part``.
R002      Determinism: no wall-clock / entropy sources (``time.time``,
          the global ``random`` state, ``os.urandom``, ``uuid.uuid1/4``,
          ``datetime.now``) and no syntactic set-iteration-order hazards
          in ``core/``, ``apps/``, ``balance/`` and ``service/`` (the
          query tier caches on content identity and must replay
          byte-identically, so request ids come from a counter and
          sampling seeds from the request).  Clocks must be
          injected (as ``obs.trace.Tracer`` does) and randomness must go
          through a seeded generator.  ``time.perf_counter`` and
          ``time.monotonic`` stay legal: they measure work, they do not
          feed mined results.
R003      Tracer guard: in hot-path modules every ``tracer.begin`` /
          ``end`` / ``instant`` / ``complete`` call must be dominated by
          an ``if tracer.enabled`` check.  The NULL_TRACER no-op costs
          one attribute probe, but building the call's keyword arguments
          does not go away — an unguarded probe taxes every iteration.
R004      Dtype discipline: no hard-coded ``np.int32`` in the modules
          where the id dtype must be threaded (kernels, planner, sinks,
          spill and checkpoint storage).  A narrow literal is what
          truncates ids past the 2^31 boundary; ``np.int64`` literals
          stay legal because offsets/keys are always 64-bit and widening
          cannot corrupt an id.  The selection point itself
          (``id_dtype``) and ``np.iinfo`` boundary queries are exempt.
R005      Error taxonomy: no bare ``except:`` and no swallowed
          ``except Exception/BaseException`` in ``storage/`` or
          ``service/``; catch-all handlers must re-raise (a typed class
          from ``repro.errors``), otherwise corruption, disk faults and
          tenant-facing failures turn into silently wrong results.
========  ==============================================================

Rules operate purely on the AST — nothing is imported or executed — and
report precise ``file:line:col`` diagnostics that the suppression
comments of :mod:`repro.analysis.diagnostics` can silence.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .diagnostics import Diagnostic

__all__ = ["Rule", "RULES", "rule_ids"]


class Rule:
    """One invariant check over a parsed module."""

    id: str = ""
    title: str = ""
    #: Path prefixes (relative to the ``repro`` package root) the rule is
    #: scoped to; an empty tuple means every module.
    scope: tuple[str, ...] = ()

    def applies(self, rel_module: str | None) -> bool:
        """Whether the rule is in scope for ``rel_module``.

        ``None`` (a file outside the package, e.g. a fixture) applies
        every rule — explicit ``select`` lists drive those checks.
        """
        if rel_module is None or not self.scope:
            return True
        return any(
            rel_module == prefix or rel_module.startswith(prefix)
            for prefix in self.scope
        )

    def check(
        self, tree: ast.Module, parents: dict[int, ast.AST], path: str
    ) -> list[Diagnostic]:  # pragma: no cover - protocol
        raise NotImplementedError

    def diagnostic(self, node: ast.AST, path: str, message: str) -> Diagnostic:
        return Diagnostic(
            rule=self.id,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def _terminal_name(node: ast.AST) -> str | None:
    """The last dotted component of a Name/Attribute expression."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _root_name(node: ast.AST) -> str | None:
    """The first dotted component of a Name/Attribute/Subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _self_rooted_targets(target: ast.AST) -> Iterable[ast.AST]:
    """Yield assignment targets whose chain starts at ``self``."""
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _self_rooted_targets(element)
    elif isinstance(target, ast.Starred):
        yield from _self_rooted_targets(target.value)
    elif isinstance(target, (ast.Attribute, ast.Subscript)):
        if _root_name(target) == "self":
            yield target


def _first_self_attr(node: ast.AST) -> str:
    """Best-effort attribute name for a ``self``-rooted chain."""
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute) and isinstance(child.value, ast.Name):
            if child.value.id == "self":
                return child.attr
    return "<attribute>"


def _contains_self_attribute(node: ast.AST) -> bool:
    return any(
        isinstance(child, ast.Attribute)
        and isinstance(child.value, ast.Name)
        and child.value.id == "self"
        for child in ast.walk(node)
    )


def _mentions_enabled(node: ast.AST) -> bool:
    return any(
        isinstance(child, ast.Attribute) and child.attr == "enabled"
        for child in ast.walk(node)
    )


def _ancestors(node: ast.AST, parents: dict[int, ast.AST]) -> Iterable[ast.AST]:
    current = parents.get(id(node))
    while current is not None:
        yield current
        current = parents.get(id(current))


# ----------------------------------------------------------------------
# R001 — part purity
# ----------------------------------------------------------------------
class PartPurityRule(Rule):
    id = "R001"
    title = "no shared-state writes in per-part hot methods"
    scope = ()  # every MiningApplication subclass, wherever it lives

    #: Hot entry points: called per part, possibly on pool threads.
    HOT_ENTRY = ("map_embedding", "embedding_filter", "start_part")
    #: Method names that mutate their receiver in place.
    MUTATORS = frozenset(
        {
            "append",
            "extend",
            "insert",
            "remove",
            "pop",
            "popitem",
            "clear",
            "add",
            "discard",
            "update",
            "setdefault",
            "sort",
            "reverse",
            "appendleft",
            "extendleft",
        }
    )

    def check(self, tree, parents, path):
        diagnostics: list[Diagnostic] = []
        classes = [node for node in ast.walk(tree) if isinstance(node, ast.ClassDef)]
        app_names = {"MiningApplication"}
        changed = True
        while changed:  # transitive: subclasses of in-file app subclasses
            changed = False
            for cls in classes:
                if cls.name in app_names:
                    continue
                bases = {_terminal_name(base) for base in cls.bases}
                if bases & app_names:
                    app_names.add(cls.name)
                    changed = True
        for cls in classes:
            if cls.name in app_names and cls.name != "MiningApplication":
                diagnostics.extend(self._check_class(cls, path))
        return diagnostics

    def _check_class(self, cls: ast.ClassDef, path: str) -> list[Diagnostic]:
        methods = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        hot = {name for name in self.HOT_ENTRY if name in methods}
        changed = True
        while changed:  # close over self-method calls from hot methods
            changed = False
            for name in tuple(hot):
                for node in ast.walk(methods[name]):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id == "self"
                        and node.func.attr in methods
                        and node.func.attr not in hot
                    ):
                        hot.add(node.func.attr)
                        changed = True
        diagnostics: list[Diagnostic] = []
        for name in sorted(hot):
            diagnostics.extend(self._check_method(cls, methods[name], path))
        return diagnostics

    def _check_method(
        self, cls: ast.ClassDef, method: ast.FunctionDef, path: str
    ) -> list[Diagnostic]:
        where = (
            f"in per-part hot method '{cls.name}.{method.name}'; per-part "
            f"mutation belongs in the start_part/finish_part part state"
        )
        diagnostics: list[Diagnostic] = []
        for node in ast.walk(method):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = node.targets
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self.MUTATORS
                and _contains_self_attribute(node.func.value)
            ):
                diagnostics.append(
                    self.diagnostic(
                        node,
                        path,
                        f"'.{node.func.attr}(...)' mutates shared application "
                        f"state ('self.{_first_self_attr(node.func.value)}') "
                        + where,
                    )
                )
                continue
            else:
                continue
            for target in targets:
                for hit in _self_rooted_targets(target):
                    diagnostics.append(
                        self.diagnostic(
                            hit,
                            path,
                            f"writes shared application state "
                            f"('self.{_first_self_attr(hit)}') " + where,
                        )
                    )
        return diagnostics


# ----------------------------------------------------------------------
# R002 — determinism
# ----------------------------------------------------------------------
class DeterminismRule(Rule):
    id = "R002"
    title = "no wall clocks, global RNG or set-order hazards"
    scope = ("core/", "apps/", "balance/", "service/")

    #: module -> function names whose results depend on wall clock/entropy.
    BANNED_CALLS = {
        "time": {"time", "time_ns"},
        "os": {"urandom"},
        "uuid": {"uuid1", "uuid4"},
    }
    #: ``random.X(...)`` exemptions: explicitly seeded generator classes.
    RANDOM_ALLOWED = {"Random"}
    #: ``np.random.X(...)`` exemptions: seeded generator constructors.
    NP_RANDOM_ALLOWED = {
        "default_rng",
        "Generator",
        "RandomState",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "Philox",
        "MT19937",
        "SFC64",
    }
    _SET_CONSUMERS = {"list", "tuple", "iter", "enumerate"}

    def check(self, tree, parents, path):
        diagnostics: list[Diagnostic] = []
        module_aliases, from_banned = self._imports(tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                diagnostics.extend(
                    self._check_call(node, module_aliases, from_banned, path)
                )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                diagnostics.extend(self._check_set_iter(node.iter, path))
            elif isinstance(node, ast.comprehension):
                diagnostics.extend(self._check_set_iter(node.iter, path))
        return diagnostics

    def _imports(self, tree):
        module_aliases: dict[str, str] = {}
        from_banned: dict[str, tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    module_aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module is not None:
                banned = self.BANNED_CALLS.get(node.module, set())
                for alias in node.names:
                    if node.module == "random" and alias.name not in self.RANDOM_ALLOWED:
                        from_banned[alias.asname or alias.name] = (
                            "random",
                            alias.name,
                        )
                    elif alias.name in banned:
                        from_banned[alias.asname or alias.name] = (
                            node.module,
                            alias.name,
                        )
        return module_aliases, from_banned

    def _check_call(self, node, module_aliases, from_banned, path):
        func = node.func
        hint = "inject a clock or a seeded generator instead"
        if isinstance(func, ast.Name):
            if func.id in from_banned:
                module, original = from_banned[func.id]
                return [
                    self.diagnostic(
                        node,
                        path,
                        f"call to '{module}.{original}' in a deterministic "
                        f"module; {hint}",
                    )
                ]
            if func.id in self._SET_CONSUMERS and len(node.args) == 1:
                return self._check_set_iter(node.args[0], path)
            return []
        if not isinstance(func, ast.Attribute):
            return []
        receiver = func.value
        # np.random.X(...) — global numpy RNG state.
        if (
            isinstance(receiver, ast.Attribute)
            and receiver.attr == "random"
            and isinstance(receiver.value, ast.Name)
            and module_aliases.get(receiver.value.id) == "numpy"
            and func.attr not in self.NP_RANDOM_ALLOWED
        ):
            return [
                self.diagnostic(
                    node,
                    path,
                    f"'numpy.random.{func.attr}' uses the global RNG state; "
                    f"seed an explicit np.random.default_rng",
                )
            ]
        if not isinstance(receiver, ast.Name):
            return []
        module = module_aliases.get(receiver.id)
        if module == "random" and func.attr not in self.RANDOM_ALLOWED:
            return [
                self.diagnostic(
                    node,
                    path,
                    f"'random.{func.attr}' uses the global RNG state; "
                    f"seed an explicit random.Random",
                )
            ]
        if module in self.BANNED_CALLS and func.attr in self.BANNED_CALLS[module]:
            return [
                self.diagnostic(
                    node,
                    path,
                    f"wall-clock/entropy source '{module}.{func.attr}' in a "
                    f"deterministic module; {hint}",
                )
            ]
        if module == "datetime" or (
            isinstance(receiver, ast.Name) and receiver.id in ("datetime", "date")
        ):
            if func.attr in ("now", "utcnow", "today"):
                return [
                    self.diagnostic(
                        node,
                        path,
                        f"wall-clock source 'datetime.{func.attr}' in a "
                        f"deterministic module; {hint}",
                    )
                ]
        return []

    def _check_set_iter(self, expr: ast.AST, path: str) -> list[Diagnostic]:
        is_set = isinstance(expr, (ast.Set, ast.SetComp)) or (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in ("set", "frozenset")
        )
        if not is_set:
            return []
        return [
            self.diagnostic(
                expr,
                path,
                "iterating a set in hash order is not deterministic across "
                "processes; wrap it in sorted(...)",
            )
        ]


# ----------------------------------------------------------------------
# R003 — tracer guard
# ----------------------------------------------------------------------
class TracerGuardRule(Rule):
    id = "R003"
    title = "tracer probes in hot paths must check tracer.enabled"
    scope = ("core/kernels.py", "core/explore.py", "core/shm.py", "storage/")

    PROBES = frozenset({"begin", "end", "instant", "complete"})

    def check(self, tree, parents, path):
        diagnostics: list[Diagnostic] = []
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self.PROBES
            ):
                continue
            receiver = _terminal_name(node.func.value)
            if receiver is None or not receiver.lower().endswith("tracer"):
                continue
            if self._guarded(node, parents):
                continue
            diagnostics.append(
                self.diagnostic(
                    node,
                    path,
                    f"'{receiver}.{node.func.attr}(...)' in a hot-path module "
                    f"without a dominating 'if {receiver}.enabled' guard "
                    f"(argument construction is paid even under NULL_TRACER)",
                )
            )
        return diagnostics

    def _guarded(self, node: ast.Call, parents: dict[int, ast.AST]) -> bool:
        enclosing_function: ast.AST | None = None
        child: ast.AST = node
        for ancestor in _ancestors(node, parents):
            if isinstance(ancestor, ast.If) and _mentions_enabled(ancestor.test):
                return True
            if (
                isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef))
                and enclosing_function is None
            ):
                enclosing_function = ancestor
                if self._early_guard(ancestor, child):
                    return True
            if enclosing_function is None:
                child = ancestor
        return False

    @staticmethod
    def _early_guard(function: ast.AST, containing_stmt: ast.AST) -> bool:
        """An ``if not tracer.enabled: return`` before the call's statement."""
        body = getattr(function, "body", [])
        for stmt in body:
            if stmt is containing_stmt:
                return False
            if (
                isinstance(stmt, ast.If)
                and _mentions_enabled(stmt.test)
                and stmt.body
                and all(
                    isinstance(s, (ast.Return, ast.Raise, ast.Continue))
                    for s in stmt.body
                )
            ):
                return True
        return False


# ----------------------------------------------------------------------
# R004 — dtype discipline
# ----------------------------------------------------------------------
class DtypeDisciplineRule(Rule):
    id = "R004"
    title = "no hard-coded narrow id dtypes where id_dtype is threaded"
    scope = (
        "core/kernels.py",
        "core/plan.py",
        "core/explore.py",
        "core/restrictions.py",
        "core/shm.py",
        "storage/spill.py",
        "storage/hybrid.py",
        "storage/checkpoint.py",
    )

    def check(self, tree, parents, path):
        diagnostics: list[Diagnostic] = []
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Attribute)
                and node.attr == "int32"
                and isinstance(node.value, ast.Name)
                and node.value.id in ("np", "numpy")
            ):
                continue
            if self._exempt(node, parents):
                continue
            diagnostics.append(
                self.diagnostic(
                    node,
                    path,
                    "hard-coded np.int32 in an id-carrying module truncates "
                    "ids past 2^31; thread the planner's id dtype "
                    "(kernels.id_dtype / DEFAULT_ID_DTYPE) instead",
                )
            )
        return diagnostics

    @staticmethod
    def _exempt(node: ast.AST, parents: dict[int, ast.AST]) -> bool:
        for ancestor in _ancestors(node, parents):
            if (
                isinstance(ancestor, ast.Call)
                and isinstance(ancestor.func, ast.Attribute)
                and ancestor.func.attr == "iinfo"
            ):
                return True  # boundary query, not an array dtype
            if (
                isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef))
                and ancestor.name == "id_dtype"
            ):
                return True  # the selection point itself
        return False


# ----------------------------------------------------------------------
# R005 — error taxonomy
# ----------------------------------------------------------------------
class ErrorTaxonomyRule(Rule):
    id = "R005"
    title = "storage/service catch-alls must re-raise typed errors"
    scope = ("storage/", "service/")

    CATCH_ALLS = frozenset({"Exception", "BaseException"})

    def check(self, tree, parents, path):
        diagnostics: list[Diagnostic] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                diagnostics.append(
                    self.diagnostic(
                        node,
                        path,
                        "bare 'except:' in a fault-handling module; catch a "
                        "specific error and re-raise a typed class from "
                        "repro.errors",
                    )
                )
                continue
            caught = self._catch_all_name(node.type)
            if caught is None:
                continue
            if any(isinstance(child, ast.Raise) for child in ast.walk(node)):
                continue
            diagnostics.append(
                self.diagnostic(
                    node,
                    path,
                    f"'except {caught}' swallows the error; fault handlers "
                    f"must re-raise a typed class from repro.errors",
                )
            )
        return diagnostics

    def _catch_all_name(self, type_node: ast.AST) -> str | None:
        if isinstance(type_node, ast.Tuple):
            for element in type_node.elts:
                name = self._catch_all_name(element)
                if name is not None:
                    return name
            return None
        name = _terminal_name(type_node)
        return name if name in self.CATCH_ALLS else None


#: Registry, in rule-id order.
RULES: tuple[Rule, ...] = (
    PartPurityRule(),
    DeterminismRule(),
    TracerGuardRule(),
    DtypeDisciplineRule(),
    ErrorTaxonomyRule(),
)


def rule_ids() -> tuple[str, ...]:
    return tuple(rule.id for rule in RULES)
