"""Clique discovery (Section 5.1).

The EmbeddingFilter admits a candidate only when it is adjacent to *every*
embedding vertex, so after ``k - 1`` iterations the CSE's top level holds
exactly the k-cliques.  No Mapper work is needed — all embeddings share
one pattern — so the aggregation just counts.
"""

from __future__ import annotations

from ..core.api import EngineContext, MiningApplication, PatternMap
from ..core.cse import CSE
from ..core.pattern import Pattern, triangle_index

__all__ = ["CliqueDiscovery", "CliqueResult"]


class CliqueResult:
    """Number of k-cliques plus an optional materialised list."""

    def __init__(self, k: int, count: int, cliques: list[tuple[int, ...]] | None):
        self.k = k
        self.count = count
        self.cliques = cliques

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            return self.count == other
        if isinstance(other, CliqueResult):
            return (self.k, self.count) == (other.k, other.count)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CliqueResult(k={self.k}, count={self.count})"


class CliqueDiscovery(MiningApplication):
    """Discover (count, optionally materialise) all k-cliques."""

    induced = "vertex"

    def __init__(self, k: int, materialize: bool = False) -> None:
        if k < 2:
            raise ValueError("clique size must be at least 2")
        self.k = k
        self.materialize = materialize

    @property
    def name(self) -> str:
        return f"{self.k}-Clique"

    def iterations(self) -> int:
        return self.k - 1

    def query_pattern(self) -> Pattern:
        """The unlabeled complete pattern K_k."""
        bits = 0
        for i in range(self.k):
            for j in range(i + 1, self.k):
                bits |= 1 << triangle_index(i, j, self.k)
        return Pattern((0,) * self.k, bits)

    def embedding_filter(self, embedding: tuple[int, ...], candidate: int) -> bool:
        """Candidate must close a clique with every current member.

        The canonical filter already guaranteed adjacency to at least one
        member and ordering; here we require adjacency to all."""
        graph = self._graph
        return all(graph.has_edge(v, candidate) for v in embedding)

    def init(self, ctx: EngineContext):
        self._graph = ctx.graph
        return super().init(ctx)

    def map_embedding(
        self, ctx: EngineContext, embedding: tuple[int, ...], pmap: PatternMap
    ) -> None:
        pmap[0] = pmap.get(0, 0) + 1

    def finalize(self, ctx: EngineContext, cse: CSE, pmap: PatternMap) -> CliqueResult:
        count = pmap.get(0, 0)
        cliques = None
        if self.materialize:
            cliques = [emb for _, emb in cse.iter_embeddings()]
        return CliqueResult(self.k, count, cliques)
