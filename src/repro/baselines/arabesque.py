"""Arabesque-like baseline: think-like-an-embedding over an ODAG store.

Arabesque (SOSP'15) stores each level's embeddings in an Overapproximating
Directed Acyclic Graph (ODAG): per position, the array of vertex ids, with
edges between consecutive position arrays.  The ODAG is compact but lossy —
walking it enumerates spurious vertex sequences, so every walked sequence
must pass (a) consecutive-position connectivity and (b) a full canonicality
re-check (the paper pins ~5% of Arabesque's runtime on this re-check; the
walk's spurious sequences cost more).  Isomorphism goes through the
bliss-like search-tree hasher, as Arabesque uses bliss.

Memory is accounted like a JVM object graph: Arabesque materialises each
embedding as an object during processing, so the per-level working set is
``count * (tuple_overhead + 8 * k)`` bytes — the contrast with CSE's flat
4-byte-per-entry arrays is exactly the paper's Figure-10 memory story.

The walk here enumerates (prefix-connected) sequences from the per-position
arrays restricted to parent adjacency, then re-checks canonicality — a
faithful behavioural model even though the spurious-path blowup of a full
ODAG product walk is bounded by indexing parents, keeping Python runtimes
sane.  DESIGN.md records this substitution.
"""

from __future__ import annotations

import time
from typing import Iterable

import numpy as np

from ..apps.fsm import FSMResult, edge_pattern_supports
from ..apps.mni import MNIDomains, PositionMapper
from ..core.api import MiningResult
from ..core.canonical import edge_is_canonical, is_canonical
from ..core.pattern import Pattern
from ..graph.edge_index import EdgeIndex
from ..graph.graph import Graph
from ..storage.meter import MemoryMeter
from .blisslike import BlissLikeHasher

__all__ = ["ArabesqueLikeEngine"]

_TUPLE_OVERHEAD = 56  # CPython tuple header, measured
_LIST_SLOT = 8


class _OdagStore:
    """Per-level embedding store with JVM-like accounting."""

    def __init__(self) -> None:
        self.embeddings: list[tuple[int, ...]] = []

    def add(self, embedding: tuple[int, ...]) -> None:
        self.embeddings.append(embedding)

    def __iter__(self) -> Iterable[tuple[int, ...]]:
        return iter(self.embeddings)

    def __len__(self) -> int:
        return len(self.embeddings)

    @property
    def nbytes(self) -> int:
        if not self.embeddings:
            return 0
        k = len(self.embeddings[0])
        return len(self.embeddings) * (_TUPLE_OVERHEAD + 8 * k + _LIST_SLOT)


class ArabesqueLikeEngine:
    """Single-node model of Arabesque's embedding-centric engine."""

    def __init__(self, graph: Graph, hasher: BlissLikeHasher | None = None) -> None:
        self.graph = graph
        # Arabesque links bliss and canonicalises per embedding — no
        # memoisation (Section 1.2 pins >53% of its FSM runtime on the
        # resulting allocation churn).
        self.hasher = hasher if hasher is not None else BlissLikeHasher(cache=False)
        self.meter = MemoryMeter()
        self.meter.set("graph", graph.nbytes)
        # Arabesque's base system (Giraph workers, Hadoop client) holds a
        # large constant heap; we do not fabricate it (see EXPERIMENTS.md,
        # "known deviations") — accounted memory covers data structures only.

    # ------------------------------------------------------------------
    # Vertex-induced exploration with the ODAG re-check
    # ------------------------------------------------------------------
    def _expand_vertex_level(
        self, store: _OdagStore, clique_filter: bool = False
    ) -> _OdagStore:
        nxt = _OdagStore()
        graph = self.graph
        for emb in store:
            neighbor_arrays = [graph.neighbors(v) for v in emb]
            if len(neighbor_arrays) == 1:
                candidates = neighbor_arrays[0]
            else:
                candidates = np.unique(np.concatenate(neighbor_arrays))
            for cand in candidates.tolist():
                if cand in emb:
                    continue
                candidate_emb = emb + (cand,)
                # ODAG traversal cannot trust the stored order: full
                # canonical re-check of the whole embedding (Section 1.2).
                if not is_canonical(graph, candidate_emb):
                    continue
                if clique_filter and not all(
                    graph.has_edge(v, cand) for v in emb
                ):
                    continue
                nxt.add(candidate_emb)
        return nxt

    def _explore_vertex(self, depth: int, clique_filter: bool = False) -> _OdagStore:
        store = _OdagStore()
        for v in range(self.graph.num_vertices):
            store.add((v,))
        self.meter.set("odag-1", store.nbytes)
        for level in range(2, depth + 1):
            store = self._expand_vertex_level(store, clique_filter=clique_filter)
            self.meter.set(f"odag-{level}", store.nbytes)
        return store

    # ------------------------------------------------------------------
    # Applications
    # ------------------------------------------------------------------
    def run_motif(self, k: int) -> MiningResult:
        started = time.perf_counter()
        store = self._explore_vertex(k)
        counts: dict[int, int] = {}
        for emb in store:
            pattern = Pattern.from_vertex_embedding(self.graph, emb, use_labels=False)
            phash = self.hasher.hash_pattern(pattern)
            counts[phash] = counts.get(phash, 0) + 1
        self.meter.set("pattern_map", 160 * len(counts))
        self.meter.set("hasher", self.hasher.nbytes)
        return self._result(f"{k}-Motif", counts, counts, started)

    def run_clique(self, k: int) -> MiningResult:
        started = time.perf_counter()
        store = self._explore_vertex(k, clique_filter=True)
        count = len(store)
        return self._result(f"{k}-Clique", count, {0: count}, started)

    def run_triangles(self) -> MiningResult:
        started = time.perf_counter()
        store = self._explore_vertex(2)
        total = 0
        for u, v in store:
            common = self.graph.common_neighbors(u, v)
            total += int(np.count_nonzero(common > v))
        return self._result("TC", total, {0: total}, started)

    def run_fsm(self, num_edges: int, support: int) -> MiningResult:
        started = time.perf_counter()
        index = EdgeIndex(self.graph)
        self.meter.set("edge_index", index.nbytes)
        supports = edge_pattern_supports(self.graph)
        frequent_pairs = {
            key for key, dom in supports.items() if dom.support >= support
        }
        labels = self.graph.labels
        store: list[tuple[tuple[int, ...], tuple[tuple[int, int], ...]]] = []
        frequent_edges: set[tuple[int, int]] = set()
        eu, ev = self.graph.edge_arrays()
        elabels = (
            self.graph.edge_labels.tolist()
            if self.graph.has_edge_labels
            else [0] * eu.shape[0]
        )
        for eid, (u, v, elab) in enumerate(
            zip(eu.tolist(), ev.tolist(), elabels)
        ):
            lu, lv = int(labels[u]), int(labels[v])
            pair = (
                (lu, lv, int(elab)) if lu <= lv else (lv, lu, int(elab))
            )
            if pair in frequent_pairs:
                store.append(((eid,), ((u, v),)))
                frequent_edges.add((u, v))
        mapper = PositionMapper()
        reduced: dict[int, MNIDomains] = {}
        for _ in range(num_edges - 1):
            nxt: list[tuple[tuple[int, ...], tuple[tuple[int, int], ...]]] = []
            for ids, edges in store:
                vertices = sorted({w for e in edges for w in e})
                incident = [index.incident_edges(w) for w in vertices]
                candidates = np.unique(np.concatenate(incident))
                for cand in candidates.tolist():
                    if cand in ids:
                        continue
                    cand_edge = index.endpoints(cand)
                    if cand_edge not in frequent_edges:
                        continue
                    cand_ids = ids + (cand,)
                    cand_edges = edges + (cand_edge,)
                    # Full canonical re-check, as with the vertex walk.
                    if not edge_is_canonical(cand_edges, cand_ids):
                        continue
                    nxt.append((cand_ids, cand_edges))
            store = nxt
            self.meter.set(
                "odag-fsm",
                len(store) * (_TUPLE_OVERHEAD * 3 + 8 * 4 * num_edges + _LIST_SLOT),
            )
            reduced = {}
            keep = []
            for ids, edges in store:
                pattern = Pattern.from_edge_embedding(self.graph, edges)
                phash = self.hasher.hash_pattern(pattern)
                structure_order: list[int] = []
                seen: set[int] = set()
                for a, b in edges:
                    for w in (a, b):
                        if w not in seen:
                            seen.add(w)
                            structure_order.append(w)
                dom = reduced.get(phash)
                if dom is None:
                    dom = reduced[phash] = MNIDomains(len(structure_order))
                for placement in mapper.placements(pattern, structure_order):
                    dom.add(placement, None)
                keep.append(phash)
            frequent = {h for h, d in reduced.items() if d.support >= support}
            store = [entry for entry, h in zip(store, keep) if h in frequent]
            self.meter.set(
                "pattern_map", sum(120 + d.nbytes for d in reduced.values())
            )
            self.meter.set("hasher", self.hasher.nbytes)
        result_supports = {
            h: d.support for h, d in reduced.items() if d.support >= support
        }
        patterns = {}
        for phash in result_supports:
            rep = self.hasher.representative(phash)
            if rep is not None:
                patterns[phash] = rep
        value = FSMResult(result_supports, patterns)
        return self._result(
            f"{num_edges + 1}-FSM(s={support})", value, result_supports, started
        )

    # ------------------------------------------------------------------
    def _result(
        self, name: str, value, pattern_map: dict, started: float
    ) -> MiningResult:
        wall = time.perf_counter() - started
        return MiningResult(
            app_name=name,
            value=value,
            pattern_map=pattern_map,
            wall_seconds=wall,
            simulated_seconds=wall,
            peak_memory_bytes=self.meter.peak_bytes,
            memory_snapshot=self.meter.snapshot(),
        )
