"""The optimised inline hot paths must match their reference versions."""

import numpy as np

from repro.core import CSE, eigen_hash, faddeev_leverrier, weighted_adjacency
from repro.core.canonical import extends_canonically
from repro.core.explore import _extends_inline, expand_edge_level
from repro.core.pattern import Pattern
from repro.graph.edge_index import EdgeIndex
from tests.conftest import random_labeled_graph


def test_inline_extends_matches_reference():
    for seed in range(4):
        graph = random_labeled_graph(14, 30, 2, seed=seed)
        adjacency = graph.adjacency_sets()
        frontier = [(v,) for v in range(graph.num_vertices)]
        for _ in range(3):
            nxt = []
            for emb in frontier[:60]:
                for cand in range(graph.num_vertices):
                    assert _extends_inline(adjacency, emb, cand) == (
                        extends_canonically(graph, emb, cand)
                    ), (emb, cand)
                    if _extends_inline(adjacency, emb, cand):
                        nxt.append(emb + (cand,))
            frontier = nxt


def test_inline_edge_expand_matches_full_recheck():
    from repro.core.canonical import edge_is_canonical

    for seed in range(3):
        graph = random_labeled_graph(12, 24, 2, seed=10 + seed)
        index = EdgeIndex(graph)
        cse = CSE(np.arange(index.num_edges))
        for _ in range(2):
            expand_edge_level(graph, index, cse)
        for _, emb in cse.iter_embeddings():
            edges = tuple(index.endpoints(e) for e in emb)
            assert edge_is_canonical(edges, emb)


def test_inline_eigenhash_matches_pipeline_pieces():
    """eigen_hash's inlined decode/sort/weight/poly equals the composable
    building blocks it replaced."""
    rng = np.random.default_rng(5)
    for _ in range(40):
        k = int(rng.integers(2, 7))
        bits = int(rng.integers(0, 1 << (k * (k - 1) // 2)))
        labels = tuple(int(x) for x in rng.integers(0, 3, size=k))
        pattern = Pattern(labels, bits)
        normalized, _ = pattern.sorted_by_label_degree()
        poly_pipeline = faddeev_leverrier(weighted_adjacency(normalized))
        # Re-derive via the public hash twice for determinism, then check
        # the polynomial piece agrees with a from-scratch computation.
        assert eigen_hash(pattern) == eigen_hash(normalized)
        from repro.core.eigenhash import _stable_hash

        expected = (
            _stable_hash(normalized.labels)
            ^ _stable_hash(normalized.degree_sequence())
            ^ _stable_hash(poly_pipeline)
        )
        assert eigen_hash(pattern) == expected
