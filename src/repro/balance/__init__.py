"""Load balancing: candidate-size prediction, partitioning, scheduling."""

from .partition import PartitionQuality, balanced_parts, partition_quality
from .predict import merged_size, predict_edge_costs, predict_vertex_costs
from .worksteal import (
    Schedule,
    TaskInterval,
    simulate_work_stealing,
    utilization_series,
)

__all__ = [
    "balanced_parts",
    "partition_quality",
    "PartitionQuality",
    "predict_vertex_costs",
    "predict_edge_costs",
    "merged_size",
    "simulate_work_stealing",
    "Schedule",
    "TaskInterval",
    "utilization_series",
]
