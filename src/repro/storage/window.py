"""Sliding-window part reader with background prefetch (Section 4.1).

While the engine processes the *main* part of a window, background
threads load the next ``depth`` *candidate* parts; when the main part is
consumed the window slides (the oldest candidate becomes the main part
and the next load starts).  Disk reads release the GIL, so the prefetch
genuinely overlaps the pure-Python computation, hiding I/O exactly as
the paper describes.

The window size is ``1 + depth`` parts; ``depth=0`` (or
``prefetch=False``) degrades to fully synchronous reads — the shape the
engine falls back to when the device runs out of space.  A load error in
a prefetch thread is captured and re-raised on the consuming iterator at
the position of the failed part, never lost in the background thread.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import TYPE_CHECKING, Iterator

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .spill import PartHandle, PartStore

__all__ = ["SlidingWindowReader"]


def _touch_pages(array: np.ndarray) -> None:
    """Fault a memmapped part into the page cache (the prefetch 'read')."""
    if isinstance(array, np.memmap) and array.size:
        # One checksum-free pass over the bytes; madvise(WILLNEED) first
        # lets the kernel queue readahead before we walk the pages.
        base = array._mmap  # noqa: SLF001 - numpy keeps the mmap here
        if base is not None and hasattr(base, "madvise"):
            import mmap as _mmap

            try:
                base.madvise(_mmap.MADV_WILLNEED)
            except (OSError, ValueError):  # pragma: no cover - advisory only
                pass
        np.add.reduce(array[:: max(1, 4096 // array.itemsize)], dtype=np.int64)


class _Prefetch:
    """One in-flight background load."""

    __slots__ = ("thread", "result", "error", "done")

    def __init__(self, store: "PartStore", part: "PartHandle", loader=None) -> None:
        self.result: np.ndarray | None = None
        self.error: BaseException | None = None
        #: Set before the thread exits — ``is_set()`` at consume time is
        #: the prefetch *hit* signal (the read fully overlapped compute).
        self.done = threading.Event()

        def run() -> None:
            try:
                self.result = store.load(part) if loader is None else loader(part)
                if loader is not None:
                    _touch_pages(self.result)
            except BaseException as exc:  # repro: ignore[R005] -- deferred re-raise at consume()
                self.error = exc
            finally:
                self.done.set()

        self.thread = threading.Thread(
            target=run, name="kaleido-prefetch", daemon=True
        )
        self.thread.start()

    def wait(self) -> np.ndarray:
        self.thread.join()
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result


class SlidingWindowReader:
    """Iterates part arrays in order, prefetching ``depth`` parts ahead."""

    def __init__(
        self,
        store: "PartStore",
        parts: list["PartHandle"],
        prefetch: bool = True,
        depth: int = 1,
        loader=None,
    ) -> None:
        if depth < 0:
            raise ValueError("depth must be non-negative")
        self.store = store
        self.parts = parts
        self.prefetch = prefetch and depth > 0
        self.depth = depth
        #: Alternative part reader (e.g. ``store.open_mmap`` for
        #: zero-copy levels); ``None`` means the CRC-verified
        #: ``store.load``.
        self.loader = loader

    @property
    def window_parts(self) -> int:
        """Parts resident at once: the main part plus the prefetch depth."""
        return 1 + (self.depth if self.prefetch else 0)

    def __iter__(self) -> Iterator[np.ndarray]:
        if not self.parts:
            return
        read = self.store.load if self.loader is None else self.loader
        if not self.prefetch:
            for part in self.parts:
                yield read(part)
            return

        tracer = self.store.tracer
        pending: deque[_Prefetch] = deque()
        next_idx = 1  # index of the next part to start loading
        current = read(self.parts[0])
        for _ in range(len(self.parts)):
            while next_idx < len(self.parts) and len(pending) < self.depth:
                pending.append(
                    _Prefetch(self.store, self.parts[next_idx], loader=self.loader)
                )
                next_idx += 1
            yield current
            if pending:
                prefetch = pending.popleft()
                if tracer.enabled:
                    # Hit: the background read finished while the main
                    # part was being consumed; miss: we must block on it.
                    tracer.instant(
                        "prefetch-hit" if prefetch.done.is_set() else "prefetch-miss"
                    )
                current = prefetch.wait()
