"""Deterministic work-stealing scheduler model.

The paper's engine runs native threads; a pure-Python reproduction cannot
show real multi-core speedups under the GIL, so parallel execution is
*modelled*: tasks (exploration parts, aggregation map parts) are executed
serially and their measured wall times are replayed through a work-stealing
schedule — each task is claimed, in queue order, by the worker that becomes
free first, which is exactly the behaviour of a work-stealing pool on a
shared deque.  The schedule yields the makespan (simulated parallel
runtime), per-worker busy times, and the CPU-utilization time series of
Figure 18.  DESIGN.md records this substitution.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

__all__ = ["TaskInterval", "Schedule", "simulate_work_stealing", "utilization_series"]


@dataclass(frozen=True)
class TaskInterval:
    """One task placed on one worker's timeline."""

    worker: int
    start: float
    end: float
    task_index: int


@dataclass
class Schedule:
    """Result of replaying task durations through the scheduler."""

    num_workers: int
    intervals: list[TaskInterval] = field(default_factory=list)

    @property
    def span_seconds(self) -> float:
        """Makespan: when the last worker finishes."""
        return max((iv.end for iv in self.intervals), default=0.0)

    @property
    def busy_seconds(self) -> float:
        return sum(iv.end - iv.start for iv in self.intervals)

    def worker_busy(self) -> list[float]:
        busy = [0.0] * self.num_workers
        for iv in self.intervals:
            busy[iv.worker] += iv.end - iv.start
        return busy

    @property
    def utilization(self) -> float:
        """Average CPU utilization over the span (1.0 = all workers busy)."""
        span = self.span_seconds
        if span == 0:
            return 1.0
        return self.busy_seconds / (span * self.num_workers)


def simulate_work_stealing(durations: list[float], num_workers: int) -> Schedule:
    """Replay task durations through a work-stealing pool.

    Tasks are claimed in order by whichever worker becomes idle first
    (ties broken by worker id, making the schedule deterministic).
    """
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    schedule = Schedule(num_workers=num_workers)
    heap: list[tuple[float, int]] = [(0.0, w) for w in range(num_workers)]
    heapq.heapify(heap)
    for idx, duration in enumerate(durations):
        free_at, worker = heapq.heappop(heap)
        end = free_at + max(0.0, duration)
        schedule.intervals.append(
            TaskInterval(worker=worker, start=free_at, end=end, task_index=idx)
        )
        heapq.heappush(heap, (end, worker))
    return schedule


def utilization_series(
    schedules: list[Schedule], bins: int = 40
) -> list[tuple[float, float]]:
    """Concatenate schedules (phases) into one utilization-over-time curve.

    Returns ``(time, utilization)`` points, the Figure-18 trace.  Phases
    are laid back to back, as they execute.
    """
    segments: list[tuple[float, float, int]] = []  # (start, end, workers)
    offset = 0.0
    for schedule in schedules:
        for iv in schedule.intervals:
            segments.append((offset + iv.start, offset + iv.end, schedule.num_workers))
        offset += schedule.span_seconds
    if not segments or offset <= 0:
        return []
    width = offset / bins
    busy = [0.0] * bins
    capacity = [0.0] * bins
    # Capacity per bin comes from each phase's worker count.
    phase_offset = 0.0
    for schedule in schedules:
        start_bin = int(phase_offset / width)
        end_time = phase_offset + schedule.span_seconds
        end_bin = min(bins - 1, int(end_time / width))
        for b in range(start_bin, end_bin + 1):
            lo = max(phase_offset, b * width)
            hi = min(end_time, (b + 1) * width)
            if hi > lo:
                capacity[b] += (hi - lo) * schedule.num_workers
        phase_offset = end_time
    for start, end, _workers in segments:
        first = int(start / width)
        last = min(bins - 1, int(end / width))
        for b in range(first, last + 1):
            lo = max(start, b * width)
            hi = min(end, (b + 1) * width)
            if hi > lo:
                busy[b] += hi - lo
    out: list[tuple[float, float]] = []
    for b in range(bins):
        if capacity[b] > 0:
            out.append(((b + 0.5) * width, min(1.0, busy[b] / capacity[b])))
    return out
