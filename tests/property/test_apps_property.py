"""Property-based tests: mining results match brute force on random graphs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CliqueDiscovery,
    FrequentSubgraphMining,
    KaleidoEngine,
    MotifCounting,
    TriangleCounting,
)
from repro.apps.reference import (
    count_cliques_naive,
    count_motifs_naive,
    count_triangles_naive,
    fsm_naive,
)
from repro.graph import from_edge_list


@st.composite
def labeled_graphs(draw, max_n=11, max_labels=2):
    n = draw(st.integers(min_value=3, max_value=max_n))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(
            st.sampled_from(possible),
            min_size=2,
            max_size=min(22, len(possible)),
            unique=True,
        )
    )
    labels = [draw(st.integers(min_value=0, max_value=max_labels - 1)) for _ in range(n)]
    return from_edge_list(edges, labels=labels)


@given(labeled_graphs())
@settings(max_examples=30, deadline=None)
def test_triangle_count_matches_naive(graph):
    assert KaleidoEngine(graph).run(TriangleCounting()).value == count_triangles_naive(graph)


@given(labeled_graphs(), st.integers(min_value=3, max_value=4))
@settings(max_examples=25, deadline=None)
def test_clique_count_matches_naive(graph, k):
    got = KaleidoEngine(graph).run(CliqueDiscovery(k)).value.count
    assert got == count_cliques_naive(graph, k)


@given(labeled_graphs(max_n=9))
@settings(max_examples=20, deadline=None)
def test_motif_census_matches_naive(graph):
    got = KaleidoEngine(graph).run(MotifCounting(3)).value
    expected = count_motifs_naive(graph, 3)
    assert sorted(got.values()) == sorted(expected.values())


@given(labeled_graphs(max_n=9), st.integers(min_value=1, max_value=2),
       st.integers(min_value=2, max_value=3))
@settings(max_examples=20, deadline=None)
def test_fsm_matches_naive(graph, num_edges, support):
    got = KaleidoEngine(graph).run(
        FrequentSubgraphMining(num_edges, support, exact_mni=True)
    )
    expected = fsm_naive(graph, num_edges, support)
    assert sorted(got.value.values()) == sorted(expected.values())


@given(labeled_graphs(max_n=10))
@settings(max_examples=15, deadline=None)
def test_motif_total_equals_connected_sets(graph):
    """Total motif occurrences == number of connected 3-vertex sets."""
    from repro.apps.reference import connected_vertex_sets

    got = KaleidoEngine(graph).run(MotifCounting(3)).value
    assert got.total == len(connected_vertex_sets(graph, 3))
