"""Sampling-based approximate motif counting (the ASAP trade-off).

The paper's related work (Section 7) contrasts Kaleido with ASAP, which
trades accuracy for latency by sampling instead of exhausting the
embedding space.  This module implements that trade-off as an extension:
uniform seed-embedding sampling with Horvitz–Thompson scale-up.

Estimator
---------
Exploration to (k-1)-embeddings is exhaustive for k=3 (the 1-embeddings
are just the vertices), so the estimator samples *parent* embeddings at
the (k-1)-th level: draw ``samples`` parents uniformly with replacement,
expand only those through the canonical filter, and scale each observed
k-pattern count by ``num_parents / samples``.  Unbiased for every motif
class; variance shrinks as 1/samples, and an approximate 95% CI is
reported per class.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.cse import CSE
from ..core.engine import KaleidoEngine
from ..core.explore import canonical_extensions, expand_vertex_level
from ..core.pattern import Pattern
from ..graph.graph import Graph

__all__ = ["ApproximateMotifCounting", "MotifEstimate", "approximate_motifs"]


@dataclass(frozen=True)
class MotifEstimate:
    """Estimated count and approximate 95% confidence half-width."""

    estimate: float
    half_width: float

    @property
    def low(self) -> float:
        return max(0.0, self.estimate - self.half_width)

    @property
    def high(self) -> float:
        return self.estimate + self.half_width


class ApproximateMotifCounting:
    """Approximate k-motif census via parent sampling.

    Not a :class:`MiningApplication` — it deliberately bypasses the
    exhaustive aggregation phase.  Use :func:`approximate_motifs` or call
    :meth:`run` directly.
    """

    def __init__(self, k: int, samples: int, seed: int = 0) -> None:
        if k < 3:
            raise ValueError("motif size must be at least 3")
        if samples < 1:
            raise ValueError("need at least one sample")
        self.k = k
        self.samples = samples
        self.seed = seed

    def run(self, graph: Graph) -> dict[int, MotifEstimate]:
        """Estimate the k-motif census of ``graph``."""
        cse = CSE(np.arange(graph.num_vertices, dtype=np.int32))
        for _ in range(self.k - 2):
            expand_vertex_level(graph, cse)
        parents = [emb for _, emb in cse.iter_embeddings()]
        num_parents = len(parents)
        if num_parents == 0:
            return {}
        rng = np.random.default_rng(self.seed)
        picks = rng.integers(num_parents, size=self.samples)
        hasher_engine = KaleidoEngine(graph)  # reuse its PatternHasher
        bits_hash: dict[int, int] = {}
        counts: dict[int, int] = {}
        squares: dict[int, int] = {}
        for pick in picks.tolist():
            emb = parents[pick]
            local: dict[int, int] = {}
            for cand in canonical_extensions(graph, emb):
                pattern = Pattern.from_vertex_embedding(
                    graph, emb + (cand,), use_labels=False
                )
                key = pattern.bits
                phash = bits_hash.get(key)
                if phash is None:
                    phash = hasher_engine.hasher.hash_pattern(pattern)
                    bits_hash[key] = phash
                local[phash] = local.get(phash, 0) + 1
            for phash, c in local.items():
                counts[phash] = counts.get(phash, 0) + c
                squares[phash] = squares.get(phash, 0) + c * c
        scale = num_parents / self.samples
        out: dict[int, MotifEstimate] = {}
        for phash, total in counts.items():
            mean = total / self.samples
            var = max(0.0, squares[phash] / self.samples - mean * mean)
            stderr = math.sqrt(var / self.samples) * num_parents
            out[phash] = MotifEstimate(
                estimate=total * scale, half_width=1.96 * stderr
            )
        return out


def approximate_motifs(
    graph: Graph, k: int, samples: int, seed: int = 0
) -> dict[int, MotifEstimate]:
    """Convenience wrapper around :class:`ApproximateMotifCounting`."""
    return ApproximateMotifCounting(k, samples, seed=seed).run(graph)
