"""R001 fixture: the legal shape — mutation lives in the part state."""


class MiningApplication:
    pass


class PureApp(MiningApplication):
    def __init__(self):
        self.total = 0

    def start_part(self, ctx):
        return {"count": 0, "seen": []}

    def map_embedding(self, ctx, embedding, pmap, part=None):
        local = list(embedding)  # locals are fine
        part["count"] += 1  # part state is fine
        part["seen"].append(local)
        pmap[0] = pmap.get(0, 0) + 1  # pmap is per-part too

    def finish_part(self, ctx, part):
        self.total += part["count"]  # serial absorption: legal


class NotAnApp:
    """Same writes, but not a MiningApplication — out of R001's reach."""

    def map_embedding(self, ctx, embedding, pmap):
        self.count = 1
