"""Invariant lint suite and runtime sanitizers.

Static side (``python -m repro.analysis`` / ``repro lint``): AST rules
R001-R005 that machine-check the engine contracts established in
PRs 1-4 — part purity, determinism, tracer guarding, id-dtype
discipline and the storage error taxonomy.  Runtime side:
:class:`PartPuritySanitizer`, a race detector for shared application
state that static analysis cannot see (enabled with the engine/CLI
``--sanitize`` flag).
"""

from __future__ import annotations

from .diagnostics import Diagnostic, suppressed_lines
from .linter import lint_file, lint_paths, lint_source
from .rules import RULES, Rule, rule_ids
from .sanitizer import AttributeWrite, PartPuritySanitizer

__all__ = [
    "AttributeWrite",
    "Diagnostic",
    "PartPuritySanitizer",
    "RULES",
    "Rule",
    "lint_file",
    "lint_paths",
    "lint_source",
    "rule_ids",
    "suppressed_lines",
]
