"""Figure 15: read/write I/O rates under shrinking RAM caps.

The paper caps Kaleido's page cache with cgroups at 12/16/20/>=24 GB and
plots read/write MB/s over the run of 4-FSM(Patent, 100k).  Here the
MemoryBudget plays the cgroup role: the budget ladder is scaled to the
workload's own in-memory peak, and the spill store's event log provides
the rate series.  Paper shape: generous budgets do (almost) no I/O;
tighter budgets read and write progressively more.
"""

import tempfile

import pytest

from repro import FrequentSubgraphMining, KaleidoEngine
from repro.bench import PROFILE, bench_graph, format_series, format_table

from conftest import run_once

#: Fractions of the unconstrained peak, standing in for 12/16/20/24 GB.
BUDGET_LADDER = [0.35, 0.6, 1.0, 4.0]


@pytest.mark.benchmark(group="fig15")
def test_fig15_io_rates(benchmark, emit):
    outputs = []
    totals = []

    def run_ladder():
        graph = bench_graph("patent")
        factory = lambda: FrequentSubgraphMining(3, 30)  # noqa: E731
        with KaleidoEngine(graph, storage_mode="memory") as engine:
            baseline = engine.run(factory())
        peak = baseline.peak_memory_bytes
        for fraction in BUDGET_LADDER:
            budget = max(1, int(peak * fraction))
            with tempfile.TemporaryDirectory(prefix="fig15-") as tmp:
                with KaleidoEngine(
                    graph,
                    storage_mode="auto",
                    memory_limit_bytes=budget,
                    spill_dir=tmp,
                ) as engine:
                    result = engine.run(factory())
                    io = engine.io_stats
                    assert sorted(result.value.values()) == sorted(
                        baseline.value.values()
                    )
                    read_mb = result.io_bytes_read / 1e6
                    write_mb = result.io_bytes_written / 1e6
                    totals.append((fraction, read_mb, write_mb))
                    block = [
                        f"--- budget = {fraction:.2f} x in-memory peak "
                        f"({budget / 1e6:.2f} MB) ---",
                        f"read {read_mb:.2f} MB, write {write_mb:.2f} MB, "
                        f"runtime {result.wall_seconds:.3f}s",
                    ]
                    if io is not None and io.events:
                        block.append(
                            format_series(
                                "write rate", io.rate_series("write", bins=10),
                                "t (s)", "MB/s",
                            )
                        )
                        block.append(
                            format_series(
                                "read rate", io.rate_series("read", bins=10),
                                "t (s)", "MB/s",
                            )
                        )
                    outputs.append("\n".join(block))
        return totals

    run_once(benchmark, run_ladder)
    table = format_table(
        ["budget fraction", "read MB", "write MB"],
        [[f"{f:.2f}", f"{r:.2f}", f"{w:.2f}"] for f, r, w in totals],
        title=f"Figure 15 — I/O vs RAM cap, 4-FSM Patent (profile: {PROFILE})",
    )
    emit(table + "\n\n" + "\n\n".join(outputs), name="fig15_io_rates")

    # Paper shape: the generous budget does no I/O; the tightest does the
    # most writing.
    tight = totals[0]
    loose = totals[-1]
    assert loose[2] == 0.0, loose
    assert tight[2] > 0.0, tight
    writes = [w for _, _, w in totals]
    assert writes[0] == max(writes)
