"""Candidate-size prediction for load balancing (Section 4.2, Figure 8).

The candidate set of an embedding ``prefix + [x]`` is approximated as the
union of the candidate set of ``prefix`` (its stored children — ``x``'s
sibling slice in the CSE, available from the offset arrays for free) and
the neighborhood of ``x`` (from the graph CSC).  The merge is ``O(d̄)``
per embedding; the resulting per-embedding costs drive the partitioner so
spilled parts come out even despite the power-law skew of embedding
degrees.
"""

from __future__ import annotations

import numpy as np

from ..core.cse import CSE
from ..graph.edge_index import EdgeIndex
from ..graph.graph import Graph

__all__ = ["predict_vertex_costs", "predict_edge_costs", "merged_size"]


def merged_size(a: np.ndarray, b: np.ndarray) -> int:
    """Size of the union of two sorted id arrays (two-pointer merge)."""
    if a.shape[0] == 0:
        return int(np.unique(b).shape[0])
    if b.shape[0] == 0:
        return int(np.unique(a).shape[0])
    return int(np.union1d(a, b).shape[0])


def predict_vertex_costs(graph: Graph, cse: CSE) -> np.ndarray:
    """Predicted candidate count per top-level embedding (vertex-induced)."""
    total = cse.size()
    costs = np.zeros(total, dtype=np.int64)
    if cse.depth == 1:
        roots = cse.levels[0].vert_array()
        degrees = graph.degrees()
        costs[:] = degrees[roots]
        return costs
    if cse.top.off_array() is None:
        raise ValueError("prediction needs the top level's off array")
    adjacency = graph.adjacency_sets()
    # One streaming pass: buffer each parent's children (the sibling
    # slice), then emit a cost per child as |siblings ∪ N(child)|.  Works
    # identically for in-memory and spilled top levels.
    group_positions: list[int] = []
    group_children: list[int] = []
    current_parent = -2

    def emit_group() -> None:
        siblings = set(group_children)
        for position, child in zip(group_positions, group_children):
            merged = siblings | adjacency[child]
            costs[position] = len(merged)

    for pos, parent, emb in cse.iter_with_parents():
        if parent != current_parent:
            if group_positions:
                emit_group()
            group_positions, group_children = [], []
            current_parent = parent
        group_positions.append(pos)
        group_children.append(emb[-1])
    if group_positions:
        emit_group()
    return costs


def predict_edge_costs(index: EdgeIndex, cse: CSE) -> np.ndarray:
    """Predicted candidate count per top-level embedding (edge-induced).

    The last edge contributes the incident lists of its two endpoints; the
    prefix contributes the sibling slice, as in the vertex-induced case.
    """
    total = cse.size()
    costs = np.zeros(total, dtype=np.int64)
    eu, ev = index.endpoint_lists()
    incident = index.incident_lists()
    if cse.depth == 1:
        roots = cse.levels[0].vert_array()
        for i, eid in enumerate(roots.tolist()):
            merged = set(incident[eu[eid]])
            merged.update(incident[ev[eid]])
            costs[i] = len(merged)
        return costs
    if cse.top.off_array() is None:
        raise ValueError("prediction needs the top level's off array")
    group_positions: list[int] = []
    group_children: list[int] = []
    current_parent = -2

    def emit_group() -> None:
        siblings = set(group_children)
        for position, child in zip(group_positions, group_children):
            merged = siblings.copy()
            merged.update(incident[eu[child]])
            merged.update(incident[ev[child]])
            costs[position] = len(merged)

    for pos, parent, emb in cse.iter_with_parents():
        if parent != current_parent:
            if group_positions:
                emit_group()
            group_positions, group_children = [], []
            current_parent = parent
        group_positions.append(pos)
        group_children.append(emb[-1])
    if group_positions:
        emit_group()
    return costs
