"""Unit tests for motif counting."""

import pytest

from repro import KaleidoEngine, MotifCounting
from repro.apps.motif import MOTIF_COUNTS
from repro.apps.reference import count_motifs_naive
from repro.graph import from_edge_list
from tests.conftest import random_labeled_graph


def test_paper_example_3motifs(paper_graph):
    result = KaleidoEngine(paper_graph).run(MotifCounting(3))
    # Section 5.1: 5 3-chains and 3 triangles.
    assert sorted(result.value.values()) == [3, 5]
    assert result.value.total == 8


def test_motif_census_matches_naive():
    for seed in range(4):
        g = random_labeled_graph(13, 26, 3, seed=seed)
        for k in (3, 4):
            got = KaleidoEngine(g).run(MotifCounting(k)).value
            expected = count_motifs_naive(g, k)
            assert sorted(got.values()) == sorted(expected.values()), (seed, k)


def test_labels_ignored():
    g1 = from_edge_list([(0, 1), (1, 2), (0, 2)], labels=[0, 1, 2])
    g2 = from_edge_list([(0, 1), (1, 2), (0, 2)], labels=[5, 5, 5])
    r1 = KaleidoEngine(g1).run(MotifCounting(3)).value
    r2 = KaleidoEngine(g2).run(MotifCounting(3)).value
    assert dict(r1) == dict(r2)


def test_motif_kind_counts_star():
    """A star K1,4 has exactly C(4,2)=6 3-chains and nothing else."""
    star = from_edge_list([(0, i) for i in range(1, 5)])
    result = KaleidoEngine(star).run(MotifCounting(3))
    assert list(result.value.values()) == [6]


def test_4motif_kinds_on_rich_graph():
    """A graph containing all six 4-motif shapes reports six hashes."""
    g = random_labeled_graph(14, 40, 1, seed=3)
    result = KaleidoEngine(g).run(MotifCounting(4))
    assert len(result.value) <= MOTIF_COUNTS[4]
    assert len(result.value) >= 5  # dense-ish random graph has most kinds


def test_representatives_attached(paper_graph):
    result = KaleidoEngine(paper_graph).run(MotifCounting(3))
    assert set(result.value.patterns) == set(result.value)
    for pattern in result.value.patterns.values():
        assert pattern.num_vertices == 3


def test_validates_k():
    with pytest.raises(ValueError):
        MotifCounting(2)


def test_levels_stop_at_k_minus_1(paper_graph):
    """k-Motif stores only k-1 CSE levels (Table 4's note)."""
    result = KaleidoEngine(paper_graph).run(MotifCounting(4))
    assert len(result.level_sizes) == 3


def test_name():
    assert MotifCounting(4).name == "4-Motif"
