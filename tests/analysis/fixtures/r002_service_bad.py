"""R002 fixture, service-flavoured: a query tier leaking entropy (4 hits).

Request ids, cache stamps and sampling seeds drawn from wall clock or
process entropy make a served answer unreproducible — the exact hazard
R002's service/ scope exists to catch.
"""

import time
import uuid


def next_request_id():
    return uuid.uuid4()  # hit 1: entropy-based request id


def stamp_cache_entry(entry):
    entry["cached_at"] = time.time()  # hit 2: wall clock in a cache key path
    return entry


def pick_sampling_seed():
    return time.time_ns()  # hit 3: seed from the wall clock


def drain_tenants(inflight):
    order = []
    for tenant in set(inflight):  # hit 4: hash-order tenant iteration
        order.append(tenant)
    return order
