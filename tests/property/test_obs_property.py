"""Property-based tests for the observability layer.

Three invariants, held under randomly generated operation sequences:

* every ``begin`` has a matching ``end`` (the tracer enforces LIFO
  pairing, and a balanced program always drains its stack);
* children nest strictly inside their parents on each thread — the
  recorded parent of any event is exactly the innermost open span at
  emission time;
* counters never go negative, and registry ``merge`` is associative
  (any grouping of partial registries folds to the same totals).
"""

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry, Tracer, span_tree_shape

_settings = settings(max_examples=50, deadline=None)


# ----------------------------------------------------------------------
# Span programs: random trees executed as begin/instant/end sequences.
# ----------------------------------------------------------------------
span_trees = st.recursive(
    st.just([]),
    lambda children: st.lists(
        st.tuples(st.sampled_from(["a", "b", "c", "d"]), children), max_size=4
    ),
    max_leaves=12,
)


def _execute(tracer: Tracer, tree, instants_every: bool = True) -> None:
    for name, children in tree:
        with tracer.span(name):
            if instants_every:
                tracer.instant(f"mark-{name}")
            _execute(tracer, children, instants_every)


@given(tree=span_trees)
@_settings
def test_every_begin_has_a_matching_end(tree):
    tracer = Tracer()
    _execute(tracer, tree)
    assert tracer.open_spans() == []
    begins = [e for e in tracer.events if e.kind == "begin"]
    ends = [e for e in tracer.events if e.kind == "end"]
    assert len(begins) == len(ends)
    # Per-name balance, not just global balance.
    for name in {e.name for e in begins}:
        assert sum(e.name == name for e in begins) == sum(
            e.name == name for e in ends
        )


@given(tree=span_trees)
@_settings
def test_children_nest_strictly_inside_parents(tree):
    tracer = Tracer()
    _execute(tracer, tree)
    # Replay the event list: maintaining the stack from begins/ends must
    # reproduce every event's recorded parent and depth.
    stack: list[str] = []
    for event in tracer.events:
        if event.kind == "begin":
            expected_parent = stack[-1] if stack else None
            assert event.parent == expected_parent
            assert event.depth == len(stack)
            stack.append(event.name)
        elif event.kind == "end":
            assert stack and stack[-1] == event.name
            stack.pop()
            assert event.parent == (stack[-1] if stack else None)
        elif event.kind == "instant":
            assert event.parent == (stack[-1] if stack else None)
    assert stack == []


@given(tree=span_trees, ts=st.lists(st.floats(0, 100), max_size=4))
@_settings
def test_timestamps_monotone_per_thread(tree, ts):
    clock_values = iter(range(10_000))
    tracer = Tracer(clock=lambda: float(next(clock_values)))
    _execute(tracer, tree)
    stamps = [e.ts for e in tracer.events]
    assert stamps == sorted(stamps)


@given(trees=st.lists(span_trees, min_size=2, max_size=3))
@_settings
def test_threads_nest_independently(trees):
    tracer = Tracer()
    threads = [
        threading.Thread(target=_execute, args=(tracer, tree, False))
        for tree in trees
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # Each thread drained its own stack; globally begins match ends and
    # the combined shape equals the sum of per-tree shapes.
    begins = [e for e in tracer.events if e.kind == "begin"]
    ends = [e for e in tracer.events if e.kind == "end"]
    assert len(begins) == len(ends)
    expected: dict[tuple, int] = {}
    for tree in trees:
        solo = Tracer()
        _execute(solo, tree, False)
        for key, count in span_tree_shape(solo.events).items():
            expected[key] = expected.get(key, 0) + count
    assert span_tree_shape(tracer.events) == expected


# ----------------------------------------------------------------------
# Metrics: non-negativity and merge associativity.
# ----------------------------------------------------------------------
# Gauges model non-negative levels (queue depth, resident bytes): a
# fresh gauge reads 0, so max-merge is only neutral-element-correct on
# the non-negative domain.  Histogram observations are kept integral so
# the associativity check is not defeated by float summation order.
metric_ops = st.lists(
    st.one_of(
        st.tuples(st.just("counter"), st.sampled_from(["c1", "c2"]),
                  st.integers(0, 100)),
        st.tuples(st.just("gauge"), st.sampled_from(["g1", "g2"]),
                  st.integers(0, 50)),
        st.tuples(st.just("histogram"), st.sampled_from(["h1"]),
                  st.integers(-10, 10).map(float)),
    ),
    max_size=30,
)


def _apply(ops) -> MetricsRegistry:
    registry = MetricsRegistry()
    for kind, name, value in ops:
        if kind == "counter":
            registry.counter(name).inc(value)
        elif kind == "gauge":
            registry.gauge(name).set(value)
        else:
            registry.histogram(name).observe(value)
    return registry


@given(ops=metric_ops)
@_settings
def test_counters_never_negative(ops):
    registry = _apply(ops)
    for name in registry.names():
        snap = registry.snapshot()[name]
        if snap["type"] == "counter":
            assert snap["value"] >= 0


@given(a=metric_ops, b=metric_ops, c=metric_ops)
@_settings
def test_merge_is_associative(a, b, c):
    left_a, left_b, left_c = _apply(a), _apply(b), _apply(c)
    left_a.merge(left_b)
    left_a.merge(left_c)

    right_a, right_b, right_c = _apply(a), _apply(b), _apply(c)
    right_b.merge(right_c)
    right_a.merge(right_b)

    assert left_a.snapshot() == right_a.snapshot()


@given(a=metric_ops, b=metric_ops)
@_settings
def test_merge_is_commutative(a, b):
    ab = _apply(a)
    ab.merge(_apply(b))
    ba = _apply(b)
    ba.merge(_apply(a))
    assert ab.snapshot() == ba.snapshot()
