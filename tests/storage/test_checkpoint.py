"""Unit tests for CSE checkpoint save/load."""

import json
import os

import numpy as np
import pytest

from repro.core import CSE
from repro.core.explore import expand_vertex_level
from repro.errors import StorageError
from repro.storage import PartStore, SpillingSink, load_cse, save_cse


def _explored(graph, depth=2):
    cse = CSE(np.arange(graph.num_vertices))
    for _ in range(depth):
        expand_vertex_level(graph, cse)
    return cse


def test_roundtrip(tmp_path, paper_graph):
    cse = _explored(paper_graph)
    save_cse(cse, tmp_path)
    loaded = load_cse(tmp_path)
    assert loaded.depth == cse.depth
    assert [e for _, e in loaded.iter_embeddings()] == [
        e for _, e in cse.iter_embeddings()
    ]


def test_resume_exploration(tmp_path, paper_graph):
    """Load a checkpoint and keep exploring — same result as uninterrupted."""
    cse = _explored(paper_graph, depth=1)
    save_cse(cse, tmp_path)
    resumed = load_cse(tmp_path)
    expand_vertex_level(paper_graph, resumed)
    straight = _explored(paper_graph, depth=2)
    assert [e for _, e in resumed.iter_embeddings()] == [
        e for _, e in straight.iter_embeddings()
    ]


def test_checkpoint_spilled_level(tmp_path, paper_graph):
    store = PartStore(str(tmp_path / "spill"))
    cse = CSE(np.arange(paper_graph.num_vertices))
    sink = SpillingSink(store, synchronous=True, prefetch=False)
    expand_vertex_level(paper_graph, cse, parts=[(0, 3), (3, 6)], sink=sink)
    save_cse(cse, tmp_path / "ckpt")
    loaded = load_cse(tmp_path / "ckpt")
    assert [e for _, e in loaded.iter_embeddings()] == [
        e for _, e in cse.iter_embeddings()
    ]


def test_root_only_checkpoint(tmp_path):
    cse = CSE([3, 1, 4])
    save_cse(cse, tmp_path)
    loaded = load_cse(tmp_path)
    assert loaded.levels[0].vert_array().tolist() == [3, 1, 4]


def test_missing_manifest(tmp_path):
    with pytest.raises(StorageError):
        load_cse(tmp_path)


def test_bad_version(tmp_path):
    (tmp_path / "cse_manifest.json").write_text(json.dumps({"version": 99}))
    with pytest.raises(StorageError):
        load_cse(tmp_path)


def test_corrupt_level_file(tmp_path, paper_graph):
    cse = _explored(paper_graph)
    save_cse(cse, tmp_path)
    os.remove(tmp_path / "level1_vert.npy")
    with pytest.raises(StorageError):
        load_cse(tmp_path)


def test_overwrite_existing(tmp_path, paper_graph):
    save_cse(_explored(paper_graph, 1), tmp_path)
    save_cse(_explored(paper_graph, 2), tmp_path)
    assert load_cse(tmp_path).depth == 3
