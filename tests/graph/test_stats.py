"""Unit tests for graph statistics."""

import math

import pytest

from repro.graph import (
    chung_lu,
    compute_stats,
    degree_histogram,
    erdos_renyi,
    from_edge_list,
    power_law_alpha,
)


def test_degree_histogram(paper_graph):
    hist = degree_histogram(paper_graph)
    assert hist == {0: 1, 2: 2, 3: 2, 4: 1}
    assert sum(hist.values()) == paper_graph.num_vertices


def test_stats_triangle_count(paper_graph):
    stats = compute_stats(paper_graph, clustering_sample=None)
    assert stats.triangles == 3
    assert stats.num_vertices == 6
    assert stats.num_edges == 7
    assert stats.max_degree == 4


def test_clustering_complete_graph():
    k4 = from_edge_list([(i, j) for i in range(4) for j in range(i + 1, 4)])
    stats = compute_stats(k4, clustering_sample=None)
    assert stats.clustering_coefficient == pytest.approx(1.0)
    assert stats.triangles == 4


def test_clustering_triangle_free():
    star = from_edge_list([(0, i) for i in range(1, 6)])
    stats = compute_stats(star, clustering_sample=None)
    assert stats.clustering_coefficient == 0.0
    assert stats.triangles == 0


def test_skew_distinguishes_power_law_from_uniform():
    power = chung_lu(2000, 6000, seed=1)
    uniform = erdos_renyi(2000, 6000, seed=1)
    assert not math.isnan(power_law_alpha(power))
    assert 1.0 < power_law_alpha(power) < 6.0
    s_power = compute_stats(power, clustering_sample=50).degree_skew
    s_uniform = compute_stats(uniform, clustering_sample=50).degree_skew
    # The heavy tail shows up as a much larger max/mean ratio.
    assert s_power > 2 * s_uniform


def test_power_law_alpha_small_graph_nan(paper_graph):
    assert math.isnan(power_law_alpha(paper_graph))


def test_stats_rows_formatting(paper_graph):
    rows = compute_stats(paper_graph).rows()
    assert ("triangles", "3") in rows
    assert len(rows) == 10


def test_stats_empty_graph():
    stats = compute_stats(from_edge_list([]))
    assert stats.num_vertices == 0
    assert stats.triangles == 0


def test_degree_skew_on_standins():
    from repro.graph import load

    stats = compute_stats(load("patent", "tiny"))
    # Power-law stand-ins must be skewed: hub degree >> mean degree.
    assert stats.degree_skew > 3.0
