"""Pattern matching: Figure 1 of the paper, as a runnable program.

Given a template pattern, enumerate its embeddings in a labeled graph —
the paper's opening example ("graph a, b and c are instances of pattern p
in the input graph").

Usage::

    python examples/pattern_query.py
"""

from __future__ import annotations

from repro import KaleidoEngine
from repro.apps import PatternMatching
from repro.core import Pattern
from repro.graph import datasets, from_edge_list


def figure1() -> None:
    """The exact Figure-1 scenario."""
    graph = from_edge_list(
        [(1, 2), (1, 5), (2, 5), (2, 3), (3, 4), (3, 5), (4, 5)],
        labels=[9, 1, 0, 1, 1, 0],  # colors: 2 and 5 share label 0
        name="figure1",
    )
    # Pattern p: a triangle whose three vertices are colored (1, 0, 0) —
    # the template that embeddings a=(1,2,5) and b=(2,3,5)... realise.
    pattern = Pattern.from_vertex_embedding(graph, [1, 2, 5])
    result = KaleidoEngine(graph).run(PatternMatching(pattern, materialize=True))
    print("Figure 1 — pattern p embeddings:")
    for match in result.value.matches or []:
        print(f"  {match}")
    print()


def labeled_query() -> None:
    """A label-constrained query over a bigger graph."""
    graph = datasets.load("citeseer", "bench")
    # Query: a label-0 paper cited by two label-1 papers that also cite
    # each other (a colored triangle).
    pattern = Pattern.from_adjacency(
        [0, 1, 1], [[0, 1, 1], [1, 0, 1], [1, 1, 0]]
    )
    result = KaleidoEngine(graph).run(PatternMatching(pattern))
    print(f"Colored triangles (0,1,1) in {graph.name}: {result.value.count}")
    print(f"  {result.wall_seconds:.3f}s, "
          f"levels explored: {result.level_sizes}")
    # Contrast with the unlabeled triangle count.
    plain = Pattern.from_adjacency([0, 0, 0], [[0, 1, 1], [1, 0, 1], [1, 1, 0]])
    unlabeled = KaleidoEngine(graph.relabel([0] * graph.num_vertices)).run(
        PatternMatching(plain)
    )
    print(f"All triangles ignoring labels: {unlabeled.value.count}")


if __name__ == "__main__":
    figure1()
    labeled_query()
