"""Unit tests for GraphBuilder."""

import pytest

from repro.errors import GraphConstructionError
from repro.graph import GraphBuilder, from_edge_list


def test_duplicate_edges_deduplicated():
    g = from_edge_list([(0, 1), (1, 0), (0, 1)])
    assert g.num_edges == 1


def test_self_loop_rejected():
    builder = GraphBuilder()
    with pytest.raises(GraphConstructionError):
        builder.add_edge(3, 3)


def test_negative_vertex_rejected():
    builder = GraphBuilder()
    with pytest.raises(GraphConstructionError):
        builder.add_edge(-1, 2)
    with pytest.raises(GraphConstructionError):
        builder.add_vertex(-5)


def test_vertex_only_no_edges():
    builder = GraphBuilder()
    builder.add_vertex(4, label=2)
    g = builder.build()
    assert g.num_vertices == 5
    assert g.label(4) == 2
    assert g.num_edges == 0


def test_labels_mapping_and_sequence():
    b1 = GraphBuilder()
    b1.add_edge(0, 1)
    b1.set_labels({0: 3, 1: 4})
    g1 = b1.build()
    b2 = GraphBuilder()
    b2.add_edge(0, 1)
    b2.set_labels([3, 4])
    g2 = b2.build()
    assert g1.labels.tolist() == g2.labels.tolist() == [3, 4]


def test_implicit_vertices_get_default_label():
    g = from_edge_list([(0, 5)])
    assert g.num_vertices == 6
    assert g.label(3) == 0


def test_adjacency_is_symmetric():
    g = from_edge_list([(0, 1), (1, 2), (0, 2), (2, 3)])
    for u in range(g.num_vertices):
        for v in g.neighbors(u).tolist():
            assert g.has_edge(v, u)


def test_num_vertices_hint():
    builder = GraphBuilder(num_vertices=10)
    builder.add_edge(0, 1)
    assert builder.build().num_vertices == 10
