"""Unit tests for the bliss-like canonical labeling hasher."""

import numpy as np

from repro.baselines import BlissLikeHasher, canonical_form_search
from repro.core import Pattern, are_isomorphic, eigen_hash
from repro.core.eigenhash import HARARY_COSPECTRAL_9


def _random_pattern(rng, max_k=6, num_labels=2):
    k = int(rng.integers(2, max_k + 1))
    mat = np.triu((rng.random((k, k)) < 0.5).astype(int), 1)
    mat = mat + mat.T
    labels = rng.integers(0, num_labels, size=k).tolist()
    return Pattern.from_adjacency(labels, mat)


def test_canonical_form_invariant():
    rng = np.random.default_rng(2)
    for _ in range(30):
        p = _random_pattern(rng)
        form, _ = canonical_form_search(p)
        perm = rng.permutation(p.num_vertices).tolist()
        form2, _ = canonical_form_search(p.permute(perm))
        assert form == form2


def test_canonical_form_complete():
    """Equal form ⟺ isomorphic, against the exact checker."""
    rng = np.random.default_rng(5)
    pats = [_random_pattern(rng, max_k=5) for _ in range(25)]
    for a in pats:
        for b in pats:
            same = canonical_form_search(a)[0] == canonical_form_search(b)[0]
            assert same == are_isomorphic(a, b)


def test_allocations_counted():
    p = Pattern.from_adjacency([0] * 5, np.ones((5, 5), dtype=int) - np.eye(5, dtype=int))
    _, allocs = canonical_form_search(p)
    assert allocs > 1  # K5 needs individualization branching


def test_hasher_agrees_with_eigenhash_partition():
    """Both checkers induce the same partition into isomorphism classes."""
    rng = np.random.default_rng(8)
    pats = [_random_pattern(rng, max_k=6) for _ in range(40)]
    bliss = BlissLikeHasher()
    for a in pats:
        for b in pats:
            assert (bliss.hash_pattern(a) == bliss.hash_pattern(b)) == (
                eigen_hash(a) == eigen_hash(b)
            )


def test_hasher_separates_harary9():
    """Unlike EigenHash, the search tree handles 9+ vertices exactly."""
    a, b = HARARY_COSPECTRAL_9
    bliss = BlissLikeHasher()
    assert bliss.hash_pattern(a) != bliss.hash_pattern(b)


def test_cache_on_raw_key():
    bliss = BlissLikeHasher()
    chain = Pattern.from_adjacency([0, 0, 0], [[0, 1, 0], [1, 0, 1], [0, 1, 0]])
    h1 = bliss.hash_pattern(chain)
    h1b = bliss.hash_pattern(chain)
    assert h1 == h1b
    assert bliss.hits == 1 and bliss.misses == 1
    # A different raw representation of the same class misses the cache.
    h2 = bliss.hash_pattern(chain.permute([1, 0, 2]))
    assert h2 == h1
    assert bliss.misses == 2


def test_representative():
    bliss = BlissLikeHasher()
    tri = Pattern.from_adjacency([1, 0, 0], [[0, 1, 1], [1, 0, 1], [1, 1, 0]])
    rep = bliss.representative(bliss.hash_pattern(tri))
    assert rep is not None and are_isomorphic(rep, tri)


def test_nbytes_tracks_usage():
    bliss = BlissLikeHasher()
    before = bliss.nbytes
    rng = np.random.default_rng(1)
    for _ in range(10):
        bliss.hash_pattern(_random_pattern(rng))
    assert bliss.nbytes > before
    assert bliss.total_allocations > 0
