"""Diagnostics and suppression handling for the invariant lint suite.

A :class:`Diagnostic` is one rule violation at one source location.  Any
diagnostic can be silenced with an explicit suppression comment naming
the rule::

    self._phash_cache[key] = phash  # repro: ignore[R001] -- benign memo race

    # repro: ignore[R004] -- boundary constant, not an id array
    _INT32_MAX = int(np.iinfo(np.int32).max)

A suppression on a *code* line silences that line; a suppression on a
line of its own silences the next line.  Several rules may be listed:
``# repro: ignore[R001,R004]``.  Suppressions are deliberately loud —
they are grep-able, name the exact rule, and leave room for a rationale
after the closing bracket.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Iterable

__all__ = ["Diagnostic", "suppressed_lines"]

#: Rule id of files that fail to parse (always reported, never scoped).
PARSE_RULE = "E999"

#: Rule id of stale suppression comments (``--report-unused-ignores``).
UNUSED_IGNORE_RULE = "W100"

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore\[([A-Za-z0-9_,\s]+)\]")


@dataclass(frozen=True)
class Diagnostic:
    """One rule violation: where it is and what contract it breaks."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def format_github(self) -> str:
        """GitHub Actions workflow-annotation form (``::error ...``)."""
        return (
            f"::error file={self.path},line={self.line},col={self.col},"
            f"title={self.rule}::{self.message}"
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


def _comment_lines(source: str) -> Iterable[tuple[int, str, int]]:
    """Yield ``(lineno, comment_text, start_col)`` for real comments.

    Tokenizing (rather than regex-scanning raw lines) keeps suppression
    examples inside docstrings and string literals from acting — or
    being audited — as live suppressions.  Sources that fail to
    tokenize fall back to a plain line scan; they will fail to parse in
    the linter anyway.
    """
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string, token.start[1]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for lineno, text in enumerate(source.splitlines(), start=1):
            index = text.find("#")
            if index >= 0:
                yield lineno, text[index:], index


def suppressed_lines(source: str) -> dict[int, set[str]]:
    """Map line number -> rule ids suppressed on that line.

    A trailing comment suppresses its own line; a comment that is the
    whole line suppresses the line after it.
    """
    lines = source.splitlines()
    suppressions: dict[int, set[str]] = {}
    for lineno, text, col in _comment_lines(source):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
        own_line = lineno <= len(lines) and lines[lineno - 1][:col].strip() == ""
        target = lineno + 1 if own_line else lineno
        suppressions.setdefault(target, set()).update(rules)
    return suppressions
