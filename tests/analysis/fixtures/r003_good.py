"""R003 fixture: both accepted guard shapes."""


def expand(parts, tracer):
    if tracer.enabled:
        tracer.begin("expand", parts=len(parts))
    for part in parts:
        if tracer.enabled:
            tracer.instant("part", index=part)
    if tracer.enabled:
        tracer.end("expand")


def emit_spans(schedule, tracer):
    # early-return guard: everything below is dominated by the check
    if tracer is None or not tracer.enabled:
        return
    for span in schedule:
        tracer.begin("part", index=span)
        tracer.end("part")


def span_user(tracer, work):
    # span() is the self-guarding context-manager API — not a raw probe
    with tracer.span("work"):
        work()
