"""Figure 11: 3-FSM runtime and memory as the support grows.

The paper's curve is non-monotone: runtime *rises* to a peak and then
falls.  Low supports freeze the threshold-pruned MNI counters almost
immediately; very high supports kill most edges during Init; the pain is
in the middle.

Scaling note (see EXPERIMENTS.md): the effect requires the paper's
operating regime — supports far below the edge count of a typical
label-pair pattern, so Init prunes nothing and only the counting cost
varies.  Our stand-ins have thousands (not millions) of edges, so the
sweep coarsens the label space to two labels to restore the
support ≪ edges-per-pattern regime; wall time at these scales is noisy,
so the peak is asserted on a deterministic cost proxy (total MNI set
insertions before freezing) and wall times are reported alongside.
"""

import numpy as np
import pytest

from repro import FrequentSubgraphMining, KaleidoEngine
from repro.bench import PROFILE, bench_graph, format_series, format_table

from conftest import run_once

SUPPORTS = [2, 3, 5, 8, 12, 20, 30, 45, 60, 90, 130, 200, 350, 600, 1000]
DATASETS = ["mico", "patent", "youtube"]
SWEEP_LABELS = 2


def _coarsen(graph):
    return graph.relabel(
        (graph.labels % SWEEP_LABELS).astype(np.int32),
        name=f"{graph.name}-L{SWEEP_LABELS}",
    )


@pytest.mark.benchmark(group="fig11")
def test_fig11_support_sweep(benchmark, emit):
    results: dict[str, list[tuple[int, float, float, int, int]]] = {}

    def sweep():
        for dataset in DATASETS:
            graph = _coarsen(bench_graph(dataset))
            rows = []
            for support in SUPPORTS:
                app = FrequentSubgraphMining(num_edges=2, support=support)
                res = KaleidoEngine(graph).run(app)
                rows.append(
                    (
                        support,
                        res.wall_seconds,
                        res.peak_memory_bytes / 1e6,
                        len(res.value),
                        app.total_insertions,
                    )
                )
            results[dataset] = rows
        return results

    run_once(benchmark, sweep)

    blocks = []
    for dataset, rows in results.items():
        table = format_table(
            ["support", "runtime (s)", "memory (MB)", "frequent", "MNI insertions"],
            [
                [str(s), f"{t:.3f}", f"{m:.2f}", str(n), str(i)]
                for s, t, m, n, i in rows
            ],
            title=f"Figure 11 — 3-FSM support sweep over {dataset} "
                  f"({SWEEP_LABELS}-label coarsening)",
        )
        series = format_series(
            f"{dataset} MNI-insertion cost",
            [(float(s), float(i)) for s, t, _, _, i in rows],
            "support",
            "insertions",
        )
        blocks.append(table + "\n" + series)
    emit("\n\n".join(blocks) + f"\n(profile: {PROFILE})",
         name="fig11_fsm_support_sweep")

    for dataset, rows in results.items():
        counts = [n for _, _, _, n, _ in rows]
        # More support ⇒ fewer frequent patterns (anti-monotonicity).
        assert all(a >= b for a, b in zip(counts, counts[1:])), dataset
        # The paper's non-monotone cost: the counting cost rises to an
        # interior peak, then Init pruning wins and it falls.
        inserts = [i for _, _, _, _, i in rows]
        peak = inserts.index(max(inserts))
        assert 0 < peak < len(inserts) - 1, (dataset, inserts)
        assert inserts[-1] < max(inserts), dataset
