"""Embedding exploration: expanding a CSE by one level (Section 3.1).

Vertex-induced expansion appends one neighboring vertex per step;
edge-induced expansion (used by FSM) appends one adjacent edge.  Both run
the Definition-2 canonical filter plus an optional user filter (Listing 1's
``EmbeddingFilter``).

Expansion is partitioned: the caller supplies contiguous part boundaries
over the current top level (either an even split or the prediction-driven
split from :mod:`repro.balance`), and the explorer reports per-part wall
time so the scheduler can compute makespans and CPU utilisation.  Output
goes to a *sink* — in-memory for the common case, a spilling sink
(:mod:`repro.storage`) when the memory budget says the next level will not
fit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..graph.edge_index import EdgeIndex
from ..graph.graph import Graph
from .cse import CSE, InMemoryLevel, Level

__all__ = [
    "VertexFilter",
    "EdgeFilter",
    "ExpansionStats",
    "LevelSink",
    "InMemorySink",
    "canonical_extensions",
    "expand_vertex_level",
    "expand_edge_level",
    "even_parts",
]

#: Listing 1: ``bool EmbeddingFilter(Embedding e, Vertex v)``.
VertexFilter = Callable[[tuple[int, ...], int], bool]
#: Listing 1: ``bool EmbeddingFilter(Embedding e, Edge <u,v>)`` — receives
#: the embedding's edge-id tuple and the candidate edge's (u, v) endpoints.
EdgeFilter = Callable[[tuple[int, ...], tuple[int, int]], bool]


@dataclass
class ExpansionStats:
    """What one level expansion did, per part."""

    part_bounds: list[tuple[int, int]] = field(default_factory=list)
    part_seconds: list[float] = field(default_factory=list)
    part_emitted: list[int] = field(default_factory=list)
    candidates_examined: int = 0
    emitted: int = 0

    @property
    def span_seconds(self) -> float:
        """Makespan if each part ran on its own worker."""
        return max(self.part_seconds, default=0.0)

    @property
    def total_seconds(self) -> float:
        return sum(self.part_seconds)


class LevelSink:
    """Receives expansion output part by part and produces the new level."""

    def write_part(self, vert: np.ndarray) -> None:  # pragma: no cover - protocol
        raise NotImplementedError

    def finish(self, off: np.ndarray) -> Level:  # pragma: no cover - protocol
        raise NotImplementedError


class InMemorySink(LevelSink):
    """Accumulates parts in memory into an :class:`InMemoryLevel`."""

    def __init__(self) -> None:
        self._parts: list[np.ndarray] = []

    def write_part(self, vert: np.ndarray) -> None:
        self._parts.append(vert)

    def finish(self, off: np.ndarray) -> Level:
        if self._parts:
            vert = np.concatenate(self._parts)
        else:
            vert = np.zeros(0, dtype=np.int32)
        return InMemoryLevel(vert, off)


def even_parts(total: int, num_parts: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ``num_parts`` contiguous near-equal parts."""
    if num_parts <= 0:
        raise ValueError("num_parts must be positive")
    bounds = np.linspace(0, total, num_parts + 1).astype(np.int64)
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(num_parts)]


def _extends_inline(
    adjacency: list[frozenset[int]], embedding: tuple[int, ...], candidate: int
) -> bool:
    """Hot-path copy of :func:`repro.core.canonical.extends_canonically`
    working on pre-fetched adjacency sets (kept in sync by tests)."""
    if candidate <= embedding[0]:
        return False
    first_neighbor = -1
    for idx, vertex in enumerate(embedding):
        if vertex == candidate:
            return False
        if first_neighbor < 0 and candidate in adjacency[vertex]:
            first_neighbor = idx
    if first_neighbor < 0:
        return False
    for idx in range(first_neighbor + 1, len(embedding)):
        if embedding[idx] > candidate:
            return False
    return True


def canonical_extensions(graph: Graph, embedding: Sequence[int]) -> list[int]:
    """All vertices that extend ``embedding`` canonically (Definition 2)."""
    adjacency = graph.adjacency_sets()
    emb = tuple(int(v) for v in embedding)
    if len(emb) == 1:
        candidates = graph.neighbors(emb[0]).tolist()
    else:
        merged: set[int] = set()
        for v in emb:
            merged.update(adjacency[v])
        candidates = sorted(merged)
    return [cand for cand in candidates if _extends_inline(adjacency, emb, cand)]


def expand_vertex_level(
    graph: Graph,
    cse: CSE,
    embedding_filter: VertexFilter | None = None,
    parts: Sequence[tuple[int, int]] | None = None,
    sink: LevelSink | None = None,
) -> ExpansionStats:
    """Expand the CSE's top level by one vertex (one exploration iteration).

    Walks the top level sequentially; parts are contiguous position ranges
    whose wall time is recorded individually.  Appends the new level to the
    CSE and returns the stats.
    """
    total = cse.size()
    if parts is None:
        parts = [(0, total)]
    _check_parts(parts, total)
    if sink is None:
        sink = InMemorySink()
    stats = ExpansionStats()
    counts = np.zeros(total, dtype=np.int64)
    part_iter = iter(parts)
    current = next(part_iter, None)
    buffer: list[int] = []
    part_started = time.perf_counter()
    part_emitted = 0

    def flush(bound: tuple[int, int]) -> None:
        nonlocal buffer, part_started, part_emitted
        sink.write_part(np.asarray(buffer, dtype=np.int32))
        elapsed = time.perf_counter() - part_started
        stats.part_bounds.append(bound)
        stats.part_seconds.append(elapsed)
        stats.part_emitted.append(part_emitted)
        buffer = []
        part_started = time.perf_counter()
        part_emitted = 0

    adjacency = graph.adjacency_sets()
    examined = 0
    for pos, emb in cse.iter_embeddings():
        while current is not None and pos >= current[1]:
            flush(current)
            current = next(part_iter, None)
        if len(emb) == 1:
            candidates = graph.neighbors(emb[0]).tolist()
        else:
            merged: set[int] = set()
            for v in emb:
                merged.update(adjacency[v])
            candidates = sorted(merged)
        emitted_here = 0
        examined += len(candidates)
        for cand in candidates:
            if not _extends_inline(adjacency, emb, cand):
                continue
            if embedding_filter is not None and not embedding_filter(emb, cand):
                continue
            buffer.append(cand)
            emitted_here += 1
        counts[pos] = emitted_here
        part_emitted += emitted_here
        stats.emitted += emitted_here
    stats.candidates_examined = examined
    while current is not None:
        flush(current)
        current = next(part_iter, None)

    off = np.zeros(total + 1, dtype=np.int64)
    np.cumsum(counts, out=off[1:])
    cse.append_level(sink.finish(off))
    return stats


def expand_edge_level(
    graph: Graph,
    index: EdgeIndex,
    cse: CSE,
    embedding_filter: EdgeFilter | None = None,
    parts: Sequence[tuple[int, int]] | None = None,
    sink: LevelSink | None = None,
) -> ExpansionStats:
    """Edge-induced analogue of :func:`expand_vertex_level`.

    CSE levels hold edge ids; the candidate set of an embedding is every
    edge incident to one of its endpoint vertices.
    """
    total = cse.size()
    if parts is None:
        parts = [(0, total)]
    _check_parts(parts, total)
    if sink is None:
        sink = InMemorySink()
    stats = ExpansionStats()
    counts = np.zeros(total, dtype=np.int64)
    part_iter = iter(parts)
    current = next(part_iter, None)
    buffer: list[int] = []
    part_started = time.perf_counter()
    part_emitted = 0

    def flush(bound: tuple[int, int]) -> None:
        nonlocal buffer, part_started, part_emitted
        sink.write_part(np.asarray(buffer, dtype=np.int32))
        elapsed = time.perf_counter() - part_started
        stats.part_bounds.append(bound)
        stats.part_seconds.append(elapsed)
        stats.part_emitted.append(part_emitted)
        buffer = []
        part_started = time.perf_counter()
        part_emitted = 0

    eu, ev = index.endpoint_lists()
    incident = index.incident_lists()
    examined = 0
    for pos, emb in cse.iter_embeddings():
        while current is not None and pos >= current[1]:
            flush(current)
            current = next(part_iter, None)
        # Arrival index: first embedding position at which each vertex
        # appears — gives the O(1) "first reachable" step of the
        # edge-canonicality rule.
        arrival: dict[int, int] = {}
        for idx, eid in enumerate(emb):
            for w in (eu[eid], ev[eid]):
                if w not in arrival:
                    arrival[w] = idx
        candidates: set[int] = set()
        for w in arrival:
            candidates.update(incident[w])
        emb_set = set(emb)
        first_id = emb[0]
        k = len(emb)
        emitted_here = 0
        examined += len(candidates)
        for cand in sorted(candidates):
            if cand <= first_id or cand in emb_set:
                continue
            first = arrival.get(eu[cand], k)
            other = arrival.get(ev[cand], k)
            if other < first:
                first = other
            if first >= k:
                continue
            ok = True
            for idx in range(first + 1, k):
                if emb[idx] > cand:
                    ok = False
                    break
            if not ok:
                continue
            if embedding_filter is not None and not embedding_filter(
                emb, (eu[cand], ev[cand])
            ):
                continue
            buffer.append(cand)
            emitted_here += 1
        counts[pos] = emitted_here
        part_emitted += emitted_here
        stats.emitted += emitted_here
    stats.candidates_examined = examined
    while current is not None:
        flush(current)
        current = next(part_iter, None)

    off = np.zeros(total + 1, dtype=np.int64)
    np.cumsum(counts, out=off[1:])
    cse.append_level(sink.finish(off))
    return stats


def _check_parts(parts: Sequence[tuple[int, int]], total: int) -> None:
    expected = 0
    for start, end in parts:
        if start != expected or end < start:
            raise ValueError(f"parts must be contiguous over 0..{total}, got {parts}")
        expected = end
    if expected != total:
        raise ValueError(f"parts cover 0..{expected}, level has {total} embeddings")
