"""Run records shared by the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["RunRecord", "geomean", "speedup"]


@dataclass
class RunRecord:
    """One (system, application, dataset) measurement."""

    system: str  # "kaleido" | "arabesque" | "rstream" | ...
    app: str  # e.g. "3-FSM"
    dataset: str
    options: str  # e.g. "support=300"
    seconds: float
    memory_bytes: int
    io_read_bytes: int = 0
    io_write_bytes: int = 0
    value_digest: Any = None  # sorted counts / supports, for agreement checks
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def memory_mb(self) -> float:
        return self.memory_bytes / 1e6

    def key(self) -> tuple[str, str, str]:
        return (self.app, self.dataset, self.options)


def geomean(values: list[float]) -> float:
    """Geometric mean (the paper's headline aggregation)."""
    filtered = [v for v in values if v > 0]
    if not filtered:
        return 0.0
    product = 1.0
    for value in filtered:
        product *= value
    return product ** (1.0 / len(filtered))


def speedup(baseline: RunRecord, ours: RunRecord) -> float:
    """baseline time / our time — >1 means we win."""
    if ours.seconds <= 0:
        return float("inf")
    return baseline.seconds / ours.seconds
