"""R005 fixture: catch-alls that re-raise typed errors are legal."""


class StorageError(Exception):
    pass


def load(path):
    try:
        return open(path, "rb").read()
    except OSError as exc:  # specific: legal
        raise StorageError(f"cannot read {path}") from exc


def save(path, payload, logger):
    try:
        with open(path, "wb") as handle:
            handle.write(payload)
    except Exception as exc:  # catch-all, but re-raises: legal
        logger.warning("save failed: %s", exc)
        raise StorageError(f"cannot write {path}") from exc
