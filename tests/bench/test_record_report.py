"""Unit tests for the bench harness (records, reporting, workloads)."""

import pytest

from repro.bench import (
    RunRecord,
    comparison_table,
    format_series,
    format_table,
    geomean,
    geomean_block,
    speedup,
)


def _record(system, seconds, memory=100, app="3-Motif", dataset="mico", options="k=3"):
    return RunRecord(
        system=system, app=app, dataset=dataset, options=options,
        seconds=seconds, memory_bytes=memory,
    )


def test_geomean():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    assert geomean([]) == 0.0
    assert geomean([0.0, 4.0]) == pytest.approx(4.0)  # nonpositive skipped


def test_speedup():
    base = _record("arabesque", 10.0)
    ours = _record("kaleido", 2.0)
    assert speedup(base, ours) == pytest.approx(5.0)
    assert speedup(base, _record("kaleido", 0.0)) == float("inf")


def test_record_properties():
    record = _record("kaleido", 1.0, memory=5_000_000)
    assert record.memory_mb == pytest.approx(5.0)
    assert record.key() == ("3-Motif", "mico", "k=3")


def test_format_table_alignment():
    text = format_table(["a", "bbbb"], [["1", "2"], ["333", "4"]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bbbb" in lines[1]
    assert len(lines) == 5


def test_format_series():
    text = format_series("s", [(1.0, 1.0), (2.0, 3.0)], "x", "y")
    assert "s [x -> y]" in text
    assert "(1,1)" in text and "(2,3)" in text
    assert format_series("empty", [], "x", "y") == "empty: (empty)"


def test_comparison_table_and_ratios():
    records = [
        _record("kaleido", 1.0),
        _record("arabesque", 5.0),
        _record("rstream", 10.0),
    ]
    text = comparison_table(records, "Table")
    assert "5.0x" in text and "10.0x" in text


def test_geomean_block():
    records = [
        _record("kaleido", 1.0, memory=10),
        _record("arabesque", 4.0, memory=100),
        _record("kaleido", 2.0, memory=20, options="k=4"),
        _record("arabesque", 16.0, memory=40, options="k=4"),
    ]
    text = geomean_block(records)
    assert "vs arabesque" in text
    # sqrt(4 * 8) ≈ 5.7
    assert "5.7x" in text


def test_workloads_runners(paper_graph):
    from repro.bench import run_arabesque, run_kaleido, run_rstream

    ka = run_kaleido(paper_graph, "tc", None, "paper")
    ar = run_arabesque(paper_graph, "tc", None, "paper")
    rs = run_rstream(paper_graph, "tc", None, "paper")
    assert ka.value_digest == ar.value_digest == rs.value_digest == 3
    assert ka.system == "kaleido"
    assert rs.io_write_bytes > 0


def test_workloads_unknown_kind(paper_graph):
    from repro.bench import run_kaleido

    with pytest.raises(ValueError):
        run_kaleido(paper_graph, "pagerank", None, "paper")
