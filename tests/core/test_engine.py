"""Unit tests for the KaleidoEngine orchestration."""

import pytest

from repro import (
    CliqueDiscovery,
    KaleidoEngine,
    MiningApplication,
    MotifCounting,
    TriangleCounting,
)
from repro.baselines import BlissLikeHasher


def test_result_fields(paper_graph):
    result = KaleidoEngine(paper_graph).run(TriangleCounting())
    assert result.value == 3
    assert result.wall_seconds > 0
    assert result.simulated_seconds > 0
    assert result.peak_memory_bytes > 0
    assert result.level_sizes == [6, 7]
    assert "explore" in result.phase_spans
    assert result.io_bytes_written == 0


def test_workers_change_schedule_not_result(paper_graph):
    r1 = KaleidoEngine(paper_graph, workers=1).run(MotifCounting(3))
    r4 = KaleidoEngine(paper_graph, workers=4).run(MotifCounting(3))
    assert dict(r1.value) == dict(r4.value)
    assert all(s.num_workers == 4 for s in r4.schedules)


def test_invalid_configuration(paper_graph):
    with pytest.raises(ValueError):
        KaleidoEngine(paper_graph, workers=0)
    with pytest.raises(ValueError):
        KaleidoEngine(paper_graph, storage_mode="bogus")


def test_prediction_toggle_same_result(paper_graph):
    on = KaleidoEngine(paper_graph, use_prediction=True).run(MotifCounting(3))
    off = KaleidoEngine(paper_graph, use_prediction=False).run(MotifCounting(3))
    assert dict(on.value) == dict(off.value)


def test_bliss_hasher_same_counts(paper_graph):
    eig = KaleidoEngine(paper_graph).run(MotifCounting(3))
    bliss = KaleidoEngine(paper_graph, hasher=BlissLikeHasher()).run(MotifCounting(3))
    assert sorted(eig.value.values()) == sorted(bliss.value.values())


def test_memory_snapshot_structure(paper_graph):
    result = KaleidoEngine(paper_graph).run(MotifCounting(3))
    assert "graph" in result.memory_snapshot
    assert "cse" in result.memory_snapshot
    assert result.peak_memory_bytes >= result.memory_snapshot["graph"]


def test_spill_last_mode(paper_graph, tmp_path):
    with KaleidoEngine(
        paper_graph,
        storage_mode="spill-last",
        spill_dir=str(tmp_path),
        synchronous_io=True,
        prefetch=False,
    ) as engine:
        result = engine.run(CliqueDiscovery(3))
        assert result.value.count == 3
        assert result.io_bytes_written > 0
        assert result.extra["spilled_levels"] >= 1


def test_unknown_induced_mode(paper_graph):
    class Bad(MiningApplication):
        induced = "hyper"

        def iterations(self):
            return 0

    with pytest.raises(ValueError):
        KaleidoEngine(paper_graph).run(Bad())


def test_utilization_bounded(paper_graph):
    result = KaleidoEngine(paper_graph, workers=2).run(MotifCounting(3))
    assert 0 < result.utilization <= 1.0


def test_custom_app_hooks(paper_graph):
    """A user app exercising filter + custom reduce end to end."""

    class StarCount(MiningApplication):
        induced = "vertex"

        def iterations(self):
            return 2

        def embedding_filter(self, emb, cand):
            # Grow stars around the first vertex only.
            return len(emb) == 1 or all(
                paper_graph.has_edge(emb[0], v) for v in emb[1:] + (cand,)
            )

        def map_embedding(self, ctx, emb, pmap):
            pmap["stars"] = pmap.get("stars", 0) + 1

        def finalize(self, ctx, cse, pmap):
            return pmap.get("stars", 0)

    result = KaleidoEngine(paper_graph).run(StarCount())
    assert result.value > 0


def test_max_embeddings_guard(paper_graph):
    from repro.errors import PlanError

    with pytest.raises(PlanError, match="max_embeddings"):
        KaleidoEngine(paper_graph, max_embeddings=2).run(MotifCounting(3))
    # A generous guard never triggers.
    result = KaleidoEngine(paper_graph, max_embeddings=10**9).run(MotifCounting(3))
    assert result.value.total == 8
