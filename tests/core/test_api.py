"""Unit tests for the MiningApplication API surface."""

import pytest

from repro.core.api import EngineContext, MiningApplication, MiningResult
from repro.core.engine import KaleidoEngine


def test_default_init_vertex(paper_graph):
    class App(MiningApplication):
        def iterations(self):
            return 0

        def map_embedding(self, ctx, emb, pmap):
            pmap[0] = pmap.get(0, 0) + 1

    result = KaleidoEngine(paper_graph).run(App())
    assert result.pattern_map[0] == paper_graph.num_vertices


def test_default_init_edge(paper_graph):
    class App(MiningApplication):
        induced = "edge"

        def iterations(self):
            return 0

        def map_embedding(self, ctx, emb, pmap):
            pmap[0] = pmap.get(0, 0) + 1

    result = KaleidoEngine(paper_graph).run(App())
    assert result.pattern_map[0] == paper_graph.num_edges


def test_default_reduce_merges_and_filters(paper_graph):
    class App(MiningApplication):
        def iterations(self):
            return 1

        def map_embedding(self, ctx, emb, pmap):
            key = emb[0] % 2
            pmap[key] = pmap.get(key, 0) + 1

        def pattern_filter(self, phash, value):
            return phash == 1

    result = KaleidoEngine(paper_graph, workers=3).run(App())
    assert set(result.pattern_map) == {1}


def test_unimplemented_hooks_raise(paper_graph):
    app = MiningApplication()
    with pytest.raises(NotImplementedError):
        app.iterations()
    ctx = EngineContext(graph=paper_graph, engine=None)
    with pytest.raises(NotImplementedError):
        app.map_embedding(ctx, (0,), {})


def test_default_filters_accept():
    app = MiningApplication()
    assert app.embedding_filter((1, 2), 3)
    assert app.pattern_filter(123, 1)
    assert app.prune(None, None, {}) is None


def test_pmap_nbytes_default():
    app = MiningApplication()
    assert app.pmap_nbytes({}) == 0
    assert app.pmap_nbytes({1: 2, 3: 4}) == 320


def test_mining_result_summary():
    result = MiningResult(
        app_name="X",
        value=1,
        pattern_map={},
        wall_seconds=1.5,
        simulated_seconds=1.0,
        peak_memory_bytes=2_000_000,
        level_sizes=[3, 5],
    )
    text = result.summary()
    assert "X" in text and "1.500s" in text and "2.00 MB" in text


def test_finalize_default_returns_pmap(paper_graph):
    class App(MiningApplication):
        def iterations(self):
            return 0

        def map_embedding(self, ctx, emb, pmap):
            pmap["n"] = pmap.get("n", 0) + 1

    result = KaleidoEngine(paper_graph).run(App())
    assert result.value == result.pattern_map


def test_context_hash_pattern(paper_graph):
    from repro.core import Pattern, eigen_hash

    engine = KaleidoEngine(paper_graph)
    ctx = EngineContext(graph=paper_graph, engine=engine)
    p = Pattern((0, 0), 1)
    assert ctx.hash_pattern(p) == eigen_hash(p)
