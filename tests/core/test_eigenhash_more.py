"""Additional EigenHash edge cases and stability guarantees."""

import os
import subprocess
import sys

import repro
from repro.core import Pattern, eigen_hash
from repro.core.eigenhash import _stable_hash


def test_hash_stable_across_interpreter_runs():
    """The fingerprint must not depend on PYTHONHASHSEED."""
    code = (
        "from repro.core import Pattern, eigen_hash;"
        "print(eigen_hash(Pattern((1, 0, 2), 0b101)))"
    )
    # The child needs to find `repro` however this process found it —
    # propagate PYTHONPATH plus the imported package's location (the
    # tier-1 invocation sets only PYTHONPATH=src, which a bare env would
    # drop); PYTHONHASHSEED stays pinned per iteration.
    package_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    pythonpath = os.pathsep.join(
        p for p in (package_dir, os.environ.get("PYTHONPATH")) if p
    )
    outs = set()
    for seed in ("0", "1", "random"):
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={
                "PYTHONHASHSEED": seed,
                "PATH": "/usr/bin:/bin",
                "PYTHONPATH": pythonpath,
            },
        )
        assert result.returncode == 0, result.stderr
        outs.add(result.stdout.strip())
    assert len(outs) == 1


def test_stable_hash_separators():
    """Adjacent-int ambiguity must not collide: (1, 23) != (12, 3)."""
    assert _stable_hash((1, 23)) != _stable_hash((12, 3))
    assert _stable_hash(()) != _stable_hash((0,))
    assert _stable_hash((-1,)) != _stable_hash((1,))


def test_single_vertex_patterns():
    a = eigen_hash(Pattern((3,), 0))
    b = eigen_hash(Pattern((4,), 0))
    assert a != b
    assert eigen_hash(Pattern((3,), 0)) == a


def test_empty_pattern():
    assert isinstance(eigen_hash(Pattern((), 0)), int)


def test_disconnected_patterns_distinguished():
    # Two isolated edges vs a path of 3 + isolate: same edge count.
    two_edges = Pattern.from_adjacency(
        [0] * 4, [[0, 1, 0, 0], [1, 0, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]]
    )
    path_iso = Pattern.from_adjacency(
        [0] * 4, [[0, 1, 0, 0], [1, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 0]]
    )
    assert eigen_hash(two_edges) != eigen_hash(path_iso)


def test_eight_vertex_boundary():
    """k = 8 is the largest supported size; it must work."""
    ring8 = 0
    from repro.core.pattern import triangle_index

    for i in range(8):
        j = (i + 1) % 8
        a, b = (i, j) if i < j else (j, i)
        ring8 |= 1 << triangle_index(a, b, 8)
    p = Pattern((0,) * 8, ring8)
    q = p.permute([3, 4, 5, 6, 7, 0, 1, 2])
    assert eigen_hash(p) == eigen_hash(q)
