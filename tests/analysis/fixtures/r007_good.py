"""R007 fixture: the legal release shapes — with, try/finally, transfer."""

import weakref
from multiprocessing.shared_memory import SharedMemory
from tempfile import NamedTemporaryFile


def context_managed(payload):
    with NamedTemporaryFile() as handle:
        handle.write(payload)
        return handle.name


def try_finally(storage):
    view = storage.open_mmap("part-0")
    try:
        return view.read()
    finally:
        view.close()


def released_on_both_paths(storage, fast):
    view = storage.open_mmap("part-1")
    if fast:
        data = view.read()
        view.close()
        return data
    view.close()
    return None


def ownership_transferred(nbytes):
    # returning the handle hands ownership to the caller — not a leak here.
    shm = SharedMemory(create=True, size=nbytes)
    return shm


def finalizer_registered(owner, nbytes):
    shm = SharedMemory(create=True, size=nbytes)
    weakref.finalize(owner, shm.close)
    return nbytes
