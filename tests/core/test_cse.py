"""Unit tests for the CSE data structure (Figure 4)."""

import numpy as np
import pytest

from repro.core import CSE, InMemoryLevel
from repro.core.explore import expand_vertex_level


@pytest.fixture
def paper_cse(paper_graph):
    """CSE with the Figure-3/Figure-4 levels (roots 0..5)."""
    cse = CSE(np.arange(paper_graph.num_vertices))
    expand_vertex_level(paper_graph, cse)
    expand_vertex_level(paper_graph, cse)
    return cse


def test_level_sizes(paper_cse):
    # 6 roots (incl. isolated 0), 7 2-embeddings, 8 3-embeddings.
    assert [paper_cse.size(i) for i in range(paper_cse.depth)] == [6, 7, 8]


def test_figure4_decode_example(paper_cse):
    """Section 3.1.1's example: offset 5 of level 3 decodes to <2,3,5>."""
    # With the isolated vertex 0 present the figure's offset 5 still holds
    # because vertex 0 contributes no children anywhere.
    assert paper_cse.embedding_at(2, 5) == (2, 3, 5)


def test_decode_all_against_walk(paper_cse):
    for pos, emb in paper_cse.iter_embeddings():
        assert paper_cse.embedding_at(2, pos) == emb


def test_walk_lower_level(paper_cse):
    twos = [emb for _, emb in paper_cse.iter_embeddings(1)]
    assert twos == [(1, 2), (1, 5), (2, 3), (2, 5), (3, 4), (3, 5), (4, 5)]


def test_iter_with_parents(paper_cse):
    off = paper_cse.top.off_array()
    for pos, parent, emb in paper_cse.iter_with_parents():
        assert off[parent] <= pos < off[parent + 1]
        assert paper_cse.embedding_at(1, parent) == emb[:-1]


def test_iter_with_parents_root_level():
    cse = CSE([4, 7, 9])
    items = list(cse.iter_with_parents())
    assert items == [(0, -1, (4,)), (1, -1, (7,)), (2, -1, (9,))]


def test_embedding_at_bounds(paper_cse):
    with pytest.raises(IndexError):
        paper_cse.embedding_at(5, 0)


def test_append_level_validation():
    cse = CSE([0, 1])
    with pytest.raises(ValueError):
        cse.append_level(InMemoryLevel(np.array([1]), np.array([0, 1])))  # off too short
    with pytest.raises(ValueError):
        cse.append_level(InMemoryLevel(np.array([1]), None))


def test_level_off_invariants():
    with pytest.raises(ValueError):
        InMemoryLevel(np.array([1, 2]), np.array([0, 1]))  # does not span
    with pytest.raises(ValueError):
        InMemoryLevel(np.array([1, 2]), np.array([0, 2, 1, 2]))  # decreasing


def test_pop_level(paper_cse):
    level = paper_cse.pop_level()
    assert level.num_embeddings == 8
    assert paper_cse.depth == 2
    with pytest.raises(ValueError):
        CSE([0]).pop_level()


def test_filter_top_level(paper_cse):
    keep = np.zeros(8, dtype=bool)
    keep[[0, 3, 7]] = True
    before = [emb for _, emb in paper_cse.iter_embeddings()]
    paper_cse.filter_top_level(keep)
    after = [emb for _, emb in paper_cse.iter_embeddings()]
    assert after == [before[0], before[3], before[7]]
    assert paper_cse.size() == 3
    # offsets still consistent for random access
    for pos, emb in enumerate(after):
        assert paper_cse.embedding_at(2, pos) == emb


def test_filter_top_level_all_false(paper_cse):
    paper_cse.filter_top_level(np.zeros(8, dtype=bool))
    assert paper_cse.size() == 0
    assert list(paper_cse.iter_embeddings()) == []


def test_filter_top_level_wrong_length(paper_cse):
    with pytest.raises(ValueError):
        paper_cse.filter_top_level(np.ones(3, dtype=bool))


def test_nbytes_accounting(paper_cse):
    # Level arrays: vert int32 per entry + off int64 (parent count + 1).
    expected = (6 + 7 + 8) * 4 + (6 + 1) * 8 + (7 + 1) * 8
    assert paper_cse.nbytes_in_memory == expected
    assert paper_cse.nbytes_total == expected


def test_space_complexity_within_bound(paper_graph):
    """k-CSE stores exactly one int per embedding per level — far below the
    tuple-per-embedding alternative."""
    cse = CSE(np.arange(paper_graph.num_vertices))
    expand_vertex_level(paper_graph, cse)
    expand_vertex_level(paper_graph, cse)
    explicit = sum(
        level_idx * cse.size(level_idx) * 8 for level_idx in range(cse.depth)
    )
    assert cse.nbytes_in_memory < max(explicit, 1) * 2


def test_roots_variants():
    cse = CSE([5, 2, 9])
    assert cse.size() == 3
    assert cse.embedding_at(0, 1) == (2,)
