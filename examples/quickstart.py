"""Quickstart: run all four mining applications on a small dataset.

Usage::

    python examples/quickstart.py [dataset] [profile]

Datasets: citeseer (default), mico, patent, youtube.
Profiles: tiny (default here), bench, large.
"""

from __future__ import annotations

import sys

from repro import (
    CliqueDiscovery,
    FrequentSubgraphMining,
    KaleidoEngine,
    MotifCounting,
    TriangleCounting,
)
from repro.graph import datasets


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "citeseer"
    profile = sys.argv[2] if len(sys.argv) > 2 else "tiny"
    graph = datasets.load(name, profile)
    print(f"Loaded {graph}\n")

    # Triangle counting --------------------------------------------------
    result = KaleidoEngine(graph).run(TriangleCounting())
    print(f"Triangles: {result.value}")
    print(f"  {result.summary()}\n")

    # Motif counting -----------------------------------------------------
    result = KaleidoEngine(graph).run(MotifCounting(3))
    print("3-motif census (pattern hash -> count):")
    for phash, count in sorted(result.value.items(), key=lambda kv: -kv[1]):
        pattern = result.value.patterns[phash]
        shape = "triangle" if pattern.num_edges == 3 else "3-chain"
        print(f"  {shape:<9} {count}")
    print(f"  {result.summary()}\n")

    # Clique discovery ---------------------------------------------------
    result = KaleidoEngine(graph).run(CliqueDiscovery(4))
    print(f"4-cliques: {result.value.count}")
    print(f"  {result.summary()}\n")

    # Frequent subgraph mining -------------------------------------------
    support = max(2, graph.num_edges // 200)
    result = KaleidoEngine(graph).run(
        FrequentSubgraphMining(num_edges=2, support=support)
    )
    print(f"Frequent 2-edge patterns at support >= {support}: {len(result.value)}")
    for phash, sup in sorted(result.value.items(), key=lambda kv: -kv[1])[:5]:
        pattern = result.value.patterns.get(phash)
        labels = pattern.labels if pattern else "?"
        print(f"  support={sup:<6} labels={labels}")
    print(f"  {result.summary()}")


if __name__ == "__main__":
    main()
