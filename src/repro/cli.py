"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``mine`` (alias ``run``)
    Run one of the four mining applications over a named dataset or an
    edge-list file, with optional workers / memory budget / spill dir.
    ``--trace-out`` / ``--trace-jsonl`` / ``--metrics-out`` export the
    run's trace and metrics (Chrome ``trace_event`` JSON, flat JSONL,
    metrics snapshot).
``datasets``
    Print the dataset registry (paper stats vs generated stand-ins).
``generate``
    Write a synthetic graph to an edge-list file.
``serve`` / ``query``
    The mining service front end: ``serve`` runs the multi-tenant query
    tier over line-delimited JSON (stdin/stdout by default, or a TCP
    socket with ``--socket HOST:PORT``); ``query`` is the one-shot
    client for a socket-mode service.
"""

from __future__ import annotations

import argparse
import json
import sys

from .apps import (
    CliqueDiscovery,
    FrequentSubgraphMining,
    MotifCounting,
    TriangleCounting,
)
from .core.engine import KaleidoEngine
from .core.executor import EXECUTOR_CHOICES
from .obs import Tracer, write_chrome_trace, write_jsonl
from .storage.retry import RetryPolicy
from .graph import (
    PAPER_STATS,
    chung_lu,
    dataset_names,
    load,
    load_auto,
    load_edge_list,
    load_labeled_adjacency,
    save_edge_list,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Kaleido reproduction: out-of-core graph mining",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    mine = sub.add_parser("mine", aliases=["run"], help="run a mining application")
    mine.add_argument(
        "app", choices=["tc", "motif", "clique", "fsm"], help="application"
    )
    mine.add_argument(
        "--dataset", default="citeseer", help="registry name or file path"
    )
    mine.add_argument("--profile", default="bench", help="dataset profile")
    mine.add_argument("--format", default="auto", choices=["auto", "edges", "adjacency"])
    mine.add_argument("-k", type=int, default=3, help="motif/clique size")
    mine.add_argument("--edges", type=int, default=2, help="FSM pattern edges")
    mine.add_argument("--support", type=int, default=5, help="FSM MNI support")
    mine.add_argument("--exact-mni", action="store_true", help="exact MNI counting")
    mine.add_argument("--workers", type=int, default=1)
    mine.add_argument(
        "--executor",
        default="serial",
        choices=list(EXECUTOR_CHOICES),
        help="part executor: 'serial' (work-stealing replay, default), "
        "'threads' (real thread pool of --workers threads), or 'processes' "
        "(real spawn-based process pool of --workers workers)",
    )
    mine.add_argument("--memory-limit-mb", type=float, default=None)
    mine.add_argument("--spill-dir", default=None)
    mine.add_argument(
        "--storage", default="auto", choices=["auto", "memory", "spill-last"]
    )
    mine.add_argument("--no-prediction", action="store_true")
    mine.add_argument(
        "--checkpoint-dir",
        default=None,
        help="write an atomic per-level checkpoint here after each iteration",
    )
    mine.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        help="checkpoint every N exploration iterations (default 1)",
    )
    mine.add_argument(
        "--resume",
        action="store_true",
        help="resume from the deepest valid checkpoint in --checkpoint-dir",
    )
    mine.add_argument(
        "--io-retries",
        type=int,
        default=4,
        help="total attempts for transient storage faults (default 4; "
        "1 disables retrying)",
    )
    mine.add_argument(
        "--queue-maxsize",
        type=int,
        default=16,
        help="bound on in-flight arrays in the background writing queue",
    )
    mine.add_argument(
        "--prefetch-depth",
        type=int,
        default=1,
        help="baseline candidate parts read ahead of the main part "
        "(default 1; the adaptive scheduler may raise it per level)",
    )
    mine.add_argument(
        "--io-plan",
        default="adaptive",
        choices=["adaptive", "fixed"],
        help="'adaptive' (default) derives spill part size and prefetch "
        "depth per level from the memory headroom and measured I/O vs "
        "compute rates; 'fixed' keeps the static knobs",
    )
    mine.add_argument(
        "--sanitize",
        action="store_true",
        help="run under the part-purity sanitizer: any shared-state write "
        "during per-part execution raises PartPurityError",
    )
    mine.add_argument(
        "--no-restrictions",
        action="store_true",
        help="escape hatch: disable the fused symmetry-breaking "
        "restrictions and run the kernels' post-hoc canonical masks "
        "instead (results are byte-identical either way)",
    )
    mine.add_argument("--json", action="store_true", help="machine-readable output")
    mine.add_argument(
        "--trace-out",
        default=None,
        help="write a Chrome trace_event JSON trace here "
        "(load in chrome://tracing or https://ui.perfetto.dev)",
    )
    mine.add_argument(
        "--trace-jsonl",
        default=None,
        help="write the raw trace events as one JSON object per line",
    )
    mine.add_argument(
        "--metrics-out",
        default=None,
        help="write the metrics registry snapshot as JSON",
    )

    ds = sub.add_parser("datasets", help="list the dataset registry")
    ds.add_argument("--profile", default="bench")

    gen = sub.add_parser("generate", help="write a synthetic power-law graph")
    gen.add_argument("path", help="output edge-list path")
    gen.add_argument("--vertices", type=int, default=1000)
    gen.add_argument("--edges", type=int, default=5000)
    gen.add_argument("--labels", type=int, default=1)
    gen.add_argument("--seed", type=int, default=0)

    stats = sub.add_parser("stats", help="print statistics of a graph")
    stats.add_argument("--dataset", default="citeseer")
    stats.add_argument("--profile", default="bench")
    stats.add_argument("--format", default="auto", choices=["auto", "edges", "adjacency"])

    approx = sub.add_parser(
        "approx", help="sampling-based approximate motif counting"
    )
    approx.add_argument("--dataset", default="citeseer")
    approx.add_argument("--profile", default="bench")
    approx.add_argument("--format", default="auto", choices=["auto", "edges", "adjacency"])
    approx.add_argument("-k", type=int, default=3)
    approx.add_argument("--samples", type=int, default=1000)
    approx.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve",
        help="run the mining service (line-delimited JSON over stdin or TCP)",
    )
    serve.add_argument("--workers", type=int, default=4, help="shared pool size")
    serve.add_argument(
        "--sessions-per-graph",
        type=int,
        default=4,
        help="max warm engine sessions per graph fingerprint",
    )
    serve.add_argument(
        "--cache-entries", type=int, default=256, help="result-cache LRU capacity"
    )
    serve.add_argument(
        "--max-concurrent",
        type=int,
        default=4,
        help="default per-tenant concurrent-query quota",
    )
    serve.add_argument(
        "--socket",
        default=None,
        metavar="HOST:PORT",
        help="listen on TCP instead of stdin/stdout (port 0 picks a free port)",
    )
    serve.add_argument(
        "--trace-out",
        default=None,
        help="write the per-request span tracks as a Chrome trace on exit",
    )
    serve.add_argument(
        "--metrics-out",
        default=None,
        help="write the service metrics snapshot as JSON on exit",
    )
    serve.add_argument(
        "--sanitize",
        action="store_true",
        help="run under the runtime sanitizers: lock-order checking on the "
        "service's locks plus the part-purity race detector in every "
        "engine session",
    )

    query = sub.add_parser(
        "query", help="send one query to a running 'repro serve --socket' service"
    )
    query.add_argument("app", choices=["tc", "motif", "clique", "fsm"])
    query.add_argument("--socket", required=True, metavar="HOST:PORT")
    query.add_argument("--dataset", default="citeseer")
    query.add_argument("--profile", default="bench")
    query.add_argument("-k", type=int, default=3)
    query.add_argument("--tenant", default="default")
    query.add_argument(
        "--mode", default="exact", choices=["exact", "approximate"]
    )
    query.add_argument("--max-embeddings", type=int, default=None)
    query.add_argument("--samples", type=int, default=None)
    query.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="app parameter (repeatable), e.g. --param support=5",
    )

    lint = sub.add_parser(
        "lint", help="run the invariant lint suite (rules R001-R008)"
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"], help="files/directories (default: src)"
    )
    lint.add_argument(
        "--select", default=None, help="comma-separated rule ids to run"
    )
    lint.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="diagnostic output format",
    )
    lint.add_argument(
        "--report-unused-ignores",
        action="store_true",
        help="also report suppression comments that silence nothing",
    )
    lint.add_argument("--list-rules", action="store_true")
    return parser


def _load_graph(args: argparse.Namespace):
    if args.dataset in dataset_names():
        return load(args.dataset, args.profile)
    if args.format == "adjacency":
        return load_labeled_adjacency(args.dataset)
    if args.format == "edges":
        return load_edge_list(args.dataset)
    return load_auto(args.dataset)


def _make_app(args: argparse.Namespace):
    if args.app == "tc":
        return TriangleCounting()
    if args.app == "motif":
        return MotifCounting(args.k)
    if args.app == "clique":
        return CliqueDiscovery(args.k)
    return FrequentSubgraphMining(
        num_edges=args.edges, support=args.support, exact_mni=args.exact_mni
    )


def _cmd_mine(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    limit = (
        None if args.memory_limit_mb is None else int(args.memory_limit_mb * 1e6)
    )
    if args.resume and args.checkpoint_dir is None:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    wants_trace = args.trace_out or args.trace_jsonl or args.metrics_out
    tracer = Tracer() if wants_trace else None
    with KaleidoEngine(
        graph,
        workers=args.workers,
        memory_limit_bytes=limit,
        storage_mode=args.storage,
        spill_dir=args.spill_dir,
        use_prediction=not args.no_prediction,
        executor=args.executor,
        queue_maxsize=args.queue_maxsize,
        prefetch_depth=args.prefetch_depth,
        adaptive_io=(args.io_plan == "adaptive"),
        io_retry=RetryPolicy(attempts=args.io_retries),
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        tracer=tracer,
        sanitize=args.sanitize,
        use_restrictions=not args.no_restrictions,
    ) as engine:
        result = engine.run(_make_app(args), resume=args.resume)
    if args.trace_out:
        write_chrome_trace(args.trace_out, engine.tracer)
    if args.trace_jsonl:
        write_jsonl(args.trace_jsonl, engine.tracer)
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(engine.metrics.snapshot(), handle, indent=2)
            handle.write("\n")
    if args.json:
        payload = {
            "app": result.app_name,
            "graph": graph.name,
            "executor": result.extra.get("executor"),
            "wall_seconds": result.wall_seconds,
            "simulated_seconds": result.simulated_seconds,
            "peak_memory_bytes": result.peak_memory_bytes,
            "level_sizes": result.level_sizes,
            "io_bytes_read": result.io_bytes_read,
            "io_bytes_written": result.io_bytes_written,
            "io_retries": result.extra.get("io_retries"),
            "io_failed_deletes": result.extra.get("io_failed_deletes"),
            "io_mode": result.extra.get("io_mode"),
            "io_plan": result.extra.get("io_plan"),
            "degradations": result.extra.get("degradations"),
            "resumed_from_level": result.extra.get("resumed_from_level"),
            "checkpoints_written": result.extra.get("checkpoints_written"),
            "value": _value_payload(result.value),
        }
        print(json.dumps(payload, indent=2))
    else:
        print(f"{graph}")
        print(result.summary())
        print(f"result: {_value_payload(result.value)}")
    return 0


def _value_payload(value):
    if isinstance(value, dict):
        return {str(k): v for k, v in sorted(value.items())}
    if hasattr(value, "count"):
        return value.count
    return value


def _cmd_datasets(args: argparse.Namespace) -> int:
    print(f"{'name':<10} {'paper |V|':>12} {'paper |E|':>12} "
          f"{'ours |V|':>9} {'ours |E|':>9} {'labels':>7}")
    for name in dataset_names():
        paper = PAPER_STATS[name]
        graph = load(name, args.profile)
        print(
            f"{name:<10} {paper['vertices']:>12,} {paper['edges']:>12,} "
            f"{graph.num_vertices:>9,} {graph.num_edges:>9,} "
            f"{graph.num_labels:>7}"
        )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = chung_lu(
        args.vertices, args.edges, seed=args.seed, num_labels=args.labels
    )
    save_edge_list(graph, args.path)
    print(f"wrote {graph} to {args.path}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .graph import compute_stats

    graph = _load_graph(args)
    print(graph)
    for metric, value in compute_stats(graph).rows():
        print(f"  {metric:<24} {value}")
    return 0


def _cmd_approx(args: argparse.Namespace) -> int:
    from .apps import approximate_motifs

    graph = _load_graph(args)
    estimates = approximate_motifs(
        graph, args.k, samples=args.samples, seed=args.seed
    )
    print(f"{graph}")
    print(f"approximate {args.k}-motif census ({args.samples} samples):")
    for phash, est in sorted(estimates.items(), key=lambda kv: -kv[1].estimate):
        print(
            f"  {phash:>20}  {est.estimate:14.1f}  "
            f"[{est.low:.1f}, {est.high:.1f}]"
        )
    return 0


def _parse_host_port(spec: str) -> tuple[str, int]:
    host, _, port = spec.rpartition(":")
    return host or "127.0.0.1", int(port)


def _cmd_serve(args: argparse.Namespace) -> int:
    from .obs import MetricsRegistry, write_chrome_trace
    from .service import MiningService, ServiceServer, serve_stream
    from .service.tenants import TenantQuota

    wants_obs = args.trace_out or args.metrics_out
    tracer = Tracer() if args.trace_out else None
    service = MiningService(
        pool_workers=args.workers,
        max_sessions_per_graph=args.sessions_per_graph,
        cache_entries=args.cache_entries,
        default_quota=TenantQuota(max_concurrent=args.max_concurrent),
        tracer=tracer,
        metrics=MetricsRegistry() if wants_obs else None,
        sanitize=args.sanitize,
    )
    try:
        if args.socket is not None:
            host, port = _parse_host_port(args.socket)
            server = ServiceServer(service, host, port)
            bound_host, bound_port = server.address
            print(f"serving on {bound_host}:{bound_port}", file=sys.stderr)
            sys.stderr.flush()
            try:
                server.serve_forever()
            except KeyboardInterrupt:  # pragma: no cover - interactive
                pass
            finally:
                server.stop()
        else:
            served = serve_stream(service, sys.stdin, sys.stdout)
            print(f"served {served} requests", file=sys.stderr)
    finally:
        service.close()
        if args.trace_out:
            write_chrome_trace(args.trace_out, service.tracer)
        if args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                json.dump(service.metrics.snapshot(), handle, indent=2)
                handle.write("\n")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from .service.protocol import request_over_socket

    params: dict[str, object] = {}
    for item in args.param:
        key, _, raw = item.partition("=")
        if not key or not raw:
            print(f"bad --param {item!r} (want KEY=VALUE)", file=sys.stderr)
            return 2
        try:
            params[key] = json.loads(raw)
        except ValueError:
            params[key] = raw
    payload: dict[str, object] = {
        "op": "query",
        "app": args.app,
        "k": args.k,
        "dataset": args.dataset,
        "profile": args.profile,
        "tenant": args.tenant,
        "mode": args.mode,
        "params": params,
    }
    budget: dict[str, object] = {}
    if args.max_embeddings is not None:
        budget["max_embeddings"] = args.max_embeddings
    if args.samples is not None:
        budget["samples"] = args.samples
    if budget:
        payload["budget"] = budget
    host, port = _parse_host_port(args.socket)
    response = request_over_socket(host, port, payload)
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0 if response.get("status") == "ok" else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis.__main__ import main as lint_main

    argv = list(args.paths)
    if args.select is not None:
        argv += ["--select", args.select]
    if args.format != "text":
        argv += ["--format", args.format]
    if args.report_unused_ignores:
        argv.append("--report-unused-ignores")
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command in ("mine", "run"):
        return _cmd_mine(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "datasets":
        return _cmd_datasets(args)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "approx":
        return _cmd_approx(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "query":
        return _cmd_query(args)
    return 1  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
