"""Executor parity: every executor must produce byte-identical results.

The acceptance bar for the executor seam: triangle counting and 3-motif
on a seeded random graph give identical ``pattern_map`` and
``level_sizes`` under the serial (work-stealing replay) executor and the
real thread-pool executor — merging part results in part-index order
makes completion order irrelevant.
"""

import numpy as np
import pytest

from repro import KaleidoEngine, MotifCounting, TriangleCounting
from repro.graph import chung_lu


@pytest.fixture(scope="module")
def seeded_graph():
    return chung_lu(120, 420, seed=42, num_labels=2)


@pytest.mark.parametrize("make_app", [TriangleCounting, lambda: MotifCounting(3)])
def test_serial_and_threads_identical(seeded_graph, make_app):
    serial = KaleidoEngine(seeded_graph, workers=4, executor="serial").run(make_app())
    threads = KaleidoEngine(seeded_graph, workers=4, executor="threads").run(make_app())
    assert serial.pattern_map == threads.pattern_map
    assert serial.level_sizes == threads.level_sizes
    if isinstance(serial.value, dict):
        assert dict(serial.value) == dict(threads.value)
    else:
        assert serial.value == threads.value
    assert serial.extra["executor"] == "simulated"
    assert threads.extra["executor"] == "threads"


def test_parity_under_spilling(seeded_graph, tmp_path):
    """Out-of-order part completion must not scramble a spilled level.

    The threaded executor submits parts to the async writing queue as
    they finish; the part indices carried through the queue must
    reassemble the level in storage order.
    """
    results = {}
    for name in ("serial", "threads"):
        with KaleidoEngine(
            seeded_graph,
            workers=4,
            executor=name,
            storage_mode="spill-last",
            spill_dir=str(tmp_path / name),
        ) as engine:
            results[name] = engine.run(MotifCounting(3))
        assert results[name].io_bytes_written > 0
    assert results["serial"].pattern_map == results["threads"].pattern_map
    assert results["serial"].level_sizes == results["threads"].level_sizes


def test_explicit_executor_instance(seeded_graph):
    from repro.core.executor import SerialExecutor, ThreadedExecutor

    raw = KaleidoEngine(seeded_graph, executor=SerialExecutor()).run(TriangleCounting())
    pooled = KaleidoEngine(
        seeded_graph, executor=ThreadedExecutor(max_workers=3)
    ).run(TriangleCounting())
    assert raw.value == pooled.value
    assert raw.level_sizes == pooled.level_sizes
