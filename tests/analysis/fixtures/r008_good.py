"""R008 fixture: balanced spans and registry-backed metric names."""

METRIC_REGISTRY = (
    "io.bytes_read",
    "io.write_seconds",
    "queue.depth",
    "tenant.*.admitted",
)


class Pipeline:
    def __init__(self, tracer, metrics):
        self.tracer = tracer
        self.metrics = metrics

    def load(self, chunks):
        self.tracer.begin("load", chunks=len(chunks))
        try:
            for chunk in chunks:
                self.metrics.counter("io.bytes_read", len(chunk))
            return chunks
        finally:
            self.tracer.end("load")

    def timed_write(self, seconds, prefix="io"):
        # f-string placeholder resolves through the parameter default.
        self.metrics.histogram(f"{prefix}.write_seconds", seconds)

    def report_depth(self, depth):
        self.metrics.gauge("queue.depth", depth)

    def admit(self, view):
        view.counter("admitted", 1)

    def dynamic(self, name, value):
        # non-literal names are runtime-shaped; the rule stays quiet.
        self.metrics.counter(name, value)
