"""Integration: the scheduler model reproduces Figure 14's scaling shapes."""

import pytest

from repro import FrequentSubgraphMining, KaleidoEngine, MotifCounting
from repro.graph import datasets


@pytest.fixture(scope="module")
def graph():
    return datasets.load("patent", "tiny")


def _simulated(graph, app, workers):
    return KaleidoEngine(graph, workers=workers, parts_per_worker=4).run(app)


def test_motif_scales_with_workers(graph):
    """3-Motif exploration+aggregation span shrinks as workers grow."""
    t1 = _simulated(graph, MotifCounting(3), 1).simulated_seconds
    t4 = _simulated(graph, MotifCounting(3), 4).simulated_seconds
    assert t4 < t1
    # Not super-linear either.
    assert t4 > t1 / 16


def test_fsm_scales_sublinearly(graph):
    """FSM's serial reduce keeps it from ideal scaling (Figure 14)."""
    r1 = _simulated(graph, FrequentSubgraphMining(2, 3), 1)
    r8 = _simulated(graph, FrequentSubgraphMining(2, 3), 8)
    assert r8.simulated_seconds <= r1.simulated_seconds
    speedup = r1.simulated_seconds / max(r8.simulated_seconds, 1e-9)
    assert speedup < 8.0


def test_fsm_memory_grows_with_workers(graph):
    """Per-worker pattern maps make FSM memory grow with threads."""
    m1 = _simulated(graph, FrequentSubgraphMining(2, 3), 1).peak_memory_bytes
    m8 = _simulated(graph, FrequentSubgraphMining(2, 3), 8).peak_memory_bytes
    assert m8 >= m1


def test_schedule_utilization_reported(graph):
    result = _simulated(graph, MotifCounting(3), 4)
    assert 0 < result.utilization <= 1.0
    assert result.schedules
