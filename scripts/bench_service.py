#!/usr/bin/env python
"""Service-tier smoke benchmark: latency, cache hit rate, concurrency.

Drives a ``MiningService`` through a small multi-tenant workload on the
tiny citeseer stand-in twice — once serially, once with the measured
phase fully in flight — and writes a ``BENCH_service.json`` record with
p50/p95 request latency per route, the result-cache hit rate, and the
concurrent-vs-serial throughput ratio.

Each pass has two phases.  The *warm* phase runs one tenant's queries
serially so the result cache is populated identically in both passes
(concurrent first arrivals would otherwise race the cache and make the
hit rate nondeterministic).  The *measured* phase is the other tenants'
traffic: repeats of the warm queries (GREEN cache hits) plus one
distinct full run per tenant (RED), tagged with a cache-busting param
to simulate per-tenant exclusive queries over the shared session pool.

Exits nonzero if any exact answer diverges from a solo
``KaleidoEngine`` run or if the cache hit/miss counts are not the
deterministic expected values.  Meant as a cheap CI guard that the
admission → cache → route → execute path stays wired up, not as a
performance measurement.

Usage::

    PYTHONPATH=src python scripts/bench_service.py [--out BENCH_service.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import KaleidoEngine, MiningService, QueryRequest  # noqa: E402
from repro.graph import datasets  # noqa: E402
from repro.service import Route, build_app  # noqa: E402

WARM_TENANT = "alice"
TENANTS = ("bob", "carol", "dave")

#: The shared workloads: mined once in the warm phase, then repeated by
#: every measured tenant (deterministic GREEN hits).  One approximate
#: query exercises the YELLOW lane; it is cached per-mode like the rest.
SHARED = (
    {"app": "tc", "k": 3, "params": {}},
    {"app": "motif", "k": 3, "params": {}},
    {"app": "clique", "k": 3, "params": {}},
    {"app": "motif", "k": 3, "params": {"samples": 200, "seed": 7}, "mode": "approximate"},
)


def _request(spec: dict, dataset: str, tenant: str) -> QueryRequest:
    return QueryRequest(
        app=spec["app"],
        dataset=dataset,
        profile="tiny",
        k=spec["k"],
        params=dict(spec["params"]),
        tenant=tenant,
        mode=spec.get("mode", "exact"),
    )


def build_measured(dataset: str) -> list[QueryRequest]:
    requests = [
        _request(spec, dataset, tenant) for tenant in TENANTS for spec in SHARED
    ]
    # One exclusive RED run per tenant: the tag changes the cache key but
    # not the mined work, so concurrency multiplexes three full motif
    # runs over the shared pool while the answers stay comparable.
    requests += [
        _request(
            {"app": "motif", "k": 3, "params": {"tag": tenant}}, dataset, tenant
        )
        for tenant in TENANTS
    ]
    return requests


def percentile(latencies: list[float], q: float) -> float:
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def run_pass(dataset: str, workers: int, concurrent: bool, sanitize: bool = False) -> dict:
    warm = [_request(spec, dataset, WARM_TENANT) for spec in SHARED]
    measured = build_measured(dataset)
    with MiningService(
        pool_workers=workers, max_inflight=len(measured), sanitize=sanitize
    ) as service:
        for request in warm:
            service.query(request)
        start = time.perf_counter()
        if concurrent:
            futures = [service.submit(request) for request in measured]
            results = [future.result() for future in futures]
        else:
            results = [service.query(request) for request in measured]
        elapsed = time.perf_counter() - start
        snapshot = service.stats()["metrics"]

    latencies = [r.wall_seconds for r in results]
    by_route: dict[str, list[float]] = {}
    for result in results:
        by_route.setdefault(result.route.value, []).append(result.wall_seconds)
    hits = int(snapshot.get("service.cache.hits", {}).get("value", 0))
    misses = int(snapshot.get("service.cache.misses", {}).get("value", 0))
    return {
        "mode": "concurrent" if concurrent else "serial",
        "warm_requests": len(warm),
        "measured_requests": len(results),
        "wall_seconds": round(elapsed, 4),
        "throughput_rps": round(len(results) / elapsed, 2),
        "latency_p50_seconds": round(percentile(latencies, 0.50), 4),
        "latency_p95_seconds": round(percentile(latencies, 0.95), 4),
        "latency_by_route": {
            route: {
                "count": len(values),
                "p50_seconds": round(percentile(values, 0.50), 4),
                "p95_seconds": round(percentile(values, 0.95), 4),
            }
            for route, values in sorted(by_route.items())
        },
        "cache_hits": hits,
        "cache_misses": misses,
        "cache_hit_rate": round(hits / (hits + misses), 4) if hits + misses else 0.0,
        "routes": {route: len(values) for route, values in sorted(by_route.items())},
        "exact_patterns": _exact_pattern_maps(measured, results),
    }


def _exact_pattern_maps(requests, results) -> dict:
    """Merged exact-lane answers keyed ``app/k`` — every tenant (and
    every cache-busting tag) must agree on each key."""
    merged: dict[str, dict] = {}
    for request, result in zip(requests, results):
        if request.mode != "exact":
            continue
        key = f"{request.app}/k{request.k}"
        patterns = {str(h): count for h, count in sorted(result.pattern_map.items())}
        if key in merged and merged[key] != patterns:
            raise RuntimeError(f"service answers disagree on {key}")
        merged[key] = patterns
    return merged


def solo_pattern_maps(dataset: str) -> dict:
    """The same exact workloads run straight on one KaleidoEngine."""
    graph = datasets.load(dataset, "tiny")
    maps = {}
    with KaleidoEngine(graph) as engine:
        for spec in SHARED:
            if spec.get("mode") == "approximate":
                continue
            result = engine.run(build_app(spec["app"], spec["k"], spec["params"]))
            maps[f"{spec['app']}/k{spec['k']}"] = {
                str(h): count for h, count in sorted(result.pattern_map.items())
            }
    return maps


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_service.json")
    parser.add_argument("--dataset", default="citeseer")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run the service under the lock-order sanitizer (and engines "
        "under the part-purity sanitizer); inversions fail the bench",
    )
    args = parser.parse_args(argv)

    serial = run_pass(args.dataset, args.workers, concurrent=False, sanitize=args.sanitize)
    concurrent = run_pass(args.dataset, args.workers, concurrent=True, sanitize=args.sanitize)
    solo = solo_pattern_maps(args.dataset)

    # Deterministic cache accounting: 4 warm misses + 3 tagged misses,
    # 12 repeat hits — identical in both passes by construction.
    expected_hits, expected_misses = 4 * len(TENANTS), len(SHARED) + len(TENANTS)
    ok = True
    for record in (serial, concurrent):
        label = record["mode"]
        if record["exact_patterns"] != solo:
            print(f"FAIL: {label} service answers diverge from solo engine run", file=sys.stderr)
            ok = False
        if (record["cache_hits"], record["cache_misses"]) != (expected_hits, expected_misses):
            print(
                f"FAIL: {label} cache counts {record['cache_hits']}/{record['cache_misses']} "
                f"(hits/misses), expected {expected_hits}/{expected_misses}",
                file=sys.stderr,
            )
            ok = False
        if record["routes"].get(Route.GREEN.value, 0) != expected_hits:
            print(f"FAIL: {label} GREEN route count != cache hits", file=sys.stderr)
            ok = False

    record = {
        "benchmark": "service_smoke",
        "workload": {
            "dataset": args.dataset,
            "profile": "tiny",
            "tenants": 1 + len(TENANTS),
            "warm_requests": serial["warm_requests"],
            "measured_requests": serial["measured_requests"],
            "pool_workers": args.workers,
        },
        "serial": {k: v for k, v in serial.items() if k != "exact_patterns"},
        "concurrent": {k: v for k, v in concurrent.items() if k != "exact_patterns"},
        "concurrent_vs_serial_speedup": round(
            serial["wall_seconds"] / concurrent["wall_seconds"], 2
        ),
        "matches_solo_engine": ok,
    }
    with open(args.out, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")

    for label in ("serial", "concurrent"):
        row = record[label]
        print(
            f"{label:>10}: {row['measured_requests']} requests in {row['wall_seconds']:.3f}s "
            f"({row['throughput_rps']:.1f} req/s), p50 {row['latency_p50_seconds'] * 1000:.1f}ms, "
            f"p95 {row['latency_p95_seconds'] * 1000:.1f}ms, "
            f"cache hit rate {row['cache_hit_rate']:.2f}, routes {row['routes']}"
        )
    print(f"concurrent vs serial speedup: {record['concurrent_vs_serial_speedup']:.2f}x")
    print(f"wrote {args.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
