"""Cross-file analysis context for the invariant lint suite.

PR 5's rules were per-file: each got one parsed ``tree`` and could not
see past the module boundary.  The concurrency rules (R006-R008) need
more — lock-discipline closure over a class's self-call graph, and a
metric-name registry that lives in ``obs/bridge.py`` while the
emissions live in ``service/`` and ``storage/``.  The
:class:`AnalysisContext` is built **once** over every linted file and
handed to each rule next to the module under check, so cross-file
lookups are an index hit, not a re-parse.

Nothing here imports or executes project code; modules are represented
purely by their AST plus the raw source lines (the latter so rules can
read structured comments such as ``# guarded-by: _lock``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "AnalysisContext",
    "ClassInfo",
    "ModuleInfo",
    "build_context",
    "parent_map",
    "rel_module",
]


def parent_map(tree: ast.AST) -> dict[int, ast.AST]:
    """Child-id -> parent node, for dominance/ancestry queries."""
    parents: dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def rel_module(path: str) -> str | None:
    """Path relative to the ``repro`` package root, or ``None``.

    ``src/repro/core/engine.py`` -> ``core/engine.py``.  Files outside a
    ``repro`` package (tests, fixtures, scripts) return ``None``, which
    applies every rule — explicit ``select`` lists drive those checks.
    """
    parts = Path(path).parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1 :])
    return None


@dataclass
class ClassInfo:
    """One class definition plus its per-class call/attribute graph."""

    node: ast.ClassDef
    module: "ModuleInfo"
    #: Method name -> definition (sync and async alike).
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for stmt in self.node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.methods[stmt.name] = stmt

    def self_call_sites(self) -> dict[str, list[ast.Call]]:
        """Callee method name -> every ``self.<callee>(...)`` call node.

        Only calls to methods defined on this class are indexed; the
        result is the class's intra-class call graph, shared by R001's
        hot-closure and R006's lock-context closure.
        """
        sites: dict[str, list[ast.Call]] = {}
        for method in self.methods.values():
            for node in ast.walk(method):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                    and node.func.attr in self.methods
                ):
                    sites.setdefault(node.func.attr, []).append(node)
        return sites

    def enclosing_method(self, node: ast.AST) -> ast.FunctionDef | None:
        """The class method lexically containing ``node`` (or ``None``)."""
        parents = self.module.parents
        current = parents.get(id(node))
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if current.name in self.methods and self.methods[current.name] is current:
                    return current
            current = parents.get(id(current))
        return None


@dataclass
class ModuleInfo:
    """One parsed module: tree, parents, raw lines and package position."""

    path: str
    source: str
    tree: ast.Module
    rel: str | None = None
    lines: tuple[str, ...] = ()
    parents: dict[int, ast.AST] = field(default_factory=dict)
    classes: tuple[ClassInfo, ...] = ()

    @classmethod
    def parse(cls, source: str, path: str) -> "ModuleInfo":
        """Parse ``source``; raises :class:`SyntaxError` on bad input."""
        tree = ast.parse(source, filename=path)
        info = cls(
            path=path,
            source=source,
            tree=tree,
            rel=rel_module(path),
            lines=tuple(source.splitlines()),
            parents=parent_map(tree),
        )
        info.classes = tuple(
            ClassInfo(node=node, module=info)
            for node in ast.walk(tree)
            if isinstance(node, ast.ClassDef)
        )
        return info

    def line(self, lineno: int) -> str:
        """1-based source line, empty string when out of range."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


#: Name of the metric-name table R008 validates emissions against.
METRIC_REGISTRY_NAME = "METRIC_REGISTRY"


def _registry_from_tree(tree: ast.Module) -> tuple[str, ...] | None:
    """Extract a literal ``METRIC_REGISTRY = (...)`` table from an AST."""
    for node in tree.body:
        targets: list[ast.expr]
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        named = any(
            isinstance(t, ast.Name) and t.id == METRIC_REGISTRY_NAME for t in targets
        )
        if not named or not isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            continue
        entries: list[str] = []
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                entries.append(element.value)
        return tuple(entries)
    return None


class AnalysisContext:
    """Project-wide index built once per lint run and handed to rules."""

    #: Package-relative path of the canonical metric registry module.
    BRIDGE_REL = "obs/bridge.py"

    def __init__(self, modules: Iterable[ModuleInfo] = ()) -> None:
        self._modules: dict[str, ModuleInfo] = {}
        self._by_rel: dict[str, ModuleInfo] = {}
        for module in modules:
            self.add(module)

    def add(self, module: ModuleInfo) -> None:
        self._modules[module.path] = module
        if module.rel is not None:
            self._by_rel[module.rel] = module

    def __len__(self) -> int:
        return len(self._modules)

    def modules(self) -> Iterator[ModuleInfo]:
        yield from self._modules.values()

    def module_for(self, path: str) -> ModuleInfo | None:
        return self._modules.get(path)

    def by_rel(self, rel: str) -> ModuleInfo | None:
        """Look a module up by its package-relative path."""
        return self._by_rel.get(rel)

    def classes(self) -> Iterator[ClassInfo]:
        for module in self._modules.values():
            yield from module.classes

    def metric_registry(self, module: ModuleInfo) -> tuple[str, ...]:
        """The metric-name table visible to ``module``.

        Resolution order: a literal ``METRIC_REGISTRY`` in the module
        itself (self-contained fixtures), then the obs bridge module if
        it is part of this lint run (the cross-file path), then the
        installed :data:`repro.obs.bridge.METRIC_REGISTRY` as a last
        resort so single-file lints still check against the shipped
        table.
        """
        own = _registry_from_tree(module.tree)
        if own is not None:
            return own
        bridge = self._by_rel.get(self.BRIDGE_REL)
        if bridge is not None:
            table = _registry_from_tree(bridge.tree)
            if table is not None:
                return table
        try:  # pragma: no cover - exercised when linting single files
            from ..obs.bridge import METRIC_REGISTRY

            return tuple(METRIC_REGISTRY)
        except Exception:  # pragma: no cover - analysis must never crash
            return ()


def build_context(
    sources: Iterable[tuple[str, str]],
) -> tuple[AnalysisContext, list[tuple[str, SyntaxError]]]:
    """Parse ``(path, source)`` pairs into a context.

    Returns the context plus the files that failed to parse (the driver
    turns those into ``E999`` diagnostics); unparseable files are left
    out of the index so rules never see partial modules.
    """
    context = AnalysisContext()
    failures: list[tuple[str, SyntaxError]] = []
    for path, source in sources:
        try:
            context.add(ModuleInfo.parse(source, path))
        except SyntaxError as exc:
            failures.append((path, exc))
    return context, failures
