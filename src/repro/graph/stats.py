"""Descriptive graph statistics.

Used to validate that the synthetic dataset stand-ins preserve the
properties the paper's mechanisms depend on: skewed (power-law-ish) degree
distributions (Section 4.2's load-balance argument) and non-trivial
clustering (what makes motif/clique mining expensive).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .graph import Graph

__all__ = ["GraphStats", "compute_stats", "degree_histogram", "power_law_alpha"]


def degree_histogram(graph: Graph) -> dict[int, int]:
    """Degree → number of vertices with that degree."""
    degrees = graph.degrees()
    values, counts = np.unique(degrees, return_counts=True)
    return {int(d): int(c) for d, c in zip(values, counts)}


def power_law_alpha(graph: Graph, d_min: int = 2) -> float:
    """MLE of the power-law exponent over degrees >= ``d_min``.

    Clauset–Shalizi–Newman continuous approximation:
    ``alpha = 1 + n / sum(ln(d_i / (d_min - 0.5)))``.
    Returns ``nan`` when too few vertices qualify.
    """
    degrees = graph.degrees()
    tail = degrees[degrees >= d_min].astype(np.float64)
    if tail.shape[0] < 10:
        return float("nan")
    return float(1.0 + tail.shape[0] / np.log(tail / (d_min - 0.5)).sum())


def _local_clustering(graph: Graph, v: int) -> float:
    nbrs = graph.neighbors(v).tolist()
    d = len(nbrs)
    if d < 2:
        return 0.0
    adjacency = graph.adjacency_sets()
    links = 0
    for i in range(d):
        set_i = adjacency[nbrs[i]]
        for j in range(i + 1, d):
            if nbrs[j] in set_i:
                links += 1
    return 2.0 * links / (d * (d - 1))


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of one graph."""

    num_vertices: int
    num_edges: int
    num_labels: int
    average_degree: float
    max_degree: int
    degree_p99: int
    clustering_coefficient: float
    triangles: int
    power_law_alpha: float
    degree_skew: float  # max / mean

    def rows(self) -> list[tuple[str, str]]:
        """(metric, value) rows for text tables."""
        return [
            ("|V|", f"{self.num_vertices:,}"),
            ("|E|", f"{self.num_edges:,}"),
            ("labels", str(self.num_labels)),
            ("avg degree", f"{self.average_degree:.2f}"),
            ("max degree", str(self.max_degree)),
            ("p99 degree", str(self.degree_p99)),
            ("clustering", f"{self.clustering_coefficient:.4f}"),
            ("triangles", f"{self.triangles:,}"),
            ("power-law alpha", f"{self.power_law_alpha:.2f}"),
            ("degree skew (max/mean)", f"{self.degree_skew:.1f}"),
        ]


def compute_stats(graph: Graph, clustering_sample: int | None = 400) -> GraphStats:
    """Compute :class:`GraphStats`.

    ``clustering_sample`` bounds the number of vertices used for the
    average clustering coefficient (deterministic evenly spaced sample);
    ``None`` uses every vertex.
    """
    degrees = graph.degrees()
    n = graph.num_vertices
    if n == 0:
        return GraphStats(0, 0, 0, 0.0, 0, 0, 0.0, 0, float("nan"), 0.0)
    if clustering_sample is None or clustering_sample >= n:
        sample = range(n)
    else:
        step = max(1, n // clustering_sample)
        sample = range(0, n, step)
    coefficients = [_local_clustering(graph, v) for v in sample]
    clustering = float(sum(coefficients) / max(1, len(coefficients)))

    # Exact triangle count via ordered wedges (cheap at our scales).
    adjacency = graph.adjacency_sets()
    eu, ev = graph.edge_arrays()
    triangles = 0
    for u, v in zip(eu.tolist(), ev.tolist()):
        small, big = (u, v) if len(adjacency[u]) < len(adjacency[v]) else (v, u)
        for w in adjacency[small]:
            if w > v and w in adjacency[big]:
                triangles += 1
    mean_degree = float(degrees.mean()) if n else 0.0
    return GraphStats(
        num_vertices=n,
        num_edges=graph.num_edges,
        num_labels=graph.num_labels,
        average_degree=graph.average_degree,
        max_degree=int(degrees.max(initial=0)),
        degree_p99=int(np.percentile(degrees, 99)) if n else 0,
        clustering_coefficient=clustering,
        triangles=triangles,
        power_law_alpha=power_law_alpha(graph),
        degree_skew=(float(degrees.max(initial=0)) / mean_degree)
        if mean_degree > 0
        else 0.0,
    )
