"""Per-tenant quotas, admission control and scoped accounting.

Admission is the cheapest place to protect the shared executor pool: a
tenant with ``max_concurrent`` queries already in flight is refused with
:class:`~repro.errors.QuotaExceededError` *before* any graph is loaded
or any engine session acquired, so one chatty tenant cannot starve the
others of pool capacity.  Quotas may also pin a per-tenant embedding
ceiling, clamping whatever budget the query itself carries.

Each tenant's counters live under the ``tenant.<name>.*`` namespace of
the shared registry via :class:`~repro.obs.metrics.MetricsView` — one
snapshot shows every tenant, and a tenant's view cannot write outside
its own prefix.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..errors import QuotaExceededError
from ..obs.metrics import MetricsRegistry, MetricsView

__all__ = ["TenantQuota", "TenantRegistry"]


@dataclass(frozen=True)
class TenantQuota:
    """Admission limits for one tenant.

    ``max_concurrent`` bounds in-flight queries (admission control);
    ``max_embeddings`` is an optional hard ceiling on any single query's
    exploration size — a per-tenant clamp on the per-query budget.
    """

    max_concurrent: int = 4
    max_embeddings: int | None = None

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise ValueError("max_concurrent must be positive")


class TenantRegistry:
    """Tracks per-tenant quotas and in-flight query counts."""

    def __init__(
        self,
        default_quota: TenantQuota | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.default_quota = default_quota if default_quota is not None else TenantQuota()
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._quotas: dict[str, TenantQuota] = {}  # guarded-by: _lock
        self._inflight: dict[str, int] = {}  # guarded-by: _lock

    def set_quota(self, tenant: str, quota: TenantQuota) -> None:
        with self._lock:
            self._quotas[tenant] = quota

    def quota(self, tenant: str) -> TenantQuota:
        with self._lock:
            return self._quotas.get(tenant, self.default_quota)

    def view(self, tenant: str) -> MetricsView:
        """The tenant's scoped metrics view (``tenant.<name>.*``)."""
        return self._metrics.view(f"tenant.{tenant}")

    def inflight(self, tenant: str) -> int:
        with self._lock:
            return self._inflight.get(tenant, 0)

    def admit(self, tenant: str) -> None:
        """Count one query in, or refuse it.

        Raises :class:`QuotaExceededError` when the tenant is already at
        its concurrency cap; on success the caller *must* pair this with
        :meth:`release` (the service does so in a ``finally``).
        """
        view = self.view(tenant)
        with self._lock:
            quota = self._quotas.get(tenant, self.default_quota)
            current = self._inflight.get(tenant, 0)
            if current >= quota.max_concurrent:
                rejected = True
            else:
                self._inflight[tenant] = current + 1
                rejected = False
        if rejected:
            view.counter("rejected").inc()
            raise QuotaExceededError(
                f"tenant {tenant!r} already has {current} queries in flight "
                f"(max_concurrent={quota.max_concurrent})"
            )
        view.counter("admitted").inc()
        view.gauge("inflight").set(current + 1)

    def release(self, tenant: str) -> None:
        with self._lock:
            current = self._inflight.get(tenant, 0)
            if current <= 0:
                raise ValueError(f"release without admit for tenant {tenant!r}")
            self._inflight[tenant] = current - 1
        self.view(tenant).gauge("inflight").set(current - 1)

    def clamp_budget(self, tenant: str, max_embeddings: int | None) -> int | None:
        """The effective embedding cap: min(query budget, tenant ceiling)."""
        ceiling = self.quota(tenant).max_embeddings
        if ceiling is None:
            return max_embeddings
        if max_embeddings is None:
            return ceiling
        return min(max_embeddings, ceiling)
