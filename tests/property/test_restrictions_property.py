"""Property-based guarantees for symmetry-breaking restrictions.

Two families of properties:

* **compiler soundness** — for random small connected patterns, the
  compiled restriction set accepts *exactly one* binding per
  automorphism orbit of any injective assignment (so the number of
  accepted permutations is ``k! / |Aut|``);
* **kernel parity** — on random graphs, the fused restricted kernels
  build levels byte-identical to the unrestricted scalar oracle, and
  block-for-block emit the same ``(vert, counts)`` as the masked
  kernels while examining no more candidates.
"""

from itertools import permutations

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.core.cse import CSE
from repro.core.explore import expand_edge_level, expand_vertex_level
from repro.core.isomorphism import automorphisms
from repro.core.pattern import Pattern, triangle_index
from repro.core.restrictions import (
    canonical_level_restrictions,
    compile_restrictions,
)
from repro.graph.edge_index import EdgeIndex

from tests.conftest import random_labeled_graph


def _connected(num_vertices, adjacency):
    seen = {0}
    frontier = [0]
    while frontier:
        u = frontier.pop()
        for w in range(num_vertices):
            if adjacency[u][w] and w not in seen:
                seen.add(w)
                frontier.append(w)
    return len(seen) == num_vertices


@st.composite
def connected_patterns(draw):
    k = draw(st.integers(min_value=3, max_value=5))
    labels = draw(
        st.lists(
            st.integers(min_value=0, max_value=1), min_size=k, max_size=k
        )
    )
    adjacency = [[0] * k for _ in range(k)]
    for u in range(k):
        for w in range(u + 1, k):
            bit = draw(st.booleans())
            adjacency[u][w] = adjacency[w][u] = int(bit)
    assume(_connected(k, adjacency))
    return Pattern.from_adjacency(labels, adjacency)


@given(connected_patterns())
@settings(max_examples=60, deadline=None)
def test_exactly_one_accepted_binding_per_automorphism_orbit(pattern):
    rset = compile_restrictions(pattern)
    group = automorphisms(pattern)
    k = pattern.num_vertices
    values = tuple(100 + 7 * t for t in range(k))
    accepted_total = 0
    for assignment in permutations(values):
        orbit = {
            tuple(assignment[perm[t]] for t in range(k)) for perm in group
        }
        accepted = sum(1 for binding in orbit if rset.accepts(binding))
        assert accepted == 1, (pattern.labels, pattern.bits, assignment)
        accepted_total += rset.accepts(assignment)
    # One survivor per orbit over all k! permutations: k! / |Aut| total.
    factorial = 1
    for t in range(2, k + 1):
        factorial *= t
    assert accepted_total == factorial // len(group)


@given(connected_patterns())
@settings(max_examples=40, deadline=None)
def test_restrictions_are_consistent_partial_orders(pattern):
    """Every compiled pair is ascending, in-range, and acyclic (the
    identity binding 0..k-1 always satisfies the set)."""
    rset = compile_restrictions(pattern)
    k = pattern.num_vertices
    for r in rset.restrictions:
        assert 0 <= r.smaller < r.larger < k
    assert rset.accepts(tuple(range(k)))


@st.composite
def graph_cases(draw):
    num_vertices = draw(st.integers(min_value=3, max_value=24))
    max_edges = num_vertices * (num_vertices - 1) // 2
    num_edges = draw(st.integers(min_value=1, max_value=min(max_edges, 50)))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    depth = draw(st.integers(min_value=1, max_value=3))
    return num_vertices, num_edges, seed, depth

def _levels_match(left, right):
    assert left.size() == right.size()
    np.testing.assert_array_equal(
        left.top.vert_array(), right.top.vert_array()
    )
    np.testing.assert_array_equal(left.top.off_array(), right.top.off_array())


@given(graph_cases())
@settings(max_examples=30, deadline=None)
def test_restricted_vertex_levels_match_scalar_oracle(case):
    num_vertices, num_edges, seed, depth = case
    graph = random_labeled_graph(num_vertices, num_edges, 3, seed=seed)
    restricted = CSE(np.arange(graph.num_vertices, dtype=np.int32))
    oracle = CSE(np.arange(graph.num_vertices, dtype=np.int32))
    for _ in range(depth):
        expand_vertex_level(
            graph,
            restricted,
            restrictions=canonical_level_restrictions(
                "vertex", restricted.depth
            ),
        )
        expand_vertex_level(graph, oracle, use_kernels=False)
        _levels_match(restricted, oracle)
        if oracle.size() == 0 or oracle.size() > 20_000:
            return


@given(graph_cases())
@settings(max_examples=20, deadline=None)
def test_restricted_edge_levels_match_scalar_oracle(case):
    num_vertices, num_edges, seed, depth = case
    graph = random_labeled_graph(num_vertices, num_edges, 3, seed=seed)
    index = EdgeIndex(graph)
    if index.num_edges == 0:
        return
    restricted = CSE(np.arange(index.num_edges, dtype=np.int32))
    oracle = CSE(np.arange(index.num_edges, dtype=np.int32))
    for _ in range(min(depth, 2)):
        expand_edge_level(
            graph,
            index,
            restricted,
            restrictions=canonical_level_restrictions(
                "edge", restricted.depth
            ),
        )
        expand_edge_level(graph, index, oracle, use_kernels=False)
        _levels_match(restricted, oracle)
        if oracle.size() == 0 or oracle.size() > 20_000:
            return


@given(graph_cases())
@settings(max_examples=30, deadline=None)
def test_restricted_blocks_match_masked_blocks(case):
    """Block-level: fused restrictions emit the same survivors as the
    post-hoc canonical mask while never examining more candidates."""
    num_vertices, num_edges, seed, depth = case
    graph = random_labeled_graph(num_vertices, num_edges, 3, seed=seed)
    cse = CSE(np.arange(graph.num_vertices, dtype=np.int32))
    for _ in range(depth):
        expand_vertex_level(graph, cse, use_kernels=False)
        if cse.size() == 0 or cse.size() > 20_000:
            return
    block = cse.decode_block(0, cse.size())
    ctx = kernels.vertex_kernel_context(graph)
    vert_m, counts_m, examined_m = kernels.expand_vertex_block(ctx, block)
    vert_r, counts_r, examined_r = kernels.expand_vertex_block(
        ctx, block, canonical_level_restrictions("vertex", block.shape[1])
    )
    np.testing.assert_array_equal(vert_m, vert_r)
    np.testing.assert_array_equal(counts_m, counts_r)
    assert examined_r <= examined_m


@given(st.integers(min_value=3, max_value=6))
@settings(max_examples=4, deadline=None)
def test_clique_restrictions_form_a_total_chain(k):
    """K_k has the full symmetric group, so the compiled set must be the
    total order 0 < 1 < ... < k-1 after transitive reduction."""
    bits = 0
    for u in range(k):
        for w in range(u + 1, k):
            bits |= 1 << triangle_index(u, w, k)
    pattern = Pattern(tuple([0] * k), bits)
    rset = compile_restrictions(pattern)
    expected = tuple((t, t + 1) for t in range(k - 1))
    assert tuple((r.smaller, r.larger) for r in rset.restrictions) == expected
