"""Writing a custom mining application against the Kaleido API.

The paper's Listing-1 API lets non-experts express new mining workloads
with a handful of hooks.  This example implements **labeled star census**:
count, for each (hub label, leaf label) pair, the number of 3-stars whose
hub carries the first label and whose leaves all carry the second — a
pattern query none of the four built-in applications answers directly.

Usage::

    python examples/custom_app.py
"""

from __future__ import annotations

from repro import KaleidoEngine, MiningApplication
from repro.graph import datasets


class LabeledStarCensus(MiningApplication):
    """Count 3-stars (a hub with three leaves) by label signature.

    Exploration: vertex-induced to 3-embeddings; the Mapper extends each
    3-embedding by one more vertex on the fly (like motif counting does)
    and keeps only star-shaped ones — the EmbeddingFilter already pruned
    candidates that would close triangles, which shrinks the frontier
    dramatically on clustered graphs.
    """

    induced = "vertex"

    def iterations(self) -> int:
        return 2  # 1-embeddings -> 3-embeddings

    def embedding_filter(self, embedding, candidate) -> bool:
        # Stars are triangle-free: reject candidates adjacent to more than
        # one current member.
        adjacency = self._adjacency
        return sum(1 for v in embedding if candidate in adjacency[v]) == 1

    def init(self, ctx):
        self._adjacency = ctx.graph.adjacency_sets()
        self._labels = ctx.graph.labels
        return super().init(ctx)

    @staticmethod
    def _hub(adjacency, verts) -> int | None:
        """The unique vertex adjacent to all others, if this is a star."""
        for hub in verts:
            if all(w in adjacency[hub] for w in verts if w != hub):
                leaves = [w for w in verts if w != hub]
                if all(
                    leaves[i] not in adjacency[leaves[j]]
                    for i in range(len(leaves))
                    for j in range(i + 1, len(leaves))
                ):
                    return hub
        return None

    def map_embedding(self, ctx, embedding, pmap) -> None:
        from repro.core.explore import canonical_extensions

        labels = self._labels
        adjacency = self._adjacency
        for cand in canonical_extensions(ctx.graph, embedding):
            if not self.embedding_filter(embedding, cand):
                continue
            verts = embedding + (cand,)
            hub = self._hub(adjacency, verts)
            if hub is None:
                continue
            leaf_labels = sorted(int(labels[v]) for v in verts if v != hub)
            if len(set(leaf_labels)) != 1:
                continue
            key = (int(labels[hub]), leaf_labels[0])
            pmap[key] = pmap.get(key, 0) + 1

    def finalize(self, ctx, cse, pmap):
        return dict(sorted(pmap.items(), key=lambda kv: -kv[1]))


def main() -> None:
    graph = datasets.load("citeseer", "bench")
    print(f"Input: {graph}\n")
    result = KaleidoEngine(graph).run(LabeledStarCensus())
    print("3-star census by (hub label, leaf label):")
    for (hub, leaf), count in list(result.value.items())[:10]:
        print(f"  hub label {hub}, leaves labeled {leaf}: {count}")
    print(f"\n{result.summary()}")


if __name__ == "__main__":
    main()
