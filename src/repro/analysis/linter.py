"""Driver for the invariant lint suite.

Parses each Python file once, builds a parent map for dominance queries,
scopes the rule set by the file's position inside the ``repro`` package,
runs the rules and filters the resulting diagnostics through the
``# repro: ignore[RULE]`` suppressions.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Sequence

from .diagnostics import PARSE_RULE, Diagnostic, suppressed_lines
from .rules import RULES, Rule

__all__ = ["lint_source", "lint_file", "lint_paths"]


def _parent_map(tree: ast.AST) -> dict[int, ast.AST]:
    parents: dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def _rel_module(path: str) -> str | None:
    """Path relative to the ``repro`` package root, or ``None``.

    ``src/repro/core/engine.py`` -> ``core/engine.py``.  Files outside a
    ``repro`` package (tests, fixtures, scripts) return ``None``, which
    applies every rule — fixture tests then narrow with ``select``.
    """
    parts = Path(path).parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1 :])
    return None


def _select_rules(select: Sequence[str] | None) -> tuple[tuple[Rule, ...], bool]:
    """Resolve a ``select`` list to rule objects.

    An explicit selection also bypasses module scoping: asking for a rule
    by id means "run it here", wherever *here* is.
    """
    if select is None:
        return RULES, False
    wanted = set(select)
    unknown = wanted - {rule.id for rule in RULES}
    if unknown:
        raise ValueError(f"unknown rule ids: {sorted(unknown)}")
    return tuple(rule for rule in RULES if rule.id in wanted), True


def lint_source(
    source: str,
    path: str = "<string>",
    select: Sequence[str] | None = None,
) -> list[Diagnostic]:
    """Lint one module's source text."""
    rules, bypass_scope = _select_rules(select)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                rule=PARSE_RULE,
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1),
                message=f"syntax error: {exc.msg}",
            )
        ]
    parents = _parent_map(tree)
    rel = _rel_module(path)
    diagnostics: list[Diagnostic] = []
    for rule in rules:
        if bypass_scope or rule.applies(rel):
            diagnostics.extend(rule.check(tree, parents, path))
    suppressions = suppressed_lines(source)
    kept = [
        diag
        for diag in diagnostics
        if diag.rule not in suppressions.get(diag.line, ())
    ]
    kept.sort(key=lambda diag: (diag.line, diag.col, diag.rule))
    return kept


def lint_file(path: str | Path, select: Sequence[str] | None = None) -> list[Diagnostic]:
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, path=str(path), select=select)


def _iter_python_files(paths: Iterable[str | Path]) -> Iterable[Path]:
    for entry in paths:
        root = Path(entry)
        if root.is_dir():
            yield from sorted(root.rglob("*.py"))
        else:
            yield root


def lint_paths(
    paths: Iterable[str | Path], select: Sequence[str] | None = None
) -> list[Diagnostic]:
    """Lint files and directories (recursing into ``*.py``)."""
    diagnostics: list[Diagnostic] = []
    for file_path in _iter_python_files(paths):
        diagnostics.extend(lint_file(file_path, select=select))
    return diagnostics
