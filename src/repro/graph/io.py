"""Loading and saving graphs as text edge lists.

Two formats are supported, matching what Arabesque and RStream consume:

``edge list`` (one edge per line)::

    # comment
    0 1
    0 2

``labeled adjacency`` (Arabesque's input format; one vertex per line)::

    <vertex id> <label> <neighbor> <neighbor> ...
"""

from __future__ import annotations

import os
from typing import TextIO

from ..errors import GraphFormatError
from .builder import GraphBuilder
from .graph import Graph

__all__ = [
    "load_edge_list",
    "save_edge_list",
    "load_labeled_adjacency",
    "save_labeled_adjacency",
    "sniff_format",
    "load_auto",
]


def _open_lines(path: str | os.PathLike[str]) -> list[str]:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.readlines()


def load_edge_list(path: str | os.PathLike[str], name: str | None = None) -> Graph:
    """Load a graph from a whitespace-separated edge list.

    Each line is ``u v`` or ``u v edge_label`` (Definition 1's L(u, v)).
    Lines starting with ``#`` or ``%`` are comments.  Raises
    :class:`GraphFormatError` on malformed lines or when only some lines
    carry an edge label.
    """
    builder = GraphBuilder()
    labeled_edges: dict[tuple[int, int], int] = {}
    saw_labels = False
    saw_unlabeled = False
    for lineno, line in enumerate(_open_lines(path), start=1):
        line = line.strip()
        if not line or line.startswith(("#", "%")):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise GraphFormatError(f"{path}:{lineno}: expected 'u v', got {line!r}")
        try:
            u, v = int(parts[0]), int(parts[1])
            edge_label = int(parts[2]) if len(parts) >= 3 else None
        except ValueError as exc:
            raise GraphFormatError(f"{path}:{lineno}: non-integer field") from exc
        if u == v:
            continue
        builder.add_edge(u, v)
        if edge_label is None:
            saw_unlabeled = True
        else:
            saw_labels = True
            labeled_edges[(min(u, v), max(u, v))] = edge_label
    if saw_labels and saw_unlabeled:
        raise GraphFormatError(
            f"{path}: mixed labeled and unlabeled edge lines"
        )
    graph = builder.build(name=name or os.path.basename(os.fspath(path)))
    if saw_labels:
        eu, ev = graph.edge_arrays()
        labels = [labeled_edges[(int(a), int(b))] for a, b in zip(eu, ev)]
        graph = graph.with_edge_labels(labels, name=graph.name)
    return graph


def save_edge_list(graph: Graph, path: str | os.PathLike[str]) -> None:
    """Write the graph as ``u v`` (or ``u v edge_label``) lines."""
    with open(path, "w", encoding="utf-8") as handle:
        _write_edges(graph, handle)


def _write_edges(graph: Graph, handle: TextIO) -> None:
    eu, ev = graph.edge_arrays()
    if graph.has_edge_labels:
        assert graph.edge_labels is not None
        for u, v, lab in zip(eu.tolist(), ev.tolist(), graph.edge_labels.tolist()):
            handle.write(f"{u} {v} {lab}\n")
    else:
        for u, v in zip(eu.tolist(), ev.tolist()):
            handle.write(f"{u} {v}\n")


def load_labeled_adjacency(
    path: str | os.PathLike[str], name: str | None = None
) -> Graph:
    """Load a labeled graph in Arabesque's adjacency format."""
    builder = GraphBuilder()
    for lineno, line in enumerate(_open_lines(path), start=1):
        line = line.strip()
        if not line or line.startswith(("#", "%")):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise GraphFormatError(
                f"{path}:{lineno}: expected '<id> <label> [neighbors...]'"
            )
        try:
            vertex = int(parts[0])
            label = int(parts[1])
            neighbors = [int(p) for p in parts[2:]]
        except ValueError as exc:
            raise GraphFormatError(f"{path}:{lineno}: non-integer field") from exc
        builder.add_vertex(vertex, label)
        for nbr in neighbors:
            if nbr != vertex:
                builder.add_edge(vertex, nbr)
    return builder.build(name=name or os.path.basename(os.fspath(path)))


def sniff_format(path: str | os.PathLike[str]) -> str:
    """Guess whether a file is an ``edges`` list or a labeled ``adjacency``.

    Heuristic: in the adjacency format the first field is a vertex id and
    appears exactly once per file, and every neighbor id also occurs as
    some line's vertex id.  Edge lists almost always repeat endpoints.
    Ambiguous files (both hold) default to ``edges``.
    """
    firsts: list[int] = []
    neighbor_ids: set[int] = set()
    for line in _open_lines(path):
        line = line.strip()
        if not line or line.startswith(("#", "%")):
            continue
        parts = line.split()
        try:
            fields = [int(p) for p in parts]
        except ValueError as exc:
            raise GraphFormatError(f"{path}: non-integer field") from exc
        if not fields:
            continue
        firsts.append(fields[0])
        neighbor_ids.update(fields[2:])
    if not firsts:
        return "edges"
    unique_firsts = len(set(firsts)) == len(firsts)
    neighbors_known = neighbor_ids <= set(firsts)
    if unique_firsts and neighbor_ids and neighbors_known:
        return "adjacency"
    if unique_firsts and not neighbor_ids:
        # Two-field lines only: unique first fields happen in edge lists
        # too (e.g. a star's edges) — prefer the edge interpretation.
        return "edges"
    return "edges" if not unique_firsts else "adjacency"


def load_auto(path: str | os.PathLike[str], name: str | None = None) -> Graph:
    """Load a graph, sniffing the format (see :func:`sniff_format`)."""
    if sniff_format(path) == "adjacency":
        return load_labeled_adjacency(path, name=name)
    return load_edge_list(path, name=name)


def save_labeled_adjacency(graph: Graph, path: str | os.PathLike[str]) -> None:
    """Write the graph in Arabesque's labeled adjacency format."""
    with open(path, "w", encoding="utf-8") as handle:
        for v in range(graph.num_vertices):
            nbrs = " ".join(str(int(w)) for w in graph.neighbors(v))
            suffix = f" {nbrs}" if nbrs else ""
            handle.write(f"{v} {graph.label(v)}{suffix}\n")
