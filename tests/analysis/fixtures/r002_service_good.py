"""R002 fixture, service-flavoured: deterministic equivalents (0 hits)."""

import itertools
import time

_IDS = itertools.count(1)


def next_request_id():
    return next(_IDS)  # monotone counter, not entropy


def measure(serve):
    start = time.perf_counter()  # measures work; legal under R002
    result = serve()
    return result, time.perf_counter() - start


def pick_sampling_seed(request):
    return int(request.get("seed", 0))  # seed travels with the request


def drain_tenants(inflight):
    order = []
    for tenant in sorted(inflight):  # deterministic order
        order.append(tenant)
    return order
