"""Sliding-window part reader with background prefetch (Section 4.1).

While the engine processes the *main* part of a window, a background
thread loads the *candidate* part; when the main part is consumed the
window slides (the candidate becomes the main part and the next load
starts).  Disk reads release the GIL, so the prefetch genuinely overlaps
the pure-Python computation, hiding I/O exactly as the paper describes.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Iterator

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .spill import PartHandle, PartStore

__all__ = ["SlidingWindowReader"]


class SlidingWindowReader:
    """Iterates part arrays in order, prefetching one part ahead."""

    def __init__(
        self,
        store: "PartStore",
        parts: list["PartHandle"],
        prefetch: bool = True,
    ) -> None:
        self.store = store
        self.parts = parts
        self.prefetch = prefetch

    def __iter__(self) -> Iterator[np.ndarray]:
        if not self.parts:
            return
        if not self.prefetch:
            for part in self.parts:
                yield self.store.load(part)
            return

        next_result: list[np.ndarray | None] = [None]
        next_error: list[BaseException | None] = [None]

        def load_into(idx: int) -> threading.Thread:
            def run() -> None:
                try:
                    next_result[0] = self.store.load(self.parts[idx])
                except BaseException as exc:  # propagate to consumer
                    next_error[0] = exc

            thread = threading.Thread(target=run, name="kaleido-prefetch", daemon=True)
            thread.start()
            return thread

        current = self.store.load(self.parts[0])
        for idx in range(len(self.parts)):
            thread = None
            if idx + 1 < len(self.parts):
                next_result[0] = None
                next_error[0] = None
                thread = load_into(idx + 1)
            yield current
            if thread is not None:
                thread.join()
                if next_error[0] is not None:
                    raise next_error[0]
                loaded = next_result[0]
                assert loaded is not None
                current = loaded
