"""Pluggable part executors — stage 2 of the plan → execute → aggregate
pipeline.

The planner (:mod:`repro.core.plan`) cuts a level into contiguous parts;
an executor runs one task per part and hands the per-part results back in
*part order*, whatever order they finished in.  Three executors ship:

* :class:`SerialExecutor` — runs parts one after another on the calling
  thread and reports the real one-worker timeline.
* :class:`ThreadedExecutor` — a :class:`concurrent.futures.ThreadPoolExecutor`
  backed executor.  Parts run concurrently (numpy candidate kernels and the
  spill I/O release the GIL); completed parts are delivered to the caller's
  ``on_result`` callback from the coordinating thread as they finish, so
  sinks never need locks, and the reported schedule carries the measured
  wall-clock intervals.
* :class:`SimulatedSchedule` — wraps another executor (serial by default)
  and replays its measured part durations through the deterministic
  work-stealing model (:func:`repro.balance.simulate_work_stealing`).
  This is the engine default and preserves the modelled-parallelism
  behaviour every Fig. 14/17/18 benchmark is built on.

Tasks must be pure functions of their part (no shared mutable state) so an
executor may run them in any order; result merging is deterministic because
it always happens in part-index order.
"""

from __future__ import annotations

import threading
import time
from concurrent import futures as _futures
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from ..balance.worksteal import Schedule, TaskInterval, simulate_work_stealing
from ..obs.trace import Tracer

__all__ = [
    "ExecutionReport",
    "PartExecutor",
    "SerialExecutor",
    "ThreadedExecutor",
    "SimulatedSchedule",
    "emit_part_spans",
    "resolve_executor",
    "EXECUTOR_CHOICES",
]

#: Called with ``(part_index, result)`` as each part completes — possibly
#: out of part order for concurrent executors, but always from the
#: coordinating thread.
ResultCallback = Callable[[int, Any], None]


@dataclass
class ExecutionReport:
    """What one executor run produced.

    ``results`` and ``durations`` are indexed by *task order* (part index),
    regardless of the order parts completed in.
    """

    results: list[Any] = field(default_factory=list)
    durations: list[float] = field(default_factory=list)
    schedule: Schedule = field(default_factory=lambda: Schedule(num_workers=1))


def emit_part_spans(
    tracer: "Tracer | None",
    schedule: Schedule,
    phase: str,
    base: float,
) -> None:
    """Emit one ``part`` complete-span per schedule interval.

    Each interval becomes a span on its worker's track (``worker-N``),
    offset by ``base`` — the tracer time at which the executor run
    started — so the worker tracks line up with the engine's stack spans
    in the exported timeline.  For the work-stealing replay the interval
    times are *modelled*, which is exactly the Fig.-17/18 view the
    benchmarks plot; for the thread pool they are measured wall clock.
    """
    if tracer is None or not tracer.enabled:
        return
    for interval in schedule.intervals:
        tracer.complete(
            "part",
            start=base + interval.start,
            end=base + interval.end,
            track=f"worker-{interval.worker}",
            parent=phase,
            task=interval.task_index,
            worker=interval.worker,
        )


class PartExecutor:
    """Runs per-part tasks and reports results in deterministic part order.

    ``tracer``/``phase`` are the observability hooks: when a real tracer
    is passed, the executor emits one ``part`` span per schedule interval
    on a per-worker track (via :func:`emit_part_spans`) after the run.
    """

    name = "base"

    def run(
        self,
        tasks: Iterable[Callable[[], Any]],
        workers: int = 1,
        on_result: ResultCallback | None = None,
        tracer: "Tracer | None" = None,
        phase: str = "execute",
    ) -> ExecutionReport:  # pragma: no cover - protocol
        raise NotImplementedError


class SerialExecutor(PartExecutor):
    """Runs every part on the calling thread, in part order."""

    name = "serial"

    def run(
        self,
        tasks: Iterable[Callable[[], Any]],
        workers: int = 1,
        on_result: ResultCallback | None = None,
        tracer: "Tracer | None" = None,
        phase: str = "execute",
    ) -> ExecutionReport:
        base = tracer.now() if tracer is not None and tracer.enabled else 0.0
        report = ExecutionReport(schedule=Schedule(num_workers=1))
        clock = 0.0
        for index, task in enumerate(tasks):
            started = time.perf_counter()
            result = task()
            elapsed = time.perf_counter() - started
            report.results.append(result)
            report.durations.append(elapsed)
            report.schedule.intervals.append(
                TaskInterval(worker=0, start=clock, end=clock + elapsed, task_index=index)
            )
            clock += elapsed
            if on_result is not None:
                on_result(index, result)
        emit_part_spans(tracer, report.schedule, phase, base)
        return report


class SimulatedSchedule(PartExecutor):
    """Work-stealing replay over another executor's measured durations.

    The inner executor (serial by default) produces the part results; the
    reported schedule is the deterministic work-stealing replay of its part
    durations onto ``workers`` modelled workers — exactly the engine's
    pre-refactor behaviour, kept as the default so the simulated-parallel
    benchmarks (Fig. 14/17/18) are unchanged.
    """

    name = "simulated"

    def __init__(self, inner: PartExecutor | None = None) -> None:
        self.inner = inner if inner is not None else SerialExecutor()

    def run(
        self,
        tasks: Iterable[Callable[[], Any]],
        workers: int = 1,
        on_result: ResultCallback | None = None,
        tracer: "Tracer | None" = None,
        phase: str = "execute",
    ) -> ExecutionReport:
        # The inner executor runs untraced: the part spans that matter
        # are the replayed (modelled-parallel) intervals, emitted below.
        base = tracer.now() if tracer is not None and tracer.enabled else 0.0
        report = self.inner.run(tasks, workers=1, on_result=on_result)
        report.schedule = simulate_work_stealing(report.durations, workers)
        emit_part_spans(tracer, report.schedule, phase, base)
        return report


class ThreadedExecutor(PartExecutor):
    """Real thread-pool execution of parts.

    Parts are submitted as the task iterable yields them and may complete
    out of order; ``on_result`` fires from the coordinating thread on each
    completion, and the final report is re-ordered by part index.  The
    schedule holds the measured wall-clock intervals, with each pool thread
    mapped to a stable worker slot.
    """

    name = "threads"

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers

    def run(
        self,
        tasks: Iterable[Callable[[], Any]],
        workers: int = 1,
        on_result: ResultCallback | None = None,
        tracer: "Tracer | None" = None,
        phase: str = "execute",
    ) -> ExecutionReport:
        pool_size = self.max_workers if self.max_workers is not None else max(1, workers)
        base = tracer.now() if tracer is not None and tracer.enabled else 0.0
        epoch = time.perf_counter()

        def timed(index: int, task: Callable[[], Any]):
            started = time.perf_counter()
            result = task()
            ended = time.perf_counter()
            return index, result, started - epoch, ended - epoch, threading.get_ident()

        # Bounded in-flight window: the task iterable decodes a part's
        # embeddings lazily as it is pulled, so submitting everything up
        # front would materialise the whole level (defeating the spilled
        # streaming bound).  Keep at most ~2x the pool in flight, pulling
        # the next task only as completions drain.
        window = 2 * pool_size
        task_iter = enumerate(tasks)
        records: dict[int, tuple[Any, float, float, int]] = {}
        with _futures.ThreadPoolExecutor(
            max_workers=pool_size, thread_name_prefix="kaleido-part"
        ) as pool:

            def fill(pending: set) -> None:
                while len(pending) < window:
                    try:
                        index, task = next(task_iter)
                    except StopIteration:
                        return
                    pending.add(pool.submit(timed, index, task))

            pending: set = set()
            try:
                fill(pending)
                while pending:
                    done, pending = _futures.wait(
                        pending, return_when=_futures.FIRST_COMPLETED
                    )
                    for future in done:
                        index, result, started, ended, ident = future.result()
                        records[index] = (result, started, ended, ident)
                        if on_result is not None:
                            on_result(index, result)
                    fill(pending)
            except BaseException:
                pool.shutdown(wait=True, cancel_futures=True)
                raise

        report = ExecutionReport(schedule=Schedule(num_workers=pool_size))
        slots: dict[int, int] = {}
        for index in range(len(records)):
            result, started, ended, ident = records[index]
            slot = slots.setdefault(ident, len(slots))
            report.results.append(result)
            report.durations.append(ended - started)
            report.schedule.intervals.append(
                TaskInterval(worker=slot, start=started, end=ended, task_index=index)
            )
        emit_part_spans(tracer, report.schedule, phase, base)
        return report


#: Executor specs accepted by the engine and the CLI's ``--executor`` flag.
EXECUTOR_CHOICES = ("serial", "threads")


def resolve_executor(spec: "str | PartExecutor") -> PartExecutor:
    """Turn an executor spec (name or instance) into a :class:`PartExecutor`.

    ``"serial"`` is the default: serial execution with the work-stealing
    replay (:class:`SimulatedSchedule` around :class:`SerialExecutor`).
    ``"threads"`` runs parts on a real thread pool sized to the engine's
    worker count.
    """
    if isinstance(spec, PartExecutor):
        return spec
    if spec == "serial":
        return SimulatedSchedule(SerialExecutor())
    if spec == "threads":
        return ThreadedExecutor()
    raise ValueError(
        f"unknown executor {spec!r} (choose from {', '.join(EXECUTOR_CHOICES)})"
    )
