"""Deterministic synthetic graph generators.

The evaluation datasets (MiCo, Patent, Youtube) are replaced by scaled-down
synthetic stand-ins (see DESIGN.md); these generators produce them.  All
generators are seeded and reproducible: the same ``seed`` always yields the
same graph, which the benchmark harness relies on.

The natural-graph generators (``chung_lu``, ``preferential_attachment``,
``rmat``) all produce the skewed power-law degree distributions the paper's
load-balance section depends on (Section 4.2 cites Faloutsos et al.).
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphConstructionError
from .builder import GraphBuilder
from .graph import Graph

__all__ = [
    "erdos_renyi",
    "chung_lu",
    "preferential_attachment",
    "rmat",
    "zipf_labels",
    "ensure_connected_core",
]


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def zipf_labels(
    num_vertices: int, num_labels: int, seed: int, exponent: float = 1.2
) -> np.ndarray:
    """Zipf-skewed vertex labels, matching real label frequency skew.

    Every label in ``0..num_labels-1`` is guaranteed to occur at least once
    when ``num_vertices >= num_labels`` (real datasets report exact label
    counts, and Table 1 must be reproducible from the registry).
    """
    if num_labels <= 0:
        raise GraphConstructionError("num_labels must be positive")
    rng = _rng(seed)
    weights = 1.0 / np.arange(1, num_labels + 1, dtype=np.float64) ** exponent
    weights /= weights.sum()
    labels = rng.choice(num_labels, size=num_vertices, p=weights).astype(np.int32)
    if num_vertices >= num_labels:
        # Stamp one occurrence of each label at random distinct positions.
        slots = rng.choice(num_vertices, size=num_labels, replace=False)
        labels[slots] = np.arange(num_labels, dtype=np.int32)
    return labels


def erdos_renyi(
    num_vertices: int, num_edges: int, seed: int, num_labels: int = 1
) -> Graph:
    """G(n, m) uniform random graph."""
    rng = _rng(seed)
    builder = GraphBuilder(num_vertices)
    seen: set[int] = set()
    while len(seen) < num_edges:
        u = int(rng.integers(num_vertices))
        v = int(rng.integers(num_vertices))
        if u == v:
            continue
        key = min(u, v) * num_vertices + max(u, v)
        if key not in seen:
            seen.add(key)
            builder.add_edge(u, v)
    builder.set_labels(zipf_labels(num_vertices, num_labels, seed + 1))
    return builder.build(name=f"er-{num_vertices}-{num_edges}")


def chung_lu(
    num_vertices: int,
    num_edges: int,
    seed: int,
    num_labels: int = 1,
    exponent: float = 2.3,
) -> Graph:
    """Chung–Lu power-law graph with expected degree ``w_i ∝ i^(-1/(γ-1))``.

    Edges are sampled proportionally to ``w_u * w_v`` until ``num_edges``
    distinct edges exist, giving a skewed degree distribution with the
    target edge count exactly.
    """
    if num_vertices < 2:
        raise GraphConstructionError("need at least two vertices")
    rng = _rng(seed)
    ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    weights = ranks ** (-1.0 / (exponent - 1.0))
    probs = weights / weights.sum()
    builder = GraphBuilder(num_vertices)
    seen: set[int] = set()
    max_draws = 60 * num_edges + 1000
    draws = 0
    while len(seen) < num_edges and draws < max_draws:
        batch = max(256, num_edges - len(seen))
        us = rng.choice(num_vertices, size=batch, p=probs)
        vs = rng.choice(num_vertices, size=batch, p=probs)
        draws += batch
        for u, v in zip(us.tolist(), vs.tolist()):
            if u == v:
                continue
            key = min(u, v) * num_vertices + max(u, v)
            if key not in seen:
                seen.add(key)
                builder.add_edge(u, v)
                if len(seen) == num_edges:
                    break
    builder.set_labels(zipf_labels(num_vertices, num_labels, seed + 1))
    return builder.build(name=f"cl-{num_vertices}-{num_edges}")


def preferential_attachment(
    num_vertices: int,
    edges_per_vertex: int,
    seed: int,
    num_labels: int = 1,
) -> Graph:
    """Barabási–Albert preferential attachment (power-law, connected)."""
    m = edges_per_vertex
    if num_vertices <= m:
        raise GraphConstructionError("num_vertices must exceed edges_per_vertex")
    rng = _rng(seed)
    builder = GraphBuilder(num_vertices)
    # Seed clique over the first m+1 vertices keeps early choices non-degenerate.
    targets: list[int] = []
    for u in range(m + 1):
        for v in range(u + 1, m + 1):
            builder.add_edge(u, v)
            targets.extend((u, v))
    for v in range(m + 1, num_vertices):
        chosen: set[int] = set()
        while len(chosen) < m:
            pick = targets[int(rng.integers(len(targets)))]
            chosen.add(pick)
        for u in chosen:
            builder.add_edge(u, v)
            targets.extend((u, v))
    builder.set_labels(zipf_labels(num_vertices, num_labels, seed + 1))
    return builder.build(name=f"ba-{num_vertices}-{m}")


def rmat(
    scale: int,
    num_edges: int,
    seed: int,
    num_labels: int = 1,
    probs: tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05),
) -> Graph:
    """R-MAT recursive matrix graph with ``2**scale`` vertices."""
    a, b, c, d = probs
    if abs(a + b + c + d - 1.0) > 1e-9:
        raise GraphConstructionError("R-MAT quadrant probabilities must sum to 1")
    n = 1 << scale
    rng = _rng(seed)
    builder = GraphBuilder(n)
    seen: set[int] = set()
    quadrant = np.array([a, b, c, d])
    max_draws = 80 * num_edges + 1000
    draws = 0
    while len(seen) < num_edges and draws < max_draws:
        u = v = 0
        for _ in range(scale):
            q = int(rng.choice(4, p=quadrant))
            u = (u << 1) | (q >> 1)
            v = (v << 1) | (q & 1)
        draws += 1
        if u == v:
            continue
        key = min(u, v) * n + max(u, v)
        if key not in seen:
            seen.add(key)
            builder.add_edge(u, v)
    builder.set_labels(zipf_labels(n, num_labels, seed + 1))
    return builder.build(name=f"rmat-{scale}-{num_edges}")


def ensure_connected_core(graph: Graph, seed: int = 0) -> Graph:
    """Link every isolated vertex to a random non-isolated one.

    The mining applications only ever see connected embeddings, but dataset
    statistics (Table 1) look odd with a large isolated fringe; the real
    datasets have none.
    """
    degrees = graph.degrees()
    isolated = np.flatnonzero(degrees == 0)
    if isolated.shape[0] == 0:
        return graph
    populated = np.flatnonzero(degrees > 0)
    if populated.shape[0] == 0:
        raise GraphConstructionError("graph has no edges at all")
    rng = _rng(seed)
    builder = GraphBuilder(graph.num_vertices)
    builder.add_edges(graph.edges())
    for v in isolated.tolist():
        builder.add_edge(v, int(populated[int(rng.integers(populated.shape[0]))]))
    builder.set_labels(graph.labels.tolist())
    return builder.build(name=graph.name)
