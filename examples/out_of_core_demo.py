"""Out-of-core mining: hybrid storage, writing queue and sliding window.

Demonstrates the paper's Section-4 machinery end to end: the same 4-motif
workload runs (a) fully in memory, (b) with the last CSE level forced to
disk (the Table-4 "hybrid" configuration), and (c) under a tight memory
budget that makes the engine spill on its own — and all three agree.

Usage::

    python examples/out_of_core_demo.py
"""

from __future__ import annotations

import tempfile

from repro import KaleidoEngine, MotifCounting
from repro.graph import datasets


def run(graph, label: str, **kwargs):
    with KaleidoEngine(graph, **kwargs) as engine:
        result = engine.run(MotifCounting(4))
        io = engine.io_stats
        print(f"{label}:")
        print(f"  runtime          {result.wall_seconds:8.3f} s")
        print(f"  peak memory      {result.peak_memory_bytes / 1e6:8.2f} MB")
        print(f"  spilled levels   {result.extra['spilled_levels']:8d}")
        print(f"  disk written     {result.io_bytes_written / 1e6:8.2f} MB")
        print(f"  disk read        {result.io_bytes_read / 1e6:8.2f} MB")
        if io is not None and io.bytes_written:
            series = io.rate_series("write", bins=5)
            rates = ", ".join(f"{mb:.1f}" for _, mb in series)
            print(f"  write rate MB/s  [{rates}]")
        print()
        return result


def main() -> None:
    graph = datasets.load("citeseer", "bench")
    print(f"Input: {graph}\n")

    in_memory = run(graph, "in-memory (baseline)", storage_mode="memory")

    with tempfile.TemporaryDirectory() as tmp:
        hybrid = run(
            graph,
            "hybrid (last level spilled, async writer + prefetch window)",
            storage_mode="spill-last",
            spill_dir=tmp,
        )

    with tempfile.TemporaryDirectory() as tmp:
        budget = int(in_memory.peak_memory_bytes * 0.4)
        capped = run(
            graph,
            f"auto-spill under a {budget / 1e6:.1f} MB budget",
            storage_mode="auto",
            memory_limit_bytes=budget,
            spill_dir=tmp,
        )

    assert dict(in_memory.value) == dict(hybrid.value) == dict(capped.value)
    print("All three configurations produced identical motif censuses.")
    slowdown = hybrid.wall_seconds / in_memory.wall_seconds
    print(f"Hybrid-storage runtime cost: {slowdown:.2f}x "
          f"(the paper reports < 1.3x for its Table-4 workloads).")


if __name__ == "__main__":
    main()
