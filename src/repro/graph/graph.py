"""Immutable labeled undirected graph stored in CSR (== CSC) form.

The paper stores the input graph in compressed sparse column form
(Section 3.1.1); for an undirected graph with sorted neighbor lists CSR and
CSC coincide, so a single ``(indptr, indices)`` pair represents the sparse
adjacency matrix of Figure 2a.

Vertices are integers ``0..n-1``.  Each vertex carries an integer label
(the paper's labeling function ``L``).  Edge labels are supported but
default to zero everywhere; the four evaluation applications only use
vertex labels.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator

import numpy as np

from ..errors import GraphConstructionError

__all__ = ["Graph"]


class Graph:
    """An immutable labeled undirected graph.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; neighbor list of vertex ``v``
        is ``indices[indptr[v]:indptr[v + 1]]``.
    indices:
        ``int32`` array of neighbor ids, sorted ascending within each
        vertex's slice.  Every undirected edge appears twice.
    labels:
        ``int32`` array of length ``n`` of vertex labels.

    Use :class:`repro.graph.GraphBuilder` or the loaders in
    :mod:`repro.graph.io` instead of calling this constructor with
    hand-rolled arrays.
    """

    __slots__ = (
        "indptr",
        "indices",
        "labels",
        "edge_labels",
        "_edge_u",
        "_edge_v",
        "_edge_label_map",
        "_adjacency_sets",
        "_adjacency_keys",
        "_fingerprint",
        "name",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        labels: np.ndarray,
        name: str = "graph",
        edge_labels: np.ndarray | None = None,
    ) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int32)
        labels = np.ascontiguousarray(labels, dtype=np.int32)
        if indptr.ndim != 1 or indices.ndim != 1 or labels.ndim != 1:
            raise GraphConstructionError("indptr, indices and labels must be 1-D")
        if indptr.shape[0] != labels.shape[0] + 1:
            raise GraphConstructionError(
                f"indptr length {indptr.shape[0]} does not match "
                f"{labels.shape[0]} vertex labels"
            )
        if indptr[0] != 0 or indptr[-1] != indices.shape[0]:
            raise GraphConstructionError("indptr does not span the indices array")
        if np.any(np.diff(indptr) < 0):
            raise GraphConstructionError("indptr must be non-decreasing")
        self.indptr = indptr
        self.indices = indices
        self.labels = labels
        self.name = name
        self._edge_u: np.ndarray | None = None
        self._edge_v: np.ndarray | None = None
        self._edge_label_map: dict[tuple[int, int], int] | None = None
        self._adjacency_sets: list[frozenset[int]] | None = None
        self._adjacency_keys: np.ndarray | None = None
        self._fingerprint: str | None = None
        if edge_labels is not None:
            edge_labels = np.ascontiguousarray(edge_labels, dtype=np.int32)
            if edge_labels.shape[0] != indices.shape[0] // 2:
                raise GraphConstructionError(
                    f"expected one label per undirected edge "
                    f"({indices.shape[0] // 2}), got {edge_labels.shape[0]}"
                )
        #: Optional per-edge labels (Definition 1's L(u, v)), aligned with
        #: :meth:`edge_arrays` order; ``None`` means "all edges label 0".
        self.edge_labels = edge_labels

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return self.labels.shape[0]

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|`` (each counted once)."""
        return self.indices.shape[0] // 2

    @property
    def num_labels(self) -> int:
        """Number of distinct vertex labels."""
        if self.labels.shape[0] == 0:
            return 0
        return int(np.unique(self.labels).shape[0])

    @property
    def average_degree(self) -> float:
        """Average vertex degree ``2|E| / |V|``."""
        if self.num_vertices == 0:
            return 0.0
        return self.indices.shape[0] / self.num_vertices

    @property
    def nbytes(self) -> int:
        """Bytes held by the CSR arrays (the paper's graph footprint)."""
        return self.indptr.nbytes + self.indices.nbytes + self.labels.nbytes

    @property
    def id_dtype(self) -> np.dtype:
        """Narrowest integer dtype that holds every vertex id.

        Emitted CSE levels store ids in this dtype, so graphs past the
        ``int32`` boundary widen to ``int64`` instead of overflowing.
        """
        if self.num_vertices <= np.iinfo(np.int32).max:
            return np.dtype(np.int32)
        return np.dtype(np.int64)

    # ------------------------------------------------------------------
    # Content identity
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Content digest of the graph: stable across reloads of the
        same data, different for any topology/label difference.

        A BLAKE2b digest over the CSR arrays, the vertex labels and the
        edge labels (when present) — deliberately *not* over ``name``,
        so reloading the same file under another name still hits the
        same service cache entries.  Computed lazily and cached; code
        that mutates the backing arrays in place must call
        :meth:`invalidate_caches` afterwards, which is exactly how the
        service tier's result cache is invalidated on mutation.
        """
        if self._fingerprint is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(np.int64(self.num_vertices).tobytes())
            digest.update(self.indptr.tobytes())
            digest.update(self.indices.tobytes())
            digest.update(self.labels.tobytes())
            if self.edge_labels is not None:
                digest.update(b"elabels")
                digest.update(self.edge_labels.tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def invalidate_caches(self) -> None:
        """Drop every lazily derived structure (fingerprint included).

        The CSR arrays are nominally immutable, but numpy cannot enforce
        that; callers that do mutate them in place (relabeling an array
        slice, experiment plumbing) must call this so the fingerprint,
        edge arrays and adjacency caches are rebuilt from the new
        contents instead of serving stale views.
        """
        self._fingerprint = None
        self._edge_u = None
        self._edge_v = None
        self._edge_label_map = None
        self._adjacency_sets = None
        self._adjacency_keys = None

    # ------------------------------------------------------------------
    # Topology queries
    # ------------------------------------------------------------------
    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor ids of ``v`` (a view, do not mutate)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return int(self.indptr[v + 1] - self.indptr[v])

    def degrees(self) -> np.ndarray:
        """Degree of every vertex as an ``int64`` array."""
        return np.diff(self.indptr)

    def label(self, v: int) -> int:
        """Label of vertex ``v``."""
        return int(self.labels[v])

    def adjacency_sets(self) -> list[frozenset[int]]:
        """Per-vertex neighbor sets, built lazily on first use.

        O(1) membership tests for the canonical filter's hot path; costs
        one extra pass over the CSR arrays and is cached on the graph.
        """
        if self._adjacency_sets is None:
            indptr = self.indptr
            indices = self.indices.tolist()
            self._adjacency_sets = [
                frozenset(indices[indptr[v] : indptr[v + 1]])
                for v in range(self.num_vertices)
            ]
        return self._adjacency_sets

    def adjacency_keys(self) -> np.ndarray:
        """Packed sorted-array adjacency view: ``u * n + w`` per CSR entry.

        Because ``indices`` is sorted within each vertex slice and slices
        follow vertex order, the packed array is globally ascending — one
        :func:`numpy.searchsorted` over packed ``u * n + w`` keys answers
        arbitrarily large batches of edge-membership queries in
        O(log 2|E|) each, without materialising adjacency sets.  Built
        lazily and cached on the graph.
        """
        if self._adjacency_keys is None:
            sources = np.repeat(
                np.arange(self.num_vertices, dtype=np.int64), np.diff(self.indptr)
            )
            self._adjacency_keys = sources * self.num_vertices + self.indices
        return self._adjacency_keys

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` exists (O(1) amortised
        via the cached adjacency sets)."""
        return v in self.adjacency_sets()[u]

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate undirected edges once each, as ``(u, v)`` with ``u < v``."""
        eu, ev = self.edge_arrays()
        for u, v in zip(eu.tolist(), ev.tolist()):
            yield u, v

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The edge list as two parallel arrays ``(u, v)`` with ``u < v``.

        Edges are sorted lexicographically, which defines the *edge id*
        used by the edge-induced exploration: edge ``i`` is
        ``(edge_u[i], edge_v[i])``.
        """
        if self._edge_u is None:
            src = np.repeat(
                np.arange(self.num_vertices, dtype=np.int32), np.diff(self.indptr)
            )
            dst = self.indices
            keep = src < dst
            self._edge_u = np.ascontiguousarray(src[keep])
            self._edge_v = np.ascontiguousarray(dst[keep])
        return self._edge_u, self._edge_v

    def edge_label(self, u: int, v: int) -> int:
        """Label of edge ``(u, v)`` (0 when the graph is edge-unlabeled).

        Raises ``KeyError`` when the edge does not exist and labels are
        present; with no edge labels it simply returns 0 for any pair.
        """
        if self.edge_labels is None:
            return 0
        if self._edge_label_map is None:
            eu, ev = self.edge_arrays()
            self._edge_label_map = {
                (int(a), int(b)): int(lab)
                for a, b, lab in zip(eu, ev, self.edge_labels)
            }
        if u > v:
            u, v = v, u
        return self._edge_label_map[(u, v)]

    @property
    def has_edge_labels(self) -> bool:
        """Whether a non-trivial edge labeling is attached."""
        return self.edge_labels is not None

    def with_edge_labels(self, labels, name: str | None = None) -> "Graph":
        """A copy of this graph carrying the given per-edge labels.

        ``labels`` aligns with :meth:`edge_arrays` order (lexicographic
        ``(u, v)``, ``u < v``)."""
        arr = np.asarray(list(labels) if not isinstance(labels, np.ndarray) else labels)
        return Graph(
            self.indptr,
            self.indices,
            self.labels,
            name=name or f"{self.name}-elabels",
            edge_labels=arr,
        )

    def common_neighbors(self, u: int, v: int) -> np.ndarray:
        """Sorted ids adjacent to both ``u`` and ``v``."""
        return np.intersect1d(
            self.neighbors(u), self.neighbors(v), assume_unique=True
        )

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def relabel(self, labels: Iterable[int] | np.ndarray, name: str | None = None) -> "Graph":
        """A copy of this graph with new vertex labels.

        Used by the Figure-13 experiment, where the Patent graph is mined
        under a 7-label and a 37-label assignment of the same topology.
        """
        new_labels = np.asarray(list(labels) if not isinstance(labels, np.ndarray) else labels)
        if new_labels.shape[0] != self.num_vertices:
            raise GraphConstructionError(
                f"expected {self.num_vertices} labels, got {new_labels.shape[0]}"
            )
        return Graph(
            self.indptr, self.indices, new_labels, name=name or f"{self.name}-relabel"
        )

    def induced_subgraph_edges(self, vertices: Iterable[int]) -> list[tuple[int, int]]:
        """Edges of the subgraph induced by ``vertices`` (local queries).

        Returned as pairs of *original* vertex ids with ``u < v``.
        """
        verts = sorted(set(int(v) for v in vertices))
        vset = set(verts)
        out: list[tuple[int, int]] = []
        for u in verts:
            for w in self.neighbors(u).tolist():
                if w > u and w in vset:
                    out.append((u, w))
        return out

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Graph(name={self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, labels={self.num_labels}, "
            f"avg_deg={self.average_degree:.2f})"
        )
