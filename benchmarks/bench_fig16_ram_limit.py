"""Figure 16: runtime vs maximum-RAM limit.

The paper sweeps the cgroup cap from 12 to 32 GB for 4-FSM(Patent, 100k):
below the ~20 GB knee the run reads intermediate data from disk and slows
by at most ~20%; above it the runtime is flat.  The MemoryBudget ladder
reproduces the same curve against the workload's own in-memory peak.
"""

import tempfile

import pytest

from repro import FrequentSubgraphMining, KaleidoEngine
from repro.bench import PROFILE, bench_graph, format_series, format_table

from conftest import run_once

LADDER = [0.3, 0.4, 0.5, 0.65, 0.8, 1.0, 1.5, 2.5, 4.0]


@pytest.mark.benchmark(group="fig16")
def test_fig16_runtime_vs_ram(benchmark, emit):
    points = []

    def run_ladder():
        graph = bench_graph("patent")
        factory = lambda: FrequentSubgraphMining(3, 30)  # noqa: E731
        with KaleidoEngine(graph, storage_mode="memory") as engine:
            baseline = engine.run(factory())
        peak = baseline.peak_memory_bytes
        for fraction in LADDER:
            budget = max(1, int(peak * fraction))
            with tempfile.TemporaryDirectory(prefix="fig16-") as tmp:
                with KaleidoEngine(
                    graph,
                    storage_mode="auto",
                    memory_limit_bytes=budget,
                    spill_dir=tmp,
                ) as engine:
                    result = engine.run(factory())
            assert sorted(result.value.values()) == sorted(baseline.value.values())
            points.append((fraction, result.wall_seconds, baseline.wall_seconds))
        return points

    run_once(benchmark, run_ladder)
    rows = [
        [f"{f:.2f}", f"{t:.3f}", f"{t / b:.2f}x"] for f, t, b in points
    ]
    table = format_table(
        ["budget fraction of peak", "runtime (s)", "vs unconstrained"],
        rows,
        title=f"Figure 16 — runtime vs max RAM, 4-FSM Patent (profile: {PROFILE})",
    )
    series = format_series(
        "runtime", [(f, t) for f, t, _ in points], "budget fraction", "seconds"
    )
    emit(table + "\n" + series, name="fig16_ram_limit")

    # Paper shape: constrained runs cost more than unconstrained ones but
    # stay within a modest factor (paper: +20%; we allow 3x for Python).
    unconstrained = points[-1][1]
    for fraction, seconds, _ in points:
        assert seconds < unconstrained * 3.0 + 0.05, (fraction, seconds)
