"""Compressed Sparse Embedding (CSE) — the paper's central data structure.

A k-embedding set is a sparse k-dimensional tensor (Figure 2b); CSE stores
it level by level, generalising compressed sparse column storage.  Level
``l`` holds two arrays (Figure 4):

``vert``
    The last vertex (or edge id, for edge-induced exploration) of every
    embedding at level ``l``.
``off``
    For each embedding ``i`` of level ``l-1``, its children occupy the
    slice ``vert[off[i]:off[i+1]]``.  The root level has no ``off``.

Every position in ``vert`` identifies one embedding; the full vertex tuple
is recovered by walking parent offsets upward (``O(k log d̄)`` random
access via binary search, Section 3.1.1) or by the sequential walk used
during exploration (amortised ``O(1)`` per embedding).

Levels are accessed through the small :class:`Level` interface so that the
hybrid storage layer can substitute disk-backed spilled levels
(:class:`repro.storage.spill.SpilledLevel`) without the explorer noticing.
"""

from __future__ import annotations

from typing import Iterator, Protocol, Sequence

import numpy as np

__all__ = ["Level", "InMemoryLevel", "CSE", "decode_block_arrays"]


def decode_block_arrays(verts, offs, start: int, end: int) -> np.ndarray:
    """Decode embeddings ``start..end`` from raw per-level accessors.

    ``verts[l]`` is anything supporting a fancy gather with an int64
    position array (an ndarray, a shared-memory view, or a
    :class:`repro.core.shm.PartedVector` over memmapped spill parts);
    ``offs[l]`` is the level's offset ndarray (``None`` at the root).
    This is the worker-side decode used by zero-copy block tasks, and the
    single implementation :meth:`CSE.decode_block` delegates to.
    """
    positions = np.arange(start, end, dtype=np.int64)
    columns: list[np.ndarray] = []
    for l in range(len(verts) - 1, 0, -1):
        columns.append(np.asarray(verts[l][positions]))
        off = offs[l]
        if off is None:
            raise ValueError(f"level {l} off array unavailable for decoding")
        positions = np.searchsorted(off, positions, side="right") - 1
    columns.append(np.asarray(verts[0][positions]))
    columns.reverse()
    return np.stack(columns, axis=1)


class Level(Protocol):
    """What the explorer needs from one CSE level."""

    @property
    def num_embeddings(self) -> int:
        """Number of embeddings stored at this level."""

    def off_array(self) -> np.ndarray | None:
        """Offset array (length ``parent_count + 1``), or ``None`` at the
        root.  May be loaded lazily from disk."""

    def vert_array(self) -> np.ndarray:
        """The whole vertex array in memory (loads spilled parts)."""

    def iter_vert_chunks(self) -> Iterator[np.ndarray]:
        """Vertex array in storage-order chunks without materialising the
        whole level (the sequential-walk entry point)."""

    @property
    def nbytes_in_memory(self) -> int:
        """Bytes currently resident in memory for this level."""

    @property
    def nbytes_total(self) -> int:
        """Bytes of the level wherever they live (memory + disk)."""


class InMemoryLevel:
    """A CSE level fully resident in memory.

    ``dtype`` is the id storage width (``int32`` by default; the engine
    widens it to ``int64`` past the 2^31 id boundary via
    :func:`repro.core.kernels.id_dtype` so huge graphs don't silently
    overflow).
    """

    def __init__(
        self,
        vert: np.ndarray,
        off: np.ndarray | None,
        dtype: np.dtype | None = None,
    ) -> None:
        if dtype is None:
            dtype = np.dtype(np.int32)
        self.vert = np.ascontiguousarray(vert, dtype=dtype)
        self.off = None if off is None else np.ascontiguousarray(off, dtype=np.int64)
        if self.off is not None:
            if self.off[0] != 0 or self.off[-1] != self.vert.shape[0]:
                raise ValueError(
                    f"off array [{self.off[0]}..{self.off[-1]}] does not span "
                    f"{self.vert.shape[0]} vertices"
                )
            if np.any(np.diff(self.off) < 0):
                raise ValueError("off array must be non-decreasing")

    @property
    def num_embeddings(self) -> int:
        return self.vert.shape[0]

    @property
    def dtype(self) -> np.dtype:
        """Id storage width of this level's vertex array."""
        return self.vert.dtype

    def off_array(self) -> np.ndarray | None:
        return self.off

    def vert_array(self) -> np.ndarray:
        return self.vert

    def iter_vert_chunks(self) -> Iterator[np.ndarray]:
        yield self.vert

    @property
    def nbytes_in_memory(self) -> int:
        return self.vert.nbytes + (0 if self.off is None else self.off.nbytes)

    @property
    def nbytes_total(self) -> int:
        return self.nbytes_in_memory

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InMemoryLevel(n={self.num_embeddings})"


class CSE:
    """A stack of levels describing 1..k-embeddings of one exploration."""

    def __init__(self, roots: Sequence[int] | np.ndarray) -> None:
        root = InMemoryLevel(np.asarray(roots, dtype=np.int32), None)
        self.levels: list[Level] = [root]

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of levels, i.e. the size of the deepest embeddings."""
        return len(self.levels)

    @property
    def top(self) -> Level:
        return self.levels[-1]

    def size(self, level_idx: int | None = None) -> int:
        """Number of embeddings at ``level_idx`` (default: the top level)."""
        if level_idx is None:
            level_idx = self.depth - 1
        return self.levels[level_idx].num_embeddings

    def append_level(self, level: Level) -> None:
        off = level.off_array()
        if off is None:
            raise ValueError("non-root levels need an off array")
        expected = self.top.num_embeddings + 1
        if off.shape[0] != expected:
            raise ValueError(
                f"off length {off.shape[0]} != parent count + 1 ({expected})"
            )
        self.levels.append(level)

    def pop_level(self) -> Level:
        """Remove and return the top level (FSM pruning rebuilds levels)."""
        if self.depth == 1:
            raise ValueError("cannot pop the root level")
        return self.levels.pop()

    # ------------------------------------------------------------------
    # Random access (Section 3.1.1 walk-up example)
    # ------------------------------------------------------------------
    def embedding_at(self, level_idx: int, pos: int) -> tuple[int, ...]:
        """Decode the embedding at ``pos`` of ``level_idx``.

        Walks parent offsets upward with binary search: ``O(k log d̄)``.
        Requires the off arrays of the touched levels to be in memory.
        """
        if not 0 <= level_idx < self.depth:
            raise IndexError(f"level {level_idx} out of range 0..{self.depth - 1}")
        out: list[int] = []
        idx = pos
        for l in range(level_idx, 0, -1):
            level = self.levels[l]
            out.append(int(level.vert_array()[idx]))
            off = level.off_array()
            if off is None:
                raise ValueError(f"level {l} off array unavailable (spilled?)")
            # Coordinate of idx in the offset array == parent position.
            idx = int(np.searchsorted(off, idx, side="right")) - 1
        out.append(int(self.levels[0].vert_array()[idx]))
        out.reverse()
        return tuple(out)

    # ------------------------------------------------------------------
    # Sequential walk (exploration order)
    # ------------------------------------------------------------------
    def iter_embeddings(self, level_idx: int | None = None) -> Iterator[tuple[int, tuple[int, ...]]]:
        """Yield ``(position, vertex_tuple)`` for every embedding of a
        level, in storage order, amortised O(1) each.

        The top level is consumed through ``iter_vert_chunks`` so a spilled
        level is streamed part by part; lower levels need in-memory offs.
        """
        if level_idx is None:
            level_idx = self.depth - 1

        def walk(l: int) -> Iterator[tuple[int, tuple[int, ...]]]:
            level = self.levels[l]
            if l == 0:
                for i, v in enumerate(level.vert_array().tolist()):
                    yield i, (v,)
                return
            off = level.off_array()
            if off is None:
                raise ValueError(f"level {l} off array unavailable for walking")
            counts = np.diff(off)
            chunk_iter = level.iter_vert_chunks()
            chunk: list[int] = []
            chunk_pos = 0
            pos = 0
            for pidx, prefix in walk(l - 1):
                for _ in range(int(counts[pidx])):
                    while chunk_pos >= len(chunk):
                        chunk = next(chunk_iter).tolist()
                        chunk_pos = 0
                    yield pos, prefix + (chunk[chunk_pos],)
                    chunk_pos += 1
                    pos += 1

        return walk(level_idx)

    # ------------------------------------------------------------------
    # Block decode (vectorized-kernel fast path)
    # ------------------------------------------------------------------
    def block_decodable(self, level_idx: int | None = None) -> bool:
        """Whether :meth:`decode_block` may run for ``level_idx``.

        Requires every level up to ``level_idx`` to either be fully in
        memory or advertise ``supports_block_decode`` (a memmap-backed
        :class:`repro.storage.spill.SpilledLevel` gathers through a
        parted view over its part files without materialising the level).
        A plain payload-served spilled level still forces the streaming
        tuple walk.
        """
        if level_idx is None:
            level_idx = self.depth - 1
        return all(
            isinstance(self.levels[l], InMemoryLevel)
            or getattr(self.levels[l], "supports_block_decode", False)
            for l in range(level_idx + 1)
        )

    def decode_block(self, start: int, end: int, level_idx: int | None = None) -> np.ndarray:
        """Decode embeddings ``start..end`` of a level as one 2-D array.

        Returns shape ``(end - start, level_idx + 1)``: row ``i`` is the
        vertex (or edge-id) tuple of embedding ``start + i``.  The walk
        up the parent offsets is one vectorized ``searchsorted`` per
        level instead of one Python tuple per embedding — the fast path
        the expansion kernels and the mapper block decode use when no
        Python filter forces tuples.  Check :meth:`block_decodable`
        first; lower levels must be resident.
        """
        if level_idx is None:
            level_idx = self.depth - 1
        if not 0 <= level_idx < self.depth:
            raise IndexError(f"level {level_idx} out of range 0..{self.depth - 1}")
        total = self.levels[level_idx].num_embeddings
        if not 0 <= start <= end <= total:
            raise IndexError(f"block [{start}, {end}) outside level of {total}")
        verts = []
        offs = []
        for l in range(level_idx + 1):
            level = self.levels[l]
            accessor = getattr(level, "vert_accessor", None)
            verts.append(accessor() if callable(accessor) else level.vert_array())
            offs.append(level.off_array())
        return decode_block_arrays(verts, offs, start, end)

    def iter_with_parents(self) -> Iterator[tuple[int, int, tuple[int, ...]]]:
        """Like :meth:`iter_embeddings` on the top level but also yields the
        parent position — the load-balance predictor needs it to find the
        sibling slice."""
        top = self.depth - 1
        if top == 0:
            for i, emb in self.iter_embeddings(0):
                yield i, -1, emb
            return
        off = self.levels[top].off_array()
        if off is None:
            raise ValueError("top level off array unavailable")
        counts = np.diff(off)
        pos = 0
        chunk_iter = self.levels[top].iter_vert_chunks()
        chunk: list[int] = []
        chunk_pos = 0
        for pidx, prefix in self.iter_embeddings(top - 1):
            for _ in range(int(counts[pidx])):
                while chunk_pos >= len(chunk):
                    chunk = next(chunk_iter).tolist()
                    chunk_pos = 0
                yield pos, pidx, prefix + (chunk[chunk_pos],)
                chunk_pos += 1
                pos += 1

    # ------------------------------------------------------------------
    def filter_top_level(self, keep: np.ndarray) -> None:
        """Compact the top level to the embeddings where ``keep`` is True.

        Used by FSM's Reducer to drop embeddings whose pattern was pruned
        as infrequent.  The off array is recomputed so parent slices stay
        consistent; lower levels are untouched (they may now have childless
        entries, which is fine).
        """
        top = self.top
        keep = np.asarray(keep, dtype=bool)
        if keep.shape[0] != top.num_embeddings:
            raise ValueError(
                f"mask length {keep.shape[0]} != level size {top.num_embeddings}"
            )
        off = top.off_array()
        assert off is not None
        vert = top.vert_array()[keep]
        cum = np.zeros(keep.shape[0] + 1, dtype=np.int64)
        np.cumsum(keep, out=cum[1:])
        new_off = cum[off]
        # A spilled level compacts back into memory; reclaim its parts.
        drop = getattr(top, "drop", None)
        if callable(drop):
            drop()
        self.levels[-1] = InMemoryLevel(vert, new_off, dtype=vert.dtype)

    @property
    def nbytes_in_memory(self) -> int:
        """Resident bytes over all levels (what the MemoryMeter tracks)."""
        return sum(level.nbytes_in_memory for level in self.levels)

    @property
    def nbytes_total(self) -> int:
        """Total bytes over all levels, wherever stored."""
        return sum(level.nbytes_total for level in self.levels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = ", ".join(str(level.num_embeddings) for level in self.levels)
        return f"CSE(depth={self.depth}, sizes=[{sizes}])"
