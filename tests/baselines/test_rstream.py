"""Unit tests for the RStream-like relational baseline engine."""

import pytest

from repro import (
    FrequentSubgraphMining,
    KaleidoEngine,
    MotifCounting,
)
from repro.baselines import RStreamLikeEngine
from tests.conftest import random_labeled_graph


@pytest.fixture
def rstream(paper_graph, tmp_path):
    with RStreamLikeEngine(paper_graph, spill_dir=str(tmp_path)) as engine:
        yield engine


def test_triangles(rstream):
    assert rstream.run_triangles().value == 3


def test_clique(rstream):
    assert rstream.run_clique(3).value == 3


def test_motif_matches_kaleido(paper_graph, rstream):
    ka = KaleidoEngine(paper_graph).run(MotifCounting(3))
    rs = rstream.run_motif(3)
    assert sorted(ka.value.values()) == sorted(rs.value.values())


def test_4motif_matches_kaleido(tmp_path):
    g = random_labeled_graph(12, 24, 1, seed=31)
    ka = KaleidoEngine(g).run(MotifCounting(4))
    with RStreamLikeEngine(g, spill_dir=str(tmp_path)) as engine:
        rs = engine.run_motif(4)
    assert sorted(ka.value.values()) == sorted(rs.value.values())


def test_fsm_matches_kaleido(tmp_path):
    g = random_labeled_graph(12, 22, 2, seed=51)
    ka = KaleidoEngine(g).run(FrequentSubgraphMining(2, 2, exact_mni=True))
    with RStreamLikeEngine(g, spill_dir=str(tmp_path)) as engine:
        rs = engine.run_fsm(2, 2)
    assert sorted(dict(ka.value).values()) == sorted(dict(rs.value).values())


def test_writes_intermediate_data(rstream):
    result = rstream.run_motif(3)
    assert result.io_bytes_written > 0
    assert result.io_bytes_read > 0


def test_motif_intermediate_blowup(tmp_path):
    """The all-join writes far more bytes for 4-motif than 3-motif —
    the paper's RStream pathology (1.64 TB over MiCo, scaled down)."""
    g = random_labeled_graph(14, 35, 1, seed=61)
    with RStreamLikeEngine(g, spill_dir=str(tmp_path / "a")) as engine:
        m3 = engine.run_motif(3)
    with RStreamLikeEngine(g, spill_dir=str(tmp_path / "b")) as engine:
        m4 = engine.run_motif(4)
    assert m4.io_bytes_written > 2 * m3.io_bytes_written


def test_validates_partitions(paper_graph):
    with pytest.raises(ValueError):
        RStreamLikeEngine(paper_graph, num_partitions=0)
