"""CSV export/import of benchmark run records."""

from __future__ import annotations

import csv
import os

from .record import RunRecord

__all__ = ["write_records_csv", "read_records_csv"]

_FIELDS = [
    "system",
    "app",
    "dataset",
    "options",
    "seconds",
    "memory_bytes",
    "io_read_bytes",
    "io_write_bytes",
]


def write_records_csv(records: list[RunRecord], path: str | os.PathLike[str]) -> None:
    """Write run records to CSV (digests and extras are not exported)."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_FIELDS)
        writer.writeheader()
        for record in records:
            writer.writerow(
                {
                    "system": record.system,
                    "app": record.app,
                    "dataset": record.dataset,
                    "options": record.options,
                    "seconds": f"{record.seconds:.6f}",
                    "memory_bytes": record.memory_bytes,
                    "io_read_bytes": record.io_read_bytes,
                    "io_write_bytes": record.io_write_bytes,
                }
            )


def read_records_csv(path: str | os.PathLike[str]) -> list[RunRecord]:
    """Load run records previously written by :func:`write_records_csv`."""
    records: list[RunRecord] = []
    with open(path, "r", encoding="utf-8", newline="") as handle:
        for row in csv.DictReader(handle):
            records.append(
                RunRecord(
                    system=row["system"],
                    app=row["app"],
                    dataset=row["dataset"],
                    options=row["options"],
                    seconds=float(row["seconds"]),
                    memory_bytes=int(row["memory_bytes"]),
                    io_read_bytes=int(row["io_read_bytes"]),
                    io_write_bytes=int(row["io_write_bytes"]),
                )
            )
    return records
