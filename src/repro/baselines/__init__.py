"""Baseline systems the paper compares against (all built from scratch)."""

from .arabesque import ArabesqueLikeEngine
from .blisslike import BlissLikeHasher, canonical_form_search
from .rstream import RStreamLikeEngine

__all__ = [
    "ArabesqueLikeEngine",
    "RStreamLikeEngine",
    "BlissLikeHasher",
    "canonical_form_search",
]
