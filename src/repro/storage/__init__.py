"""Hybrid half-memory-half-disk storage for large intermediate data."""

from .checkpoint import RunCheckpoint, load_cse, save_cse
from .faults import FaultPlan, FaultSpec, FaultyPartStore
from .hybrid import SpillingSink, StoragePolicy, spill_level
from .meter import IOEvent, IOStats, MemoryBudget, MemoryMeter
from .queue import WritingQueue
from .retry import RetryPolicy
from .spill import PartHandle, PartStore, SpilledLevel
from .window import SlidingWindowReader

__all__ = [
    "MemoryMeter",
    "MemoryBudget",
    "IOStats",
    "IOEvent",
    "PartStore",
    "PartHandle",
    "SpilledLevel",
    "SlidingWindowReader",
    "WritingQueue",
    "SpillingSink",
    "StoragePolicy",
    "spill_level",
    "save_cse",
    "load_cse",
    "RunCheckpoint",
    "RetryPolicy",
    "FaultPlan",
    "FaultSpec",
    "FaultyPartStore",
]
