"""Mutable builder that accumulates edges and emits an immutable CSR graph."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from ..errors import GraphConstructionError
from .graph import Graph

__all__ = ["GraphBuilder", "from_edge_list"]


class GraphBuilder:
    """Accumulates labeled vertices and undirected edges, then builds CSR.

    Self-loops are rejected; duplicate edges are deduplicated silently (real
    edge lists are full of them).  Vertices mentioned only in edges get the
    default label ``0`` unless labeled explicitly.
    """

    def __init__(self, num_vertices: int = 0) -> None:
        self._num_vertices = num_vertices
        self._labels: dict[int, int] = {}
        self._src: list[int] = []
        self._dst: list[int] = []

    def add_vertex(self, v: int, label: int = 0) -> None:
        """Declare vertex ``v`` with ``label`` (may precede its edges)."""
        if v < 0:
            raise GraphConstructionError(f"negative vertex id {v}")
        self._labels[v] = label
        self._num_vertices = max(self._num_vertices, v + 1)

    def add_edge(self, u: int, v: int) -> None:
        """Add the undirected edge ``(u, v)``; self-loops are an error."""
        if u == v:
            raise GraphConstructionError(f"self-loop at vertex {u}")
        if u < 0 or v < 0:
            raise GraphConstructionError(f"negative vertex id in edge ({u}, {v})")
        self._src.append(u)
        self._dst.append(v)
        self._num_vertices = max(self._num_vertices, u + 1, v + 1)

    def add_edges(self, edges: Iterable[tuple[int, int]]) -> None:
        """Add many undirected edges."""
        for u, v in edges:
            self.add_edge(u, v)

    def set_labels(self, labels: Sequence[int] | Mapping[int, int]) -> None:
        """Assign labels for many vertices at once."""
        if isinstance(labels, Mapping):
            for v, lab in labels.items():
                self.add_vertex(int(v), int(lab))
        else:
            for v, lab in enumerate(labels):
                self.add_vertex(v, int(lab))

    def build(self, name: str = "graph") -> Graph:
        """Produce the immutable :class:`Graph`."""
        n = self._num_vertices
        if self._src:
            u = np.asarray(self._src, dtype=np.int64)
            v = np.asarray(self._dst, dtype=np.int64)
            lo = np.minimum(u, v)
            hi = np.maximum(u, v)
            # Dedup undirected edges via a single sortable key.
            key = lo * n + hi
            key = np.unique(key)
            lo = (key // n).astype(np.int64)
            hi = (key % n).astype(np.int64)
            src = np.concatenate([lo, hi])
            dst = np.concatenate([hi, lo])
            order = np.lexsort((dst, src))
            src = src[order]
            dst = dst[order]
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.add.at(indptr, src + 1, 1)
            np.cumsum(indptr, out=indptr)
            indices = dst.astype(np.int32)
        else:
            indptr = np.zeros(n + 1, dtype=np.int64)
            indices = np.zeros(0, dtype=np.int32)
        labels = np.zeros(n, dtype=np.int32)
        for vert, lab in self._labels.items():
            labels[vert] = lab
        return Graph(indptr, indices, labels, name=name)


def from_edge_list(
    edges: Iterable[tuple[int, int]],
    labels: Sequence[int] | Mapping[int, int] | None = None,
    name: str = "graph",
) -> Graph:
    """Convenience: build a graph directly from an edge iterable."""
    builder = GraphBuilder()
    builder.add_edges(edges)
    if labels is not None:
        builder.set_labels(labels)
    return builder.build(name=name)
