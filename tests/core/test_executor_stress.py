"""Executor-parity stress sweep with span-tree shape checks.

Random seeded graphs x every mining application x every executor
(the plain serial baseline, the work-stealing simulated schedule, the
real thread pool, and the real spawn-based process pool): the pattern
maps must be byte-identical and the traces must have identical span-tree
*shapes* — same event multiset of (kind, name, parent, non-timing args)
— even though wall times and worker attribution legitimately differ
between executors.
"""

import pytest

from repro import (
    CliqueDiscovery,
    FrequentSubgraphMining,
    KaleidoEngine,
    MotifCounting,
    Pattern,
)
from repro.apps import PatternMatching, VertexInducedFSM
from repro.core.executor import (
    ProcessExecutor,
    SerialExecutor,
    SimulatedSchedule,
    ThreadedExecutor,
)
from repro.obs import Tracer, span_tree_shape

from tests.conftest import random_labeled_graph

TRIANGLE = Pattern.from_adjacency([0, 0, 0], [[0, 1, 1], [1, 0, 1], [1, 1, 0]])

APPS = {
    "fsm": lambda: FrequentSubgraphMining(2, support=4),
    "vfsm": lambda: VertexInducedFSM(2, support=4),
    "motif": lambda: MotifCounting(3),
    "clique": lambda: CliqueDiscovery(3),
    "matching": lambda: PatternMatching(TRIANGLE),
}

EXECUTORS = {
    "serial": lambda: SerialExecutor(),
    "simulated": lambda: SimulatedSchedule(),
    "threads": lambda: ThreadedExecutor(max_workers=4),
    "processes": lambda: ProcessExecutor(max_workers=2),
}


def _run(graph, make_app, make_executor, use_restrictions=True):
    tracer = Tracer()
    executor = make_executor()
    try:
        with KaleidoEngine(
            graph,
            workers=4,
            executor=executor,
            tracer=tracer,
            use_restrictions=use_restrictions,
        ) as engine:
            result = engine.run(make_app())
    finally:
        executor.close()
    assert tracer.open_spans() == []
    return result, span_tree_shape(tracer.events)


@pytest.mark.parametrize("seed", [11, 23])
@pytest.mark.parametrize("app_name", sorted(APPS))
def test_executors_agree_on_results_and_span_shape(seed, app_name):
    """Every executor, with *and without* fused restrictions, produces
    byte-identical pattern maps and identical span-tree shapes."""
    graph = random_labeled_graph(30, 70, 3, seed=seed)
    results = {}
    shapes = {}
    for exec_name, make_executor in EXECUTORS.items():
        for restricted in (True, False):
            key = (exec_name, restricted)
            results[key], shapes[key] = _run(
                graph, APPS[app_name], make_executor, use_restrictions=restricted
            )

    baseline = results[("serial", True)]
    for key, result in results.items():
        assert result.pattern_map == baseline.pattern_map, (
            f"{app_name} pattern map differs under {key} (seed {seed})"
        )
        assert result.level_sizes == baseline.level_sizes

    baseline_shape = shapes[("serial", True)]
    for key, shape in shapes.items():
        assert shape == baseline_shape, (
            f"{app_name} span-tree shape differs under {key} (seed {seed})"
        )


def test_shape_contains_the_pipeline_spans():
    graph = random_labeled_graph(30, 70, 3, seed=11)
    _, shape = _run(graph, APPS["motif"], EXECUTORS["simulated"])
    names = {key[1] for key in shape}
    assert {"run", "level", "plan", "execute", "aggregate", "part"} <= names
    # part spans hang off a stage, never float free
    part_parents = {key[2] for key in shape if key[1] == "part"}
    assert part_parents <= {"execute", "aggregate"}
