"""Brute-force reference implementations used as ground truth in tests.

All of these enumerate subgraphs exhaustively with no clever data
structures; they are only viable on tiny graphs, which is exactly what the
test suite feeds them.
"""

from __future__ import annotations

from itertools import combinations

from ..core.isomorphism import canonical_key, pattern_from_key
from ..core.pattern import Pattern
from ..graph.edge_index import EdgeIndex
from ..graph.graph import Graph

__all__ = [
    "connected_vertex_sets",
    "connected_edge_sets",
    "count_motifs_naive",
    "count_cliques_naive",
    "count_triangles_naive",
    "fsm_naive",
]


def _is_connected_vertex_set(graph: Graph, verts: tuple[int, ...]) -> bool:
    if not verts:
        return False
    vset = set(verts)
    seen = {verts[0]}
    frontier = [verts[0]]
    while frontier:
        v = frontier.pop()
        for w in graph.neighbors(v).tolist():
            if w in vset and w not in seen:
                seen.add(w)
                frontier.append(w)
    return len(seen) == len(vset)


def connected_vertex_sets(graph: Graph, k: int) -> list[tuple[int, ...]]:
    """All k-vertex sets inducing a connected subgraph (sorted tuples)."""
    return [
        verts
        for verts in combinations(range(graph.num_vertices), k)
        if _is_connected_vertex_set(graph, verts)
    ]


def _is_connected_edge_set(edges: list[tuple[int, int]]) -> bool:
    if not edges:
        return False
    adj: dict[int, set[int]] = {}
    for u, v in edges:
        adj.setdefault(u, set()).add(v)
        adj.setdefault(v, set()).add(u)
    start = edges[0][0]
    seen = {start}
    frontier = [start]
    while frontier:
        v = frontier.pop()
        for w in adj[v]:
            if w not in seen:
                seen.add(w)
                frontier.append(w)
    return len(seen) == len(adj)


def connected_edge_sets(graph: Graph, k: int) -> list[tuple[int, ...]]:
    """All k-edge sets forming a connected subgraph, as edge-id tuples."""
    index = EdgeIndex(graph)
    out = []
    for ids in combinations(range(index.num_edges), k):
        edges = [index.endpoints(e) for e in ids]
        if _is_connected_edge_set(edges):
            out.append(ids)
    return out


def count_motifs_naive(graph: Graph, k: int) -> dict[tuple, int]:
    """Exact motif census keyed by the exact canonical form."""
    counts: dict[tuple, int] = {}
    for verts in connected_vertex_sets(graph, k):
        pattern = Pattern.from_vertex_embedding(graph, verts, use_labels=False)
        key = canonical_key(pattern)
        counts[key] = counts.get(key, 0) + 1
    return counts


def count_cliques_naive(graph: Graph, k: int) -> int:
    """Exact k-clique count."""
    count = 0
    for verts in combinations(range(graph.num_vertices), k):
        if all(graph.has_edge(u, v) for u, v in combinations(verts, 2)):
            count += 1
    return count


def count_triangles_naive(graph: Graph) -> int:
    return count_cliques_naive(graph, 3)


def fsm_naive(graph: Graph, num_edges: int, support: int) -> dict[tuple, int]:
    """Exact FSM: canonical pattern form → exact MNI support, frequent only.

    Enumerates every connected edge subset of size ``num_edges``; for each
    pattern, MNI domains are filled per *exact canonical* position by
    trying every isomorphism from the embedding onto the canonical
    representative, which makes the support exact even under automorphisms
    (the production short-circuit counter uses the cheaper normalised
    positions instead).
    """
    from itertools import permutations

    index = EdgeIndex(graph)
    domains: dict[tuple, list[set[int]]] = {}
    for ids in connected_edge_sets(graph, num_edges):
        edges = [index.endpoints(e) for e in ids]
        pattern = Pattern.from_edge_embedding(graph, edges)
        key = canonical_key(pattern)
        canon = pattern_from_key(key)
        verts: list[int] = []
        for u, v in edges:
            for w in (u, v):
                if w not in verts:
                    verts.append(w)
        k = len(verts)
        doms = domains.setdefault(key, [set() for _ in range(k)])
        for perm in permutations(range(k)):
            candidate = pattern.permute(perm)
            if candidate == canon:
                for pos in range(k):
                    doms[pos].add(verts[perm[pos]])
    result = {}
    for key, doms in domains.items():
        sup = min(len(d) for d in doms)
        if sup >= support:
            result[key] = sup
    return result
