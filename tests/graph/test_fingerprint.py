"""Graph content fingerprints: stability, invalidation, independence."""

import numpy as np

from repro.graph import Graph, from_edge_list

EDGES = [(0, 1), (1, 2), (2, 0), (2, 3)]


def test_fingerprint_is_stable_and_cached():
    graph = from_edge_list(EDGES)
    assert graph.fingerprint() == graph.fingerprint()


def test_same_contents_same_fingerprint():
    a = from_edge_list(EDGES, name="first-load")
    b = from_edge_list(EDGES, name="second-load")
    assert a.fingerprint() == b.fingerprint()  # name is not content


def test_different_structure_different_fingerprint():
    a = from_edge_list(EDGES)
    b = from_edge_list(EDGES + [(3, 0)])
    assert a.fingerprint() != b.fingerprint()


def test_label_mutation_changes_fingerprint_after_invalidate():
    graph = from_edge_list(EDGES)
    before = graph.fingerprint()
    graph.labels[0] += 1
    # stale until caches are invalidated (fingerprint is memoised)
    assert graph.fingerprint() == before
    graph.invalidate_caches()
    assert graph.fingerprint() != before


def test_edge_labels_participate():
    base = from_edge_list(EDGES)
    num_edges = base.num_edges
    labeled = Graph(
        base.indptr.copy(),
        base.indices.copy(),
        base.labels.copy(),
        edge_labels=np.zeros(num_edges, dtype=np.int32),
    )
    relabeled = Graph(
        base.indptr.copy(),
        base.indices.copy(),
        base.labels.copy(),
        edge_labels=np.ones(num_edges, dtype=np.int32),
    )
    assert labeled.fingerprint() != base.fingerprint()
    assert labeled.fingerprint() != relabeled.fingerprint()


def test_fingerprint_is_hex_digest():
    fp = from_edge_list(EDGES).fingerprint()
    assert len(fp) == 32
    int(fp, 16)  # parses as hex
