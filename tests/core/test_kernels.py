"""Unit tests for the vectorized expansion kernels.

Every kernel output is checked against the scalar per-part reference
(:func:`repro.core.explore.expand_vertex_part` / ``expand_edge_part``) —
the kernels' contract is *bit-identical* emission, not just equal counts.
"""

import numpy as np
import pytest

from repro.core import kernels
from repro.core.cse import CSE, InMemoryLevel
from repro.core.explore import (
    EdgeBlockTask,
    InMemorySink,
    VertexBlockTask,
    expand_edge_level,
    expand_edge_part,
    expand_vertex_level,
    expand_vertex_part,
)
from repro.graph.edge_index import EdgeIndex

from tests.conftest import random_labeled_graph


def _vertex_blocks(graph, depth):
    """Build a CSE of `depth` levels via the scalar path, returning the
    decoded top-level block at each step."""
    cse = CSE(np.arange(graph.num_vertices, dtype=np.int32))
    blocks = [cse.decode_block(0, cse.size())]
    for _ in range(depth):
        expand_vertex_level(graph, cse, use_kernels=False)
        blocks.append(cse.decode_block(0, cse.size()))
    return blocks


def _scalar_vertex(graph, block):
    embeddings = [tuple(int(x) for x in row) for row in block]
    return expand_vertex_part(
        graph, graph.adjacency_sets(), embeddings, (0, len(embeddings)), 0
    )


def _scalar_edge(index, block):
    eu, ev = index.endpoint_lists()
    incident = index.incident_lists()
    embeddings = [tuple(int(x) for x in row) for row in block]
    return expand_edge_part(eu, ev, incident, embeddings, (0, len(embeddings)), 0)


@pytest.mark.parametrize("seed", [3, 17, 42])
@pytest.mark.parametrize("depth", [0, 1, 2])
def test_vertex_kernel_matches_scalar(seed, depth):
    graph = random_labeled_graph(25, 60, 3, seed=seed)
    block = _vertex_blocks(graph, depth)[depth]
    ctx = kernels.vertex_kernel_context(graph)
    vert, counts, examined = kernels.expand_vertex_block(ctx, block)
    ref = _scalar_vertex(graph, block)
    np.testing.assert_array_equal(vert, ref.vert)
    np.testing.assert_array_equal(counts, ref.counts)
    assert examined == ref.candidates_examined


@pytest.mark.parametrize("seed", [3, 17])
@pytest.mark.parametrize("depth", [0, 1])
def test_edge_kernel_matches_scalar(seed, depth):
    graph = random_labeled_graph(20, 45, 3, seed=seed)
    index = EdgeIndex(graph)
    cse = CSE(np.arange(index.num_edges, dtype=np.int32))
    for _ in range(depth):
        expand_edge_level(graph, index, cse, use_kernels=False)
    block = cse.decode_block(0, cse.size())
    ctx = kernels.edge_kernel_context(index)
    vert, counts, examined = kernels.expand_edge_block(ctx, block)
    ref = _scalar_edge(index, block)
    np.testing.assert_array_equal(vert, ref.vert)
    np.testing.assert_array_equal(counts, ref.counts)
    assert examined == ref.candidates_examined


def test_level_expansion_kernel_vs_scalar_paths():
    """The two expand_vertex_level paths build identical CSE levels."""
    graph = random_labeled_graph(25, 60, 3, seed=9)
    cse_fast = CSE(np.arange(graph.num_vertices, dtype=np.int32))
    cse_ref = CSE(np.arange(graph.num_vertices, dtype=np.int32))
    for _ in range(2):
        fast = expand_vertex_level(graph, cse_fast)
        ref = expand_vertex_level(graph, cse_ref, use_kernels=False)
        assert fast.emitted == ref.emitted
        assert fast.candidates_examined == ref.candidates_examined
        assert fast.part_emitted == ref.part_emitted
        np.testing.assert_array_equal(
            cse_fast.top.vert_array(), cse_ref.top.vert_array()
        )
        np.testing.assert_array_equal(
            cse_fast.top.off_array(), cse_ref.top.off_array()
        )


def test_kernel_chunking_matches_unchunked(monkeypatch):
    """BLOCK_ROWS-internal chunking must not change output."""
    graph = random_labeled_graph(25, 60, 3, seed=5)
    block = _vertex_blocks(graph, 1)[1]
    ctx = kernels.vertex_kernel_context(graph)
    whole = kernels.expand_vertex_block(ctx, block)
    monkeypatch.setattr(kernels, "BLOCK_ROWS", 3)
    chunked = kernels.expand_vertex_block(ctx, block)
    np.testing.assert_array_equal(whole[0], chunked[0])
    np.testing.assert_array_equal(whole[1], chunked[1])
    assert whole[2] == chunked[2]


def test_empty_and_edgeless_blocks():
    graph = random_labeled_graph(10, 0, 2, seed=1)
    ctx = kernels.vertex_kernel_context(graph)
    vert, counts, examined = kernels.expand_vertex_block(
        ctx, np.zeros((0, 2), dtype=np.int64)
    )
    assert vert.shape == (0,) and counts.shape == (0,) and examined == 0
    # Vertices with no neighbors produce no candidates at all.
    vert, counts, examined = kernels.expand_vertex_block(
        ctx, np.arange(10, dtype=np.int64).reshape(-1, 1)
    )
    assert vert.shape == (0,) and examined == 0
    np.testing.assert_array_equal(counts, np.zeros(10, dtype=np.int64))


def test_block_task_runs_without_local_context_via_worker_global():
    graph = random_labeled_graph(15, 30, 2, seed=2)
    cse = CSE(np.arange(graph.num_vertices, dtype=np.int32))
    ctx = kernels.vertex_kernel_context(graph)
    block = cse.decode_block(0, cse.size())
    task = VertexBlockTask(ctx, block, (0, cse.size()), 0)
    direct = task()

    import pickle

    shipped = pickle.loads(pickle.dumps(task))
    assert shipped.shared_context is None
    with pytest.raises(RuntimeError):
        shipped()
    old = kernels._WORKER_CONTEXT
    try:
        kernels.install_worker_context(ctx)
        via_global = shipped()
    finally:
        kernels._WORKER_CONTEXT = old
    np.testing.assert_array_equal(direct.vert, via_global.vert)
    np.testing.assert_array_equal(direct.counts, via_global.counts)
    assert direct.candidates_examined == via_global.candidates_examined


# ----------------------------------------------------------------------
# dtype widening (satellite: emitted-id dtype follows the id space)
# ----------------------------------------------------------------------
def test_id_dtype_boundary():
    assert kernels.id_dtype(100) == np.dtype(np.int32)
    assert kernels.id_dtype(np.iinfo(np.int32).max) == np.dtype(np.int32)
    assert kernels.id_dtype(np.iinfo(np.int32).max + 1) == np.dtype(np.int64)
    # Forced-small boundary: the regression knob for testing widening
    # without a 2^31-vertex graph.
    assert kernels.id_dtype(100, boundary=50) == np.dtype(np.int64)
    assert kernels.id_dtype(50, boundary=50) == np.dtype(np.int32)


def test_graph_and_index_id_dtype():
    graph = random_labeled_graph(20, 40, 2, seed=3)
    assert graph.id_dtype == np.dtype(np.int32)
    assert EdgeIndex(graph).id_dtype == np.dtype(np.int32)


def test_sink_and_kernel_respect_forced_wide_dtype():
    """Regression: with a forced int64 id dtype, the emitted level, the
    sink's empty array, and the kernel outputs are all int64 end to end."""
    graph = random_labeled_graph(20, 45, 3, seed=8)
    cse = CSE(np.arange(graph.num_vertices, dtype=np.int32))
    wide = np.dtype(np.int64)

    ctx = kernels.vertex_kernel_context(graph, out_dtype=wide)
    block = cse.decode_block(0, cse.size())
    vert, _, _ = kernels.expand_vertex_block(ctx, block)
    assert vert.dtype == wide

    sink = InMemorySink(dtype=wide)
    sink.write_part(vert, index=0)
    # A level whose off says everything belongs to position 0.
    counts = np.zeros(cse.size(), dtype=np.int64)
    counts[0] = vert.shape[0]
    off = np.zeros(cse.size() + 1, dtype=np.int64)
    np.cumsum(counts, out=off[1:])
    level = sink.finish(off)
    assert level.vert_array().dtype == wide

    empty = InMemorySink(dtype=wide).finish(np.zeros(1, dtype=np.int64))
    assert empty.vert_array().dtype == wide
    assert empty.vert_array().shape == (0,)


def test_in_memory_level_preserves_dtype_through_filter():
    vert = np.array([3, 1, 4, 1, 5], dtype=np.int64)
    off = np.array([0, 2, 5], dtype=np.int64)
    level = InMemoryLevel(vert, off, dtype=np.int64)
    assert level.vert_array().dtype == np.dtype(np.int64)
    cse = CSE(np.array([0, 1], dtype=np.int32))
    cse.append_level(level)
    cse.filter_top_level(np.array([True, False, True, True, False]))
    assert cse.top.vert_array().dtype == np.dtype(np.int64)


# ----------------------------------------------------------------------
# Block decode
# ----------------------------------------------------------------------
def test_decode_block_matches_embedding_at():
    graph = random_labeled_graph(18, 40, 3, seed=4)
    cse = CSE(np.arange(graph.num_vertices, dtype=np.int32))
    expand_vertex_level(graph, cse)
    expand_vertex_level(graph, cse)
    assert cse.block_decodable()
    block = cse.decode_block(2, min(9, cse.size()))
    for i, pos in enumerate(range(2, min(9, cse.size()))):
        assert tuple(int(x) for x in block[i]) == cse.embedding_at(2, pos)


def test_decode_block_bounds_checks():
    cse = CSE(np.arange(5, dtype=np.int32))
    with pytest.raises(IndexError):
        cse.decode_block(0, 6)
    with pytest.raises(IndexError):
        cse.decode_block(3, 2)
    with pytest.raises(IndexError):
        cse.decode_block(0, 1, level_idx=2)


def test_edge_block_task_pickles_and_runs():
    graph = random_labeled_graph(15, 32, 2, seed=6)
    index = EdgeIndex(graph)
    cse = CSE(np.arange(index.num_edges, dtype=np.int32))
    ctx = kernels.edge_kernel_context(index)
    task = EdgeBlockTask(ctx, cse.decode_block(0, cse.size()), (0, cse.size()), 0)
    result = task()
    ref = _scalar_edge(index, cse.decode_block(0, cse.size()))
    np.testing.assert_array_equal(result.vert, ref.vert)
    np.testing.assert_array_equal(result.counts, ref.counts)
