"""Kaleido core: CSE, canonicality, exploration, patterns, EigenHash, engine."""

from .api import EngineContext, MiningApplication, MiningResult, PatternMap
from .canonical import (
    canonical_edge_order,
    canonical_order,
    edge_extends_canonically,
    edge_is_canonical,
    extends_canonically,
    is_canonical,
)
from .cse import CSE, InMemoryLevel, Level
from .eigenhash import PatternHasher, eigen_hash, faddeev_leverrier, weighted_adjacency
from .engine import KaleidoEngine, aggregate_part
from .executor import (
    ExecutionReport,
    PartExecutor,
    SerialExecutor,
    SimulatedSchedule,
    ThreadedExecutor,
    resolve_executor,
)
from .explore import (
    ExpansionStats,
    InMemorySink,
    LevelSink,
    PartExpansion,
    canonical_extensions,
    even_parts,
    expand_edge_level,
    expand_edge_part,
    expand_vertex_level,
    expand_vertex_part,
)
from .plan import AggregatePlan, LevelPlan, Planner
from .isomorphism import (
    are_isomorphic,
    automorphism_count,
    canonical_key,
    position_orbits,
)
from .pattern import MAX_EIGENHASH_VERTICES, Pattern, triangle_index
from .restrictions import (
    KernelRestrictions,
    LevelConstraint,
    Restriction,
    RestrictionSet,
    canonical_level_restrictions,
    compile_restrictions,
)

__all__ = [
    "CSE",
    "InMemoryLevel",
    "Level",
    "Pattern",
    "triangle_index",
    "MAX_EIGENHASH_VERTICES",
    "eigen_hash",
    "faddeev_leverrier",
    "weighted_adjacency",
    "PatternHasher",
    "are_isomorphic",
    "canonical_key",
    "automorphism_count",
    "position_orbits",
    "Restriction",
    "RestrictionSet",
    "LevelConstraint",
    "compile_restrictions",
    "KernelRestrictions",
    "canonical_level_restrictions",
    "canonical_order",
    "is_canonical",
    "extends_canonically",
    "canonical_edge_order",
    "edge_is_canonical",
    "edge_extends_canonically",
    "expand_vertex_level",
    "expand_edge_level",
    "expand_vertex_part",
    "expand_edge_part",
    "canonical_extensions",
    "even_parts",
    "ExpansionStats",
    "PartExpansion",
    "LevelSink",
    "InMemorySink",
    "Planner",
    "LevelPlan",
    "AggregatePlan",
    "PartExecutor",
    "SerialExecutor",
    "ThreadedExecutor",
    "SimulatedSchedule",
    "ExecutionReport",
    "resolve_executor",
    "aggregate_part",
    "KaleidoEngine",
    "MiningApplication",
    "MiningResult",
    "EngineContext",
    "PatternMap",
]
