"""Exception hierarchy for the Kaleido reproduction.

Every error raised deliberately by this library derives from
:class:`KaleidoError`, so callers can catch one type at an API boundary.
"""

from __future__ import annotations


class KaleidoError(Exception):
    """Base class for all errors raised by this library."""


class GraphFormatError(KaleidoError):
    """An input edge list or adjacency file could not be parsed."""


class GraphConstructionError(KaleidoError):
    """A graph could not be built from the supplied vertices and edges."""


class EmbeddingSizeError(KaleidoError):
    """An embedding operation was requested for an unsupported size.

    The EigenHash isomorphism fingerprint is only proven collision-free for
    embeddings with fewer than 9 vertices (Corollary 1 of the paper).
    """


class StorageError(KaleidoError):
    """The hybrid storage layer failed to read or write a spilled part."""


class TransientStorageError(StorageError):
    """A retryable I/O failure persisted past the retry budget.

    Raised when an operation kept failing with errors the retry policy
    classifies as transient (``EAGAIN``/``EINTR``/``EIO``/``EBUSY``) even
    after capped exponential backoff.  The operation left no partial
    state behind — retrying later, or degrading the I/O mode, is safe.
    """


class CorruptPartError(StorageError):
    """An on-disk part or checkpoint file failed integrity validation.

    A checksum mismatch, a truncated payload, or a length that disagrees
    with the part's handle.  Never retried: the bytes on disk are wrong,
    and surfacing the corruption beats silently computing a wrong answer.
    """


class DiskFullError(StorageError):
    """The storage device is out of space (``ENOSPC``/``EDQUOT``).

    Not retryable as-is, but the engine can degrade — drop prefetch,
    shrink the sliding window, fall back to synchronous writes — before
    giving up.
    """


class BudgetExceededError(StorageError):
    """A memory budget was exceeded and spilling could not reclaim space."""


class PlanError(KaleidoError):
    """An exploration plan (partitioning / scheduling) was inconsistent."""


class PartPurityError(KaleidoError):
    """An application mutated shared state inside a per-part hot phase.

    Raised by the part-purity sanitizer when a ``MiningApplication``
    writes an attribute on itself while parts are being executed —
    exactly the shared-mapper-state race that made FSM silently wrong
    under the threaded executor before PR 1's review.  Per-part mutation
    belongs in the state object returned by ``start_part`` and absorbed
    serially by ``finish_part``.
    """


class LockOrderError(KaleidoError):
    """Two locks were acquired in inconsistent orders across threads.

    Raised by the lock-order sanitizer the moment a blocking acquisition
    would close a cycle in the global lock-order graph — i.e. this
    thread wants lock B while holding A, but some earlier acquisition
    (on any thread) took A while holding B.  Catching the inversion at
    the ordering level means the deadlock is reported deterministically,
    without needing the two threads to actually interleave into one.
    """


class UnknownDatasetError(KaleidoError):
    """A dataset name was not found in the registry."""


class ServiceError(KaleidoError):
    """Base class for errors raised by the mining service tier."""


class QuotaExceededError(ServiceError):
    """A tenant's admission quota rejected a query.

    Raised at submission time, before any mining work starts, when the
    tenant already has ``max_concurrent`` queries in flight.  Retrying
    after in-flight queries drain is safe; nothing was partially run.
    """


class QueryRejectedError(ServiceError):
    """A query's cost estimate exceeded its budget and could not degrade.

    The router only degrades to the approximate path when the budget
    allows it *and* the application has an approximate mode; otherwise
    the query is refused up front rather than started and aborted
    mid-run by the ``max_embeddings`` guard.
    """
