"""Engine-level observability: parity, span taxonomy, absorbed metrics."""

import pytest

from repro import KaleidoEngine, MotifCounting, Tracer
from repro.graph import chung_lu
from repro.obs import NULL_TRACER, worker_busy_fractions


@pytest.fixture(scope="module")
def graph():
    return chung_lu(60, 180, seed=1, num_labels=2)


def test_tracing_does_not_change_results(graph):
    plain = KaleidoEngine(graph, workers=4).run(MotifCounting(3))
    tracer = Tracer()
    traced = KaleidoEngine(graph, workers=4, tracer=tracer).run(MotifCounting(3))
    assert plain.pattern_map == traced.pattern_map
    assert plain.level_sizes == traced.level_sizes
    assert dict(plain.value) == dict(traced.value)
    assert len(tracer) > 0


def test_default_engine_uses_null_tracer(graph):
    engine = KaleidoEngine(graph)
    assert engine.tracer is NULL_TRACER
    assert engine.tracer.enabled is False
    engine.run(MotifCounting(3))
    assert engine.tracer.events == []


def test_span_taxonomy(graph):
    tracer = Tracer()
    KaleidoEngine(graph, workers=4, tracer=tracer).run(MotifCounting(3))
    events = tracer.events

    begins = [e for e in events if e.kind == "begin"]
    by_name = {}
    for e in begins:
        by_name.setdefault(e.name, []).append(e)

    assert len(by_name["run"]) == 1
    assert by_name["run"][0].args["app"] == "3-Motif"
    levels = by_name["level"]
    assert [e.args["index"] for e in levels] == list(range(len(levels)))
    assert all(e.parent == "run" for e in levels)
    for stage in ("plan", "execute"):
        assert all(e.parent == "level" for e in by_name[stage])
    # the final reduction happens once, after the level loop
    assert [e.parent for e in by_name["aggregate"]] == ["run"]
    # every begin closed: the stack drained
    assert tracer.open_spans() == []
    ends = [e for e in events if e.kind == "end"]
    assert len(ends) == len(begins)


def test_part_spans_carry_worker_tracks(graph):
    tracer = Tracer()
    KaleidoEngine(graph, workers=4, tracer=tracer).run(MotifCounting(3))
    parts = [e for e in tracer.events if e.kind == "complete" and e.name == "part"]
    assert parts, "no part spans recorded"
    assert {e.parent for e in parts} <= {"execute", "aggregate"}
    assert all(str(e.track).startswith("worker-") for e in parts)
    assert all(e.dur is not None and e.dur >= 0 for e in parts)
    fractions = worker_busy_fractions(tracer)
    assert fractions and all(0.0 <= f <= 1.0 for f in fractions.values())


def test_metrics_absorbed_after_run(graph):
    tracer = Tracer()
    engine = KaleidoEngine(graph, workers=2, tracer=tracer)
    engine.run(MotifCounting(3))
    snap = engine.metrics.snapshot()
    assert snap["hasher.hits"]["type"] == "counter"
    assert snap["mem.bytes"]["peak"] > 0
    assert "storage.spilled_levels" in snap
    assert "checkpoint.written" in snap


def test_spill_run_emits_storage_events_and_metrics(graph, tmp_path):
    tracer = Tracer()
    with KaleidoEngine(
        graph,
        workers=2,
        storage_mode="spill-last",
        spill_dir=str(tmp_path),
        tracer=tracer,
    ) as engine:
        engine.run(MotifCounting(3))
    instants = {e.name for e in tracer.events if e.kind == "instant"}
    assert "spill" in instants
    assert instants & {"prefetch-hit", "prefetch-miss"}
    snap = engine.metrics.snapshot()
    assert snap["storage.spilled_levels"]["value"] >= 1
    assert snap["io.bytes_written"]["value"] > 0
    assert snap["queue.parts_written"]["value"] > 0


def test_checkpoint_instants(graph, tmp_path):
    tracer = Tracer()
    with KaleidoEngine(
        graph, checkpoint_dir=str(tmp_path), tracer=tracer
    ) as engine:
        engine.run(MotifCounting(3))
    checkpoints = [e for e in tracer.events if e.name == "checkpoint"]
    assert checkpoints
    assert all(e.kind == "instant" for e in checkpoints)
    assert engine.metrics.snapshot()["checkpoint.written"]["value"] == len(checkpoints)
