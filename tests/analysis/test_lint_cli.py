"""The lint CLIs: ``python -m repro.analysis`` and ``repro lint``."""

from pathlib import Path

from repro.analysis.__main__ import main as analysis_main
from repro.cli import main as repro_main

FIXTURES = Path(__file__).parent / "fixtures"
SRC = str(Path(__file__).parents[2] / "src" / "repro")


def test_module_cli_clean_tree_exits_zero(capsys):
    assert analysis_main([SRC]) == 0
    assert capsys.readouterr().out == ""


def test_module_cli_reports_violations(capsys):
    bad = str(FIXTURES / "r004_bad.py")
    assert analysis_main([bad, "--select", "R004"]) == 1
    out, err = capsys.readouterr()
    assert "R004" in out
    assert "r004_bad.py" in out
    assert "violations" in err


def test_module_cli_missing_path_exits_two(capsys):
    assert analysis_main(["does/not/exist.py"]) == 2
    assert "error:" in capsys.readouterr().err


def test_module_cli_unknown_rule_exits_two(capsys):
    assert analysis_main([SRC, "--select", "R999"]) == 2
    assert "R999" in capsys.readouterr().err


def test_module_cli_list_rules(capsys):
    assert analysis_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("R001", "R002", "R003", "R004", "R005"):
        assert rule in out


def test_repro_lint_subcommand(capsys):
    assert repro_main(["lint", SRC]) == 0
    bad = str(FIXTURES / "r005_bad.py")
    assert repro_main(["lint", bad, "--select", "R005"]) == 1
    assert "R005" in capsys.readouterr().out


def test_repro_lint_list_rules(capsys):
    assert repro_main(["lint", "--list-rules"]) == 0
    assert "R003" in capsys.readouterr().out


def test_module_cli_json_format(capsys):
    import json

    bad = str(FIXTURES / "r006_bad.py")
    assert analysis_main([bad, "--select", "R006", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"] == {"R006": 4}
    assert len(payload["diagnostics"]) == 4
    first = payload["diagnostics"][0]
    assert first["rule"] == "R006"
    assert first["path"].endswith("r006_bad.py")
    assert first["line"] > 0
    assert payload["unused_ignores"] == []


def test_module_cli_json_clean_tree(capsys):
    import json

    assert analysis_main([SRC, "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["diagnostics"] == []
    assert payload["counts"] == {}


def test_module_cli_github_format(capsys):
    bad = str(FIXTURES / "r007_bad.py")
    assert analysis_main([bad, "--select", "R007", "--format", "github"]) == 1
    out = capsys.readouterr().out
    lines = [line for line in out.splitlines() if line]
    assert len(lines) == 3
    for line in lines:
        assert line.startswith("::error file=")
        assert "title=R007" in line


def test_module_cli_reports_unused_ignores(tmp_path, capsys):
    target = tmp_path / "module.py"
    target.write_text("x = 1  # repro: ignore[R002]\n")
    assert analysis_main([str(target), "--report-unused-ignores"]) == 1
    out = capsys.readouterr().out
    assert "W100" in out
    assert "unused suppression" in out
    # Without the flag the stale comment passes silently.
    capsys.readouterr()
    assert analysis_main([str(target)]) == 0


def test_module_cli_used_ignore_not_reported(tmp_path, capsys):
    target = tmp_path / "module.py"
    target.write_text(
        "import time\n"
        "def f():\n"
        "    return time.time()  # repro: ignore[R002]\n"
    )
    assert analysis_main([str(target), "--select", "R002", "--report-unused-ignores"]) == 0
    assert "W100" not in capsys.readouterr().out


def test_repro_lint_format_and_unused_flags(capsys):
    import json

    bad = str(FIXTURES / "r008_bad.py")
    assert repro_main(["lint", bad, "--select", "R008", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"] == {"R008": 4}
    assert repro_main(["lint", SRC, "--report-unused-ignores"]) == 0
