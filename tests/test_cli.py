"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.graph import from_edge_list, save_edge_list, save_labeled_adjacency


def test_datasets_command(capsys):
    assert main(["datasets", "--profile", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "citeseer" in out and "youtube" in out


def test_mine_tc_named_dataset(capsys):
    assert main(["mine", "tc", "--dataset", "citeseer", "--profile", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "TC" in out


def test_mine_json_output(capsys):
    assert main(
        ["mine", "clique", "-k", "3", "--dataset", "citeseer",
         "--profile", "tiny", "--json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["app"] == "3-Clique"
    assert payload["value"] > 0
    assert payload["wall_seconds"] > 0


def test_mine_fsm_options(capsys):
    assert main(
        ["mine", "fsm", "--dataset", "citeseer", "--profile", "tiny",
         "--edges", "1", "--support", "3", "--exact-mni", "--json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["app"] == "2-FSM(s=3)"


def test_mine_from_edge_file(tmp_path, capsys, paper_graph):
    path = tmp_path / "g.txt"
    save_edge_list(paper_graph, path)
    assert main(["mine", "tc", "--dataset", str(path), "--json"]) == 0
    assert json.loads(capsys.readouterr().out)["value"] == 3


def test_mine_from_adjacency_file(tmp_path, capsys):
    g = from_edge_list([(0, 1), (1, 2), (0, 2)], labels=[1, 2, 3])
    path = tmp_path / "g.adj"
    save_labeled_adjacency(g, path)
    assert main(
        ["mine", "tc", "--dataset", str(path), "--format", "adjacency", "--json"]
    ) == 0
    assert json.loads(capsys.readouterr().out)["value"] == 1


def test_mine_spill_options(tmp_path, capsys):
    assert main(
        ["mine", "motif", "-k", "3", "--dataset", "citeseer", "--profile", "tiny",
         "--storage", "spill-last", "--spill-dir", str(tmp_path), "--json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["io_bytes_written"] > 0


def test_mine_io_plan_flags(tmp_path, capsys):
    parser = build_parser()
    args = parser.parse_args(
        ["mine", "tc", "--dataset", "citeseer",
         "--prefetch-depth", "3", "--io-plan", "fixed"]
    )
    assert args.prefetch_depth == 3
    assert args.io_plan == "fixed"
    # Defaults: adaptive scheduling, single-part lookahead.
    args = parser.parse_args(["mine", "tc", "--dataset", "citeseer"])
    assert args.prefetch_depth == 1
    assert args.io_plan == "adaptive"
    # End to end: a spilled run reports the plan it chose.
    assert main(
        ["mine", "motif", "-k", "3", "--dataset", "citeseer", "--profile", "tiny",
         "--storage", "spill-last", "--spill-dir", str(tmp_path),
         "--prefetch-depth", "2", "--json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["io_plan"] is not None
    assert payload["io_plan"]["prefetch_depth"] >= 2


def test_run_alias_with_trace_exports(tmp_path, capsys):
    trace = tmp_path / "t.json"
    jsonl = tmp_path / "t.jsonl"
    metrics = tmp_path / "m.json"
    assert main(
        ["run", "motif", "-k", "3", "--dataset", "citeseer", "--profile", "tiny",
         "--workers", "2", "--trace-out", str(trace),
         "--trace-jsonl", str(jsonl), "--metrics-out", str(metrics), "--json"]
    ) == 0
    capsys.readouterr()

    payload = json.loads(trace.read_text())
    events = payload["traceEvents"]
    names = {e["name"] for e in events}
    assert {"run", "level", "plan", "execute", "aggregate", "part"} <= names
    worker_tracks = {
        e["args"]["name"] for e in events
        if e["ph"] == "M" and e["args"]["name"].startswith("worker-")
    }
    assert worker_tracks == {"worker-0", "worker-1"}

    lines = [json.loads(line) for line in jsonl.read_text().splitlines()]
    assert len(lines) == len([e for e in events if e["ph"] != "M"])

    snap = json.loads(metrics.read_text())
    assert snap["hasher.hits"]["type"] == "counter"
    assert "mem.bytes" in snap


def test_mine_without_trace_flags_writes_nothing(tmp_path, capsys):
    assert main(
        ["mine", "tc", "--dataset", "citeseer", "--profile", "tiny", "--json"]
    ) == 0
    capsys.readouterr()
    assert list(tmp_path.iterdir()) == []


def test_generate_command(tmp_path, capsys):
    path = tmp_path / "gen.txt"
    assert main(
        ["generate", str(path), "--vertices", "50", "--edges", "120",
         "--labels", "3", "--seed", "9"]
    ) == 0
    assert path.exists()
    from repro.graph import load_edge_list

    g = load_edge_list(path)
    assert g.num_edges == 120


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_parser_rejects_unknown_app():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["mine", "pagerank"])


def test_stats_command(capsys):
    assert main(["stats", "--dataset", "citeseer", "--profile", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "triangles" in out and "power-law alpha" in out


def test_approx_command(capsys):
    assert main(
        ["approx", "--dataset", "citeseer", "--profile", "tiny",
         "-k", "3", "--samples", "200"]
    ) == 0
    out = capsys.readouterr().out
    assert "approximate 3-motif census" in out
    assert "[" in out  # confidence interval printed


def test_serve_stdin_round_trip(monkeypatch, capsys):
    import io
    import sys as _sys

    requests = [
        {"id": 1, "op": "ping"},
        {"id": 2, "app": "tc", "dataset": "citeseer", "profile": "tiny"},
        {"id": 3, "app": "tc", "dataset": "citeseer", "profile": "tiny"},
        {"id": 4, "op": "shutdown"},
    ]
    stdin = io.StringIO("\n".join(json.dumps(r) for r in requests) + "\n")
    monkeypatch.setattr(_sys, "stdin", stdin)
    assert main(["serve", "--workers", "1"]) == 0
    captured = capsys.readouterr()
    responses = [json.loads(line) for line in captured.out.strip().splitlines()]
    assert [r["id"] for r in responses] == [1, 2, 3, 4]
    assert responses[1]["cache"] == "miss" and responses[2]["cache"] == "hit"
    assert "served 4 requests" in captured.err


def test_serve_metrics_export(tmp_path, monkeypatch, capsys):
    import io
    import sys as _sys

    requests = [
        {"app": "tc", "dataset": "citeseer", "profile": "tiny"},
        {"op": "shutdown"},
    ]
    stdin = io.StringIO("\n".join(json.dumps(r) for r in requests) + "\n")
    monkeypatch.setattr(_sys, "stdin", stdin)
    metrics_path = tmp_path / "service_metrics.json"
    assert main(["serve", "--workers", "1", "--metrics-out", str(metrics_path)]) == 0
    capsys.readouterr()
    snapshot = json.loads(metrics_path.read_text())
    assert snapshot["service.requests"]["value"] == 1
    assert snapshot["service.route.red"]["value"] == 1


def test_query_command_against_socket_server(capsys):
    from repro.service import MiningService
    from repro.service.protocol import ServiceServer

    service = MiningService(pool_workers=1)
    server = ServiceServer(service, "127.0.0.1", 0)
    thread = server.serve_background()
    host, port = server.address
    try:
        rc = main(
            ["query", "tc", "--socket", f"{host}:{port}",
             "--dataset", "citeseer", "--profile", "tiny", "--tenant", "cli"]
        )
        payload = json.loads(capsys.readouterr().out)
    finally:
        server.stop()
        thread.join(timeout=10)
        service.close()
    assert rc == 0
    assert payload["status"] == "ok"
    assert payload["route"] == "RED" and payload["tenant"] == "cli"


def test_query_command_rejects_bad_param(capsys):
    assert main(
        ["query", "tc", "--socket", "127.0.0.1:1", "--param", "nonsense"]
    ) == 2
    assert "bad --param" in capsys.readouterr().err
