"""R007 fixture: acquired resources that can leak to function exit (3 hits)."""

from multiprocessing.shared_memory import SharedMemory
from tempfile import NamedTemporaryFile


def early_return_leak(payload):
    handle = NamedTemporaryFile()  # hit 1: leaks on the early return
    handle.write(payload)
    if not payload:
        return None
    handle.close()
    return True


def handler_leak(storage):
    view = storage.open_mmap("part-0")  # hit 2: leaks through the handler
    try:
        data = view.read()
    except ValueError:
        return None
    view.close()
    return data


def forgotten(nbytes):
    shm = SharedMemory(create=True, size=nbytes)  # hit 3: never released
    shm.buf.release()
    return nbytes
