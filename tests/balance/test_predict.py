"""Unit tests for candidate-size prediction (Figure 8)."""

import numpy as np

from repro.balance import merged_size, predict_edge_costs, predict_vertex_costs
from repro.core import CSE
from repro.core.explore import expand_edge_level, expand_vertex_level
from repro.graph.edge_index import EdgeIndex


def test_merged_size():
    assert merged_size(np.array([1, 2, 3]), np.array([3, 4])) == 4
    assert merged_size(np.array([], dtype=int), np.array([7, 7, 8])) == 2
    assert merged_size(np.array([5]), np.array([], dtype=int)) == 1


def test_vertex_costs_level1_are_degrees(paper_graph):
    cse = CSE(np.arange(6))
    costs = predict_vertex_costs(paper_graph, cse)
    assert costs.tolist() == paper_graph.degrees().tolist()


def test_vertex_costs_shape_and_positivity(paper_graph):
    cse = CSE(np.arange(6))
    expand_vertex_level(paper_graph, cse)
    costs = predict_vertex_costs(paper_graph, cse)
    assert costs.shape[0] == cse.size()
    assert np.all(costs > 0)


def test_vertex_costs_upper_bound_real_candidates(paper_graph):
    """Prediction approximates the real candidate count from above-ish:
    it merges the sibling slice (canonical candidates of the prefix) with
    the full neighborhood of the last vertex, so it is never smaller than
    the number of canonical extensions actually emitted."""
    cse = CSE(np.arange(6))
    expand_vertex_level(paper_graph, cse)
    costs = predict_vertex_costs(paper_graph, cse)
    expand_vertex_level(paper_graph, cse)
    off = cse.top.off_array()
    emitted = np.diff(off)
    assert np.all(costs >= emitted)


def test_figure8_semantics(paper_graph):
    """Candidates of <1,2> = siblings({2,5}) ∪ N(2) = {2,5} ∪ {1,3,5}."""
    cse = CSE(np.arange(6))
    expand_vertex_level(paper_graph, cse)
    costs = predict_vertex_costs(paper_graph, cse)
    embeddings = [e for _, e in cse.iter_embeddings()]
    idx = embeddings.index((1, 2))
    assert costs[idx] == len({2, 5} | {1, 3, 5})


def test_edge_costs_level1(paper_graph):
    index = EdgeIndex(paper_graph)
    cse = CSE(np.arange(index.num_edges))
    costs = predict_edge_costs(index, cse)
    assert costs.shape[0] == index.num_edges
    # Each edge's candidates = union of both endpoints' incident lists.
    for eid in range(index.num_edges):
        u, v = index.endpoints(eid)
        expected = len(set(index.incident_edges(u)) | set(index.incident_edges(v)))
        assert costs[eid] == expected


def test_edge_costs_deeper(paper_graph):
    index = EdgeIndex(paper_graph)
    cse = CSE(np.arange(index.num_edges))
    expand_edge_level(paper_graph, index, cse)
    costs = predict_edge_costs(index, cse)
    assert costs.shape[0] == cse.size()
    assert np.all(costs > 0)
