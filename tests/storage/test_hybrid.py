"""Unit tests for SpillingSink, spill_level and the StoragePolicy."""

import numpy as np

from repro.core import CSE, InMemoryLevel
from repro.core.explore import InMemorySink, expand_vertex_level
from repro.storage import (
    MemoryBudget,
    MemoryMeter,
    PartStore,
    SpilledLevel,
    SpillingSink,
    StoragePolicy,
    spill_level,
)


def test_spilling_sink_roundtrip(tmp_path, paper_graph):
    store = PartStore(str(tmp_path))
    cse = CSE(np.arange(6))
    sink = SpillingSink(store, synchronous=True, prefetch=False)
    expand_vertex_level(paper_graph, cse, parts=[(0, 3), (3, 6)], sink=sink)
    top = cse.top
    assert isinstance(top, SpilledLevel)
    assert top.num_parts == 2
    assert [e for _, e in cse.iter_embeddings()] == [
        (1, 2), (1, 5), (2, 3), (2, 5), (3, 4), (3, 5), (4, 5)
    ]


def test_spilled_then_expand_again(tmp_path, paper_graph):
    """Exploration can read a spilled level to build the next one."""
    store = PartStore(str(tmp_path))
    cse = CSE(np.arange(6))
    sink = SpillingSink(store, synchronous=True, prefetch=False)
    expand_vertex_level(paper_graph, cse, parts=[(0, 2), (2, 6)], sink=sink)
    expand_vertex_level(paper_graph, cse)  # reads the spilled level 2
    threes = {e for _, e in cse.iter_embeddings()}
    assert threes == {
        (1, 2, 3), (1, 2, 5), (1, 5, 3), (1, 5, 4),
        (2, 3, 4), (2, 3, 5), (2, 5, 4), (3, 4, 5),
    }


def test_spill_level_demotion(tmp_path):
    store = PartStore(str(tmp_path))
    level = InMemoryLevel(np.arange(100, dtype=np.int32), None)
    spilled = spill_level(level, store, part_entries=30)
    assert isinstance(spilled, SpilledLevel)
    assert spilled.num_parts == 4
    assert np.array_equal(spilled.vert_array(), level.vert_array())
    # Already-spilled levels pass through.
    assert spill_level(spilled, store) is spilled


def test_policy_memory_fits_in_memory(tmp_path):
    meter = MemoryMeter()
    policy = StoragePolicy(MemoryBudget(10**9), meter)
    cse = CSE(np.arange(10))
    sink = policy.sink_for_next_level(cse, predicted_entries=100)
    assert isinstance(sink, InMemorySink)
    assert policy.spilled_levels == 0


def test_policy_spills_over_budget(tmp_path):
    meter = MemoryMeter()
    meter.set("other", 900)
    policy = StoragePolicy(
        MemoryBudget(1000), meter, store=PartStore(str(tmp_path)),
        synchronous_io=True, prefetch=False,
    )
    cse = CSE(np.arange(10))
    sink = policy.sink_for_next_level(cse, predicted_entries=1000)
    assert isinstance(sink, SpillingSink)
    assert policy.spilled_levels == 1


def test_policy_force_spill_last(tmp_path):
    policy = StoragePolicy(
        MemoryBudget(None), MemoryMeter(), store=PartStore(str(tmp_path)),
        synchronous_io=True, prefetch=False, force_spill_last=True,
    )
    cse = CSE(np.arange(4))
    sink = policy.sink_for_next_level(cse, predicted_entries=1)
    assert isinstance(sink, SpillingSink)


def test_policy_demotes_top_when_pressed(tmp_path, paper_graph):
    meter = MemoryMeter()
    policy = StoragePolicy(
        MemoryBudget(1), meter, store=PartStore(str(tmp_path)),
        synchronous_io=True, prefetch=False,
    )
    cse = CSE(np.arange(6))
    expand_vertex_level(paper_graph, cse)
    meter.set("cse", cse.nbytes_in_memory)
    policy.sink_for_next_level(cse, predicted_entries=100)
    assert isinstance(cse.top, SpilledLevel)


def test_policy_creates_store_lazily():
    policy = StoragePolicy(
        MemoryBudget(None), MemoryMeter(), force_spill_last=True,
        synchronous_io=True, prefetch=False,
    )
    assert policy.store is None
    cse = CSE(np.arange(2))
    policy.sink_for_next_level(cse, predicted_entries=1)
    assert policy.store is not None
    policy.close()
