"""SessionPool invariants: staleness, busy-drop dooming, unlocked builds."""

import threading

import pytest

from repro.graph import from_edge_list
from repro.service.sessions import SessionPool


class FakeEngine:
    """Stands in for KaleidoEngine: just tracks close()."""

    def __init__(self, graph):
        self.graph = graph
        self.closed = False
        self.runs_completed = 0

    def close(self):
        self.closed = True


TRIANGLE = [(1, 2), (2, 3), (1, 3)]


@pytest.fixture
def graph():
    return from_edge_list(TRIANGLE, name="tri")


def counting_factory(engines):
    def factory(graph):
        engine = FakeEngine(graph)
        engines.append(engine)
        return engine

    return factory


def test_stale_session_is_never_reused_for_the_old_contents(graph):
    engines = []
    pool = SessionPool(counting_factory(engines), max_sessions_per_graph=2)
    with pool.session(graph):
        pass
    old_fingerprint = graph.fingerprint()
    graph.labels[0] += 1
    graph.invalidate_caches()
    # a different graph object that genuinely has the old contents
    twin = from_edge_list(TRIANGLE, name="twin")
    assert twin.fingerprint() == old_fingerprint
    with pool.session(twin) as session:
        assert session.graph is twin  # not the mutated object
    assert len(engines) == 2
    assert engines[0].closed  # the stale session's engine was reclaimed
    pool.close()


def test_drop_graph_dooms_busy_sessions_and_closes_on_release(graph):
    engines = []
    pool = SessionPool(counting_factory(engines), max_sessions_per_graph=2)
    fingerprint = graph.fingerprint()
    session = pool._acquire(graph)
    assert pool.drop_graph(fingerprint) == 1
    assert not session.engine.closed  # the borrower is still running
    assert len(pool) == 0
    pool._release(session)
    assert session.engine.closed
    pool.close()


def test_close_dooms_busy_sessions_too(graph):
    engines = []
    pool = SessionPool(counting_factory(engines), max_sessions_per_graph=2)
    session = pool._acquire(graph)
    pool.close()
    assert not session.engine.closed
    pool._release(session)
    assert session.engine.closed


def test_engine_build_does_not_hold_the_pool_lock():
    release = threading.Event()
    started = threading.Event()

    def factory(graph):
        if graph.name == "slow":
            started.set()
            assert release.wait(timeout=30)
        return FakeEngine(graph)

    slow = from_edge_list([(1, 2), (2, 3)], name="slow")
    fast = from_edge_list([(1, 2), (1, 3), (2, 3)], name="fast")
    pool = SessionPool(factory, max_sessions_per_graph=1)
    done = {}

    def build_slow():
        with pool.session(slow) as session:
            done["slow"] = session.engine.graph is slow

    thread = threading.Thread(target=build_slow)
    thread.start()
    assert started.wait(timeout=30)
    # the slow engine is mid-build; another graph's acquire must not block
    with pool.session(fast) as session:
        done["fast"] = session.engine.graph is fast
    release.set()
    thread.join(timeout=30)
    assert done == {"fast": True, "slow": True}
    pool.close()


def test_factory_failure_releases_the_reserved_slot(graph):
    calls = []

    def flaky(g):
        calls.append(g)
        if len(calls) == 1:
            raise RuntimeError("boom")
        return FakeEngine(g)

    pool = SessionPool(flaky, max_sessions_per_graph=1)
    with pytest.raises(RuntimeError, match="boom"):
        pool._acquire(graph)
    with pool.session(graph) as session:  # the reservation was released
        assert session.engine.graph is graph
    pool.close()


def test_reservations_count_against_the_per_graph_cap(graph):
    gate = threading.Event()
    building = threading.Event()
    engines = []

    def gated(g):
        building.set()
        assert gate.wait(timeout=30)
        engine = FakeEngine(g)
        engines.append(engine)
        return engine

    pool = SessionPool(gated, max_sessions_per_graph=1)
    results = []

    def worker():
        with pool.session(graph) as session:
            results.append(session)

    threads = [threading.Thread(target=worker) for _ in range(3)]
    for thread in threads:
        thread.start()
    assert building.wait(timeout=30)
    gate.set()
    for thread in threads:
        thread.join(timeout=30)
    assert len(engines) == 1  # cap 1: one build, two reuses
    assert len(results) == 3
    pool.close()
