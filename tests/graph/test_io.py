"""Unit tests for edge-list / labeled-adjacency IO."""

import pytest

from repro.errors import GraphFormatError
from repro.graph import (
    from_edge_list,
    load_edge_list,
    load_labeled_adjacency,
    save_edge_list,
    save_labeled_adjacency,
)


def test_edge_list_roundtrip(tmp_path, paper_graph):
    path = tmp_path / "g.txt"
    save_edge_list(paper_graph, path)
    loaded = load_edge_list(path)
    assert list(loaded.edges()) == list(paper_graph.edges())


def test_edge_list_comments_and_blanks(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("# header\n\n% another comment\n0 1\n1 2\n")
    g = load_edge_list(path)
    assert g.num_edges == 2


def test_edge_list_malformed_line(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("0 1\njunk\n")
    with pytest.raises(GraphFormatError, match="bad.txt:2"):
        load_edge_list(path)


def test_edge_list_non_integer(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("a b\n")
    with pytest.raises(GraphFormatError):
        load_edge_list(path)


def test_edge_list_skips_self_loops(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0 0\n0 1\n")
    assert load_edge_list(path).num_edges == 1


def test_labeled_adjacency_roundtrip(tmp_path):
    g = from_edge_list([(0, 1), (1, 2), (0, 2)], labels=[5, 6, 7])
    path = tmp_path / "g.adj"
    save_labeled_adjacency(g, path)
    loaded = load_labeled_adjacency(path)
    assert loaded.labels.tolist() == [5, 6, 7]
    assert list(loaded.edges()) == list(g.edges())


def test_labeled_adjacency_isolated_vertex(tmp_path):
    path = tmp_path / "g.adj"
    path.write_text("0 9\n1 8 2\n2 7 1\n")
    g = load_labeled_adjacency(path)
    assert g.num_vertices == 3
    assert g.degree(0) == 0
    assert g.label(0) == 9
    assert g.has_edge(1, 2)


def test_labeled_adjacency_malformed(tmp_path):
    path = tmp_path / "bad.adj"
    path.write_text("0\n")
    with pytest.raises(GraphFormatError):
        load_labeled_adjacency(path)


def test_load_uses_filename_as_default_name(tmp_path):
    path = tmp_path / "mygraph.txt"
    path.write_text("0 1\n")
    assert load_edge_list(path).name == "mygraph.txt"


def test_edge_list_with_edge_labels_roundtrip(tmp_path):
    g = from_edge_list([(0, 1), (1, 2), (0, 2)]).with_edge_labels([7, 8, 9])
    path = tmp_path / "g.txt"
    save_edge_list(g, path)
    loaded = load_edge_list(path)
    assert loaded.has_edge_labels
    assert loaded.edge_label(0, 1) == 7
    assert loaded.edge_label(1, 2) == 9  # lexicographic edge order: (1,2) last


def test_edge_list_mixed_labeling_rejected(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("0 1 5\n1 2\n")
    with pytest.raises(GraphFormatError, match="mixed"):
        load_edge_list(path)


def test_edge_list_third_column_order(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("2 0 9\n0 1 4\n")
    g = load_edge_list(path)
    assert g.edge_label(0, 2) == 9
    assert g.edge_label(1, 0) == 4
