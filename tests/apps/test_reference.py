"""Unit tests for the brute-force reference implementations themselves."""

from repro.apps.reference import (
    connected_edge_sets,
    connected_vertex_sets,
    count_cliques_naive,
    count_motifs_naive,
    count_triangles_naive,
    fsm_naive,
)
from repro.graph import from_edge_list


def test_connected_vertex_sets(paper_graph):
    sets3 = connected_vertex_sets(paper_graph, 3)
    assert len(sets3) == 8  # Figure 3: s13..s20
    assert (1, 2, 3) in sets3
    assert (0, 1, 2) not in sets3  # vertex 0 isolated


def test_connected_vertex_sets_disconnected_graph():
    g = from_edge_list([(0, 1), (2, 3)])
    assert connected_vertex_sets(g, 2) == [(0, 1), (2, 3)]
    assert connected_vertex_sets(g, 3) == []


def test_connected_edge_sets(paper_graph):
    sets1 = connected_edge_sets(paper_graph, 1)
    assert len(sets1) == 7
    sets2 = connected_edge_sets(paper_graph, 2)
    # Each pair of adjacent edges once: count wedges = sum C(deg,2).
    expected = sum(
        d * (d - 1) // 2 for d in paper_graph.degrees().tolist()
    )
    assert len(sets2) == expected


def test_count_motifs_naive_triangle_plus_chain(paper_graph):
    counts = count_motifs_naive(paper_graph, 3)
    assert sorted(counts.values()) == [3, 5]


def test_count_cliques_and_triangles(paper_graph):
    assert count_triangles_naive(paper_graph) == 3
    assert count_cliques_naive(paper_graph, 3) == 3
    assert count_cliques_naive(paper_graph, 4) == 0
    assert count_cliques_naive(paper_graph, 2) == 7


def test_fsm_naive_single_edge(labeled_square):
    result = fsm_naive(labeled_square, 1, 2)
    # Two frequent single-edge patterns: (0,1) edges (domains {0,2}/{1,3},
    # support 2) and the (0,0) chord (both endpoints in both roles).
    assert sorted(result.values()) == [2, 2]


def test_fsm_naive_automorphic_positions():
    # Path a-b with identical labels: support counts both orientations.
    g = from_edge_list([(0, 1), (2, 3)], labels=[0, 0, 0, 0])
    result = fsm_naive(g, 1, 2)
    assert list(result.values()) == [4]


def test_fsm_naive_threshold_filters():
    g = from_edge_list([(0, 1), (1, 2)], labels=[0, 1, 0])
    assert fsm_naive(g, 1, 3) == {}
