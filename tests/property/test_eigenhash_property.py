"""Property-based tests: EigenHash ⟺ exact isomorphism (Theorem 2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Pattern, are_isomorphic, eigen_hash, faddeev_leverrier
from repro.core.pattern import triangle_index


@st.composite
def patterns(draw, max_k=7, max_label=2):
    k = draw(st.integers(min_value=1, max_value=max_k))
    labels = tuple(
        draw(st.integers(min_value=0, max_value=max_label)) for _ in range(k)
    )
    bits = draw(st.integers(min_value=0, max_value=(1 << (k * (k - 1) // 2)) - 1))
    return Pattern(labels, bits)


@st.composite
def pattern_with_permutation(draw, max_k=7):
    pattern = draw(patterns(max_k=max_k))
    perm = draw(st.permutations(range(pattern.num_vertices)))
    return pattern, list(perm)


@given(pattern_with_permutation())
@settings(max_examples=150, deadline=None)
def test_hash_invariant_under_relabeling(case):
    """Isomorphic (relabeled) patterns always hash equal (necessity)."""
    pattern, perm = case
    assert eigen_hash(pattern) == eigen_hash(pattern.permute(perm))


@given(patterns(max_k=6), patterns(max_k=6))
@settings(max_examples=200, deadline=None)
def test_hash_equality_iff_isomorphic(a, b):
    """Below 9 vertices, hash collision ⟺ isomorphism (sufficiency).

    Hypothesis rarely generates isomorphic pairs by chance, so this mostly
    stresses the no-false-collision direction; the necessity direction is
    covered by the relabeling test above.
    """
    assert (eigen_hash(a) == eigen_hash(b)) == are_isomorphic(a, b)


@given(pattern_with_permutation(max_k=6))
@settings(max_examples=100, deadline=None)
def test_charpoly_similarity_invariant(case):
    """Theorem 1: similar matrices share the characteristic polynomial."""
    pattern, perm = case
    a = faddeev_leverrier(pattern.adjacency_matrix())
    b = faddeev_leverrier(pattern.permute(perm).adjacency_matrix())
    assert a == b


@given(patterns(max_k=6))
@settings(max_examples=100, deadline=None)
def test_charpoly_trace_and_edges(pattern):
    """Sanity identities: p1 = -tr(A) = 0 and p2 = -|E| for 0/1 adjacency."""
    poly = faddeev_leverrier(pattern.adjacency_matrix())
    if pattern.num_vertices >= 1:
        assert poly[0] == 0
    if pattern.num_vertices >= 2:
        assert poly[1] == -pattern.num_edges


@given(patterns())
@settings(max_examples=100, deadline=None)
def test_degree_sequence_consistent_with_bitmap(pattern):
    degrees = pattern.degree_sequence()
    assert sum(degrees) == 2 * pattern.num_edges
    k = pattern.num_vertices
    for i in range(k):
        count = sum(1 for j in range(k) if j != i and pattern.has_edge(i, j))
        assert count == degrees[i]


@given(pattern_with_permutation())
@settings(max_examples=100, deadline=None)
def test_permute_roundtrip(case):
    pattern, perm = case
    inverse = [0] * len(perm)
    for t, p in enumerate(perm):
        inverse[p] = t
    assert pattern.permute(perm).permute(inverse) == pattern


@given(patterns(max_k=5))
@settings(max_examples=60, deadline=None)
def test_triangle_index_bijective(pattern):
    k = pattern.num_vertices
    seen = set()
    for i in range(k):
        for j in range(i + 1, k):
            seen.add(triangle_index(i, j, k))
    assert seen == set(range(k * (k - 1) // 2))
