"""Disk-backed CSE parts and spilled levels (Section 4.1, Figure 7).

A spilled level's vertex array lives on disk as a sequence of per-part
``.npy`` files, produced by the per-thread partitioning of the exploration;
the offset array stays in memory when it fits, mirroring the paper's
"merge t parts of off in memory" rule.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
import uuid
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..errors import StorageError
from .meter import IOStats
from .window import SlidingWindowReader

__all__ = ["PartHandle", "PartStore", "SpilledLevel"]


@dataclass(frozen=True)
class PartHandle:
    """One on-disk array part."""

    path: str
    length: int
    nbytes: int


class PartStore:
    """Owns a spill directory and tracks every byte moved through it."""

    def __init__(self, directory: str | None = None) -> None:
        if directory is None:
            self._tmp = tempfile.mkdtemp(prefix="kaleido-spill-")
            self.directory = self._tmp
        else:
            os.makedirs(directory, exist_ok=True)
            self._tmp = None
            self.directory = directory
        self.io = IOStats()
        self._counter = 0

    def save(self, array: np.ndarray, tag: str = "part") -> PartHandle:
        """Write an array as one part file; returns its handle."""
        self._counter += 1
        path = os.path.join(
            self.directory, f"{tag}-{self._counter:06d}-{uuid.uuid4().hex[:8]}.npy"
        )
        started = time.perf_counter()
        try:
            np.save(path, array, allow_pickle=False)
        except OSError as exc:
            raise StorageError(f"failed to write spill part {path}: {exc}") from exc
        elapsed = time.perf_counter() - started
        nbytes = os.path.getsize(path)
        self.io.record("write", nbytes, elapsed)
        return PartHandle(path=path, length=int(array.shape[0]), nbytes=nbytes)

    def load(self, handle: PartHandle) -> np.ndarray:
        """Read one part back."""
        started = time.perf_counter()
        try:
            array = np.load(handle.path, allow_pickle=False)
        except OSError as exc:
            raise StorageError(f"failed to read spill part {handle.path}: {exc}") from exc
        self.io.record("read", handle.nbytes, time.perf_counter() - started)
        return array

    def delete(self, handle: PartHandle) -> None:
        """Remove one part file (best effort)."""
        try:
            os.remove(handle.path)
        except OSError:
            pass

    def close(self) -> None:
        """Remove the spill directory if this store created it."""
        if self._tmp is not None:
            shutil.rmtree(self._tmp, ignore_errors=True)
            self._tmp = None

    def __enter__(self) -> "PartStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SpilledLevel:
    """A CSE level whose vertex array lives on disk in parts.

    Satisfies the :class:`repro.core.cse.Level` protocol.  Sequential
    iteration streams parts through a sliding window with one-part-ahead
    prefetch (Figure 7's main part / candidate part scheme).
    """

    def __init__(
        self,
        store: PartStore,
        parts: list[PartHandle],
        off: np.ndarray | None,
        prefetch: bool = True,
    ) -> None:
        self.store = store
        self.parts = parts
        self.off = None if off is None else np.ascontiguousarray(off, dtype=np.int64)
        self.prefetch = prefetch
        self._length = sum(p.length for p in parts)
        if self.off is not None and self.off[-1] != self._length:
            raise StorageError(
                f"off spans {self.off[-1]} but parts hold {self._length} entries"
            )

    @property
    def num_embeddings(self) -> int:
        return self._length

    @property
    def num_parts(self) -> int:
        return len(self.parts)

    def off_array(self) -> np.ndarray | None:
        return self.off

    def vert_array(self) -> np.ndarray:
        chunks = [self.store.load(p) for p in self.parts]
        if not chunks:
            return np.zeros(0, dtype=np.int32)
        return np.concatenate(chunks)

    def iter_vert_chunks(self) -> Iterator[np.ndarray]:
        reader = SlidingWindowReader(self.store, self.parts, prefetch=self.prefetch)
        yield from reader

    @property
    def nbytes_in_memory(self) -> int:
        # Only the off array (plus one window part while iterating, which
        # the engine accounts separately as its streaming buffer).
        return 0 if self.off is None else self.off.nbytes

    @property
    def nbytes_total(self) -> int:
        return self.nbytes_in_memory + sum(p.nbytes for p in self.parts)

    @property
    def nbytes_on_disk(self) -> int:
        return sum(p.nbytes for p in self.parts)

    def drop(self) -> None:
        """Delete the level's part files."""
        for part in self.parts:
            self.store.delete(part)
        self.parts = []
        self._length = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SpilledLevel(n={self.num_embeddings}, parts={len(self.parts)}, "
            f"disk={self.nbytes_on_disk / 1e6:.2f}MB)"
        )
