"""Deterministic fault injection against the storage recovery machinery.

Every test drives faults through :class:`FaultyPartStore`'s raw I/O hooks,
underneath the retry and checksum layers, so what is exercised here is the
production recovery path — not a mock of it.
"""

import numpy as np
import pytest

from repro.errors import (
    CorruptPartError,
    DiskFullError,
    StorageError,
    TransientStorageError,
)
from repro.storage import (
    FaultPlan,
    FaultSpec,
    FaultyPartStore,
    RetryPolicy,
    WritingQueue,
)


def _no_sleep_policy(attempts=4, recorder=None):
    sleeps = recorder if recorder is not None else []
    return RetryPolicy(attempts=attempts, sleep=sleeps.append), sleeps


def _store(tmp_path, specs, attempts=4, seed=0):
    plan = FaultPlan(specs, seed=seed, sleep=lambda _t: None)
    retry, sleeps = _no_sleep_policy(attempts)
    store = FaultyPartStore(str(tmp_path), plan=plan, retry=retry)
    return store, plan, sleeps


# ----------------------------------------------------------------------
# FaultSpec / FaultPlan semantics
# ----------------------------------------------------------------------
def test_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec(op="format", kind="transient")
    with pytest.raises(ValueError):
        FaultSpec(op="save", kind="explode")
    with pytest.raises(ValueError):
        FaultSpec(op="save", kind="transient", at=0)
    with pytest.raises(ValueError):
        FaultSpec(op="save", kind="transient", repeat=0)
    with pytest.raises(ValueError):
        FaultSpec(op="save", kind="transient", probability=1.5)


def test_plan_at_and_repeat_window():
    plan = FaultPlan([FaultSpec(op="save", kind="transient", at=2, repeat=2)])
    hits = [plan.draw("save") is not None for _ in range(5)]
    assert hits == [False, True, True, False, False]
    assert plan.calls("save") == 5
    assert [(op, count) for op, _kind, count in plan.fired] == [("save", 2), ("save", 3)]


def test_plan_probability_is_seed_deterministic():
    spec = FaultSpec(op="load", kind="transient", probability=0.5)
    draws_a = [FaultPlan([spec], seed=7).draw("load") for _ in range(1)]
    plan_a = FaultPlan([spec], seed=7)
    plan_b = FaultPlan([spec], seed=7)
    seq_a = [plan_a.draw("load") is not None for _ in range(50)]
    seq_b = [plan_b.draw("load") is not None for _ in range(50)]
    assert seq_a == seq_b
    assert any(seq_a) and not all(seq_a)
    del draws_a


# ----------------------------------------------------------------------
# Transient faults: retried to success with bounded backoff
# ----------------------------------------------------------------------
def test_transient_save_retried_to_success(tmp_path):
    store, plan, sleeps = _store(
        tmp_path, [FaultSpec(op="save", kind="transient", at=1, repeat=2)]
    )
    array = np.arange(16, dtype=np.int32)
    handle = store.save(array)
    # Two failed attempts, then success — each retry slept the policy's
    # capped exponential delay.
    assert plan.calls("save") == 3
    assert sleeps == [store.retry.delay(0), store.retry.delay(1)]
    assert store.io.retries == 2
    assert store.load(handle).tolist() == array.tolist()


def test_transient_load_retried_to_success(tmp_path):
    store, plan, sleeps = _store(
        tmp_path, [FaultSpec(op="load", kind="transient", at=1)]
    )
    handle = store.save(np.arange(5, dtype=np.int32))
    assert store.load(handle).tolist() == list(range(5))
    assert plan.calls("load") == 2
    assert store.io.retries == 1


def test_backoff_is_capped():
    policy = RetryPolicy(attempts=6, base_delay=0.01, max_delay=0.04, sleep=lambda _t: None)
    assert [policy.delay(i) for i in range(5)] == [0.01, 0.02, 0.04, 0.04, 0.04]


def test_transient_exhaustion_raises_and_leaves_no_file(tmp_path):
    store, plan, sleeps = _store(
        tmp_path,
        [FaultSpec(op="save", kind="transient", at=1, repeat=10)],
        attempts=3,
    )
    with pytest.raises(TransientStorageError):
        store.save(np.arange(4, dtype=np.int32))
    assert plan.calls("save") == 3  # every configured attempt was used
    assert len(sleeps) == 2  # no sleep after the final attempt
    # The atomic write cleaned up after itself: no final file, no temp.
    assert list(tmp_path.iterdir()) == []


# ----------------------------------------------------------------------
# Permanent / disk-full faults: classified, never retried
# ----------------------------------------------------------------------
def test_permanent_fault_not_retried(tmp_path):
    store, plan, sleeps = _store(
        tmp_path, [FaultSpec(op="save", kind="permanent", at=1)]
    )
    with pytest.raises(StorageError) as info:
        store.save(np.arange(4, dtype=np.int32))
    assert not isinstance(info.value, TransientStorageError)
    assert plan.calls("save") == 1
    assert sleeps == []


def test_disk_full_maps_to_diskfullerror(tmp_path):
    store, _plan, _ = _store(tmp_path, [FaultSpec(op="save", kind="full", at=1)])
    with pytest.raises(DiskFullError):
        store.save(np.arange(4, dtype=np.int32))


# ----------------------------------------------------------------------
# Corruption: detected, never a silent wrong answer
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", ["torn", "corrupt"])
def test_damaged_part_raises_corrupterror(tmp_path, kind):
    store, _plan, _ = _store(tmp_path, [FaultSpec(op="load", kind=kind, at=1)])
    handle = store.save(np.arange(100, dtype=np.int32))
    with pytest.raises(CorruptPartError):
        store.load(handle)
    # The damage is on disk, not in the handle: every later read of the
    # same part keeps failing loudly too.
    with pytest.raises(CorruptPartError):
        store.load(handle)


def test_corrupted_at_write_time_detected_on_read(tmp_path):
    store, _plan, _ = _store(tmp_path, [FaultSpec(op="save", kind="corrupt", at=1)])
    handle = store.save(np.arange(100, dtype=np.int32))
    with pytest.raises(CorruptPartError):
        store.load(handle)


# ----------------------------------------------------------------------
# Slow faults: injectable latency, no real waiting
# ----------------------------------------------------------------------
def test_slow_fault_uses_injected_sleep(tmp_path):
    naps = []
    plan = FaultPlan(
        [FaultSpec(op="save", kind="slow", at=1, delay_seconds=60.0)],
        sleep=naps.append,
    )
    retry, _ = _no_sleep_policy()
    store = FaultyPartStore(str(tmp_path), plan=plan, retry=retry)
    handle = store.save(np.arange(8, dtype=np.int32))
    assert naps == [60.0]
    assert store.load(handle).tolist() == list(range(8))


# ----------------------------------------------------------------------
# Delete faults: counted and logged, never fatal
# ----------------------------------------------------------------------
def test_failed_delete_is_counted_not_raised(tmp_path):
    store, _plan, _ = _store(tmp_path, [FaultSpec(op="delete", kind="permanent", at=1)])
    handle = store.save(np.arange(4, dtype=np.int32))
    store.delete(handle)  # injected EACCES swallowed
    assert store.io.failed_deletes == 1
    assert store.io.deletes == 1
    store.delete(handle)  # second try has no fault planned
    assert store.io.failed_deletes == 1
    assert store.io.deletes == 2
    assert not list(tmp_path.glob("*.npy"))


def test_delete_missing_file_counts_ok(tmp_path):
    store, _plan, _ = _store(tmp_path, [])
    handle = store.save(np.arange(4, dtype=np.int32))
    store.delete(handle)
    store.delete(handle)  # already gone: FileNotFoundError is a success
    assert store.io.deletes == 2
    assert store.io.failed_deletes == 0


# ----------------------------------------------------------------------
# Through the writing queue: taxonomy survives the writer thread
# ----------------------------------------------------------------------
def test_queue_preserves_error_taxonomy_across_thread(tmp_path):
    store, _plan, _ = _store(tmp_path, [FaultSpec(op="save", kind="full", at=1)])
    queue = WritingQueue(store, synchronous=False)
    queue.submit(np.arange(4, dtype=np.int32))
    with pytest.raises(DiskFullError, match="background writer failed"):
        queue.close()


def test_queue_writer_retries_exhausted_transients(tmp_path):
    # The store itself gives up (attempts=1) but the queue's own retry
    # layer re-submits the save, so the burst still drains through.
    store, plan, _ = _store(
        tmp_path, [FaultSpec(op="save", kind="transient", at=1)], attempts=1
    )
    retry, _ = _no_sleep_policy(attempts=2)
    queue = WritingQueue(store, synchronous=True, retry=retry)
    queue.submit(np.arange(4, dtype=np.int32))
    handles = queue.close()
    assert len(handles) == 1
    assert store.load(handles[0]).tolist() == list(range(4))
    assert plan.calls("save") == 2


# ----------------------------------------------------------------------
# Through the engine: degradation and clean aborts
# ----------------------------------------------------------------------
def _engine_with_faults(graph, tmp_path, specs, **engine_kwargs):
    from repro import KaleidoEngine

    retry, _ = _no_sleep_policy()
    engine = KaleidoEngine(graph, storage_mode="spill-last", **engine_kwargs)
    plan = FaultPlan(specs, sleep=lambda _t: None)
    engine._policy.store = FaultyPartStore(str(tmp_path), plan=plan, retry=retry)
    return engine, plan


def test_engine_degrades_on_disk_full_and_stays_correct(tmp_path, paper_graph):
    from repro import KaleidoEngine, MotifCounting

    expected = KaleidoEngine(paper_graph).run(MotifCounting(3))
    engine, _plan = _engine_with_faults(
        paper_graph, tmp_path, [FaultSpec(op="save", kind="full", at=1)]
    )
    with engine:
        result = engine.run(MotifCounting(3))
    assert result.extra["degradations"] == ["prefetch-off"]
    assert result.extra["io_mode"] == "async+no-prefetch"
    assert result.value == expected.value
    # The aborted attempt's partial parts were discarded; only the retried
    # level's files were ever live, and the run's result is untruncated.
    assert result.pattern_map == expected.pattern_map


def test_engine_exhausts_degradation_then_raises(tmp_path, paper_graph):
    from repro import MotifCounting

    engine, _plan = _engine_with_faults(
        paper_graph, tmp_path, [FaultSpec(op="save", kind="full", probability=1.0)]
    )
    with engine, pytest.raises(DiskFullError):
        engine.run(MotifCounting(3))
    assert engine._policy.degradations == ["prefetch-off", "synchronous-io"]


def test_engine_permanent_fault_aborts_level_without_leaks(tmp_path, paper_graph):
    from repro import MotifCounting

    engine, plan = _engine_with_faults(
        paper_graph,
        tmp_path,
        [FaultSpec(op="save", kind="permanent", at=2)],
        synchronous_io=True,
        prefetch=False,
    )
    with engine, pytest.raises(StorageError):
        engine.run(MotifCounting(3))
    assert plan.calls("save") >= 2
    # discard() deleted the parts written before the permanent fault.
    assert not list(tmp_path.glob("*.npy"))
    assert not list(tmp_path.glob("*.tmp"))
