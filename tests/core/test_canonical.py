"""Unit tests for Definition-2 canonicality (vertex- and edge-induced)."""

import pytest

from repro.core import (
    canonical_edge_order,
    canonical_order,
    edge_extends_canonically,
    edge_is_canonical,
    extends_canonically,
    is_canonical,
)
from repro.graph.edge_index import EdgeIndex


# ----------------------------------------------------------------------
# Vertex-induced
# ----------------------------------------------------------------------
def test_paper_example_extension(paper_graph):
    # Section 3.1: s8 = <2,3>; candidates {1,4,5}; <2,3,1> rejected by
    # property (i); <2,3,4> and <2,3,5> accepted.
    assert not extends_canonically(paper_graph, (2, 3), 1)
    assert extends_canonically(paper_graph, (2, 3), 4)
    assert extends_canonically(paper_graph, (2, 3), 5)


def test_duplicate_rejected(paper_graph):
    assert not extends_canonically(paper_graph, (2, 3), 3)
    assert not extends_canonically(paper_graph, (2, 3), 2)


def test_non_neighbor_rejected(paper_graph):
    # Vertex 0 is isolated.
    assert not extends_canonically(paper_graph, (1, 2), 0)


def test_property_iii(paper_graph):
    # <1,5,4>: 4 adjacent to 5 (index 1), nothing after index 1, fine.
    assert extends_canonically(paper_graph, (1, 5), 4)
    # <1,5,4> + 2: 2 is adjacent to 1 (index 0), but 5 and 4 come after
    # index 0 and are both > 2 → property (iii) violated.
    assert not extends_canonically(paper_graph, (1, 5, 4), 2)
    # <1,2,5> + 3: 3 adjacent to 2 (index 1); 5 > 3 after it → reject.
    assert not extends_canonically(paper_graph, (1, 2, 5), 3)


def test_canonical_order_reconstruction(paper_graph):
    assert canonical_order(paper_graph, [3, 5, 2]) == (2, 3, 5)
    assert canonical_order(paper_graph, [5, 4, 1]) == (1, 5, 4)


def test_canonical_order_disconnected(paper_graph):
    with pytest.raises(ValueError):
        canonical_order(paper_graph, [1, 4])  # 1-4 not adjacent, set size 2


def test_is_canonical_full_check(paper_graph):
    assert is_canonical(paper_graph, (2, 3, 5))
    assert not is_canonical(paper_graph, (3, 2, 5))
    assert not is_canonical(paper_graph, (2, 5, 3))
    assert not is_canonical(paper_graph, (1, 4))  # disconnected


def test_figure3_level_sets(paper_graph):
    """The canonical 3-embeddings are exactly s13..s20 of Figure 3."""
    expected = {
        (1, 2, 3), (1, 2, 5), (1, 5, 3), (1, 5, 4),
        (2, 3, 4), (2, 3, 5), (2, 5, 4), (3, 4, 5),
    }
    found = set()
    from itertools import permutations, combinations

    for verts in combinations(range(6), 3):
        for order in permutations(verts):
            if is_canonical(paper_graph, order):
                found.add(order)
    assert found == expected


def test_incremental_matches_full_recheck(paper_graph, small_random):
    """Appending via the O(k) rule ⟺ the result passes the full re-check."""
    for graph in (paper_graph, small_random):
        frontier = [(v,) for v in range(graph.num_vertices)]
        for _ in range(3):
            nxt = []
            for emb in frontier:
                for cand in range(graph.num_vertices):
                    fast = extends_canonically(graph, emb, cand)
                    slow = is_canonical(graph, emb + (cand,))
                    assert fast == slow, (emb, cand)
                    if fast:
                        nxt.append(emb + (cand,))
            frontier = nxt[:50]


# ----------------------------------------------------------------------
# Edge-induced
# ----------------------------------------------------------------------
def test_edge_canonical_order(paper_graph):
    index = EdgeIndex(paper_graph)
    # Take edge ids of (2,3) and (3,5): canonical order starts at min id.
    e23 = index.edge_id(2, 3)
    e35 = index.edge_id(3, 5)
    ids = (e35, e23)
    edges = tuple(index.endpoints(e) for e in ids)
    assert canonical_edge_order(edges, ids) == tuple(sorted(ids))


def test_edge_is_canonical(paper_graph):
    index = EdgeIndex(paper_graph)
    e12 = index.edge_id(1, 2)
    e25 = index.edge_id(2, 5)
    ids = (e12, e25)
    edges = tuple(index.endpoints(e) for e in ids)
    assert edge_is_canonical(edges, ids)
    assert not edge_is_canonical(edges[::-1], ids[::-1])


def test_edge_extension_rules(paper_graph):
    index = EdgeIndex(paper_graph)
    e12 = index.edge_id(1, 2)
    e25 = index.edge_id(2, 5)
    e34 = index.edge_id(3, 4)
    base_ids = (e12,)
    base_edges = (index.endpoints(e12),)
    # Duplicate rejected.
    assert not edge_extends_canonically(base_edges, base_ids, (1, 2), e12)
    # Smaller id than the first edge rejected.
    bigger = (e25,)
    bigger_edges = (index.endpoints(e25),)
    assert not edge_extends_canonically(bigger_edges, bigger, (1, 2), e12)
    # Disconnected edge rejected.
    assert not edge_extends_canonically(base_edges, base_ids, (3, 4), e34)
    # Adjacent, larger id accepted.
    assert edge_extends_canonically(base_edges, base_ids, (2, 5), e25)


def test_edge_incremental_matches_full(paper_graph, small_random):
    for graph in (paper_graph, small_random):
        index = EdgeIndex(graph)
        frontier = [((eid,), (index.endpoints(eid),)) for eid in range(index.num_edges)]
        for _ in range(2):
            nxt = []
            for ids, edges in frontier:
                for cand in range(index.num_edges):
                    cand_edge = index.endpoints(cand)
                    fast = edge_extends_canonically(edges, ids, cand_edge, cand)
                    slow = edge_is_canonical(edges + (cand_edge,), ids + (cand,))
                    assert fast == slow, (ids, cand)
                    if fast:
                        nxt.append((ids + (cand,), edges + (cand_edge,)))
            frontier = nxt[:60]


def test_edge_uniqueness_and_completeness(paper_graph):
    """Canonical edge exploration enumerates every connected 3-edge set
    exactly once."""
    from repro.apps.reference import connected_edge_sets

    index = EdgeIndex(paper_graph)
    frontier = [((eid,), (index.endpoints(eid),)) for eid in range(index.num_edges)]
    for _ in range(2):
        nxt = []
        for ids, edges in frontier:
            for cand in range(index.num_edges):
                cand_edge = index.endpoints(cand)
                if edge_extends_canonically(edges, ids, cand_edge, cand):
                    nxt.append((ids + (cand,), edges + (cand_edge,)))
        frontier = nxt
    found = sorted(tuple(sorted(ids)) for ids, _ in frontier)
    expected = sorted(connected_edge_sets(paper_graph, 3))
    assert found == expected
