"""R004 fixture: the legal shapes — threading, iinfo, and id_dtype."""

import numpy as np

_INT32_MAX = int(np.iinfo(np.int32).max)  # boundary query: exempt


def id_dtype(count, boundary=_INT32_MAX):
    # the selection point itself is exempt
    return np.dtype(np.int32) if count <= boundary else np.dtype(np.int64)


def empty_level(dtype):
    return np.zeros(0, dtype=dtype)  # threaded dtype: legal


def offsets(counts):
    return np.cumsum(counts, dtype=np.int64)  # widening is legal
