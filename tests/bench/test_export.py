"""Unit tests for CSV export of run records."""

from repro.bench import RunRecord, read_records_csv, write_records_csv


def test_roundtrip(tmp_path):
    records = [
        RunRecord("kaleido", "3-Motif", "mico", "k=3", 1.25, 1000, 0, 0),
        RunRecord("rstream", "TC", "patent", "", 0.5, 2048, 10, 20),
    ]
    path = tmp_path / "records.csv"
    write_records_csv(records, path)
    loaded = read_records_csv(path)
    assert len(loaded) == 2
    assert loaded[0].system == "kaleido"
    assert loaded[0].seconds == 1.25
    assert loaded[1].io_write_bytes == 20
    assert loaded[1].key() == records[1].key()


def test_empty(tmp_path):
    path = tmp_path / "empty.csv"
    write_records_csv([], path)
    assert read_records_csv(path) == []
