"""MiningService acceptance tests: parity, caching, quotas, budgets.

Every behavioural claim is asserted twice where the issue demands it —
once on the returned :class:`QueryResult` and once in the shared obs
metrics registry, which is the service's audit trail.
"""

import threading

import pytest

from repro.apps import MotifCounting, TriangleCounting
from repro.core.engine import KaleidoEngine
from repro.errors import QueryRejectedError, QuotaExceededError, ServiceError
from repro.obs import MetricsRegistry, Tracer
from repro.service import (
    MiningService,
    QueryBudget,
    QueryRequest,
    Route,
    TenantQuota,
)


@pytest.fixture
def service():
    svc = MiningService(pool_workers=2, max_sessions_per_graph=2)
    yield svc
    svc.close()


def counter(svc, name):
    return svc.metrics.snapshot()[name]["value"]


# ----------------------------------------------------------------------
# Concurrency parity (the headline acceptance criterion)
# ----------------------------------------------------------------------
def test_eight_concurrent_queries_match_solo_run(small_random):
    solo = KaleidoEngine(small_random).run(MotifCounting(3))
    svc = MiningService(pool_workers=4, max_sessions_per_graph=4)
    try:
        futures = [
            svc.submit(
                QueryRequest(app="motif", k=3, graph=small_random, tenant=f"t{i % 4}")
            )
            for i in range(8)
        ]
        results = [future.result(timeout=120) for future in futures]
        # all engine sessions multiplexed one shared pool of 4 workers
        shared_pool_size = svc.executor.pool_size
    finally:
        svc.close()
    assert len(results) == 8
    for result in results:
        assert result.pattern_map == dict(solo.pattern_map)
    assert shared_pool_size == 4
    routes = {result.route for result in results}
    assert Route.RED in routes  # someone actually mined


def test_concurrent_tenants_all_accounted(service, paper_graph):
    barrier = threading.Barrier(4)
    results = []

    def go(tenant):
        barrier.wait(timeout=30)
        results.append(
            service.query(QueryRequest(app="tc", graph=paper_graph, tenant=tenant))
        )

    threads = [
        threading.Thread(target=go, args=(f"tenant{i}",)) for i in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert len(results) == 4
    assert len({tuple(sorted(r.pattern_map.items())) for r in results}) == 1
    for i in range(4):
        assert counter(service, f"tenant.tenant{i}.completed") == 1
        assert service.metrics.snapshot()[f"tenant.tenant{i}.inflight"]["value"] == 0


# ----------------------------------------------------------------------
# Result cache: hit, miss, invalidation
# ----------------------------------------------------------------------
def test_repeat_query_is_a_recorded_cache_hit(service, paper_graph):
    request = QueryRequest(app="tc", graph=paper_graph)
    first = service.query(request)
    second = service.query(QueryRequest(app="tc", graph=paper_graph))
    assert first.route is Route.RED and not first.cache_hit
    assert second.route is Route.GREEN and second.cache_hit
    assert second.pattern_map == first.pattern_map
    assert counter(service, "service.cache.hits") == 1
    assert counter(service, "service.cache.misses") == 1
    # the hit was served without re-mining: still exactly one engine run
    assert counter(service, "service.route.red") == 1
    assert counter(service, "service.sessions.created") == 1


def test_mutating_the_graph_invalidates_the_cache(service, paper_graph):
    service.query(QueryRequest(app="tc", graph=paper_graph))
    old_fingerprint = paper_graph.fingerprint()
    paper_graph.labels[0] += 1
    paper_graph.invalidate_caches()
    assert paper_graph.fingerprint() != old_fingerprint
    again = service.query(QueryRequest(app="tc", graph=paper_graph))
    assert again.route is Route.RED and not again.cache_hit
    assert counter(service, "service.cache.misses") == 2
    assert counter(service, "service.cache.hits") == 0


def test_same_contents_hit_across_graph_objects(service, paper_graph):
    from repro.graph import from_edge_list

    edges = [(1, 2), (1, 5), (2, 5), (2, 3), (3, 4), (3, 5), (4, 5)]
    reloaded = from_edge_list(edges, name="paper-reloaded")
    service.query(QueryRequest(app="tc", graph=paper_graph))
    result = service.query(QueryRequest(app="tc", graph=reloaded))
    assert result.route is Route.GREEN and result.cache_hit


def test_explicit_invalidate_graph_flushes_entries(service, paper_graph):
    service.query(QueryRequest(app="tc", graph=paper_graph))
    assert service.invalidate_graph(paper_graph) == 1
    result = service.query(QueryRequest(app="tc", graph=paper_graph))
    assert result.route is Route.RED


def test_invalidate_graph_reclaims_pre_mutation_state(service, paper_graph):
    service.query(QueryRequest(app="tc", graph=paper_graph))
    old_fingerprint = paper_graph.fingerprint()
    paper_graph.labels[0] += 1
    paper_graph.invalidate_caches()
    assert paper_graph.fingerprint() != old_fingerprint
    # the old-fingerprint entry and session are found via the session
    # pool's graph-object identity, despite the fingerprint having moved
    assert service.invalidate_graph(paper_graph) == 1
    assert len(service.cache) == 0
    assert len(service.sessions) == 0


def test_invalidate_graph_accepts_a_fingerprint_string(service, paper_graph):
    old_fingerprint = paper_graph.fingerprint()
    service.query(QueryRequest(app="tc", graph=paper_graph))
    paper_graph.labels[0] += 1
    paper_graph.invalidate_caches()
    assert service.invalidate_graph(old_fingerprint) == 1
    assert len(service.cache) == 0


# ----------------------------------------------------------------------
# Quotas and budgets
# ----------------------------------------------------------------------
def test_quota_rejection_before_any_work(service, paper_graph):
    service.set_quota("busy", TenantQuota(max_concurrent=1))
    service.tenants.admit("busy")  # simulate one query already in flight
    try:
        with pytest.raises(QuotaExceededError, match="busy"):
            service.query(QueryRequest(app="tc", graph=paper_graph, tenant="busy"))
    finally:
        service.tenants.release("busy")
    assert counter(service, "tenant.busy.rejected") == 1
    # the refusal happened at admission: nothing was mined or cached
    assert counter(service, "service.cache.misses") == 0
    assert counter(service, "service.sessions.created") == 0
    # and the slot bookkeeping survived: the tenant can query again
    result = service.query(QueryRequest(app="tc", graph=paper_graph, tenant="busy"))
    assert result.route is Route.RED


def test_budget_exceeded_degrades_to_approximate(service, paper_graph):
    result = service.query(
        QueryRequest(
            app="motif",
            k=4,
            graph=paper_graph,
            budget=QueryBudget(max_embeddings=2, samples=50),
        )
    )
    assert result.route is Route.YELLOW
    assert result.extra["degraded"]
    assert result.error_bars is not None
    assert counter(service, "service.route.degraded") == 1


def test_degraded_answer_is_not_cached_under_the_exact_key(service, paper_graph):
    degraded = service.query(
        QueryRequest(
            app="motif",
            k=4,
            graph=paper_graph,
            budget=QueryBudget(max_embeddings=2, samples=50),
        )
    )
    assert degraded.route is Route.YELLOW
    assert degraded.extra["degraded"]
    # a later exact query with no budget must mine, never see the estimate
    exact = service.query(QueryRequest(app="motif", k=4, graph=paper_graph))
    assert exact.route is Route.RED and not exact.cache_hit
    assert exact.error_bars is None
    assert counter(service, "service.cache.hits") == 0


def test_tenant_ceiling_degrades_without_query_budget(service, paper_graph):
    service.set_quota("capped", TenantQuota(max_embeddings=2))
    result = service.query(
        QueryRequest(app="motif", k=4, graph=paper_graph, tenant="capped")
    )
    assert result.route is Route.YELLOW
    assert result.extra["degraded"]


def test_budget_rejection_releases_the_tenant_slot(service, paper_graph):
    with pytest.raises(QueryRejectedError):
        service.query(
            QueryRequest(
                app="clique",
                k=4,
                graph=paper_graph,
                tenant="strict",
                budget=QueryBudget(max_embeddings=1, allow_degraded=False),
            )
        )
    snap = service.metrics.snapshot()
    assert snap["tenant.strict.inflight"]["value"] == 0
    assert snap["tenant.strict.failed"]["value"] == 1
    assert counter(service, "service.failed") == 1


# ----------------------------------------------------------------------
# Routing paths end to end
# ----------------------------------------------------------------------
def test_approximate_mode_serves_yellow_with_error_bars(service, small_random):
    result = service.query(
        QueryRequest(
            app="motif",
            k=3,
            graph=small_random,
            mode="approximate",
            params={"samples": 60, "seed": 3},
        )
    )
    assert result.route is Route.YELLOW
    assert result.error_bars is not None and result.pattern_map
    assert counter(service, "service.route.yellow") == 1


def test_yellow_answers_are_cached_per_mode(service, small_random):
    request = dict(app="motif", k=3, graph=small_random, mode="approximate")
    first = service.query(QueryRequest(**request))
    second = service.query(QueryRequest(**request))
    assert second.route is Route.GREEN
    assert second.pattern_map == first.pattern_map
    # an exact query for the same app/k must NOT see the approximate answer
    exact = service.query(QueryRequest(app="motif", k=3, graph=small_random))
    assert exact.route is Route.RED


def test_warm_session_is_reused_across_runs(service, paper_graph):
    service.query(QueryRequest(app="tc", graph=paper_graph))
    service.query(QueryRequest(app="motif", k=3, graph=paper_graph))
    assert counter(service, "service.sessions.created") == 1
    assert counter(service, "service.sessions.reused") == 1


# ----------------------------------------------------------------------
# Observability and lifecycle
# ----------------------------------------------------------------------
def test_each_request_gets_its_own_span_track(paper_graph):
    tracer = Tracer()
    svc = MiningService(pool_workers=1, tracer=tracer, metrics=MetricsRegistry())
    try:
        svc.query(QueryRequest(app="tc", graph=paper_graph, tenant="alice"))
        svc.query(QueryRequest(app="tc", graph=paper_graph, tenant="bob"))
    finally:
        svc.close()
    spans = [e for e in tracer.events if e.kind == "complete" and e.name == "query"]
    assert [span.track for span in spans] == ["request-1", "request-2"]
    assert spans[0].args["tenant"] == "alice"
    assert spans[0].args["route"] == "RED"
    assert spans[1].args["route"] == "GREEN"
    engine_spans = [e for e in tracer.events if e.name == "engine-run"]
    assert [e.track for e in engine_spans] == ["request-1"]


def test_stats_snapshot_shape(service, paper_graph):
    service.query(QueryRequest(app="tc", graph=paper_graph))
    stats = service.stats()
    assert stats["sessions"] == 1
    assert stats["cache_entries"] == 1
    assert "service.requests" in stats["metrics"]


def test_closed_service_refuses_queries(paper_graph):
    svc = MiningService(pool_workers=1)
    svc.close()
    with pytest.raises(ServiceError, match="closed"):
        svc.query(QueryRequest(app="tc", graph=paper_graph))
    svc.close()  # idempotent


def test_dataset_queries_resolve_and_cache_the_graph():
    svc = MiningService(pool_workers=1)
    try:
        first = svc.query(
            QueryRequest(app="tc", dataset="citeseer", profile="tiny")
        )
        second = svc.query(
            QueryRequest(app="tc", dataset="citeseer", profile="tiny")
        )
    finally:
        svc.close()
    assert first.route is Route.RED
    assert second.route is Route.GREEN


def test_red_run_result_matches_direct_engine(paper_graph):
    svc = MiningService(pool_workers=2)
    try:
        result = svc.query(QueryRequest(app="tc", graph=paper_graph))
    finally:
        svc.close()
    solo = KaleidoEngine(paper_graph).run(TriangleCounting())
    assert result.pattern_map == dict(solo.pattern_map)
    assert result.value == solo.value
