"""ResultCache: LRU behaviour, metrics accounting, invalidation."""

from repro.obs import MetricsRegistry
from repro.service import CachedAnswer, ResultCache

ANSWER = CachedAnswer(value=1, pattern_map={0: 1}, route="RED")


def key(fp: str, app: str = "tc", k: int = 3) -> tuple:
    return (fp, app, k, ("exact",))


def test_hit_miss_and_metrics():
    metrics = MetricsRegistry()
    cache = ResultCache(max_entries=4, metrics=metrics)
    assert cache.get(key("g1")) is None
    cache.put(key("g1"), ANSWER)
    assert cache.get(key("g1")) is ANSWER
    snap = metrics.snapshot()
    assert snap["service.cache.hits"]["value"] == 1
    assert snap["service.cache.misses"]["value"] == 1
    assert snap["service.cache.entries"]["value"] == 1


def test_lru_evicts_oldest_first():
    metrics = MetricsRegistry()
    cache = ResultCache(max_entries=2, metrics=metrics)
    cache.put(key("g1"), ANSWER)
    cache.put(key("g2"), ANSWER)
    cache.get(key("g1"))  # touch g1 so g2 is the LRU entry
    cache.put(key("g3"), ANSWER)
    assert cache.get(key("g1")) is not None
    assert cache.get(key("g2")) is None
    assert metrics.snapshot()["service.cache.evictions"]["value"] == 1


def test_put_replaces_existing_entry():
    cache = ResultCache(max_entries=2)
    other = CachedAnswer(value=2, pattern_map={0: 2}, route="YELLOW")
    cache.put(key("g1"), ANSWER)
    cache.put(key("g1"), other)
    assert len(cache) == 1
    assert cache.get(key("g1")) is other


def test_invalidate_graph_drops_only_that_fingerprint():
    cache = ResultCache(max_entries=8)
    cache.put(key("g1", "tc"), ANSWER)
    cache.put(key("g1", "motif"), ANSWER)
    cache.put(key("g2", "tc"), ANSWER)
    assert cache.invalidate_graph("g1") == 2
    assert len(cache) == 1
    assert cache.get(key("g2", "tc")) is not None


def test_rejects_nonpositive_capacity():
    import pytest

    with pytest.raises(ValueError):
        ResultCache(max_entries=0)
