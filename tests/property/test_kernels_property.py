"""Property-based parity: vectorized block kernels vs the scalar oracle.

For random seeded graphs and random exploration depths, the vectorized
:func:`repro.core.kernels.expand_vertex_block` /
:func:`~repro.core.kernels.expand_edge_block` must emit exactly the same
``(vert, counts, candidates_examined)`` as the scalar per-embedding
reference (:func:`repro.core.explore.expand_vertex_part` and the edge
analogue) — the kernels' bit-identical contract, over arbitrary
topologies rather than a handful of fixtures.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.core.cse import CSE
from repro.core.explore import (
    expand_edge_level,
    expand_edge_part,
    expand_vertex_level,
    expand_vertex_part,
)
from repro.graph.edge_index import EdgeIndex

from tests.conftest import random_labeled_graph


@st.composite
def graph_cases(draw):
    num_vertices = draw(st.integers(min_value=3, max_value=24))
    max_edges = num_vertices * (num_vertices - 1) // 2
    num_edges = draw(st.integers(min_value=1, max_value=min(max_edges, 50)))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    depth = draw(st.integers(min_value=0, max_value=2))
    return num_vertices, num_edges, seed, depth


@given(graph_cases())
@settings(max_examples=40, deadline=None)
def test_vertex_kernel_parity(case):
    num_vertices, num_edges, seed, depth = case
    graph = random_labeled_graph(num_vertices, num_edges, 3, seed=seed)
    cse = CSE(np.arange(graph.num_vertices, dtype=np.int32))
    for _ in range(depth):
        expand_vertex_level(graph, cse, use_kernels=False)
        if cse.size() == 0 or cse.size() > 20_000:
            return
    block = cse.decode_block(0, cse.size())
    vert, counts, examined = kernels.expand_vertex_block(
        kernels.vertex_kernel_context(graph), block
    )
    embeddings = [tuple(int(x) for x in row) for row in block]
    ref = expand_vertex_part(
        graph, graph.adjacency_sets(), embeddings, (0, len(embeddings)), 0
    )
    np.testing.assert_array_equal(vert, ref.vert)
    np.testing.assert_array_equal(counts, ref.counts)
    assert examined == ref.candidates_examined


@given(graph_cases())
@settings(max_examples=25, deadline=None)
def test_edge_kernel_parity(case):
    num_vertices, num_edges, seed, depth = case
    graph = random_labeled_graph(num_vertices, num_edges, 3, seed=seed)
    index = EdgeIndex(graph)
    if index.num_edges == 0:
        return
    cse = CSE(np.arange(index.num_edges, dtype=np.int32))
    for _ in range(min(depth, 1)):
        expand_edge_level(graph, index, cse, use_kernels=False)
        if cse.size() == 0 or cse.size() > 20_000:
            return
    block = cse.decode_block(0, cse.size())
    vert, counts, examined = kernels.expand_edge_block(
        kernels.edge_kernel_context(index), block
    )
    eu, ev = index.endpoint_lists()
    embeddings = [tuple(int(x) for x in row) for row in block]
    ref = expand_edge_part(
        eu, ev, index.incident_lists(), embeddings, (0, len(embeddings)), 0
    )
    np.testing.assert_array_equal(vert, ref.vert)
    np.testing.assert_array_equal(counts, ref.counts)
    assert examined == ref.candidates_examined


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_level_paths_build_identical_levels(seed):
    """Kernel and scalar expand_vertex_level agree on the whole level."""
    graph = random_labeled_graph(16, 34, 3, seed=seed)
    cse_fast = CSE(np.arange(graph.num_vertices, dtype=np.int32))
    cse_ref = CSE(np.arange(graph.num_vertices, dtype=np.int32))
    for _ in range(2):
        expand_vertex_level(graph, cse_fast)
        expand_vertex_level(graph, cse_ref, use_kernels=False)
        np.testing.assert_array_equal(
            cse_fast.top.vert_array(), cse_ref.top.vert_array()
        )
        np.testing.assert_array_equal(
            cse_fast.top.off_array(), cse_ref.top.off_array()
        )
        if cse_fast.size() == 0:
            return
