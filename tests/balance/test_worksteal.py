"""Unit tests for the work-stealing scheduler model."""

import pytest

from repro.balance import simulate_work_stealing, utilization_series


def test_single_worker_serial():
    schedule = simulate_work_stealing([1.0, 2.0, 3.0], 1)
    assert schedule.span_seconds == pytest.approx(6.0)
    assert schedule.busy_seconds == pytest.approx(6.0)
    assert schedule.utilization == pytest.approx(1.0)


def test_even_tasks_scale_ideally():
    durations = [1.0] * 8
    for workers in (2, 4, 8):
        schedule = simulate_work_stealing(durations, workers)
        assert schedule.span_seconds == pytest.approx(8.0 / workers)


def test_skewed_tasks_bound_by_largest():
    schedule = simulate_work_stealing([10.0, 1.0, 1.0, 1.0], 4)
    assert schedule.span_seconds == pytest.approx(10.0)
    assert schedule.utilization < 0.4


def test_work_stealing_fills_idle_workers():
    # Queue order: long task first; the other workers drain the tail.
    schedule = simulate_work_stealing([4.0] + [1.0] * 8, 3)
    busy = schedule.worker_busy()
    assert max(busy) == pytest.approx(4.0)
    assert schedule.span_seconds == pytest.approx(4.0)


def test_deterministic():
    a = simulate_work_stealing([3.0, 1.0, 2.0, 2.0], 2)
    b = simulate_work_stealing([3.0, 1.0, 2.0, 2.0], 2)
    assert [(i.worker, i.start, i.end) for i in a.intervals] == [
        (i.worker, i.start, i.end) for i in b.intervals
    ]


def test_zero_and_negative_durations_clamped():
    schedule = simulate_work_stealing([0.0, -1.0, 2.0], 2)
    assert schedule.span_seconds == pytest.approx(2.0)


def test_invalid_workers():
    with pytest.raises(ValueError):
        simulate_work_stealing([1.0], 0)


def test_empty_tasks():
    schedule = simulate_work_stealing([], 4)
    assert schedule.span_seconds == 0.0
    assert schedule.utilization == 1.0


def test_utilization_series_full_load():
    schedule = simulate_work_stealing([1.0] * 4, 2)
    series = utilization_series([schedule], bins=4)
    assert series
    assert all(u == pytest.approx(1.0) for _, u in series)


def test_utilization_series_tail_idle():
    schedule = simulate_work_stealing([4.0, 1.0], 2)
    series = utilization_series([schedule], bins=8)
    # Early bins fully utilised, late bins half (one worker idle).
    assert series[0][1] == pytest.approx(1.0)
    assert series[-1][1] == pytest.approx(0.5)


def test_utilization_series_multiphase():
    s1 = simulate_work_stealing([1.0] * 2, 2)
    s2 = simulate_work_stealing([2.0], 2)
    series = utilization_series([s1, s2], bins=6)
    assert series[0][1] > series[-1][1]


def test_utilization_series_empty():
    assert utilization_series([], bins=4) == []
