"""Shared benchmark plumbing.

Every benchmark writes its paper-style table/series to
``benchmarks/out/<name>.txt`` and prints it, so the EXPERIMENTS.md
paper-vs-measured comparison can be refreshed by re-running
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import os

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


@pytest.fixture(scope="session")
def report_dir() -> str:
    os.makedirs(OUT_DIR, exist_ok=True)
    return OUT_DIR


@pytest.fixture
def emit(report_dir, request):
    """Write a report block to the benchmark's output file and stdout."""

    def _emit(text: str, name: str | None = None) -> None:
        stem = name or request.node.name
        path = os.path.join(report_dir, f"{stem}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print("\n" + text)

    return _emit


def run_once(benchmark, fn):
    """Run a workload exactly once under pytest-benchmark timing.

    These are macro-benchmarks (whole mining runs); statistical rounds
    would multiply minutes of runtime for no insight.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
