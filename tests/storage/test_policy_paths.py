"""StoragePolicy pressure paths, queue idempotence, and abort cleanup."""

import os

import numpy as np
import pytest

from repro import KaleidoEngine, MotifCounting
from repro.errors import StorageError
from repro.storage import PartStore, SpillingSink, WritingQueue


def _spill_files(directory):
    return [
        name
        for name in os.listdir(directory)
        if name.endswith(".npy")
    ]


def test_top_level_demotion_end_to_end(paper_graph, tmp_path):
    """A budget so tight that spill_level demotes the current top level.

    4-motif runs two expansion iterations.  The budget is picked so the
    first level still fits in memory (graph 136 B + roots 24 B +
    predicted 56 B = 216 B) but the accounted total after it (244 B) is
    already over budget: the second spill decision then demotes the
    in-memory top level to disk before exploring the new level.
    """
    baseline = KaleidoEngine(paper_graph, storage_mode="memory").run(MotifCounting(4))
    with KaleidoEngine(
        paper_graph,
        memory_limit_bytes=230,
        spill_dir=str(tmp_path),
        synchronous_io=True,
        prefetch=False,
    ) as engine:
        result = engine.run(MotifCounting(4))
    assert result.extra["spilled_levels"] >= 1
    assert result.extra["demoted_levels"] >= 1
    assert result.io_bytes_written > 0
    # Demotion must not change the mining result.
    assert dict(result.value) == dict(baseline.value)
    assert result.level_sizes == baseline.level_sizes


def test_spill_last_end_to_end(paper_graph, tmp_path):
    """storage_mode="spill-last" spills every explored level (Table 4)."""
    baseline = KaleidoEngine(paper_graph, storage_mode="memory").run(MotifCounting(4))
    with KaleidoEngine(
        paper_graph,
        storage_mode="spill-last",
        spill_dir=str(tmp_path),
        synchronous_io=True,
        prefetch=False,
    ) as engine:
        result = engine.run(MotifCounting(4))
    # 4-motif runs two expansion iterations; both levels must have spilled.
    assert result.extra["spilled_levels"] == 2
    assert result.io_bytes_written > 0
    assert result.io_bytes_read > 0
    assert dict(result.value) == dict(baseline.value)
    assert result.level_sizes == baseline.level_sizes


def test_writing_queue_close_idempotent(tmp_path):
    for synchronous in (True, False):
        store = PartStore(str(tmp_path))
        queue = WritingQueue(store, synchronous=synchronous)
        queue.submit(np.arange(3, dtype=np.int32))
        first = queue.close()
        second = queue.close()
        assert [h.path for h in first] == [h.path for h in second]


def test_writing_queue_rejects_submit_after_close(tmp_path):
    store = PartStore(str(tmp_path))
    queue = WritingQueue(store, synchronous=True)
    queue.close()
    with pytest.raises(StorageError, match="closed"):
        queue.submit(np.arange(2, dtype=np.int32))


def test_writing_queue_orders_by_index(tmp_path):
    """Out-of-order submissions reassemble by their part index."""
    store = PartStore(str(tmp_path))
    queue = WritingQueue(store, synchronous=True)
    for index in (2, 0, 1):
        queue.submit(np.full(3, index, dtype=np.int32), index=index)
    handles = queue.close()
    assert [store.load(h).tolist() for h in handles] == [
        [0] * 3, [1] * 3, [2] * 3
    ]


def test_writing_queue_discard_deletes_parts(tmp_path):
    store = PartStore(str(tmp_path))
    queue = WritingQueue(store, synchronous=True)
    queue.submit(np.arange(4, dtype=np.int32))
    queue.submit(np.arange(4, dtype=np.int32))
    assert len(_spill_files(str(tmp_path))) == 2
    queue.discard()
    assert _spill_files(str(tmp_path)) == []


def test_sink_abort_cleans_partial_level(tmp_path):
    store = PartStore(str(tmp_path))
    sink = SpillingSink(store, synchronous=True, prefetch=False)
    sink.write_part(np.arange(5, dtype=np.int32), index=0)
    assert len(_spill_files(str(tmp_path))) == 1
    sink.abort()
    assert _spill_files(str(tmp_path)) == []


def test_engine_failure_mid_level_cleans_spill_dir(paper_graph, tmp_path):
    """An executor raising mid-level must not leak spill temp files."""

    class Boom(MotifCounting):
        def embedding_filter(self, emb, cand):
            raise RuntimeError("injected mid-level failure")

    with pytest.raises(RuntimeError, match="injected"):
        with KaleidoEngine(
            paper_graph,
            storage_mode="spill-last",
            spill_dir=str(tmp_path),
            synchronous_io=True,
            prefetch=False,
        ) as engine:
            engine.run(Boom(3))
    assert _spill_files(str(tmp_path)) == []


def test_part_store_context_manager_removes_tmp_dir():
    with PartStore() as store:
        directory = store.directory
        store.save(np.arange(3, dtype=np.int32))
        assert os.path.isdir(directory)
    assert not os.path.exists(directory)
