"""Symmetry-breaking restriction compilation (GraphZero, PAPERS.md).

A pattern with a non-trivial automorphism group is found once per
automorphic relabeling unless the enumeration breaks the symmetry.
GraphZero's observation is that the entire Definition-2 canonical filter
can be replaced by a small *partial order* over pattern-vertex ids — a
handful of ``<`` comparisons — derived from the automorphism group, and
that those comparisons can be *fused into candidate generation* as range
constraints instead of running as a post-hoc filter.

This module provides both layers:

* **Pattern restrictions** — :func:`compile_restrictions` turns a query
  :class:`~repro.core.pattern.Pattern` into a minimal
  :class:`RestrictionSet` via the stabilizer-chain construction: walk
  positions in ascending order, emit ``p < q`` for every other member
  ``q`` of ``p``'s orbit under the *remaining* group, then shrink the
  group to the stabilizer of ``p``.  A transitive reduction keeps the
  set minimal.  The defining property (hypothesis-tested): for any
  injective assignment of data vertices to pattern positions, **exactly
  one** member of its automorphism orbit satisfies the set.
* **Kernel restrictions** — :func:`canonical_level_restrictions`
  expresses the engine's generic Definition-2 canonical order (the
  symmetry-breaking rule the *all-subgraph* enumeration uses, of which
  the pattern sets above are the per-pattern specialisation) as
  per-gather-column inclusive lower bounds.  The vectorized kernels
  (:mod:`repro.core.kernels`) apply them during the CSR gather with
  ``searchsorted`` on the packed sorted adjacency view, so filtered
  candidates are never materialised at all.

The scalar oracle (:mod:`repro.core.explore`) keeps the unrestricted
post-hoc canonical filter and remains the parity baseline: restricted
kernels must emit byte-identical levels (oracle-differential tested in
``tests/core/test_restrictions.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from .isomorphism import automorphisms

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .pattern import Pattern

__all__ = [
    "Restriction",
    "RestrictionSet",
    "LevelConstraint",
    "compile_restrictions",
    "KernelRestrictions",
    "canonical_level_restrictions",
]


# ----------------------------------------------------------------------
# Pattern layer: automorphism-derived partial orders
# ----------------------------------------------------------------------
@dataclass(frozen=True, order=True)
class Restriction:
    """One partial-order constraint: the data vertex bound to position
    ``smaller`` must have a smaller id than the one bound to ``larger``.

    The stabilizer-chain construction only ever emits ``smaller <
    larger`` as *positions* too, so restriction endpoints are always
    ascending position pairs.
    """

    smaller: int
    larger: int


@dataclass(frozen=True)
class LevelConstraint:
    """The ordering constraints binding one pattern position.

    When exploration binds position ``d`` (level ``d + 1`` of the CSE),
    the candidate's id must exceed every already-bound column in
    ``lower_cols`` and stay below every column in ``upper_cols``.  With
    the stabilizer-chain construction ``upper_cols`` is always empty
    (restrictions point forward), but the split stays general so
    hand-built sets round-trip too.
    """

    position: int
    lower_cols: tuple[int, ...]
    upper_cols: tuple[int, ...]


@dataclass(frozen=True)
class RestrictionSet:
    """A minimal symmetry-breaking partial order over pattern positions."""

    num_vertices: int
    restrictions: tuple[Restriction, ...]

    def __post_init__(self) -> None:
        for r in self.restrictions:
            if not 0 <= r.smaller < self.num_vertices:
                raise ValueError(f"restriction {r} out of range")
            if not 0 <= r.larger < self.num_vertices:
                raise ValueError(f"restriction {r} out of range")
            if r.smaller == r.larger:
                raise ValueError(f"restriction {r} is reflexive")

    def accepts(self, binding: Sequence[int]) -> bool:
        """Whether an assignment (position → data-vertex id) satisfies
        every restriction.  ``binding`` must cover all positions."""
        if len(binding) != self.num_vertices:
            raise ValueError(
                f"binding of length {len(binding)} for a "
                f"{self.num_vertices}-position restriction set"
            )
        return all(binding[r.smaller] < binding[r.larger] for r in self.restrictions)

    def constraints_at(self, position: int) -> LevelConstraint:
        """The constraints active when ``position`` is the one being bound
        (all positions below it already bound, in order)."""
        lower = tuple(
            sorted(r.smaller for r in self.restrictions if r.larger == position and r.smaller < position)
        )
        upper = tuple(
            sorted(r.larger for r in self.restrictions if r.smaller == position and r.larger < position)
        )
        return LevelConstraint(position=position, lower_cols=lower, upper_cols=upper)

    def level_constraints(self) -> tuple[LevelConstraint, ...]:
        """Per-position constraint split for positions ``1..k-1`` — the
        form a plan attaches so each expansion level carries exactly the
        comparisons its newly-bound vertex must satisfy."""
        return tuple(
            self.constraints_at(position) for position in range(1, self.num_vertices)
        )


def compile_restrictions(pattern: "Pattern") -> RestrictionSet:
    """GraphZero's symmetry-breaking construction for a query pattern.

    Walk positions in ascending order; for each position ``p``, emit
    ``p < q`` for every *other* member ``q`` of ``p``'s orbit under the
    group that remains after stabilizing all earlier positions, then
    reduce the group to the stabilizer of ``p``.  Because every earlier
    position is already fixed, orbit members are always ``> p``, so the
    emitted pairs form a DAG over ascending positions; a transitive
    reduction makes the set minimal.

    The construction guarantees exactly one representative per
    automorphism orbit: at each step the emitted comparisons pick the
    orbit member with the smallest data id for position ``p``, which
    pins down the coset of the stabilizer the surviving assignment lives
    in; induction over the chain leaves a single assignment.
    """
    k = pattern.num_vertices
    group = automorphisms(pattern)
    pairs: set[tuple[int, int]] = set()
    for p in range(k):
        orbit = sorted({perm[p] for perm in group})
        for q in orbit:
            if q != p:
                pairs.add((p, q))
        group = [perm for perm in group if perm[p] == p]
    reduced = _transitive_reduction(pairs, k)
    return RestrictionSet(
        num_vertices=k,
        restrictions=tuple(Restriction(a, b) for a, b in sorted(reduced)),
    )


def _transitive_reduction(pairs: set[tuple[int, int]], k: int) -> set[tuple[int, int]]:
    """Minimal edge set with the same transitive closure (DAG input)."""
    reach = [[False] * k for _ in range(k)]
    for a, b in pairs:
        reach[a][b] = True
    for mid in range(k):
        for a in range(k):
            if reach[a][mid]:
                row_a, row_m = reach[a], reach[mid]
                for b in range(k):
                    if row_m[b]:
                        row_a[b] = True
    kept: set[tuple[int, int]] = set()
    for a, b in pairs:
        redundant = any(
            mid != a and mid != b and reach[a][mid] and reach[mid][b]
            for mid in range(k)
        )
        if not redundant:
            kept.add((a, b))
    return kept


# ----------------------------------------------------------------------
# Kernel layer: fused lower bounds for the vectorized gathers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KernelRestrictions:
    """The canonical symmetry-breaking order compiled to gather bounds.

    For a block of depth-``level`` embeddings, gather column ``c`` (an
    embedding position for the vertex kernel, an endpoint occurrence for
    the edge kernel) admits candidate ids ``>= max(block[:,
    strict_lower_col] + 1, suffix_max[:, suffix_from[c]])``: the strict
    min-id bound plus the suffix-order clause *assuming ``c`` is the
    candidate's first adjacency/arrival*.  Both bounds are non-increasing
    in ``c``, so the kernels apply them with one ``searchsorted`` into
    the packed sorted adjacency view per gather column and verify the
    first-adjacency assumption only on the surviving group heads (see
    :mod:`repro.core.kernels`).
    """

    #: "vertex" or "edge" — which kernel the bounds were laid out for.
    kind: str
    #: Embedding depth (block column count) these bounds apply to.
    level: int
    #: Block column whose value is a *strict* lower bound (min-id rule).
    strict_lower_col: int
    #: Per gather column: the suffix-max column giving the inclusive
    #: lower bound when this column is the candidate's first adjacency.
    suffix_from: tuple[int, ...]

    @property
    def num_gather_cols(self) -> int:
        return len(self.suffix_from)


def canonical_level_restrictions(kind: str, level: int) -> KernelRestrictions:
    """Fused-bound form of the Definition-2 canonical order at ``level``.

    Vertex kernel: gather column ``j`` holds embedding position ``j``'s
    neighbor list; if ``j`` is the candidate's first neighbor, the
    suffix clause requires ``candidate >= max(embedding[j+1:])`` —
    suffix-max column ``j + 1``.  Edge kernel: columns ``(2a, 2a+1)``
    are the endpoints of embedding edge ``a``, so both map to suffix-max
    column ``a + 1``.  Both kernels additionally require ``candidate >
    embedding[0]`` (the min-id rule), hence ``strict_lower_col = 0``.
    """
    if level <= 0:
        raise ValueError(f"level must be positive, got {level}")
    if kind == "vertex":
        suffix_from = tuple(range(1, level + 1))
    elif kind == "edge":
        suffix_from = tuple(c // 2 + 1 for c in range(2 * level))
    else:
        raise ValueError(f"unknown kernel kind {kind!r}")
    return KernelRestrictions(
        kind=kind, level=level, strict_lower_col=0, suffix_from=suffix_from
    )
