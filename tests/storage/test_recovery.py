"""Mid-run crash recovery: kill at every level boundary and resume.

The acceptance bar: for every iteration boundary of a run in hybrid
(spill) mode, simulating a crash right after the checkpoint lands and
resuming with a fresh engine + application must reproduce the exact
pattern map of an uninterrupted run.
"""

import json
import os

import numpy as np
import pytest

from repro import (
    CliqueDiscovery,
    FrequentSubgraphMining,
    KaleidoEngine,
    MotifCounting,
)
from repro.errors import StorageError
from repro.storage import RunCheckpoint, save_cse
from repro.core import CSE
from repro.core.cse import InMemoryLevel


class _SimulatedCrash(BaseException):
    """Not an Exception: nothing in the engine may swallow the kill."""


def _run(graph, app, tmp_path, name, **kwargs):
    with KaleidoEngine(
        graph, storage_mode="spill-last", spill_dir=str(tmp_path / name), **kwargs
    ) as engine:
        return engine.run(app)


def _crash_at(boundary):
    def on_checkpoint(iteration, path):
        if iteration == boundary:
            raise _SimulatedCrash

    return on_checkpoint


def _kill_and_resume(graph, make_app, tmp_path, label, boundary, resume_app=None):
    """Crash right after checkpoint ``boundary`` lands, then resume."""
    ckpt = tmp_path / f"ckpt-{label}-{boundary}"
    with pytest.raises(_SimulatedCrash):
        with KaleidoEngine(
            graph,
            storage_mode="spill-last",
            spill_dir=str(tmp_path / f"spill-{label}-{boundary}-a"),
            checkpoint_dir=str(ckpt),
            on_checkpoint=_crash_at(boundary),
        ) as engine:
            engine.run(make_app())
    with KaleidoEngine(
        graph,
        storage_mode="spill-last",
        spill_dir=str(tmp_path / f"spill-{label}-{boundary}-b"),
        checkpoint_dir=str(ckpt),
    ) as engine:
        return engine.run(
            make_app() if resume_app is None else resume_app, resume=True
        )


@pytest.mark.slow
def test_fsm_kill_at_every_level(tmp_path, labeled_square):
    make_app = lambda: FrequentSubgraphMining(num_edges=3, support=1)
    straight_app = make_app()
    straight = _run(labeled_square, straight_app, tmp_path, "fsm-straight")
    boundaries = range(make_app().iterations())
    assert len(list(boundaries)) >= 2  # the kill sweep must cover >1 level
    for boundary in boundaries:
        resumed_app = make_app()
        resumed = _kill_and_resume(
            labeled_square, make_app, tmp_path, "fsm", boundary,
            resume_app=resumed_app,
        )
        assert resumed.pattern_map == straight.pattern_map, (
            f"pattern map diverged after crash at iteration {boundary}"
        )
        assert resumed.extra["resumed_from_level"] == boundary
        # The resumed FSM also restored its cross-iteration cost counters.
        assert resumed_app.total_insertions == straight_app.total_insertions


@pytest.mark.slow
def test_motif_kill_at_every_level_hybrid(tmp_path, paper_graph):
    make_app = lambda: MotifCounting(4)
    straight = _run(paper_graph, make_app(), tmp_path, "motif-straight")
    for boundary in range(make_app().iterations()):
        resumed = _kill_and_resume(paper_graph, make_app, tmp_path, "motif", boundary)
        assert resumed.pattern_map == straight.pattern_map
        assert resumed.value == straight.value
        assert resumed.extra["resumed_from_level"] == boundary


def test_resumed_run_trace_shows_restore_and_no_replayed_levels(
    tmp_path, paper_graph
):
    """The resumed run's trace proves recovery actually skipped work.

    It must contain exactly one ``checkpoint-restore`` instant naming the
    restored iteration, and its ``level`` spans must cover only the
    iterations *after* the checkpoint — an already-checkpointed level
    reappearing as a span would mean the engine silently recomputed it.
    """
    from repro.obs import Tracer

    make_app = lambda: MotifCounting(4)
    boundary = 0
    total_iterations = make_app().iterations()
    ckpt = tmp_path / "ckpt-trace"
    with pytest.raises(_SimulatedCrash):
        with KaleidoEngine(
            paper_graph,
            storage_mode="spill-last",
            spill_dir=str(tmp_path / "spill-trace-a"),
            checkpoint_dir=str(ckpt),
            on_checkpoint=_crash_at(boundary),
        ) as engine:
            engine.run(make_app())

    tracer = Tracer()
    with KaleidoEngine(
        paper_graph,
        storage_mode="spill-last",
        spill_dir=str(tmp_path / "spill-trace-b"),
        checkpoint_dir=str(ckpt),
        tracer=tracer,
    ) as engine:
        resumed = engine.run(make_app(), resume=True)
    assert resumed.extra["resumed_from_level"] == boundary

    events = tracer.events
    restores = [e for e in events if e.name == "checkpoint-restore"]
    assert len(restores) == 1
    assert restores[0].kind == "instant"
    assert restores[0].args["iteration"] == boundary

    level_indices = [
        e.args["index"] for e in events if e.kind == "begin" and e.name == "level"
    ]
    assert level_indices == list(range(boundary + 1, total_iterations)), (
        "resumed trace must span only the not-yet-checkpointed levels"
    )
    assert len(level_indices) == len(set(level_indices))  # no duplicates
    # The restore landed before any level work started.
    first_level_ts = min(
        e.ts for e in events if e.kind == "begin" and e.name == "level"
    )
    assert restores[0].ts <= first_level_ts


def test_resume_with_empty_checkpoint_dir_starts_fresh(tmp_path, paper_graph):
    straight = KaleidoEngine(paper_graph).run(MotifCounting(3))
    with KaleidoEngine(
        paper_graph, checkpoint_dir=str(tmp_path / "empty")
    ) as engine:
        result = engine.run(MotifCounting(3), resume=True)
    assert result.extra["resumed_from_level"] is None
    assert result.pattern_map == straight.pattern_map


def test_resume_without_checkpoint_dir_raises(paper_graph):
    with pytest.raises(ValueError, match="checkpoint_dir"):
        KaleidoEngine(paper_graph).run(MotifCounting(3), resume=True)


def test_resume_rejects_other_apps_checkpoint(tmp_path, paper_graph):
    ckpt = str(tmp_path / "ckpt")
    with KaleidoEngine(paper_graph, checkpoint_dir=ckpt) as engine:
        engine.run(MotifCounting(3))
    with KaleidoEngine(paper_graph, checkpoint_dir=ckpt) as engine:
        with pytest.raises(StorageError, match="belongs to"):
            engine.run(CliqueDiscovery(3), resume=True)


def test_resume_rejects_mismatched_roots(tmp_path, paper_graph, labeled_square):
    ckpt = str(tmp_path / "ckpt")
    with KaleidoEngine(paper_graph, checkpoint_dir=ckpt) as engine:
        engine.run(MotifCounting(3))
    with KaleidoEngine(labeled_square, checkpoint_dir=ckpt) as engine:
        with pytest.raises(StorageError, match="root level"):
            engine.run(MotifCounting(3), resume=True)


def test_checkpoints_written_counter(tmp_path, paper_graph):
    with KaleidoEngine(
        paper_graph, checkpoint_dir=str(tmp_path / "ckpt")
    ) as engine:
        result = engine.run(MotifCounting(4))
    assert result.extra["checkpoints_written"] == MotifCounting(4).iterations()
    assert result.extra["checkpoint_failures"] == 0


def test_checkpoint_every_skips_iterations(tmp_path, paper_graph):
    with KaleidoEngine(
        paper_graph, checkpoint_dir=str(tmp_path / "ckpt"), checkpoint_every=2
    ) as engine:
        result = engine.run(MotifCounting(4))
    # Two iterations, checkpoint only after the second (index 1).
    assert result.extra["checkpoints_written"] == 1
    assert sorted(os.listdir(tmp_path / "ckpt")) == ["level-001"]


def test_checkpoint_failure_does_not_abort_run(tmp_path, paper_graph, monkeypatch):
    straight = KaleidoEngine(paper_graph).run(MotifCounting(4))

    def broken_save(self, iteration, cse, state):
        raise StorageError("injected checkpoint failure")

    monkeypatch.setattr(RunCheckpoint, "save", broken_save)
    with KaleidoEngine(
        paper_graph, checkpoint_dir=str(tmp_path / "ckpt")
    ) as engine:
        result = engine.run(MotifCounting(4))
    assert result.pattern_map == straight.pattern_map
    assert result.extra["checkpoints_written"] == 0
    assert result.extra["checkpoint_failures"] == MotifCounting(4).iterations()


def test_latest_skips_corrupt_deeper_checkpoint(tmp_path):
    ck = RunCheckpoint(tmp_path)
    ck.save(0, CSE([1, 2, 3]), b"shallow")
    ck.save(1, CSE([1, 2, 3]), b"deep")
    # Corrupt the deeper level's manifest: resume must fall back to 0.
    manifest = os.path.join(ck.level_path(1), "cse_manifest.json")
    with open(manifest, "w") as fh:
        fh.write("{not json")
    iteration, cse, state = ck.latest()
    assert iteration == 0
    assert state == b"shallow"
    assert cse.levels[0].vert_array().tolist() == [1, 2, 3]


def test_latest_skips_checkpoint_with_corrupt_state_blob(tmp_path):
    ck = RunCheckpoint(tmp_path)
    ck.save(0, CSE([1, 2, 3]), b"shallow")
    ck.save(1, CSE([1, 2, 3]), b"deep")
    manifest_path = os.path.join(ck.level_path(1), "cse_manifest.json")
    with open(manifest_path) as fh:
        manifest = json.load(fh)
    state_file = manifest["files"][RunCheckpoint.STATE_FILE]["file"]
    with open(os.path.join(ck.level_path(1), state_file), "wb") as fh:
        fh.write(b"garbage that fails the crc")
    iteration, _cse, state = ck.latest()
    assert iteration == 0 and state == b"shallow"


def test_collect_garbage_removes_crash_debris(tmp_path):
    ck = RunCheckpoint(tmp_path)
    ck.save(0, CSE([1, 2, 3]), b"state")
    # Crash debris: a temp file, an unreferenced array inside the valid
    # level, and a torn level directory with no readable manifest.
    (tmp_path / "junk.tmp").write_bytes(b"torn write")
    (tmp_path / "level-000" / "stray-deadbeef.npy").write_bytes(b"orphan")
    torn = tmp_path / "level-001"
    torn.mkdir()
    (torn / "level0_vert-cafe.npy").write_bytes(b"half a file")
    removed = RunCheckpoint(tmp_path).collect_garbage()
    assert removed == 3
    assert not (tmp_path / "junk.tmp").exists()
    assert not torn.exists()
    assert not (tmp_path / "level-000" / "stray-deadbeef.npy").exists()
    # The valid checkpoint survived intact.
    iteration, cse, state = RunCheckpoint(tmp_path).latest()
    assert iteration == 0 and state == b"state"
    assert cse.levels[0].vert_array().tolist() == [1, 2, 3]


def test_crash_mid_save_leaves_previous_checkpoint_loadable(tmp_path, monkeypatch):
    from repro.storage import checkpoint as ckpt_mod

    directory = tmp_path / "ckpt"
    save_cse(CSE([1, 2, 3]), directory)

    real_atomic_write = ckpt_mod._atomic_write

    def dies_on_manifest(path, payload):
        if path.endswith("cse_manifest.json"):
            raise OSError("simulated crash before the manifest rename")
        real_atomic_write(path, payload)

    monkeypatch.setattr(ckpt_mod, "_atomic_write", dies_on_manifest)
    cse = CSE([9, 9, 9])
    cse.append_level(
        InMemoryLevel(
            np.array([5], dtype=np.int32), np.array([0, 1, 1, 1], dtype=np.int64)
        )
    )
    with pytest.raises(OSError):
        save_cse(cse, directory)
    monkeypatch.undo()
    # The old manifest still references the old arrays — nothing was GCed
    # because the new manifest never became durable.
    from repro.storage import load_cse

    loaded = load_cse(directory)
    assert loaded.depth == 1
    assert loaded.levels[0].vert_array().tolist() == [1, 2, 3]
