"""Diagnostics and suppression handling for the invariant lint suite.

A :class:`Diagnostic` is one rule violation at one source location.  Any
diagnostic can be silenced with an explicit suppression comment naming
the rule::

    self._phash_cache[key] = phash  # repro: ignore[R001] -- benign memo race

    # repro: ignore[R004] -- boundary constant, not an id array
    _INT32_MAX = int(np.iinfo(np.int32).max)

A suppression on a *code* line silences that line; a suppression on a
line of its own silences the next line.  Several rules may be listed:
``# repro: ignore[R001,R004]``.  Suppressions are deliberately loud —
they are grep-able, name the exact rule, and leave room for a rationale
after the closing bracket.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["Diagnostic", "suppressed_lines"]

#: Rule id of files that fail to parse (always reported, never scoped).
PARSE_RULE = "E999"

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore\[([A-Za-z0-9_,\s]+)\]")


@dataclass(frozen=True)
class Diagnostic:
    """One rule violation: where it is and what contract it breaks."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def suppressed_lines(source: str) -> dict[int, set[str]]:
    """Map line number -> rule ids suppressed on that line.

    A trailing comment suppresses its own line; a comment that is the
    whole line suppresses the line after it.
    """
    suppressions: dict[int, set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
        target = lineno + 1 if text[: match.start()].strip() == "" else lineno
        suppressions.setdefault(target, set()).update(rules)
    return suppressions
