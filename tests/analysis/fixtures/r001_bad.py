"""R001 fixture: shared-state writes in per-part hot methods (6 hits)."""


class MiningApplication:
    pass


class LeakyApp(MiningApplication):
    def __init__(self):
        self.count = 0
        self.seen = []
        self.cache = {}

    def map_embedding(self, ctx, embedding, pmap, part=None):
        self.count += 1  # hit 1: AugAssign on self
        self.seen.append(embedding)  # hit 2: mutator call on self attr
        self._note(embedding)

    def embedding_filter(self, embedding, candidate):
        self.cache[candidate] = True
        self.last = candidate  # hit 3: plain Assign on self
        return True

    def _note(self, embedding):
        # hit 4: reached transitively from map_embedding via self._note
        self.latest = embedding

    def finish_part(self, ctx, part):
        self.count += 1  # legal: finish_part is coordinator-serial


class DeeperApp(LeakyApp):
    """Subclass-of-subclass: still an app, still checked."""

    def start_part(self, ctx):
        self.parts_started += 1  # hit 5: start_part is hot too
        return []
