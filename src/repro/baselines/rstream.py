"""RStream-like baseline: GRAS (GAS + relational algebra) graph mining.

RStream (OSDI'18) is an X-Stream descendant: it keeps embeddings as tuple
*relations* in streaming partitions on disk and grows them with relational
all-joins against the edge table.  Consequences the paper measures and this
model reproduces:

* only edge-induced exploration — vertex-flavoured problems (motifs,
  cliques) need more join iterations (4-Motif takes C(4,2) = 6) and touch
  far more intermediate tuples;
* the all-join emits every *ordered* way of reaching an edge set, so a
  dedup/shuffle pass is needed per iteration — the dominant cost;
* every iteration's relation is written to and re-read from real disk
  (streaming partitions), so intermediate-data bytes are measured, not
  estimated.

Isomorphism goes through the bliss-like hasher (RStream links bliss).
"""

from __future__ import annotations

import time
from itertools import combinations

import numpy as np

from ..apps.fsm import FSMResult, edge_pattern_supports
from ..apps.mni import MNIDomains, PositionMapper
from ..core.api import MiningResult
from ..core.pattern import Pattern
from ..graph.edge_index import EdgeIndex
from ..graph.graph import Graph
from ..storage.meter import MemoryMeter
from ..storage.spill import PartStore
from .blisslike import BlissLikeHasher

__all__ = ["RStreamLikeEngine"]


class RStreamLikeEngine:
    """Single-machine out-of-core relational mining engine model."""

    def __init__(
        self,
        graph: Graph,
        num_partitions: int = 10,
        spill_dir: str | None = None,
        hasher: BlissLikeHasher | None = None,
        max_intermediate_bytes: int | None = None,
    ) -> None:
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.graph = graph
        self.num_partitions = num_partitions
        #: Simulated disk-capacity limit: exceeding it raises StorageError,
        #: reproducing the paper's "/" cells (4-Motif filled a 480 GB SSD).
        self.max_intermediate_bytes = max_intermediate_bytes
        self.store = PartStore(spill_dir)
        # RStream's shuffle turns every tuple into a quick pattern through
        # bliss, per tuple — no memoisation (paper Section 6.2).
        self.hasher = hasher if hasher is not None else BlissLikeHasher(cache=False)
        self.meter = MemoryMeter()
        self.meter.set("graph", graph.nbytes)
        self.index = EdgeIndex(graph)
        self.meter.set("edge_index", self.index.nbytes)

    def close(self) -> None:
        self.store.close()

    def __enter__(self) -> "RStreamLikeEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Streaming-relation plumbing
    # ------------------------------------------------------------------
    def _stream_out(self, relation: list[tuple[int, ...]], tag: str) -> list:
        """Write a relation to disk in partitions (the scatter phase)."""
        if not relation:
            return []
        width = len(relation[0])
        array = np.asarray(relation, dtype=np.int64).reshape(len(relation), width)
        if (
            self.max_intermediate_bytes is not None
            and self.store.io.bytes_written + array.nbytes > self.max_intermediate_bytes
        ):
            from ..errors import StorageError

            raise StorageError(
                f"intermediate data exceeds the simulated disk capacity "
                f"({self.max_intermediate_bytes / 1e6:.0f} MB)"
            )
        handles = []
        bounds = np.linspace(0, len(relation), self.num_partitions + 1).astype(int)
        for p in range(self.num_partitions):
            chunk = array[bounds[p] : bounds[p + 1]]
            if chunk.shape[0]:
                handles.append(self.store.save(chunk, tag=tag))
        self.meter.set("relation", array.nbytes)
        return handles

    def _stream_in(self, handles: list) -> list[tuple[int, ...]]:
        """Read a relation back (the gather phase)."""
        rows: list[tuple[int, ...]] = []
        for handle in handles:
            chunk = self.store.load(handle)
            rows.extend(tuple(int(x) for x in row) for row in chunk)
        return rows

    # ------------------------------------------------------------------
    # All-join expansion over edge-id tuples
    # ------------------------------------------------------------------
    def _all_join(
        self,
        relation: list[tuple[int, ...]],
        frequent_edges: set[int] | None = None,
        max_vertices: int | None = None,
    ) -> list[tuple[int, ...]]:
        """Join each tuple with every adjacent edge; dedup by edge set.

        The join purposely generates each edge set once per generation
        order (the relational blowup), then the shuffle dedups — the
        temporary "joined" list is the intermediate data RStream writes.
        """
        joined: list[tuple[int, ...]] = []
        width = (len(relation[0]) + 1) if relation else 2
        for ids in relation:
            if (
                self.max_intermediate_bytes is not None
                and len(joined) % 4096 == 0
                and self.store.io.bytes_written + len(joined) * width * 8
                > self.max_intermediate_bytes
            ):
                from ..errors import StorageError

                raise StorageError(
                    "all-join intermediate data exceeds the simulated disk "
                    f"capacity ({self.max_intermediate_bytes / 1e6:.0f} MB)"
                )
            vertices: set[int] = set()
            for eid in ids:
                u, v = self.index.endpoints(eid)
                vertices.add(u)
                vertices.add(v)
            incident = [self.index.incident_edges(w) for w in vertices]
            candidates = np.unique(np.concatenate(incident))
            id_set = set(ids)
            for cand in candidates.tolist():
                if cand in id_set:
                    continue
                if frequent_edges is not None and cand not in frequent_edges:
                    continue
                if max_vertices is not None:
                    u, v = self.index.endpoints(cand)
                    extra = (u not in vertices) + (v not in vertices)
                    if len(vertices) + extra > max_vertices:
                        continue
                joined.append(ids + (cand,))
        # Shuffle: dedup by the unordered edge set (sorted id tuple).
        deduped: dict[tuple[int, ...], tuple[int, ...]] = {}
        for ids in joined:
            deduped.setdefault(tuple(sorted(ids)), ids)
        self.meter.set(
            "join_buffer", len(joined) * (56 + 8 * (len(relation[0]) + 1 if relation else 2))
        )
        return list(deduped.values())

    # ------------------------------------------------------------------
    # Applications
    # ------------------------------------------------------------------
    def run_triangles(self) -> MiningResult:
        """GAS-style triangle counting over the streamed 2-path relation."""
        started = time.perf_counter()
        eu, ev = self.graph.edge_arrays()
        wedges: list[tuple[int, int, int]] = []
        for u, v in zip(eu.tolist(), ev.tolist()):
            # Wedge (u, v, w) centred at v with u < v < w.
            for w in self.graph.neighbors(v).tolist():
                if w > v and u < v:
                    wedges.append((u, v, w))
        handles = self._stream_out(wedges, "wedges")
        total = 0
        for u, v, w in self._stream_in(handles):
            if self.graph.has_edge(u, w):
                total += 1
        return self._result("TC", total, {0: total}, started)

    def run_clique(self, k: int) -> MiningResult:
        """Clique discovery in k iterations of edge-relation all-joins.

        RStream's "tricky solution": join the current vertex-tuple
        relation with the edge relation on any shared vertex (the join
        output is materialised to disk *before* the clique selection —
        that unfiltered output is the 51.2 GB the paper measures for
        4-clique over MiCo), then a selection keeps tuples that stay
        cliques and a shuffle dedups the sorted vertex sets.
        """
        started = time.perf_counter()
        eu, ev = self.graph.edge_arrays()
        adjacency = self.graph.adjacency_sets()
        relation: list[tuple[int, ...]] = [
            (u, v) for u, v in zip(eu.tolist(), ev.tolist())
        ]
        for _ in range(k - 2):
            handles = self._stream_out(relation, "clique")
            relation = self._stream_in(handles)
            # All-join with the edge relation: emit every extension by a
            # vertex adjacent to *some* tuple member (no clique filter yet).
            joined: list[tuple[int, ...]] = []
            for verts in relation:
                vset = set(verts)
                candidates: set[int] = set()
                for v in verts:
                    candidates.update(adjacency[v])
                for w in candidates:
                    if w not in vset:
                        joined.append(verts + (w,))
            # Scatter the raw join output (the intermediate-data blowup).
            handles = self._stream_out(joined, "clique-join")
            joined = self._stream_in(handles)
            # Selection (clique predicate) + shuffle (dedup by vertex set).
            grown: dict[tuple[int, ...], tuple[int, ...]] = {}
            for tup in joined:
                w = tup[-1]
                if all(w in adjacency[v] for v in tup[:-1]):
                    key = tuple(sorted(tup))
                    grown.setdefault(key, key)
            relation = list(grown.values())
        handles = self._stream_out(relation, "clique-final")
        relation = self._stream_in(handles)
        count = len(relation)
        return self._result(f"{k}-Clique", count, {0: count}, started)

    def run_motif(self, k: int) -> MiningResult:
        """Motif counting via edge-induced all-joins (paper Section 1.2).

        Edge sets grow up to C(k, 2) edges; a k-vertex embedding is
        counted when its edge set is *closed* (equals the induced edge set
        of its vertices) — exactly once per vertex set."""
        started = time.perf_counter()
        max_edges = k * (k - 1) // 2
        relation: list[tuple[int, ...]] = [
            (eid,) for eid in range(self.index.num_edges)
        ]
        counts: dict[int, int] = {}
        for _size in range(1, max_edges + 1):
            handles = self._stream_out(relation, f"motif-{_size}")
            relation = self._stream_in(handles)
            self._count_closed(relation, k, counts)
            if _size < max_edges:
                relation = self._all_join(relation, max_vertices=k)
                if not relation:
                    break
        self.meter.set("pattern_map", 160 * len(counts))
        self.meter.set("hasher", self.hasher.nbytes)
        return self._result(f"{k}-Motif", counts, counts, started)

    def _count_closed(
        self, relation: list[tuple[int, ...]], k: int, counts: dict[int, int]
    ) -> None:
        for ids in relation:
            vertices: list[int] = []
            seen: set[int] = set()
            edges = []
            for eid in ids:
                u, v = self.index.endpoints(eid)
                edges.append((u, v))
                for w in (u, v):
                    if w not in seen:
                        seen.add(w)
                        vertices.append(w)
            if len(vertices) != k:
                continue
            induced = sum(
                1
                for a, b in combinations(sorted(vertices), 2)
                if self.graph.has_edge(a, b)
            )
            if induced != len(ids):
                continue
            pattern = Pattern.from_vertex_embedding(
                self.graph, vertices, use_labels=False
            )
            phash = self.hasher.hash_pattern(pattern)
            counts[phash] = counts.get(phash, 0) + 1

    def run_fsm(self, num_edges: int, support: int) -> MiningResult:
        """Edge-induced FSM with per-iteration relational aggregation."""
        started = time.perf_counter()
        supports = edge_pattern_supports(self.graph)
        frequent_pairs = {
            key for key, dom in supports.items() if dom.support >= support
        }
        labels = self.graph.labels
        eu, ev = self.graph.edge_arrays()
        frequent_edge_ids: set[int] = set()
        relation: list[tuple[int, ...]] = []
        elabels = (
            self.graph.edge_labels.tolist()
            if self.graph.has_edge_labels
            else [0] * eu.shape[0]
        )
        for eid, (u, v, elab) in enumerate(
            zip(eu.tolist(), ev.tolist(), elabels)
        ):
            lu, lv = int(labels[u]), int(labels[v])
            pair = (
                (lu, lv, int(elab)) if lu <= lv else (lv, lu, int(elab))
            )
            if pair in frequent_pairs:
                frequent_edge_ids.add(eid)
                relation.append((eid,))
        mapper = PositionMapper()
        reduced: dict[int, MNIDomains] = {}
        for _ in range(num_edges - 1):
            handles = self._stream_out(relation, "fsm")
            relation = self._stream_in(handles)
            relation = self._all_join(relation, frequent_edges=frequent_edge_ids)
            # X-Stream discipline: the joined UPDATE relation is scattered
            # back to streaming partitions before the aggregation pass.
            handles = self._stream_out(relation, "fsm-upd")
            relation = self._stream_in(handles)
            reduced = {}
            hashes: list[int] = []
            for ids in relation:
                edges = [self.index.endpoints(e) for e in ids]
                pattern = Pattern.from_edge_embedding(self.graph, edges)
                phash = self.hasher.hash_pattern(pattern)
                structure_order: list[int] = []
                seen: set[int] = set()
                for a, b in edges:
                    for w in (a, b):
                        if w not in seen:
                            seen.add(w)
                            structure_order.append(w)
                dom = reduced.get(phash)
                if dom is None:
                    dom = reduced[phash] = MNIDomains(len(structure_order))
                for placement in mapper.placements(pattern, structure_order):
                    dom.add(placement, None)
                hashes.append(phash)
            frequent = {h for h, d in reduced.items() if d.support >= support}
            relation = [ids for ids, h in zip(relation, hashes) if h in frequent]
            self.meter.set(
                "pattern_map", sum(120 + d.nbytes for d in reduced.values())
            )
            self.meter.set("hasher", self.hasher.nbytes)
        result_supports = {
            h: d.support for h, d in reduced.items() if d.support >= support
        }
        patterns = {}
        for phash in result_supports:
            rep = self.hasher.representative(phash)
            if rep is not None:
                patterns[phash] = rep
        value = FSMResult(result_supports, patterns)
        return self._result(
            f"{num_edges + 1}-FSM(s={support})", value, result_supports, started
        )

    # ------------------------------------------------------------------
    def _result(
        self, name: str, value, pattern_map: dict, started: float
    ) -> MiningResult:
        wall = time.perf_counter() - started
        return MiningResult(
            app_name=name,
            value=value,
            pattern_map=pattern_map,
            wall_seconds=wall,
            simulated_seconds=wall,
            peak_memory_bytes=self.meter.peak_bytes,
            io_bytes_read=self.store.io.bytes_read,
            io_bytes_written=self.store.io.bytes_written,
            memory_snapshot=self.meter.snapshot(),
        )
