"""Driver for the invariant lint suite.

The driver parses every file once into a project-wide
:class:`~repro.analysis.context.AnalysisContext`, scopes the rule set
by each file's position inside the ``repro`` package, runs the rules
with the shared context, and filters the resulting diagnostics through
the ``# repro: ignore[RULE]`` suppressions — tracking which
suppressions actually fired so stale ones can be audited
(``--report-unused-ignores``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .context import AnalysisContext, ModuleInfo, build_context
from .diagnostics import (
    PARSE_RULE,
    UNUSED_IGNORE_RULE,
    Diagnostic,
    suppressed_lines,
)
from .rules import RULES, Rule

__all__ = ["LintReport", "lint_source", "lint_file", "lint_paths", "lint_paths_report"]


@dataclass
class LintReport:
    """Outcome of a lint run: violations plus stale suppressions."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    unused_ignores: list[Diagnostic] = field(default_factory=list)

    def all(self) -> list[Diagnostic]:
        return self.diagnostics + self.unused_ignores


def _select_rules(select: Sequence[str] | None) -> tuple[tuple[Rule, ...], bool]:
    """Resolve a ``select`` list to rule objects.

    An explicit selection also bypasses module scoping: asking for a
    rule by id means "run it here", wherever *here* is — the driver
    never consults ``Rule.applies`` for selected rules, so scoped rules
    honor the bypass uniformly.
    """
    if select is None:
        return RULES, False
    wanted = set(select)
    unknown = wanted - {rule.id for rule in RULES}
    if unknown:
        raise ValueError(f"unknown rule ids: {sorted(unknown)}")
    return tuple(rule for rule in RULES if rule.id in wanted), True


def _parse_failure(path: str, exc: SyntaxError) -> Diagnostic:
    return Diagnostic(
        rule=PARSE_RULE,
        path=path,
        line=exc.lineno or 1,
        col=(exc.offset or 1),
        message=f"syntax error: {exc.msg}",
    )


def _lint_module(
    module: ModuleInfo,
    context: AnalysisContext,
    rules: tuple[Rule, ...],
    bypass_scope: bool,
) -> tuple[list[Diagnostic], list[Diagnostic]]:
    """Run the rules over one module.

    Returns ``(diagnostics, unused_ignores)``.  A suppression counts as
    used when it silenced at least one diagnostic from a rule that
    actually ran here; suppressions naming rules outside the active set
    (not selected, or out of scope for this module) are left alone —
    they cannot be judged on this run.
    """
    active = tuple(
        rule for rule in rules if bypass_scope or rule.applies(module.rel)
    )
    raw: list[Diagnostic] = []
    for rule in active:
        raw.extend(rule.check(module, context))
    suppressions = suppressed_lines(module.source)
    kept: list[Diagnostic] = []
    used: set[tuple[int, str]] = set()
    for diag in raw:
        rules_here = suppressions.get(diag.line, ())
        if diag.rule in rules_here:
            used.add((diag.line, diag.rule))
        else:
            kept.append(diag)
    kept.sort(key=lambda diag: (diag.line, diag.col, diag.rule))
    active_ids = {rule.id for rule in active}
    unused: list[Diagnostic] = []
    for line, rule_ids_here in sorted(suppressions.items()):
        for rule_id in sorted(rule_ids_here):
            if rule_id not in active_ids or (line, rule_id) in used:
                continue
            unused.append(
                Diagnostic(
                    rule=UNUSED_IGNORE_RULE,
                    path=module.path,
                    line=line,
                    col=1,
                    message=(
                        f"unused suppression: '# repro: ignore[{rule_id}]' "
                        f"silences nothing here; remove it or re-justify it"
                    ),
                )
            )
    return kept, unused


def lint_source(
    source: str,
    path: str = "<string>",
    select: Sequence[str] | None = None,
) -> list[Diagnostic]:
    """Lint one module's source text (single-file context)."""
    rules, bypass_scope = _select_rules(select)
    context, failures = build_context([(path, source)])
    if failures:
        return [_parse_failure(p, exc) for p, exc in failures]
    module = context.module_for(path)
    assert module is not None
    kept, _ = _lint_module(module, context, rules, bypass_scope)
    return kept


def lint_file(path: str | Path, select: Sequence[str] | None = None) -> list[Diagnostic]:
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, path=str(path), select=select)


def _iter_python_files(paths: Iterable[str | Path]) -> Iterable[Path]:
    for entry in paths:
        root = Path(entry)
        if root.is_dir():
            yield from sorted(root.rglob("*.py"))
        else:
            yield root


def lint_paths_report(
    paths: Iterable[str | Path],
    select: Sequence[str] | None = None,
    report_unused_ignores: bool = False,
) -> LintReport:
    """Lint files and directories with one shared analysis context."""
    rules, bypass_scope = _select_rules(select)
    sources: list[tuple[str, str]] = []
    for file_path in _iter_python_files(paths):
        sources.append((str(file_path), file_path.read_text(encoding="utf-8")))
    context, failures = build_context(sources)
    report = LintReport()
    report.diagnostics.extend(_parse_failure(p, exc) for p, exc in failures)
    for path, _ in sources:
        module = context.module_for(path)
        if module is None:  # failed to parse; already reported
            continue
        kept, unused = _lint_module(module, context, rules, bypass_scope)
        report.diagnostics.extend(kept)
        if report_unused_ignores:
            report.unused_ignores.extend(unused)
    return report


def lint_paths(
    paths: Iterable[str | Path], select: Sequence[str] | None = None
) -> list[Diagnostic]:
    """Lint files and directories (recursing into ``*.py``)."""
    return lint_paths_report(paths, select=select).diagnostics
