"""Complexity routing: GREEN/YELLOW/RED decisions and rejections."""

import pytest

from repro.errors import QueryRejectedError
from repro.obs import MetricsRegistry
from repro.service import ComplexityRouter, QueryBudget, QueryRequest, Route
from repro.service.router import estimate_embeddings


@pytest.fixture
def router_and_metrics():
    metrics = MetricsRegistry()
    return ComplexityRouter(metrics), metrics


def test_cached_queries_route_green(paper_graph, router_and_metrics):
    router, metrics = router_and_metrics
    request = QueryRequest(app="tc", graph=paper_graph)
    decision = router.classify(request, paper_graph, cached=True, max_embeddings=None)
    assert decision.route is Route.GREEN
    assert metrics.snapshot()["service.route.green"]["value"] == 1


def test_approximate_mode_routes_yellow(paper_graph, router_and_metrics):
    router, _ = router_and_metrics
    request = QueryRequest(app="motif", graph=paper_graph, mode="approximate")
    decision = router.classify(request, paper_graph, cached=False, max_embeddings=None)
    assert decision.route is Route.YELLOW
    assert not decision.degraded


def test_within_budget_routes_red(paper_graph, router_and_metrics):
    router, metrics = router_and_metrics
    request = QueryRequest(app="tc", graph=paper_graph)
    decision = router.classify(
        request, paper_graph, cached=False, max_embeddings=10**9
    )
    assert decision.route is Route.RED
    assert decision.estimated_embeddings is not None
    assert metrics.snapshot()["service.route.red"]["value"] == 1


def test_over_budget_approximable_degrades_to_yellow(paper_graph, router_and_metrics):
    router, metrics = router_and_metrics
    request = QueryRequest(
        app="motif", k=4, graph=paper_graph, budget=QueryBudget(max_embeddings=1)
    )
    decision = router.classify(request, paper_graph, cached=False, max_embeddings=1)
    assert decision.route is Route.YELLOW
    assert decision.degraded
    assert metrics.snapshot()["service.route.degraded"]["value"] == 1


def test_over_budget_without_degradation_is_rejected(paper_graph, router_and_metrics):
    router, metrics = router_and_metrics
    request = QueryRequest(
        app="clique",
        k=4,
        graph=paper_graph,
        budget=QueryBudget(max_embeddings=1),
    )
    with pytest.raises(QueryRejectedError, match="cannot degrade"):
        router.classify(request, paper_graph, cached=False, max_embeddings=1)
    request = QueryRequest(
        app="motif",
        k=4,
        graph=paper_graph,
        budget=QueryBudget(max_embeddings=1, allow_degraded=False),
    )
    with pytest.raises(QueryRejectedError, match="allow_degraded=False"):
        router.classify(request, paper_graph, cached=False, max_embeddings=1)
    assert metrics.snapshot()["service.route.rejected"]["value"] == 2


def test_estimate_grows_with_k(paper_graph):
    small = estimate_embeddings(paper_graph, "motif", 3, {})
    large = estimate_embeddings(paper_graph, "motif", 5, {})
    assert large > small > 0


def test_estimate_fsm_grows_with_edges(paper_graph):
    shallow = estimate_embeddings(paper_graph, "fsm", 0, {"edges": 1})
    deep = estimate_embeddings(paper_graph, "fsm", 0, {"edges": 4})
    assert deep > shallow > 0
