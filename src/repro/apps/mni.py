"""Minimum image-based (MNI) support counting (Bringmann & Nijssen).

The MNI support of a pattern is the minimum, over pattern positions, of
the number of distinct graph vertices observed at that position across all
of the pattern's embeddings.  It is anti-monotonic, which is what lets FSM
prune by support level by level.

Positions are the *normalised* pattern positions (after the Algorithm-1
``(label, degree)`` sort), so automorphic raw structures contribute to the
same domains.

The paper's Kaleido does not compute exact supports: once a pattern's
domains all reach the threshold it is marked frequent and its counting
short-circuits (Section 6.2's discussion of Figure 11).
:class:`MNIDomains` implements both the short-circuit mode and the exact
mode used for verification.
"""

from __future__ import annotations

from ..core.isomorphism import automorphisms, canonical_form, pattern_from_key
from ..core.pattern import Pattern

__all__ = ["MNIDomains", "merge_domains", "PositionMapper"]


class MNIDomains:
    """Per-position distinct-vertex domains of one pattern."""

    __slots__ = ("domains", "frozen")

    def __init__(self, k: int) -> None:
        self.domains: list[set[int]] = [set() for _ in range(k)]
        #: True once the short-circuit threshold was reached.
        self.frozen = False

    def add(self, vertices_by_position: tuple[int, ...], threshold: int | None) -> int:
        """Record one embedding's vertices (already in normalised order).

        With a ``threshold``, counting freezes as soon as every domain
        holds at least ``threshold`` vertices (the paper's short-circuit).
        Returns the number of set insertions performed — the Figure-11
        benchmark uses the total as a deterministic cost proxy.
        """
        if self.frozen:
            return 0
        inserted = 0
        for domain, vertex in zip(self.domains, vertices_by_position):
            before = len(domain)
            domain.add(vertex)
            inserted += len(domain) - before
        if threshold is not None and all(
            len(domain) >= threshold for domain in self.domains
        ):
            self.frozen = True
        return inserted

    @property
    def support(self) -> int:
        """Current (possibly short-circuited lower-bound) support."""
        if not self.domains:
            return 0
        return min(len(domain) for domain in self.domains)

    @property
    def nbytes(self) -> int:
        """Accounted size: set overhead + 28 bytes per stored int."""
        return sum(64 + 28 * len(domain) for domain in self.domains)

    def __eq__(self, other: object) -> bool:
        """Value equality over the recorded domains (the executor parity
        tests compare whole pattern maps)."""
        if not isinstance(other, MNIDomains):
            return NotImplemented
        return self.domains == other.domains and self.frozen == other.frozen

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MNIDomains(support={self.support}, frozen={self.frozen})"


class PositionMapper:
    """Maps embedding vertices onto *canonical* pattern positions.

    MNI domains must use one consistent position space per pattern class.
    Raw structures of the same class can differ (first-appearance order
    varies across embeddings), so we canonicalise each raw structure once
    (cached) and keep the witnessing permutation; every embedding's
    vertices are then placed at canonical positions, and each automorphism
    of the canonical form contributes an additional valid placement (GraMi
    semantics — without this, supports of symmetric patterns are wrong).
    """

    def __init__(self) -> None:
        self._cache: dict[
            tuple[tuple[int, ...], int],
            tuple[tuple[int, ...], list[tuple[int, ...]]],
        ] = {}

    def placements(
        self, pattern: Pattern, structure_vertices: list[int]
    ) -> list[tuple[int, ...]]:
        """All canonical-position vertex assignments of one embedding."""
        key = (pattern.labels, pattern.bits, pattern.edge_labels)
        entry = self._cache.get(key)
        if entry is None:
            canon_key, perm = canonical_form(pattern)
            auts = automorphisms(pattern_from_key(canon_key))
            entry = self._cache[key] = (perm, auts)
        perm, auts = entry
        base = tuple(structure_vertices[p] for p in perm)
        return [tuple(base[a] for a in aut) for aut in auts]

    @property
    def nbytes(self) -> int:
        return 220 * len(self._cache)


def merge_domains(
    into: MNIDomains, other: MNIDomains, threshold: int | None
) -> MNIDomains:
    """Union per-position domains (the Reducer side of MNI counting)."""
    if into.frozen:
        return into
    for mine, theirs in zip(into.domains, other.domains):
        mine.update(theirs)
    if other.frozen or (
        threshold is not None
        and all(len(domain) >= threshold for domain in into.domains)
    ):
        into.frozen = True
    return into
