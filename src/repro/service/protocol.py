"""Line-delimited JSON protocol for ``repro serve`` / ``repro query``.

One request per line, one response per line, always valid JSON.  The
same handler backs both transports: the stdin/stdout stream the CLI
speaks and a small threaded TCP server (one thread per connection, so
concurrent clients exercise the service's real multiplexing).

Request shape (``op`` defaults to ``"query"``)::

    {"op": "query", "app": "motif", "k": 3, "dataset": "citeseer",
     "tenant": "alice", "mode": "exact",
     "budget": {"max_embeddings": 100000, "allow_degraded": true},
     "params": {"samples": 500}}

Other ops: ``stats`` (service snapshot), ``quota`` (set a tenant
quota), ``invalidate`` (flush a dataset's cached answers), ``ping``
and ``shutdown`` (stop the stream loop after responding).

Error responses carry the *typed* error class name::

    {"id": 7, "status": "error", "error": "QuotaExceededError",
     "message": "tenant 'alice' already has 2 queries in flight ..."}
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from typing import Any, Iterable, Mapping, TextIO

from ..errors import KaleidoError
from .request import QueryBudget, QueryRequest
from .service import MiningService
from .tenants import TenantQuota

__all__ = [
    "parse_request",
    "handle_payload",
    "serve_stream",
    "ServiceServer",
    "request_over_socket",
]


def parse_request(payload: Mapping[str, Any]) -> QueryRequest:
    """Build a :class:`QueryRequest` from one decoded JSON payload."""
    if "app" not in payload:
        raise ValueError("query payload needs an 'app' field")
    budget = payload.get("budget")
    return QueryRequest(
        app=str(payload["app"]),
        k=int(payload.get("k", 3)),
        params=dict(payload.get("params", {})),
        dataset=payload.get("dataset"),
        profile=str(payload.get("profile", "bench")),
        tenant=str(payload.get("tenant", "default")),
        budget=QueryBudget.from_json(budget) if budget is not None else None,
        mode=str(payload.get("mode", "exact")),
    )


def handle_payload(service: MiningService, payload: Mapping[str, Any]) -> dict[str, Any]:
    """Serve one decoded request payload; never raises for user errors.

    Protocol-level failures (bad JSON shape, unknown app, quota or
    budget refusals, engine errors) become ``status: "error"``
    responses carrying the typed error class name, so one tenant's bad
    request can never tear down the stream.
    """
    request_id = payload.get("id")
    op = str(payload.get("op", "query"))
    try:
        if op == "query":
            response = service.query(parse_request(payload)).to_json()
        elif op == "stats":
            response = {"status": "ok", "op": "stats", "stats": service.stats()}
        elif op == "quota":
            quota = TenantQuota(
                max_concurrent=int(payload.get("max_concurrent", 4)),
                max_embeddings=payload.get("max_embeddings"),
            )
            service.set_quota(str(payload["tenant"]), quota)
            response = {"status": "ok", "op": "quota", "tenant": payload["tenant"]}
        elif op == "invalidate":
            request = parse_request({**payload, "op": "query"})
            graph = service.resolve_graph(request)
            dropped = service.invalidate_graph(graph)
            response = {"status": "ok", "op": "invalidate", "dropped": dropped}
        elif op == "ping":
            response = {"status": "ok", "op": "ping"}
        elif op == "shutdown":
            response = {"status": "ok", "op": "shutdown"}
        else:
            raise ValueError(f"unknown op {op!r}")
    except (KaleidoError, ValueError, KeyError, TypeError) as exc:
        response = {
            "status": "error",
            "error": type(exc).__name__,
            "message": str(exc),
        }
    if request_id is not None:
        response["id"] = request_id
    response.setdefault("op", op)
    return response


def serve_stream(
    service: MiningService, lines: Iterable[str], out: TextIO
) -> int:
    """Drive the service from a line stream; returns requests served.

    Responses are written in request order (the stream is a single
    conversation; concurrency comes from multiple connections or
    in-process :meth:`MiningService.submit`).  Stops at EOF or after a
    ``shutdown`` op.
    """
    served = 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
            if not isinstance(payload, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:  # includes json.JSONDecodeError
            payload = None
            response = {"status": "error", "error": "ValueError", "message": str(exc)}
        if payload is not None:
            response = handle_payload(service, payload)
        out.write(json.dumps(response, sort_keys=True) + "\n")
        out.flush()
        served += 1
        if payload is not None and payload.get("op") == "shutdown":
            break
    return served


class _ConnectionHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised via ServiceServer
        lines = (raw.decode("utf-8") for raw in self.rfile)
        out = _SocketWriter(self.wfile)
        serve_stream(self.server.service, lines, out)  # type: ignore[attr-defined]


class _SocketWriter:
    """Minimal text adapter over the handler's binary write file."""

    def __init__(self, wfile: Any) -> None:
        self._wfile = wfile

    def write(self, text: str) -> None:
        self._wfile.write(text.encode("utf-8"))

    def flush(self) -> None:
        self._wfile.flush()


class ServiceServer(socketserver.ThreadingTCPServer):
    """Threaded TCP front end: one connection, one protocol stream.

    A ``shutdown`` op ends its own connection's stream, not the server;
    stop the server with :meth:`stop`.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, service: MiningService, host: str = "127.0.0.1", port: int = 0):
        super().__init__((host, port), _ConnectionHandler)
        self.service = service

    @property
    def address(self) -> tuple[str, int]:
        host, port = self.server_address[:2]
        return str(host), int(port)

    def serve_background(self) -> threading.Thread:
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def stop(self) -> None:
        self.shutdown()
        self.server_close()


def request_over_socket(
    host: str, port: int, payload: Mapping[str, Any], timeout: float = 30.0
) -> dict[str, Any]:
    """One-shot client: send one request line, read one response line."""
    with socket.create_connection((host, port), timeout=timeout) as conn:
        conn.sendall((json.dumps(payload) + "\n").encode("utf-8"))
        buffer = b""
        while not buffer.endswith(b"\n"):
            chunk = conn.recv(65536)
            if not chunk:
                break
            buffer += chunk
    decoded = json.loads(buffer.decode("utf-8"))
    if not isinstance(decoded, dict):
        raise ValueError("malformed response from service")
    return decoded
