"""Runtime part-purity sanitizer: a race detector for shared app state.

Static rule R001 sees direct ``self.x = ...`` writes in hot methods, but
not writes routed through helpers, aliases or ``setattr``.  The
:class:`PartPuritySanitizer` closes that gap at runtime: while the
engine is inside a *hot phase* (the executor is running per-part tasks,
possibly on pool threads), every attribute write on the wrapped
application raises :class:`~repro.errors.PartPurityError` immediately —
the write that would have been a silent cross-part race becomes a loud
failure at its exact source line.

Mechanics: instance attribute writes go through
``type(obj).__setattr__``, so wrapping the app in a proxy object is not
enough — the app's own methods would still see the real ``self``.
Instead the sanitizer swaps ``app.__class__`` for a dynamically created
subclass whose ``__setattr__`` / ``__delattr__`` consult the hot-phase
flag.  Outside hot phases (``init``, ``finish_part``, ``reduce``,
``prune`` — all coordinator-serial) writes pass straight through, so a
well-behaved app runs byte-identical to an unsanitized run.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass

from ..errors import PartPurityError

__all__ = ["AttributeWrite", "PartPuritySanitizer"]


@dataclass(frozen=True)
class AttributeWrite:
    """One recorded attribute write on the sanitized application."""

    attribute: str
    kind: str  # "set" or "delete"
    thread: str
    hot: bool


class PartPuritySanitizer:
    """Context manager that polices attribute writes on one application.

    Usage (what the engine does under ``sanitize=True``)::

        sanitizer = PartPuritySanitizer(app)
        with sanitizer:                  # swaps in the recording class
            app.init(graph)              # cold: allowed, recorded
            with sanitizer.hot_phase():  # executor.run(...) window
                ...                      # any self.* write -> raises

    The swap preserves ``__name__`` / ``__qualname__`` / ``__module__``
    on the generated class so ``app.name`` (which reads
    ``type(self).__name__``) is unchanged, and uses empty ``__slots__``
    so the instance layout is untouched.
    """

    def __init__(self, app: object) -> None:
        self.app = app
        self.writes: list[AttributeWrite] = []
        self._hot = threading.Event()
        self._original_class: type | None = None
        self._lock = threading.Lock()

    # -- write recording ------------------------------------------------
    def _record(self, attribute: str, kind: str) -> None:
        hot = self._hot.is_set()
        write = AttributeWrite(
            attribute=attribute,
            kind=kind,
            thread=threading.current_thread().name,
            hot=hot,
        )
        with self._lock:
            self.writes.append(write)
        if hot:
            app_name = type(self.app).__name__
            raise PartPurityError(
                f"{app_name} wrote shared attribute '{attribute}' "
                f"({kind}) during a per-part hot phase on thread "
                f"'{write.thread}'; per-part mutation must live in the "
                f"state returned by start_part and be absorbed in "
                f"finish_part"
            )

    # -- class swap -----------------------------------------------------
    def _make_recording_class(self, base: type) -> type:
        sanitizer = self

        def __setattr__(obj: object, name: str, value: object) -> None:
            if name != "__class__":  # the sanitizer's own swap-back
                sanitizer._record(name, "set")
            super(recording, obj).__setattr__(name, value)

        def __delattr__(obj: object, name: str) -> None:
            sanitizer._record(name, "delete")
            super(recording, obj).__delattr__(name)

        recording = type(
            base.__name__,
            (base,),
            {
                "__setattr__": __setattr__,
                "__delattr__": __delattr__,
                "__slots__": (),
                "__qualname__": base.__qualname__,
                "__module__": base.__module__,
                "_repro_sanitized_base_": base,
            },
        )
        return recording

    def __enter__(self) -> "PartPuritySanitizer":
        if self._original_class is not None:
            raise RuntimeError("sanitizer already active")
        base = type(self.app)
        self._original_class = base
        self.app.__class__ = self._make_recording_class(base)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._original_class is not None:
            self.app.__class__ = self._original_class
            self._original_class = None
        self._hot.clear()

    # -- hot-phase window ----------------------------------------------
    @contextmanager
    def hot_phase(self):
        """Mark the window where per-part tasks run (executor active)."""
        self._hot.set()
        try:
            yield
        finally:
            self._hot.clear()

    # -- reporting ------------------------------------------------------
    @property
    def hot_writes(self) -> list[AttributeWrite]:
        return [write for write in self.writes if write.hot]
