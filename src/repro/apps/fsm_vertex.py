"""Vertex-induced frequent subgraph mining.

The paper's FSM is edge-induced (Section 5.1), but its exploration model
supports both modes (Section 1.1: "The exploration of subgraphs can be
executed as vertex-induced and edge-induced").  This variant mines
frequent *induced* k-vertex patterns: each embedding is a connected
vertex set carrying all of its induced edges, and support is the same
MNI measure over canonical pattern positions.

Note the semantic difference from edge-induced FSM: a triangle embedding
never contributes to the 2-edge path pattern here, because its induced
subgraph has three edges.  Anti-monotonicity still holds for *vertex*
sub-patterns, so per-iteration pruning drops embeddings whose induced
pattern is infrequent.
"""

from __future__ import annotations

import numpy as np

from ..core.api import EngineContext, MiningApplication, PatternMap
from ..core.cse import CSE
from ..core.pattern import Pattern
from .fsm import FSMMapperPart, FSMResult
from .mni import MNIDomains, PositionMapper, merge_domains

__all__ = ["VertexInducedFSM"]


class VertexInducedFSM(MiningApplication):
    """Frequent induced k-vertex patterns under MNI support."""

    induced = "vertex"
    aggregate_every_iteration = True

    def __init__(
        self, num_vertices: int, support: int, exact_mni: bool = False
    ) -> None:
        if num_vertices < 2:
            raise ValueError("num_vertices must be at least 2")
        if support < 1:
            raise ValueError("support must be at least 1")
        self.num_vertices = num_vertices
        self.support = support
        self.exact_mni = exact_mni
        self._mapper = PositionMapper()
        self._iter_hashes: list[int] = []
        self._frequent_labels: set[int] = set()

    @property
    def name(self) -> str:
        return f"vFSM(k={self.num_vertices},s={self.support})"

    @property
    def _threshold(self) -> int | None:
        return None if self.exact_mni else self.support

    def init(self, ctx: EngineContext) -> np.ndarray:
        """Seed with vertices of frequent labels (the 1-vertex patterns)."""
        labels = ctx.graph.labels
        self._labels = labels
        values, counts = np.unique(labels, return_counts=True)
        self._frequent_labels = {
            int(v) for v, c in zip(values, counts) if int(c) >= self.support
        }
        roots = np.flatnonzero(
            np.isin(labels, sorted(self._frequent_labels))
        ).astype(np.int32)
        return roots

    def iterations(self) -> int:
        return self.num_vertices - 1

    def embedding_filter(self, embedding: tuple[int, ...], candidate: int) -> bool:
        return int(self._labels[candidate]) in self._frequent_labels

    def start_part(self, ctx: EngineContext) -> FSMMapperPart:
        return FSMMapperPart()

    def finish_part(self, ctx: EngineContext, part: FSMMapperPart) -> None:
        self._iter_hashes.extend(part.hashes)

    def map_embedding(
        self,
        ctx: EngineContext,
        embedding: tuple[int, ...],
        pmap: PatternMap,
        part: FSMMapperPart | None = None,
    ) -> None:
        pattern = Pattern.from_vertex_embedding(ctx.graph, embedding)
        phash = ctx.hash_pattern(pattern)
        dom = pmap.get(phash)
        if dom is None:
            dom = pmap[phash] = MNIDomains(len(embedding))
        for placement in self._mapper.placements(pattern, list(embedding)):
            dom.add(placement, self._threshold)
        if part is None:  # direct three-argument call (serial/tests)
            # Engine calls always pass a part; this is the single-threaded
            # direct-call path only.
            self._iter_hashes.append(phash)  # repro: ignore[R001]
        else:
            part.hashes.append(phash)

    def reduce(self, ctx: EngineContext, pmaps: list[PatternMap]) -> PatternMap:
        merged: PatternMap = {}
        for pmap in pmaps:
            for phash, dom in pmap.items():
                mine = merged.get(phash)
                if mine is None:
                    merged[phash] = dom
                else:
                    merge_domains(mine, dom, self._threshold)
        return merged

    def prune(
        self, ctx: EngineContext, cse: CSE, reduced: PatternMap
    ) -> np.ndarray | None:
        frequent = {
            phash for phash, dom in reduced.items() if dom.support >= self.support
        }
        keep = np.fromiter(
            (phash in frequent for phash in self._iter_hashes),
            dtype=bool,
            count=len(self._iter_hashes),
        )
        self._iter_hashes = []
        if keep.all():
            return None
        return keep

    def pmap_nbytes(self, pmap: PatternMap) -> int:
        return sum(120 + dom.nbytes for dom in pmap.values())

    def finalize(self, ctx: EngineContext, cse: CSE, pmap: PatternMap) -> FSMResult:
        supports = {
            phash: dom.support
            for phash, dom in pmap.items()
            if dom.support >= self.support
        }
        patterns = {}
        for phash in supports:
            rep = ctx.engine.hasher.representative(phash)
            if rep is not None:
                patterns[phash] = rep
        return FSMResult(supports, patterns)
