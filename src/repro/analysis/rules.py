"""Project-specific static-analysis rules R001-R008.

Each rule encodes one engine contract that earlier PRs established by
review and that nothing previously machine-checked:

========  ==============================================================
R001      Part purity: ``MiningApplication`` subclasses must not write
          ``self.*`` inside per-part hot methods (``map_embedding``,
          ``embedding_filter``, ``start_part`` and anything they reach
          through ``self``).  Concurrent executors run parts on pool
          threads; shared-state mutation there is the exact bug class
          the PR 1 review found in FSM.  Mutation belongs in the part
          state returned by ``start_part`` and absorbed serially by
          ``finish_part``.
R002      Determinism: no wall-clock / entropy sources (``time.time``,
          the global ``random`` state, ``os.urandom``, ``uuid.uuid1/4``,
          ``datetime.now``) and no syntactic set-iteration-order hazards
          in ``core/``, ``apps/``, ``balance/`` and ``service/`` (the
          query tier caches on content identity and must replay
          byte-identically, so request ids come from a counter and
          sampling seeds from the request).  Clocks must be
          injected (as ``obs.trace.Tracer`` does) and randomness must go
          through a seeded generator.  ``time.perf_counter`` and
          ``time.monotonic`` stay legal: they measure work, they do not
          feed mined results.
R003      Tracer guard: in hot-path modules every ``tracer.begin`` /
          ``end`` / ``instant`` / ``complete`` call must be dominated by
          an ``if tracer.enabled`` check.  The NULL_TRACER no-op costs
          one attribute probe, but building the call's keyword arguments
          does not go away — an unguarded probe taxes every iteration.
R004      Dtype discipline: no hard-coded ``np.int32`` in the modules
          where the id dtype must be threaded (kernels, planner, sinks,
          spill and checkpoint storage).  A narrow literal is what
          truncates ids past the 2^31 boundary; ``np.int64`` literals
          stay legal because offsets/keys are always 64-bit and widening
          cannot corrupt an id.  The selection point itself
          (``id_dtype``) and ``np.iinfo`` boundary queries are exempt.
R005      Error taxonomy: no bare ``except:`` and no swallowed
          ``except Exception/BaseException`` in ``storage/`` or
          ``service/``; catch-all handlers must re-raise (a typed class
          from ``repro.errors``), otherwise corruption, disk faults and
          tenant-facing failures turn into silently wrong results.
R006      Lock discipline: classes in ``service/``, ``core/executor.py``
          and ``storage/`` that create a ``threading.Lock``/``RLock``/
          ``Condition`` declare their guarded fields — explicitly with a
          ``# guarded-by: _lock`` comment on the field's initialising
          assignment, or inferred when at least one mutation site sits
          under ``with self._lock:``.  Every mutation of a guarded field
          (assignment, augmented assignment, ``del``, or an in-place
          mutator call such as ``.append``) must then hold the lock,
          either lexically or transitively: a method whose every
          in-class call site holds the lock is itself lock-context
          (the same closure machinery as R001's hot-method set).
          ``__init__`` is exempt — the object is not yet shared.
R007      Resource lifecycle: every ``SharedMemory`` /
          ``SharedKernelContext`` / ``open_mmap`` / ``NamedTemporaryFile``
          acquisition bound to a local in ``core/shm.py``,
          ``core/executor.py`` or ``storage/`` must reach a ``close()``
          or ``unlink()`` on **all** control-flow paths (try/finally,
          ``with``, or a registered ``weakref.finalize``), checked over
          a per-function CFG approximation (:mod:`repro.analysis.cfg`).
          Ownership transfers — returning the resource, storing it on
          ``self`` or in a container, passing it to another call — end
          the obligation locally.
R008      Tracer/metric schema: ``tracer.begin(name)`` and
          ``tracer.end(name)`` must pair up within one function (a span
          opened here must close here, on every path the CFG can see a
          ``finally`` for), and every metric name emitted through
          ``.counter/.gauge/.histogram`` in ``core/``, ``storage/``,
          ``service/`` or the obs bridge must appear in the bridge's
          ``METRIC_REGISTRY`` table — the registry the dashboards read,
          so a typo'd or unregistered name is silent telemetry loss.
========  ==============================================================

Rules operate purely on the AST — nothing is imported or executed — and
report precise ``file:line:col`` diagnostics that the suppression
comments of :mod:`repro.analysis.diagnostics` can silence.  Each rule
receives the :class:`~repro.analysis.context.ModuleInfo` under check
plus the project-wide :class:`~repro.analysis.context.AnalysisContext`,
so cross-file lookups (R008's registry, future inter-module rules) are
index hits rather than re-parses.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from .cfg import build_cfg, leaks_to_exit
from .context import AnalysisContext, ClassInfo, ModuleInfo
from .diagnostics import Diagnostic

__all__ = ["Rule", "RULES", "rule_ids"]


class Rule:
    """One invariant check over a parsed module."""

    id: str = ""
    title: str = ""
    #: Path prefixes (relative to the ``repro`` package root) the rule is
    #: scoped to; an empty tuple means every module.
    scope: tuple[str, ...] = ()

    def applies(self, rel_module: str | None) -> bool:
        """Whether the rule is in scope for ``rel_module``.

        ``None`` (a file outside the package, e.g. a fixture) applies
        every rule — explicit ``select`` lists drive those checks.
        """
        if rel_module is None or not self.scope:
            return True
        return any(
            rel_module == prefix or rel_module.startswith(prefix)
            for prefix in self.scope
        )

    def check(
        self, module: ModuleInfo, context: AnalysisContext
    ) -> list[Diagnostic]:  # pragma: no cover - protocol
        raise NotImplementedError

    def diagnostic(self, node: ast.AST, path: str, message: str) -> Diagnostic:
        return Diagnostic(
            rule=self.id,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def _terminal_name(node: ast.AST) -> str | None:
    """The last dotted component of a Name/Attribute expression."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _root_name(node: ast.AST) -> str | None:
    """The first dotted component of a Name/Attribute/Subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _self_rooted_targets(target: ast.AST) -> Iterable[ast.AST]:
    """Yield assignment targets whose chain starts at ``self``."""
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _self_rooted_targets(element)
    elif isinstance(target, ast.Starred):
        yield from _self_rooted_targets(target.value)
    elif isinstance(target, (ast.Attribute, ast.Subscript)):
        if _root_name(target) == "self":
            yield target


def _first_self_attr(node: ast.AST) -> str:
    """Best-effort attribute name for a ``self``-rooted chain."""
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute) and isinstance(child.value, ast.Name):
            if child.value.id == "self":
                return child.attr
    return "<attribute>"


def _contains_self_attribute(node: ast.AST) -> bool:
    return any(
        isinstance(child, ast.Attribute)
        and isinstance(child.value, ast.Name)
        and child.value.id == "self"
        for child in ast.walk(node)
    )


def _mentions_enabled(node: ast.AST) -> bool:
    return any(
        isinstance(child, ast.Attribute) and child.attr == "enabled"
        for child in ast.walk(node)
    )


def _ancestors(node: ast.AST, parents: dict[int, ast.AST]) -> Iterable[ast.AST]:
    current = parents.get(id(node))
    while current is not None:
        yield current
        current = parents.get(id(current))


def _enclosing_stmt(node: ast.AST, parents: dict[int, ast.AST]) -> ast.stmt | None:
    """The nearest enclosing statement (the node itself if it is one)."""
    current: ast.AST | None = node
    while current is not None and not isinstance(current, ast.stmt):
        current = parents.get(id(current))
    return current


def _shallow_walk(func: ast.AST) -> Iterable[ast.AST]:
    """Walk a function body without descending into nested functions."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


# ----------------------------------------------------------------------
# R001 — part purity
# ----------------------------------------------------------------------
class PartPurityRule(Rule):
    id = "R001"
    title = "no shared-state writes in per-part hot methods"
    scope = ()  # every MiningApplication subclass, wherever it lives

    #: Hot entry points: called per part, possibly on pool threads.
    HOT_ENTRY = ("map_embedding", "embedding_filter", "start_part")
    #: Method names that mutate their receiver in place.
    MUTATORS = frozenset(
        {
            "append",
            "extend",
            "insert",
            "remove",
            "pop",
            "popitem",
            "clear",
            "add",
            "discard",
            "update",
            "setdefault",
            "sort",
            "reverse",
            "appendleft",
            "extendleft",
        }
    )

    def check(self, module, context):
        diagnostics: list[Diagnostic] = []
        path = module.path
        classes = [info.node for info in module.classes]
        app_names = {"MiningApplication"}
        changed = True
        while changed:  # transitive: subclasses of in-file app subclasses
            changed = False
            for cls in classes:
                if cls.name in app_names:
                    continue
                bases = {_terminal_name(base) for base in cls.bases}
                if bases & app_names:
                    app_names.add(cls.name)
                    changed = True
        for cls in classes:
            if cls.name in app_names and cls.name != "MiningApplication":
                diagnostics.extend(self._check_class(cls, path))
        return diagnostics

    def _check_class(self, cls: ast.ClassDef, path: str) -> list[Diagnostic]:
        methods = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        hot = {name for name in self.HOT_ENTRY if name in methods}
        changed = True
        while changed:  # close over self-method calls from hot methods
            changed = False
            for name in tuple(hot):
                for node in ast.walk(methods[name]):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id == "self"
                        and node.func.attr in methods
                        and node.func.attr not in hot
                    ):
                        hot.add(node.func.attr)
                        changed = True
        diagnostics: list[Diagnostic] = []
        for name in sorted(hot):
            diagnostics.extend(self._check_method(cls, methods[name], path))
        return diagnostics

    def _check_method(
        self, cls: ast.ClassDef, method: ast.FunctionDef, path: str
    ) -> list[Diagnostic]:
        where = (
            f"in per-part hot method '{cls.name}.{method.name}'; per-part "
            f"mutation belongs in the start_part/finish_part part state"
        )
        diagnostics: list[Diagnostic] = []
        for node in ast.walk(method):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = node.targets
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self.MUTATORS
                and _contains_self_attribute(node.func.value)
            ):
                diagnostics.append(
                    self.diagnostic(
                        node,
                        path,
                        f"'.{node.func.attr}(...)' mutates shared application "
                        f"state ('self.{_first_self_attr(node.func.value)}') "
                        + where,
                    )
                )
                continue
            else:
                continue
            for target in targets:
                for hit in _self_rooted_targets(target):
                    diagnostics.append(
                        self.diagnostic(
                            hit,
                            path,
                            f"writes shared application state "
                            f"('self.{_first_self_attr(hit)}') " + where,
                        )
                    )
        return diagnostics


# ----------------------------------------------------------------------
# R002 — determinism
# ----------------------------------------------------------------------
class DeterminismRule(Rule):
    id = "R002"
    title = "no wall clocks, global RNG or set-order hazards"
    scope = ("core/", "apps/", "balance/", "service/")

    #: module -> function names whose results depend on wall clock/entropy.
    BANNED_CALLS = {
        "time": {"time", "time_ns"},
        "os": {"urandom"},
        "uuid": {"uuid1", "uuid4"},
    }
    #: ``random.X(...)`` exemptions: explicitly seeded generator classes.
    RANDOM_ALLOWED = {"Random"}
    #: ``np.random.X(...)`` exemptions: seeded generator constructors.
    NP_RANDOM_ALLOWED = {
        "default_rng",
        "Generator",
        "RandomState",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "Philox",
        "MT19937",
        "SFC64",
    }
    _SET_CONSUMERS = {"list", "tuple", "iter", "enumerate"}

    def check(self, module, context):
        tree, path = module.tree, module.path
        diagnostics: list[Diagnostic] = []
        module_aliases, from_banned = self._imports(tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                diagnostics.extend(
                    self._check_call(node, module_aliases, from_banned, path)
                )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                diagnostics.extend(self._check_set_iter(node.iter, path))
            elif isinstance(node, ast.comprehension):
                diagnostics.extend(self._check_set_iter(node.iter, path))
        return diagnostics

    def _imports(self, tree):
        module_aliases: dict[str, str] = {}
        from_banned: dict[str, tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    module_aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module is not None:
                banned = self.BANNED_CALLS.get(node.module, set())
                for alias in node.names:
                    if node.module == "random" and alias.name not in self.RANDOM_ALLOWED:
                        from_banned[alias.asname or alias.name] = (
                            "random",
                            alias.name,
                        )
                    elif alias.name in banned:
                        from_banned[alias.asname or alias.name] = (
                            node.module,
                            alias.name,
                        )
        return module_aliases, from_banned

    def _check_call(self, node, module_aliases, from_banned, path):
        func = node.func
        hint = "inject a clock or a seeded generator instead"
        if isinstance(func, ast.Name):
            if func.id in from_banned:
                module, original = from_banned[func.id]
                return [
                    self.diagnostic(
                        node,
                        path,
                        f"call to '{module}.{original}' in a deterministic "
                        f"module; {hint}",
                    )
                ]
            if func.id in self._SET_CONSUMERS and len(node.args) == 1:
                return self._check_set_iter(node.args[0], path)
            return []
        if not isinstance(func, ast.Attribute):
            return []
        receiver = func.value
        # np.random.X(...) — global numpy RNG state.
        if (
            isinstance(receiver, ast.Attribute)
            and receiver.attr == "random"
            and isinstance(receiver.value, ast.Name)
            and module_aliases.get(receiver.value.id) == "numpy"
            and func.attr not in self.NP_RANDOM_ALLOWED
        ):
            return [
                self.diagnostic(
                    node,
                    path,
                    f"'numpy.random.{func.attr}' uses the global RNG state; "
                    f"seed an explicit np.random.default_rng",
                )
            ]
        if not isinstance(receiver, ast.Name):
            return []
        module = module_aliases.get(receiver.id)
        if module == "random" and func.attr not in self.RANDOM_ALLOWED:
            return [
                self.diagnostic(
                    node,
                    path,
                    f"'random.{func.attr}' uses the global RNG state; "
                    f"seed an explicit random.Random",
                )
            ]
        if module in self.BANNED_CALLS and func.attr in self.BANNED_CALLS[module]:
            return [
                self.diagnostic(
                    node,
                    path,
                    f"wall-clock/entropy source '{module}.{func.attr}' in a "
                    f"deterministic module; {hint}",
                )
            ]
        if module == "datetime" or (
            isinstance(receiver, ast.Name) and receiver.id in ("datetime", "date")
        ):
            if func.attr in ("now", "utcnow", "today"):
                return [
                    self.diagnostic(
                        node,
                        path,
                        f"wall-clock source 'datetime.{func.attr}' in a "
                        f"deterministic module; {hint}",
                    )
                ]
        return []

    def _check_set_iter(self, expr: ast.AST, path: str) -> list[Diagnostic]:
        is_set = isinstance(expr, (ast.Set, ast.SetComp)) or (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in ("set", "frozenset")
        )
        if not is_set:
            return []
        return [
            self.diagnostic(
                expr,
                path,
                "iterating a set in hash order is not deterministic across "
                "processes; wrap it in sorted(...)",
            )
        ]


# ----------------------------------------------------------------------
# R003 — tracer guard
# ----------------------------------------------------------------------
class TracerGuardRule(Rule):
    id = "R003"
    title = "tracer probes in hot paths must check tracer.enabled"
    scope = ("core/kernels.py", "core/explore.py", "core/shm.py", "storage/")

    PROBES = frozenset({"begin", "end", "instant", "complete"})

    def check(self, module, context):
        tree, parents, path = module.tree, module.parents, module.path
        diagnostics: list[Diagnostic] = []
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self.PROBES
            ):
                continue
            receiver = _terminal_name(node.func.value)
            if receiver is None or not receiver.lower().endswith("tracer"):
                continue
            if self._guarded(node, parents):
                continue
            diagnostics.append(
                self.diagnostic(
                    node,
                    path,
                    f"'{receiver}.{node.func.attr}(...)' in a hot-path module "
                    f"without a dominating 'if {receiver}.enabled' guard "
                    f"(argument construction is paid even under NULL_TRACER)",
                )
            )
        return diagnostics

    def _guarded(self, node: ast.Call, parents: dict[int, ast.AST]) -> bool:
        enclosing_function: ast.AST | None = None
        child: ast.AST = node
        for ancestor in _ancestors(node, parents):
            if isinstance(ancestor, ast.If) and _mentions_enabled(ancestor.test):
                return True
            if (
                isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef))
                and enclosing_function is None
            ):
                enclosing_function = ancestor
                if self._early_guard(ancestor, child):
                    return True
            if enclosing_function is None:
                child = ancestor
        return False

    @staticmethod
    def _early_guard(function: ast.AST, containing_stmt: ast.AST) -> bool:
        """An ``if not tracer.enabled: return`` before the call's statement."""
        body = getattr(function, "body", [])
        for stmt in body:
            if stmt is containing_stmt:
                return False
            if (
                isinstance(stmt, ast.If)
                and _mentions_enabled(stmt.test)
                and stmt.body
                and all(
                    isinstance(s, (ast.Return, ast.Raise, ast.Continue))
                    for s in stmt.body
                )
            ):
                return True
        return False


# ----------------------------------------------------------------------
# R004 — dtype discipline
# ----------------------------------------------------------------------
class DtypeDisciplineRule(Rule):
    id = "R004"
    title = "no hard-coded narrow id dtypes where id_dtype is threaded"
    scope = (
        "core/kernels.py",
        "core/plan.py",
        "core/explore.py",
        "core/restrictions.py",
        "core/shm.py",
        "storage/spill.py",
        "storage/hybrid.py",
        "storage/checkpoint.py",
    )

    def check(self, module, context):
        tree, parents, path = module.tree, module.parents, module.path
        diagnostics: list[Diagnostic] = []
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Attribute)
                and node.attr == "int32"
                and isinstance(node.value, ast.Name)
                and node.value.id in ("np", "numpy")
            ):
                continue
            if self._exempt(node, parents):
                continue
            diagnostics.append(
                self.diagnostic(
                    node,
                    path,
                    "hard-coded np.int32 in an id-carrying module truncates "
                    "ids past 2^31; thread the planner's id dtype "
                    "(kernels.id_dtype / DEFAULT_ID_DTYPE) instead",
                )
            )
        return diagnostics

    @staticmethod
    def _exempt(node: ast.AST, parents: dict[int, ast.AST]) -> bool:
        for ancestor in _ancestors(node, parents):
            if (
                isinstance(ancestor, ast.Call)
                and isinstance(ancestor.func, ast.Attribute)
                and ancestor.func.attr == "iinfo"
            ):
                return True  # boundary query, not an array dtype
            if (
                isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef))
                and ancestor.name == "id_dtype"
            ):
                return True  # the selection point itself
        return False


# ----------------------------------------------------------------------
# R005 — error taxonomy
# ----------------------------------------------------------------------
class ErrorTaxonomyRule(Rule):
    id = "R005"
    title = "storage/service catch-alls must re-raise typed errors"
    scope = ("storage/", "service/")

    CATCH_ALLS = frozenset({"Exception", "BaseException"})

    def check(self, module, context):
        tree, path = module.tree, module.path
        diagnostics: list[Diagnostic] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                diagnostics.append(
                    self.diagnostic(
                        node,
                        path,
                        "bare 'except:' in a fault-handling module; catch a "
                        "specific error and re-raise a typed class from "
                        "repro.errors",
                    )
                )
                continue
            caught = self._catch_all_name(node.type)
            if caught is None:
                continue
            if any(isinstance(child, ast.Raise) for child in ast.walk(node)):
                continue
            diagnostics.append(
                self.diagnostic(
                    node,
                    path,
                    f"'except {caught}' swallows the error; fault handlers "
                    f"must re-raise a typed class from repro.errors",
                )
            )
        return diagnostics

    def _catch_all_name(self, type_node: ast.AST) -> str | None:
        if isinstance(type_node, ast.Tuple):
            for element in type_node.elts:
                name = self._catch_all_name(element)
                if name is not None:
                    return name
            return None
        name = _terminal_name(type_node)
        return name if name in self.CATCH_ALLS else None


# ----------------------------------------------------------------------
# R006 — lock discipline
# ----------------------------------------------------------------------
class LockDisciplineRule(Rule):
    id = "R006"
    title = "guarded fields must only be mutated under their lock"
    scope = ("service/", "core/executor.py", "storage/")

    #: Constructors whose result makes ``self.X`` a lock attribute.
    LOCK_FACTORIES = frozenset(
        {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
    )
    _GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")

    def check(self, module, context):
        diagnostics: list[Diagnostic] = []
        for cls in module.classes:
            diagnostics.extend(self._check_class(cls, module))
        return diagnostics

    # -- discovery -----------------------------------------------------
    def _lock_attrs(self, cls: ClassInfo) -> set[str]:
        locks: set[str] = set()
        for method in cls.methods.values():
            for node in ast.walk(method):
                if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
                    continue
                if _terminal_name(node.value.func) not in self.LOCK_FACTORIES:
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        locks.add(target.attr)
        return locks

    def _annotations(
        self, cls: ClassInfo, module: ModuleInfo, locks: set[str]
    ) -> tuple[dict[str, str], list[Diagnostic]]:
        """``# guarded-by: _lock`` comments on field assignments."""
        guarded: dict[str, str] = {}
        diagnostics: list[Diagnostic] = []
        for method in cls.methods.values():
            for node in ast.walk(method):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                fields = [
                    target.attr
                    for target in targets
                    if isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ]
                if not fields:
                    continue
                match = self._GUARDED_BY_RE.search(module.line(node.lineno))
                if match is None:
                    # Standalone-comment form on the line above; a line
                    # that holds code of its own annotates only itself.
                    previous = module.line(node.lineno - 1)
                    if previous.lstrip().startswith("#"):
                        match = self._GUARDED_BY_RE.search(previous)
                if match is None:
                    continue
                lock = match.group(1)
                if lock not in locks:
                    diagnostics.append(
                        self.diagnostic(
                            node,
                            module.path,
                            f"'# guarded-by: {lock}' names no lock attribute "
                            f"of '{cls.node.name}' (known locks: "
                            f"{sorted(locks) or 'none'})",
                        )
                    )
                    continue
                for field in fields:
                    guarded[field] = lock
        return guarded, diagnostics

    def _mutation_sites(
        self, cls: ClassInfo, locks: set[str]
    ) -> dict[str, list[tuple[ast.AST, ast.FunctionDef]]]:
        """Field name -> mutation nodes outside ``__init__``."""
        sites: dict[str, list[tuple[ast.AST, ast.FunctionDef]]] = {}
        for name, method in cls.methods.items():
            if name == "__init__":
                continue
            for node in ast.walk(method):
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, ast.AugAssign):
                    targets = [node.target]
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets = [node.target]
                elif isinstance(node, ast.Delete):
                    targets = node.targets
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in PartPurityRule.MUTATORS
                    and _contains_self_attribute(node.func.value)
                ):
                    field = _first_self_attr(node.func.value)
                    if field not in locks:
                        sites.setdefault(field, []).append((node, method))
                    continue
                else:
                    continue
                for target in targets:
                    for hit in _self_rooted_targets(target):
                        field = _first_self_attr(hit)
                        if field not in locks:
                            sites.setdefault(field, []).append((hit, method))
        return sites

    # -- lock-context reasoning ----------------------------------------
    def _with_lock_ancestor(
        self, node: ast.AST, lock: str, parents: dict[int, ast.AST]
    ) -> bool:
        for ancestor in _ancestors(node, parents):
            if not isinstance(ancestor, (ast.With, ast.AsyncWith)):
                continue
            for item in ancestor.items:
                expr = item.context_expr
                if (
                    isinstance(expr, ast.Attribute)
                    and expr.attr == lock
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"
                ):
                    return True
        return False

    def _lock_context_methods(self, cls: ClassInfo, lock: str) -> set[str]:
        """Methods whose every in-class call site holds ``lock``.

        The closure mirrors R001's hot-method machinery: a method is
        lock-context if each ``self.m()`` site is lexically under
        ``with self.<lock>:``, inside ``__init__`` (pre-sharing), or
        inside a method already known to be lock-context.  Methods with
        no in-class call sites are externally callable and stay out.
        """
        parents = cls.module.parents
        sites = cls.self_call_sites()
        locked: set[str] = set()
        changed = True
        while changed:
            changed = False
            for name in cls.methods:
                if name in locked or name == "__init__":
                    continue
                calls = sites.get(name)
                if not calls:
                    continue
                def _held(call: ast.Call) -> bool:
                    if self._with_lock_ancestor(call, lock, parents):
                        return True
                    enclosing = cls.enclosing_method(call)
                    if enclosing is None:
                        return False
                    return enclosing.name == "__init__" or enclosing.name in locked
                if all(_held(call) for call in calls):
                    locked.add(name)
                    changed = True
        return locked

    def _effectively_locked(
        self,
        node: ast.AST,
        method: ast.FunctionDef,
        lock: str,
        cls: ClassInfo,
        locked_methods: set[str],
    ) -> bool:
        if method.name == "__init__" or method.name in locked_methods:
            return True
        return self._with_lock_ancestor(node, lock, cls.module.parents)

    # -- the check -----------------------------------------------------
    def _check_class(self, cls: ClassInfo, module: ModuleInfo) -> list[Diagnostic]:
        locks = self._lock_attrs(cls)
        if not locks:
            return []
        guarded, diagnostics = self._annotations(cls, module, locks)
        mutations = self._mutation_sites(cls, locks)
        locked_methods = {lock: self._lock_context_methods(cls, lock) for lock in locks}
        # Inference fallback: a field whose mutations are (at least
        # partly) lock-held is treated as guarded by that lock — the
        # unlocked remainder is then the diagnostic.
        for field, sites in mutations.items():
            if field in guarded:
                continue
            locks_seen = {
                lock
                for lock in locks
                for node, method in sites
                if self._effectively_locked(node, method, lock, cls, locked_methods[lock])
                and method.name != "__init__"
            }
            if len(locks_seen) == 1:
                guarded[field] = next(iter(locks_seen))
        for field in sorted(guarded):
            lock = guarded[field]
            for node, method in mutations.get(field, ()):
                if self._effectively_locked(node, method, lock, cls, locked_methods[lock]):
                    continue
                diagnostics.append(
                    self.diagnostic(
                        node,
                        module.path,
                        f"mutates 'self.{field}' (guarded by 'self.{lock}') "
                        f"outside 'with self.{lock}:' in "
                        f"'{cls.node.name}.{method.name}'; take the lock or "
                        f"reach this site only from lock-holding methods",
                    )
                )
        return diagnostics


# ----------------------------------------------------------------------
# R007 — resource lifecycle
# ----------------------------------------------------------------------
class ResourceLifecycleRule(Rule):
    id = "R007"
    title = "acquired shm/mmap/tempfile resources must be released on all paths"
    scope = ("core/shm.py", "core/executor.py", "storage/")

    #: Constructor names whose result owns an OS-level resource.
    ACQUIRE_CONSTRUCTORS = frozenset(
        {"SharedMemory", "SharedKernelContext", "NamedTemporaryFile", "TemporaryFile"}
    )
    #: Method names that hand out an owned resource.
    ACQUIRE_METHODS = frozenset({"open_mmap"})
    RELEASE_METHODS = frozenset({"close", "unlink"})

    def check(self, module, context):
        diagnostics: list[Diagnostic] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                diagnostics.extend(self._check_function(node, module))
        return diagnostics

    def _is_acquisition(self, value: ast.AST) -> str | None:
        if not isinstance(value, ast.Call):
            return None
        name = _terminal_name(value.func)
        if name in self.ACQUIRE_CONSTRUCTORS:
            return name
        if isinstance(value.func, ast.Attribute) and value.func.attr in self.ACQUIRE_METHODS:
            return value.func.attr
        return None

    def _check_function(
        self, func: ast.FunctionDef, module: ModuleInfo
    ) -> list[Diagnostic]:
        acquisitions: list[tuple[ast.stmt, str, str]] = []
        for node in _shallow_walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            else:
                continue
            if not isinstance(target, ast.Name):
                continue
            source = self._is_acquisition(value)
            if source is not None:
                acquisitions.append((node, target.id, source))
        if not acquisitions:
            return []
        diagnostics: list[Diagnostic] = []
        cfg = None
        for stmt, var, source in acquisitions:
            escapes, releases = self._classify_uses(func, var, stmt, module)
            if escapes:
                continue
            if cfg is None:
                cfg = build_cfg(func)
            if leaks_to_exit(cfg, stmt, releases):
                diagnostics.append(
                    self.diagnostic(
                        stmt,
                        module.path,
                        f"'{var}' (acquired via '{source}') can reach the end "
                        f"of '{func.name}' without close()/unlink(); release "
                        f"it in try/finally, manage it with 'with', or "
                        f"register a weakref.finalize",
                    )
                )
        return diagnostics

    def _classify_uses(
        self, func: ast.FunctionDef, var: str, acquire: ast.stmt, module: ModuleInfo
    ) -> tuple[bool, list[ast.stmt]]:
        """Scan every use of ``var``: (escapes anywhere?, release stmts)."""
        parents = module.parents
        releases: list[ast.stmt] = []
        for node in ast.walk(func):
            if not (
                isinstance(node, ast.Name)
                and node.id == var
                and isinstance(node.ctx, ast.Load)
            ):
                continue
            verdict = self._classify_one(node, func, parents)
            if verdict == "escape":
                return True, []
            if verdict == "release":
                stmt = _enclosing_stmt(node, parents)
                if stmt is not None:
                    releases.append(stmt)
        return False, releases

    def _classify_one(
        self, name: ast.Name, func: ast.FunctionDef, parents: dict[int, ast.AST]
    ) -> str:
        child: ast.AST = name
        current = parents.get(id(name))
        while current is not None:
            if (
                isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
                and current is not func
            ):
                return "escape"  # closure capture outlives this frame
            if isinstance(current, ast.Call):
                if child is current.func:
                    if (
                        isinstance(current.func, ast.Attribute)
                        and current.func.value is name
                        and current.func.attr in self.RELEASE_METHODS
                    ):
                        return "release"
                    return "benign"  # other method call on the resource
                callee = _terminal_name(current.func)
                if callee == "finalize":
                    return "release"  # weakref.finalize(obj, release, x)
                return "escape"  # ownership handed to another call
            if isinstance(current, (ast.Return, ast.Yield, ast.YieldFrom)):
                return "escape"
            if isinstance(current, (ast.List, ast.Tuple, ast.Set, ast.Dict)):
                return "escape"  # stored in a container
            if isinstance(current, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                return "escape"  # aliased or stored on an object
            if isinstance(current, ast.withitem) and child is current.context_expr:
                return "release"  # with x: — __exit__ closes
            if isinstance(current, ast.stmt):
                return "benign"
            child = current
            current = parents.get(id(current))
        return "benign"


# ----------------------------------------------------------------------
# R008 — tracer/metric schema
# ----------------------------------------------------------------------
class TracerMetricSchemaRule(Rule):
    id = "R008"
    title = "tracer spans pair per function; metric names must be registered"
    scope = ("core/", "storage/", "service/", "obs/bridge.py")

    METRIC_METHODS = frozenset({"counter", "gauge", "histogram"})
    #: Receivers that are tenant-scoped MetricsView objects; emitted
    #: names gain the ``tenant.<name>.`` prefix at runtime.
    VIEW_RECEIVERS = frozenset({"view", "tenant_view"})

    def check(self, module, context):
        diagnostics: list[Diagnostic] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                diagnostics.extend(self._check_span_pairing(node, module))
        registry: tuple[str, ...] | None = None
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self.METRIC_METHODS
                and node.args
            ):
                continue
            name = self._resolve_metric_name(node, module)
            if name is None:
                continue
            if registry is None:
                registry = context.metric_registry(module)
            if not registry:
                continue  # no table anywhere: nothing to validate against
            if not any(self._matches(name, pattern) for pattern in registry):
                diagnostics.append(
                    self.diagnostic(
                        node,
                        module.path,
                        f"metric '{name}' is not in the obs bridge's "
                        f"METRIC_REGISTRY; register it (repro/obs/bridge.py) "
                        f"or dashboards will silently miss it",
                    )
                )
        return diagnostics

    # -- span pairing --------------------------------------------------
    def _check_span_pairing(
        self, func: ast.FunctionDef, module: ModuleInfo
    ) -> list[Diagnostic]:
        begins: dict[str, list[ast.Call]] = {}
        ends: dict[str, list[ast.Call]] = {}
        for node in _shallow_walk(func):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("begin", "end")
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                continue
            receiver = _terminal_name(node.func.value)
            if receiver is None or not receiver.lower().endswith("tracer"):
                continue
            bucket = begins if node.func.attr == "begin" else ends
            bucket.setdefault(node.args[0].value, []).append(node)
        diagnostics: list[Diagnostic] = []
        for name in sorted(set(begins) | set(ends)):
            opened = len(begins.get(name, ()))
            closed = len(ends.get(name, ()))
            if opened > closed:
                anchor = begins[name][closed]
                diagnostics.append(
                    self.diagnostic(
                        anchor,
                        module.path,
                        f"tracer.begin({name!r}) has no matching "
                        f"tracer.end({name!r}) in '{func.name}'; pair spans "
                        f"within one function (try/finally) so they close on "
                        f"every path",
                    )
                )
            elif closed > opened:
                anchor = ends[name][opened]
                diagnostics.append(
                    self.diagnostic(
                        anchor,
                        module.path,
                        f"tracer.end({name!r}) has no matching "
                        f"tracer.begin({name!r}) in '{func.name}'; spans must "
                        f"open and close in the same function",
                    )
                )
        return diagnostics

    # -- metric names --------------------------------------------------
    def _resolve_metric_name(
        self, call: ast.Call, module: ModuleInfo
    ) -> str | None:
        arg = call.args[0]
        name: str | None = None
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            name = arg.value
        elif isinstance(arg, ast.JoinedStr):
            parts: list[str] = []
            for piece in arg.values:
                if isinstance(piece, ast.Constant):
                    parts.append(str(piece.value))
                elif isinstance(piece, ast.FormattedValue):
                    resolved = self._resolve_placeholder(piece.value, call, module)
                    parts.append(resolved if resolved is not None else "*")
            name = "".join(parts)
        if name is None:
            return None
        receiver = call.func.value
        is_view = _terminal_name(receiver) in self.VIEW_RECEIVERS or (
            isinstance(receiver, ast.Call)
            and _terminal_name(receiver.func) == "view"
        )
        if is_view:
            name = f"tenant.*.{name}"
        return name

    def _resolve_placeholder(
        self, expr: ast.AST, call: ast.Call, module: ModuleInfo
    ) -> str | None:
        """A ``{prefix}`` placeholder resolves via the enclosing function's
        string default (the obs-bridge ``prefix="io"`` idiom)."""
        if not isinstance(expr, ast.Name):
            return None
        for ancestor in _ancestors(call, module.parents):
            if not isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = ancestor.args
            positional = args.posonlyargs + args.args
            defaults = args.defaults
            offset = len(positional) - len(defaults)
            for index, param in enumerate(positional):
                if param.arg != expr.id:
                    continue
                if index >= offset:
                    default = defaults[index - offset]
                    if isinstance(default, ast.Constant) and isinstance(
                        default.value, str
                    ):
                        return default.value
                return None
            for param, default in zip(args.kwonlyargs, args.kw_defaults):
                if param.arg == expr.id:
                    if isinstance(default, ast.Constant) and isinstance(
                        default.value, str
                    ):
                        return default.value
                    return None
            return None
        return None

    @staticmethod
    def _matches(name: str, pattern: str) -> bool:
        """Segment-wise match; ``*`` on either side matches one segment."""
        got = name.split(".")
        want = pattern.split(".")
        if len(got) != len(want):
            return False
        return all(g == w or g == "*" or w == "*" for g, w in zip(got, want))


#: Registry, in rule-id order.
RULES: tuple[Rule, ...] = (
    PartPurityRule(),
    DeterminismRule(),
    TracerGuardRule(),
    DtypeDisciplineRule(),
    ErrorTaxonomyRule(),
    LockDisciplineRule(),
    ResourceLifecycleRule(),
    TracerMetricSchemaRule(),
)


def rule_ids() -> tuple[str, ...]:
    return tuple(rule.id for rule in RULES)
