"""Background writing queue (Figure 7).

Workers append their finished parts to the queue; a single writer thread
flushes them to the part store so computation is not blocked on disk.
``flush()`` waits for everything submitted so far; the queue is also a
context manager that flushes and stops its thread on exit.
"""

from __future__ import annotations

import queue
import threading
from typing import TYPE_CHECKING

import numpy as np

from ..errors import StorageError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .spill import PartHandle, PartStore

__all__ = ["WritingQueue"]

_STOP = object()


class WritingQueue:
    """Asynchronous part writer preserving submission order.

    Set ``synchronous=True`` to write inline (deterministic tests).
    """

    def __init__(self, store: "PartStore", synchronous: bool = False) -> None:
        self.store = store
        self.synchronous = synchronous
        self._handles: list["PartHandle"] = []
        self._error: BaseException | None = None
        if not synchronous:
            self._queue: queue.Queue = queue.Queue(maxsize=16)
            self._thread = threading.Thread(
                target=self._run, name="kaleido-writer", daemon=True
            )
            self._thread.start()

    # ------------------------------------------------------------------
    def submit(self, array: np.ndarray, tag: str = "part") -> None:
        """Queue one array for writing; raises pending writer errors."""
        self._raise_pending()
        if self.synchronous:
            self._handles.append(self.store.save(array, tag=tag))
        else:
            self._queue.put((array, tag))

    def flush(self) -> list["PartHandle"]:
        """Wait for all submitted parts; return their handles in order."""
        if not self.synchronous:
            self._queue.join()
        self._raise_pending()
        return list(self._handles)

    def close(self) -> list["PartHandle"]:
        """Flush and stop the writer thread; returns all handles."""
        handles = self.flush()
        if not self.synchronous and self._thread.is_alive():
            self._queue.put(_STOP)
            self._thread.join(timeout=30)
        return handles

    def __enter__(self) -> "WritingQueue":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                self._queue.task_done()
                return
            array, tag = item
            try:
                self._handles.append(self.store.save(array, tag=tag))
            except BaseException as exc:  # surfaced on next submit/flush
                self._error = exc
            finally:
                self._queue.task_done()

    def _raise_pending(self) -> None:
        if self._error is not None:
            error, self._error = self._error, None
            raise StorageError(f"background writer failed: {error}") from error
