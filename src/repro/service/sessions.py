"""Engine sessions and the per-graph session pool.

A *session* is one :class:`~repro.core.engine.KaleidoEngine` kept warm
between queries: its executor's worker pool, its pattern-hash caches and
the graph's derived structures (adjacency views, the lazily built edge
index) all survive from run to run.  Runs on one engine must be
serialized, so each session carries a lock and the pool hands a session
to exactly one query at a time.

The pool is keyed by graph *fingerprint* (content identity, not object
identity): queries over the same data share warm sessions even when the
graph was reloaded.  Up to ``max_sessions_per_graph`` sessions exist per
graph so concurrent queries mine in parallel; past the cap, acquirers
block on a condition variable until a session frees.  All sessions share
one caller-supplied executor and one hasher (both thread-safe), which is
how N concurrent queries multiplex over a single worker pool.

Two invariants the pool enforces itself:

* **No stale reuse.**  A session is validated against its key on every
  acquire: if the graph object behind it was mutated in place (its
  current fingerprint no longer matches the pool key), the session is
  dropped instead of handed out, so a query over data that genuinely
  matches the key can never mine mutated contents.
* **Unlocked construction.**  Building an engine is the expensive part
  of a cold acquire, so it happens outside the pool lock: a slot is
  reserved under the lock, the engine is built unlocked, and the
  finished session is published under the lock again.  Warming one
  graph never serializes acquires and releases for another.

Sessions that are busy when dropped (``drop_graph`` / ``close``) are
*doomed* rather than leaked: the borrower finishes its run, and the
release path closes the engine of any session the pool no longer knows.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterator

from ..core.engine import KaleidoEngine
from ..graph.graph import Graph
from ..obs.metrics import MetricsRegistry

__all__ = ["EngineSession", "SessionPool"]


class EngineSession:
    """One warm engine plus the lock that serializes its runs."""

    def __init__(self, graph: Graph, engine: KaleidoEngine) -> None:
        self.graph = graph
        self.engine = engine
        self._lock = threading.Lock()

    def try_acquire(self) -> bool:
        return self._lock.acquire(blocking=False)

    def release(self) -> None:
        self._lock.release()

    @property
    def runs_completed(self) -> int:
        return self.engine.runs_completed

    def close(self) -> None:
        self.engine.close()


class SessionPool:
    """Bounded pool of warm engine sessions, keyed by graph fingerprint."""

    def __init__(
        self,
        engine_factory: Callable[[Graph], KaleidoEngine],
        max_sessions_per_graph: int = 4,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_sessions_per_graph < 1:
            raise ValueError("max_sessions_per_graph must be positive")
        self._engine_factory = engine_factory
        self.max_sessions_per_graph = max_sessions_per_graph
        self._cond = threading.Condition()
        self._sessions: dict[str, list[EngineSession]] = {}  # guarded-by: _cond
        #: In-flight engine builds per fingerprint; a reservation counts
        #: against the per-graph cap so concurrent cold acquires cannot
        #: overshoot it while the factory runs unlocked.
        self._building: dict[str, int] = {}  # guarded-by: _cond
        #: Sessions forgotten while busy; closed by :meth:`_release`.
        self._doomed: set[EngineSession] = set()  # guarded-by: _cond
        self._closed = False  # guarded-by: _cond
        metrics = metrics if metrics is not None else MetricsRegistry()
        self._created = metrics.counter("service.sessions.created")
        self._reused = metrics.counter("service.sessions.reused")
        self._live = metrics.gauge("service.sessions.live")

    @contextmanager
    def session(self, graph: Graph) -> Iterator[EngineSession]:
        """Borrow a session for ``graph``, blocking at the per-graph cap."""
        acquired = self._acquire(graph)
        try:
            yield acquired
        finally:
            self._release(acquired)

    def _acquire(self, graph: Graph) -> EngineSession:
        fingerprint = graph.fingerprint()
        while True:
            stale: list[EngineSession] = []
            reserved = False
            with self._cond:
                while True:
                    if self._closed:
                        raise RuntimeError("session pool is closed")
                    sessions = self._sessions.setdefault(fingerprint, [])
                    for candidate in list(sessions):
                        # The session's graph object mutated since it was
                        # keyed: its engine would mine the new contents
                        # under the old key.  Never hand it out.
                        if candidate.graph.fingerprint() != fingerprint:
                            sessions.remove(candidate)
                            if candidate.try_acquire():
                                stale.append(candidate)
                            else:
                                self._doomed.add(candidate)
                    if stale:
                        self._live.set(self._total_locked())
                        self._cond.notify_all()
                        break  # close the stale engines unlocked, rescan
                    for candidate in sessions:
                        if candidate.try_acquire():
                            self._reused.inc()
                            return candidate
                    building = self._building.get(fingerprint, 0)
                    if len(sessions) + building < self.max_sessions_per_graph:
                        self._building[fingerprint] = building + 1
                        reserved = True
                        break
                    self._cond.wait()
            for candidate in stale:
                candidate.close()
            if reserved:
                return self._build(graph, fingerprint)

    def _build(self, graph: Graph, fingerprint: str) -> EngineSession:
        """Construct a session against a reserved slot, outside the lock."""
        try:
            engine = self._engine_factory(graph)
        except BaseException:
            with self._cond:
                self._unreserve(fingerprint)
                self._cond.notify_all()
            raise
        session = EngineSession(graph, engine)
        session.try_acquire()
        with self._cond:
            self._unreserve(fingerprint)
            closed = self._closed
            if not closed:
                self._sessions.setdefault(fingerprint, []).append(session)
                self._created.inc()
                self._live.set(self._total_locked())
            self._cond.notify_all()
        if closed:  # pool shut down while the engine was building
            session.release()
            session.close()
            raise RuntimeError("session pool is closed")
        return session

    def _unreserve(self, fingerprint: str) -> None:
        remaining = self._building.get(fingerprint, 1) - 1
        if remaining > 0:
            self._building[fingerprint] = remaining
        else:
            self._building.pop(fingerprint, None)

    def _release(self, session: EngineSession) -> None:
        with self._cond:
            session.release()
            doomed = session in self._doomed
            self._doomed.discard(session)
            self._cond.notify_all()
        if doomed:
            # The pool forgot this session while we were running; it is
            # unreachable to other acquirers, so closing unlocked is safe.
            session.close()

    def _total_locked(self) -> int:
        return sum(len(sessions) for sessions in self._sessions.values())

    def fingerprints_for(self, graph: Graph) -> set[str]:
        """Pool keys whose sessions are bound to this exact graph object.

        After an in-place mutation these are the *pre-mutation*
        fingerprints the object was served under — which is how
        :meth:`MiningService.invalidate_graph` finds stale state without
        the caller having to remember old digests.
        """
        with self._cond:
            return {
                fingerprint
                for fingerprint, sessions in self._sessions.items()
                if any(session.graph is graph for session in sessions)
            }

    def drop_graph(self, fingerprint: str) -> int:
        """Close and forget every session for one fingerprint.

        Idle sessions close immediately.  A busy session (query in
        flight) is doomed: the borrower's run finishes normally and
        :meth:`_release` closes the engine when it comes back — nothing
        leaks.  Returns the number of sessions dropped (idle + doomed).
        """
        with self._cond:
            dropped = self._sessions.pop(fingerprint, [])
            idle: list[EngineSession] = []
            for session in dropped:
                if session.try_acquire():
                    idle.append(session)
                else:
                    self._doomed.add(session)
            self._live.set(self._total_locked())
            self._cond.notify_all()
        for session in idle:
            session.close()
            session.release()
        return len(dropped)

    def __len__(self) -> int:
        with self._cond:
            return self._total_locked()

    def close(self) -> None:
        """Close every session's engine (idempotent).

        Sessions busy at close time are doomed and closed on release,
        like :meth:`drop_graph`.
        """
        with self._cond:
            self._closed = True
            dropped = [s for sessions in self._sessions.values() for s in sessions]
            self._sessions.clear()
            idle: list[EngineSession] = []
            for session in dropped:
                if session.try_acquire():
                    idle.append(session)
                else:
                    self._doomed.add(session)
            self._live.set(0)
            self._cond.notify_all()
        for session in idle:
            session.close()
