"""Engine emits structured progress through the standard logging module."""

import logging

from repro import KaleidoEngine, MotifCounting


def test_info_summary_logged(paper_graph, caplog):
    with caplog.at_level(logging.INFO, logger="repro.engine"):
        KaleidoEngine(paper_graph).run(MotifCounting(3))
    messages = [r.message for r in caplog.records]
    assert any("3-Motif" in m and "wall" in m for m in messages)


def test_debug_per_level_logged(paper_graph, caplog):
    with caplog.at_level(logging.DEBUG, logger="repro.engine"):
        KaleidoEngine(paper_graph).run(MotifCounting(4))
    debug = [r for r in caplog.records if r.levelno == logging.DEBUG]
    # One line per exploration iteration (4-Motif explores twice).
    assert len(debug) >= 2
    assert "embeddings" in debug[0].message


def test_silent_by_default(paper_graph, caplog):
    with caplog.at_level(logging.WARNING, logger="repro.engine"):
        KaleidoEngine(paper_graph).run(MotifCounting(3))
    assert not caplog.records
