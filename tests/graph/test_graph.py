"""Unit tests for the CSR Graph."""

import numpy as np
import pytest

from repro.errors import GraphConstructionError
from repro.graph import Graph, from_edge_list


def test_basic_stats(paper_graph):
    assert paper_graph.num_vertices == 6  # includes isolated vertex 0
    assert paper_graph.num_edges == 7
    assert paper_graph.average_degree == pytest.approx(14 / 6)


def test_neighbors_sorted(paper_graph):
    for v in range(paper_graph.num_vertices):
        nbrs = paper_graph.neighbors(v)
        assert np.all(np.diff(nbrs) > 0)


def test_neighbors_content(paper_graph):
    assert paper_graph.neighbors(2).tolist() == [1, 3, 5]
    assert paper_graph.neighbors(5).tolist() == [1, 2, 3, 4]
    assert paper_graph.neighbors(0).tolist() == []


def test_degree(paper_graph):
    assert paper_graph.degree(5) == 4
    assert paper_graph.degree(0) == 0
    assert paper_graph.degrees().tolist() == [0, 2, 3, 3, 2, 4]


def test_has_edge(paper_graph):
    assert paper_graph.has_edge(1, 2)
    assert paper_graph.has_edge(2, 1)
    assert not paper_graph.has_edge(1, 3)
    assert not paper_graph.has_edge(0, 1)
    assert not paper_graph.has_edge(1, 1)


def test_edges_unique_and_ordered(paper_graph):
    edges = list(paper_graph.edges())
    assert len(edges) == 7
    assert all(u < v for u, v in edges)
    assert edges == sorted(edges)


def test_edge_arrays_lexicographic(paper_graph):
    eu, ev = paper_graph.edge_arrays()
    pairs = list(zip(eu.tolist(), ev.tolist()))
    assert pairs == sorted(pairs)
    assert (1, 2) in pairs and (4, 5) in pairs


def test_common_neighbors(paper_graph):
    assert paper_graph.common_neighbors(1, 2).tolist() == [5]
    assert paper_graph.common_neighbors(3, 5).tolist() == [2, 4]
    assert paper_graph.common_neighbors(0, 1).tolist() == []


def test_labels_default_zero(paper_graph):
    assert paper_graph.labels.tolist() == [0] * 6
    assert paper_graph.num_labels == 1


def test_relabel(paper_graph):
    relabeled = paper_graph.relabel([0, 1, 2, 0, 1, 2])
    assert relabeled.label(2) == 2
    assert relabeled.num_labels == 3
    # Topology untouched.
    assert relabeled.num_edges == paper_graph.num_edges


def test_relabel_wrong_length(paper_graph):
    with pytest.raises(GraphConstructionError):
        paper_graph.relabel([0, 1])


def test_induced_subgraph_edges(paper_graph):
    edges = paper_graph.induced_subgraph_edges([2, 3, 5])
    assert edges == [(2, 3), (2, 5), (3, 5)]


def test_nbytes_positive(paper_graph):
    assert paper_graph.nbytes > 0


def test_invalid_indptr_rejected():
    with pytest.raises(GraphConstructionError):
        Graph(
            np.array([0, 2, 1]),
            np.array([1, 0], dtype=np.int32),
            np.zeros(2, dtype=np.int32),
        )


def test_indptr_label_mismatch():
    with pytest.raises(GraphConstructionError):
        Graph(
            np.array([0, 0]),
            np.zeros(0, dtype=np.int32),
            np.zeros(3, dtype=np.int32),
        )


def test_empty_graph():
    g = from_edge_list([])
    assert g.num_vertices == 0
    assert g.num_edges == 0
    assert g.average_degree == 0.0
    assert g.num_labels == 0


def test_adjacency_keys_sorted_membership(paper_graph):
    g = paper_graph
    keys = g.adjacency_keys()
    assert keys.shape == g.indices.shape
    # Globally ascending, so searchsorted answers batched membership.
    assert np.all(keys[1:] > keys[:-1])
    n = g.num_vertices
    for u in range(n):
        for v in range(n):
            packed = u * n + v
            pos = np.searchsorted(keys, packed)
            found = pos < keys.shape[0] and keys[pos] == packed
            assert found == g.has_edge(u, v)
    assert g.adjacency_keys() is keys  # cached
