"""Runtime sanitizers: a shared-state race detector and a lock-order checker.

Static rule R001 sees direct ``self.x = ...`` writes in hot methods, but
not writes routed through helpers, aliases or ``setattr``.  The
:class:`PartPuritySanitizer` closes that gap at runtime: while the
engine is inside a *hot phase* (the executor is running per-part tasks,
possibly on pool threads), every attribute write on the wrapped
application raises :class:`~repro.errors.PartPurityError` immediately —
the write that would have been a silent cross-part race becomes a loud
failure at its exact source line.

Mechanics: instance attribute writes go through
``type(obj).__setattr__``, so wrapping the app in a proxy object is not
enough — the app's own methods would still see the real ``self``.
Instead the sanitizer swaps ``app.__class__`` for a dynamically created
subclass whose ``__setattr__`` / ``__delattr__`` consult the hot-phase
flag.  Outside hot phases (``init``, ``finish_part``, ``reduce``,
``prune`` — all coordinator-serial) writes pass straight through, so a
well-behaved app runs byte-identical to an unsanitized run.

The :class:`LockOrderSanitizer` is the runtime complement of static
rule R006: R006 checks that guarded fields are touched under their
lock, the sanitizer checks that the locks themselves are taken in one
consistent global order.  It wraps the project's lock attributes in
recording proxies during ``--sanitize`` runs, maintains a per-thread
held stack plus a global held→acquired edge graph, and raises a typed
:class:`~repro.errors.LockOrderError` the moment a blocking acquire
would close a cycle — deterministically, without needing two threads
to actually interleave into the deadlock.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass

from ..errors import LockOrderError, PartPurityError

__all__ = [
    "AttributeWrite",
    "LockOrderSanitizer",
    "PartPuritySanitizer",
    "TrackedLock",
]


@dataclass(frozen=True)
class AttributeWrite:
    """One recorded attribute write on the sanitized application."""

    attribute: str
    kind: str  # "set" or "delete"
    thread: str
    hot: bool


class PartPuritySanitizer:
    """Context manager that polices attribute writes on one application.

    Usage (what the engine does under ``sanitize=True``)::

        sanitizer = PartPuritySanitizer(app)
        with sanitizer:                  # swaps in the recording class
            app.init(graph)              # cold: allowed, recorded
            with sanitizer.hot_phase():  # executor.run(...) window
                ...                      # any self.* write -> raises

    The swap preserves ``__name__`` / ``__qualname__`` / ``__module__``
    on the generated class so ``app.name`` (which reads
    ``type(self).__name__``) is unchanged, and uses empty ``__slots__``
    so the instance layout is untouched.
    """

    def __init__(self, app: object) -> None:
        self.app = app
        self.writes: list[AttributeWrite] = []
        self._hot = threading.Event()
        self._original_class: type | None = None
        self._lock = threading.Lock()

    # -- write recording ------------------------------------------------
    def _record(self, attribute: str, kind: str) -> None:
        hot = self._hot.is_set()
        write = AttributeWrite(
            attribute=attribute,
            kind=kind,
            thread=threading.current_thread().name,
            hot=hot,
        )
        with self._lock:
            self.writes.append(write)
        if hot:
            app_name = type(self.app).__name__
            raise PartPurityError(
                f"{app_name} wrote shared attribute '{attribute}' "
                f"({kind}) during a per-part hot phase on thread "
                f"'{write.thread}'; per-part mutation must live in the "
                f"state returned by start_part and be absorbed in "
                f"finish_part"
            )

    # -- class swap -----------------------------------------------------
    def _make_recording_class(self, base: type) -> type:
        sanitizer = self

        def __setattr__(obj: object, name: str, value: object) -> None:
            if name != "__class__":  # the sanitizer's own swap-back
                sanitizer._record(name, "set")
            super(recording, obj).__setattr__(name, value)

        def __delattr__(obj: object, name: str) -> None:
            sanitizer._record(name, "delete")
            super(recording, obj).__delattr__(name)

        recording = type(
            base.__name__,
            (base,),
            {
                "__setattr__": __setattr__,
                "__delattr__": __delattr__,
                "__slots__": (),
                "__qualname__": base.__qualname__,
                "__module__": base.__module__,
                "_repro_sanitized_base_": base,
            },
        )
        return recording

    def __enter__(self) -> "PartPuritySanitizer":
        if self._original_class is not None:
            raise RuntimeError("sanitizer already active")
        base = type(self.app)
        self._original_class = base
        self.app.__class__ = self._make_recording_class(base)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._original_class is not None:
            self.app.__class__ = self._original_class
            self._original_class = None
        self._hot.clear()

    # -- hot-phase window ----------------------------------------------
    @contextmanager
    def hot_phase(self):
        """Mark the window where per-part tasks run (executor active)."""
        self._hot.set()
        try:
            yield
        finally:
            self._hot.clear()

    # -- reporting ------------------------------------------------------
    @property
    def hot_writes(self) -> list[AttributeWrite]:
        return [write for write in self.writes if write.hot]


# ----------------------------------------------------------------------
# Lock-order sanitizer
# ----------------------------------------------------------------------

#: Primitive lock types the sanitizer knows how to wrap.
_LOCK_TYPES = (type(threading.Lock()), type(threading.RLock()), threading.Condition)


class TrackedLock:
    """Recording proxy around a ``Lock``/``RLock``/``Condition``.

    Acquisition order is reported to the owning
    :class:`LockOrderSanitizer` *before* blocking, so an inversion
    raises :class:`~repro.errors.LockOrderError` instead of deadlocking.
    ``Condition.wait`` temporarily drops the lock; the proxy mirrors
    that in the held-stack bookkeeping so edges recorded while waiting
    stay accurate.  Everything else delegates to the wrapped primitive.
    """

    def __init__(self, sanitizer: "LockOrderSanitizer", name: str, inner: object) -> None:
        self._sanitizer = sanitizer
        self._name = name
        self._inner = inner

    @property
    def name(self) -> str:
        return self._name

    @property
    def inner(self) -> object:
        return self._inner

    # -- lock protocol --------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if blocking:
            self._sanitizer._before_blocking_acquire(self._name)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._sanitizer._note_held(self._name)
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._sanitizer._note_released(self._name)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    # -- condition protocol ---------------------------------------------
    def wait(self, timeout: float | None = None) -> bool:
        self._sanitizer._note_released(self._name)
        try:
            return self._inner.wait(timeout)
        finally:
            # wait() re-acquired the underlying lock on the way out;
            # re-check ordering against whatever else is still held.
            self._sanitizer._before_blocking_acquire(self._name)
            self._sanitizer._note_held(self._name)

    def wait_for(self, predicate, timeout: float | None = None):
        self._sanitizer._note_released(self._name)
        try:
            return self._inner.wait_for(predicate, timeout)
        finally:
            self._sanitizer._before_blocking_acquire(self._name)
            self._sanitizer._note_held(self._name)

    def __getattr__(self, attr: str):
        return getattr(self._inner, attr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TrackedLock({self._name!r}, {self._inner!r})"


class LockOrderSanitizer:
    """Global lock-order checker for ``--sanitize`` runs.

    Usage::

        sanitizer = LockOrderSanitizer()
        sanitizer.instrument(executor)   # wraps lock-typed attributes
        sanitizer.instrument(service)
        try:
            ...                          # run; inversions raise
        finally:
            sanitizer.restore()          # put the raw locks back

    Lock identity is the *name* (``ClassName.attr``), not the instance:
    ordering discipline is a property of the code paths, and collapsing
    per-instance locks onto their class keeps one session's lock from
    producing a spurious edge against another session's.  A name
    already on the thread's held stack is treated as reentrant and adds
    no edges.
    """

    def __init__(self) -> None:
        self._graph_lock = threading.Lock()
        #: held-name -> names acquired while it was held.
        self._edges: dict[str, set[str]] = {}
        #: (held, acquired) -> thread name that first recorded the edge.
        self._edge_threads: dict[tuple[str, str], str] = {}
        self._held = threading.local()
        self._instrumented: list[tuple[object, str, object]] = []

    # -- per-thread stack ----------------------------------------------
    def _stack(self) -> list[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def held_locks(self) -> tuple[str, ...]:
        """The current thread's held-lock names, outermost first."""
        return tuple(self._stack())

    def _note_held(self, name: str) -> None:
        self._stack().append(name)

    def _note_released(self, name: str) -> None:
        stack = self._stack()
        if name in stack:
            stack.reverse()
            stack.remove(name)  # innermost occurrence
            stack.reverse()

    # -- ordering graph -------------------------------------------------
    def edges(self) -> frozenset[tuple[str, str]]:
        """Every recorded (held, acquired) ordering edge."""
        with self._graph_lock:
            return frozenset(
                (held, acquired)
                for held, targets in self._edges.items()
                for acquired in targets
            )

    def _path(self, start: str, goal: str) -> list[str] | None:
        """A path start -> ... -> goal in the edge graph, if any."""
        frontier: list[list[str]] = [[start]]
        seen = {start}
        while frontier:
            path = frontier.pop()
            if path[-1] == goal:
                return path
            for nxt in self._edges.get(path[-1], ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(path + [nxt])
        return None

    def _before_blocking_acquire(self, name: str) -> None:
        stack = self._stack()
        if not stack or name in stack:  # first lock, or reentrant
            return
        thread = threading.current_thread().name
        with self._graph_lock:
            for held in stack:
                cycle = self._path(name, held)
                if cycle is not None:
                    chain = " -> ".join(cycle)
                    origin = self._edge_threads.get((cycle[0], cycle[1]), "?")
                    raise LockOrderError(
                        f"lock-order inversion: thread '{thread}' wants "
                        f"'{name}' while holding '{held}', but the reverse "
                        f"order {chain} was already recorded (first by "
                        f"thread '{origin}'); acquiring these locks in "
                        f"inconsistent orders can deadlock"
                    )
            for held in stack:
                targets = self._edges.setdefault(held, set())
                if name not in targets:
                    targets.add(name)
                    self._edge_threads[(held, name)] = thread

    # -- instrumentation ------------------------------------------------
    def wrap(self, lock: object, name: str) -> TrackedLock:
        """Wrap one lock under an explicit name."""
        if isinstance(lock, TrackedLock):
            return lock
        return TrackedLock(self, name, lock)

    def instrument(self, obj: object) -> list[str]:
        """Swap every lock-typed attribute of ``obj`` for a tracked proxy.

        Returns the wrapped attribute names; :meth:`restore` puts the
        raw locks back (instrumentation is strictly scoped to the
        sanitized run).
        """
        wrapped: list[str] = []
        attrs = getattr(obj, "__dict__", None)
        if not attrs:
            return wrapped
        label = type(obj).__name__
        for attr, value in list(attrs.items()):
            if isinstance(value, TrackedLock) or not isinstance(value, _LOCK_TYPES):
                continue
            setattr(obj, attr, TrackedLock(self, f"{label}.{attr}", value))
            self._instrumented.append((obj, attr, value))
            wrapped.append(f"{label}.{attr}")
        return wrapped

    def restore(self) -> None:
        """Undo every :meth:`instrument`, restoring the raw locks."""
        while self._instrumented:
            obj, attr, original = self._instrumented.pop()
            setattr(obj, attr, original)

    def __enter__(self) -> "LockOrderSanitizer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.restore()
