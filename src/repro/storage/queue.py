"""Background writing queue (Figure 7).

Workers append their finished parts to the queue; a single writer thread
flushes them to the part store so computation is not blocked on disk.
``flush()`` waits for everything submitted so far; the queue is also a
context manager that flushes and stops its thread on exit.

Submissions may carry an explicit part ``index``: a concurrent executor
finishes parts out of order, and the queue reorders handles by index at
flush time so the assembled level is deterministic.  ``close()`` is
idempotent (it caches its handle list), and ``discard()`` stops the queue
and deletes every part it wrote — the error path when an executor raises
mid-level.

The writer retries saves that fail with
:class:`~repro.errors.TransientStorageError` under its own
:class:`~repro.storage.retry.RetryPolicy` (on top of the store's
internal per-syscall retries), so a burst of transient faults longer
than the store's budget still drains through the queue instead of
aborting the level.
"""

from __future__ import annotations

import queue
import threading
from typing import TYPE_CHECKING

import numpy as np

from ..errors import StorageError, TransientStorageError
from .retry import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .spill import PartHandle, PartStore

__all__ = ["WritingQueue"]

_STOP = object()


class WritingQueue:
    """Asynchronous part writer preserving part order.

    Set ``synchronous=True`` to write inline (deterministic tests).
    ``maxsize`` bounds the number of in-flight arrays (backpressure on
    the producers); ``retry`` governs writer-level re-attempts when the
    store gives up on a save with a transient error.
    """

    def __init__(
        self,
        store: "PartStore",
        synchronous: bool = False,
        maxsize: int = 16,
        retry: RetryPolicy | None = None,
    ) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self.store = store
        self.synchronous = synchronous
        self.maxsize = maxsize
        self.retry = retry if retry is not None else RetryPolicy(attempts=2)
        #: Observability: queue depth gauge + written-part counter on the
        #: store's registry (None when the store is uninstrumented).
        self._metrics = getattr(store, "metrics", None)
        #: (sort key, handle) pairs; the key is the submitted part index,
        #: falling back to the submission sequence number.
        self._results: list[tuple[int, "PartHandle"]] = []
        self._seq = 0
        self._error: BaseException | None = None
        self._closed = False
        self._cached: list["PartHandle"] | None = None
        if not synchronous:
            self._queue: queue.Queue = queue.Queue(maxsize=maxsize)
            self._thread = threading.Thread(
                target=self._run, name="kaleido-writer", daemon=True
            )
            self._thread.start()

    # ------------------------------------------------------------------
    def _save_with_retry(self, array: np.ndarray, tag: str) -> "PartHandle":
        """Save through the store, re-attempting exhausted transients."""
        for attempt in range(self.retry.attempts):
            try:
                return self.store.save(array, tag=tag)
            except TransientStorageError:
                if attempt + 1 >= self.retry.attempts:
                    raise
                self.retry.backoff(attempt)
        raise AssertionError("unreachable")  # pragma: no cover

    def submit(
        self, array: np.ndarray, tag: str = "part", index: int | None = None
    ) -> None:
        """Queue one array for writing; raises pending writer errors."""
        if self._closed:
            raise StorageError("cannot submit to a closed writing queue")
        self._raise_pending()
        # Explicit indices must not collide with later unindexed writes:
        # only the latter consume the sequence counter, and an explicit
        # index pushes the counter past itself.
        if index is None:
            key = self._seq
            self._seq += 1
        else:
            key = int(index)
            self._seq = max(self._seq, key + 1)
        if self.synchronous:
            self._results.append((key, self._save_with_retry(array, tag)))
            if self._metrics is not None:
                self._metrics.counter("queue.parts_written").inc()
        else:
            self._queue.put((key, array, tag))
            if self._metrics is not None:
                self._metrics.gauge("queue.depth").set(self._queue.qsize())

    def flush(self) -> list["PartHandle"]:
        """Wait for all submitted parts; return their handles in part order."""
        if not self.synchronous and not self._closed:
            self._queue.join()
        self._raise_pending()
        return [handle for _, handle in sorted(self._results, key=lambda kv: kv[0])]

    def close(self) -> list["PartHandle"]:
        """Flush and stop the writer thread; returns all handles.

        Idempotent: calling again returns the same handle list without
        touching the (already stopped) writer thread.
        """
        if self._closed:
            return list(self._cached or [])
        handles = self.flush()
        self._stop_thread()
        self._closed = True
        self._cached = handles
        return list(handles)

    def discard(self) -> None:
        """Stop the queue and delete every part it wrote (best effort).

        Error-path cleanup: safe to call whether or not the queue was
        closed, and swallows pending writer errors (the caller is already
        unwinding from one).
        """
        if not self._closed:
            if not self.synchronous:
                self._queue.join()
            self._stop_thread()
            self._closed = True
        self._error = None
        for _, handle in self._results:
            self.store.delete(handle)
        self._results.clear()
        self._cached = []

    def __enter__(self) -> "WritingQueue":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _stop_thread(self) -> None:
        if not self.synchronous and self._thread.is_alive():
            self._queue.put(_STOP)
            self._thread.join(timeout=30)

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                self._queue.task_done()
                return
            key, array, tag = item
            try:
                self._results.append((key, self._save_with_retry(array, tag)))
                if self._metrics is not None:
                    self._metrics.counter("queue.parts_written").inc()
            except BaseException as exc:  # repro: ignore[R005] -- deferred re-raise in _raise_pending
                self._error = exc
            finally:
                self._queue.task_done()
                if self._metrics is not None:
                    self._metrics.gauge("queue.depth").set(self._queue.qsize())

    def _raise_pending(self) -> None:
        if self._error is not None:
            error, self._error = self._error, None
            # Preserve the storage taxonomy: the engine reacts differently
            # to DiskFullError / TransientStorageError than to a plain
            # StorageError, even when the failure happened on the writer
            # thread.
            wrapper = type(error) if isinstance(error, StorageError) else StorageError
            raise wrapper(f"background writer failed: {error}") from error
