"""Retry with capped exponential backoff for transient storage faults.

Disk I/O fails in two very different ways: *transiently* (a busy device,
an interrupted syscall, a flaky read that succeeds on the next attempt)
and *permanently* (no space, no permission, a corrupt payload).  The
:class:`RetryPolicy` below retries only the former, doubling a small
delay between attempts up to a cap; both the sleep function and the
delays are injectable so tests (and the fault-injection suite) run
deterministic retries without real waiting.
"""

from __future__ import annotations

import errno
import time
from typing import Callable

__all__ = ["RetryPolicy", "is_transient_oserror", "is_disk_full_oserror"]

#: errno values treated as retryable — the fault is expected to clear.
_TRANSIENT_ERRNOS = frozenset(
    {errno.EAGAIN, errno.EINTR, errno.EIO, errno.EBUSY, errno.ETIMEDOUT}
)

#: errno values meaning the device is out of space (degrade, don't retry).
_DISK_FULL_ERRNOS = frozenset({errno.ENOSPC, errno.EDQUOT})


def is_transient_oserror(exc: OSError) -> bool:
    """Whether an :class:`OSError` is worth retrying."""
    return exc.errno in _TRANSIENT_ERRNOS


def is_disk_full_oserror(exc: OSError) -> bool:
    """Whether an :class:`OSError` means the device is full."""
    return exc.errno in _DISK_FULL_ERRNOS


class RetryPolicy:
    """Capped exponential backoff: delays ``base * 2^i`` up to ``max_delay``.

    ``attempts`` counts *total* tries, so ``attempts=1`` disables
    retrying.  ``sleep`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        attempts: int = 4,
        base_delay: float = 0.01,
        max_delay: float = 1.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if attempts < 1:
            raise ValueError("attempts must be at least 1")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be non-negative")
        self.attempts = attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.sleep = sleep

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        return min(self.max_delay, self.base_delay * (2**attempt))

    def backoff(self, attempt: int) -> None:
        """Sleep the capped exponential delay for ``attempt`` (0-based)."""
        self.sleep(self.delay(attempt))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RetryPolicy(attempts={self.attempts}, "
            f"base={self.base_delay}s, cap={self.max_delay}s)"
        )
