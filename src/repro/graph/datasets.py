"""Named dataset registry with paper-scale statistics and scaled stand-ins.

The paper evaluates on four labeled graphs (Table 1).  CiteSeer is small
enough to reproduce at full scale; the other three are replaced by
deterministic power-law stand-ins whose label counts match the paper and
whose average degrees are close, at a vertex count a pure-Python engine can
mine in reasonable time (see "Substitutions" in DESIGN.md).

Three profiles trade fidelity for speed:

``tiny``
    For unit tests: a few hundred vertices.
``bench``
    Default for the benchmark harness: large enough for stable rankings.
``large``
    Closest to paper shape that remains Python-feasible.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..errors import UnknownDatasetError
from .generators import chung_lu, ensure_connected_core
from .graph import Graph

__all__ = ["DatasetSpec", "PAPER_STATS", "dataset_names", "load", "patent_with_labels"]


@dataclass(frozen=True)
class DatasetSpec:
    """One dataset at one profile."""

    name: str
    num_vertices: int
    num_edges: int
    num_labels: int
    seed: int
    exponent: float = 2.3


#: Statistics of the real datasets as reported in Table 1 of the paper.
PAPER_STATS: dict[str, dict[str, int]] = {
    "citeseer": {"vertices": 3_312, "edges": 4_536, "labels": 6, "avg_degree": 3},
    "mico": {"vertices": 100_000, "edges": 1_080_298, "labels": 29, "avg_degree": 22},
    "patent": {"vertices": 3_774_768, "edges": 16_518_948, "labels": 37, "avg_degree": 9},
    "youtube": {"vertices": 7_065_219, "edges": 59_811_883, "labels": 29, "avg_degree": 17},
}

_PROFILES: dict[str, dict[str, DatasetSpec]] = {
    "tiny": {
        "citeseer": DatasetSpec("citeseer", 400, 560, 6, seed=11),
        "mico": DatasetSpec("mico", 150, 900, 29, seed=23),
        "patent": DatasetSpec("patent", 300, 1_200, 37, seed=37),
        "youtube": DatasetSpec("youtube", 350, 1_900, 29, seed=41),
    },
    "bench": {
        # CiteSeer at full paper scale; others scaled down with matched
        # label counts and the paper's density ordering (MiCo densest).
        # Sizes are chosen so the slowest Table-2 cell (4-Motif on MiCo,
        # all three systems) stays within interactive benchmark budgets in
        # pure Python; see DESIGN.md substitutions.
        "citeseer": DatasetSpec("citeseer", 3_312, 4_536, 6, seed=11),
        "mico": DatasetSpec("mico", 300, 1_800, 29, seed=23),
        "patent": DatasetSpec("patent", 800, 2_800, 37, seed=37),
        "youtube": DatasetSpec("youtube", 800, 3_400, 29, seed=41),
    },
    "large": {
        "citeseer": DatasetSpec("citeseer", 3_312, 4_536, 6, seed=11),
        "mico": DatasetSpec("mico", 2_000, 20_000, 29, seed=23),
        "patent": DatasetSpec("patent", 6_000, 27_000, 37, seed=37),
        "youtube": DatasetSpec("youtube", 8_000, 64_000, 29, seed=41),
    },
}


def dataset_names() -> list[str]:
    """Names accepted by :func:`load`."""
    return sorted(_PROFILES["bench"])


def _spec(name: str, profile: str) -> DatasetSpec:
    try:
        by_name = _PROFILES[profile]
    except KeyError as exc:
        raise UnknownDatasetError(
            f"unknown profile {profile!r}; choose from {sorted(_PROFILES)}"
        ) from exc
    try:
        return by_name[name]
    except KeyError as exc:
        raise UnknownDatasetError(
            f"unknown dataset {name!r}; choose from {sorted(by_name)}"
        ) from exc


@lru_cache(maxsize=32)
def load(name: str, profile: str = "bench") -> Graph:
    """Load (generate) a named dataset at the given profile.

    Generation is deterministic in (name, profile); results are cached so
    repeated benchmark invocations share one graph object.
    """
    spec = _spec(name, profile)
    graph = chung_lu(
        spec.num_vertices,
        spec.num_edges,
        seed=spec.seed,
        num_labels=spec.num_labels,
        exponent=spec.exponent,
    )
    graph = ensure_connected_core(graph, seed=spec.seed + 7)
    graph.name = f"{name}[{profile}]"
    return graph


def patent_with_labels(num_labels: int, profile: str = "bench") -> Graph:
    """The Patent topology under a coarser labeling (Figure 13).

    The real Patent graph has a category (7 labels) / sub-category
    (37 labels) hierarchy; the 7-label variant groups sub-categories into
    categories.  We reproduce that by integer-dividing the 37 labels into
    ``num_labels`` contiguous groups.
    """
    base = load("patent", profile)
    if num_labels == base.num_labels:
        return base
    group = -(-base.num_labels // num_labels)  # ceil division
    labels = (base.labels // group).astype(np.int32)
    graph = base.relabel(labels, name=f"patent-{num_labels}[{profile}]")
    return graph
