"""Unit tests for the tracer: spans, instants, threads, the null tracer."""

import threading

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    SHAPE_IGNORED_ARGS,
    TraceEvent,
    Tracer,
    span_tree_shape,
)


class FakeClock:
    """Deterministic injected clock: each call advances by ``step``."""

    def __init__(self, step: float = 1.0) -> None:
        self.time = 0.0
        self.step = step

    def __call__(self) -> float:
        now = self.time
        self.time += self.step
        return now


def test_begin_end_records_pair_with_timestamps():
    tracer = Tracer(clock=FakeClock())
    tracer.begin("run", app="motif")
    tracer.end("run")
    begin, end = tracer.events
    assert (begin.kind, begin.name, begin.ts) == ("begin", "run", 1.0)
    assert (end.kind, end.name, end.ts) == ("end", "run", 2.0)
    assert begin.args == {"app": "motif"}
    assert begin.parent is None and begin.depth == 0


def test_nested_spans_record_parent_and_depth():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("run"):
        with tracer.span("level", index=0):
            with tracer.span("plan"):
                pass
    begins = {e.name: e for e in tracer.events if e.kind == "begin"}
    assert begins["run"].parent is None
    assert begins["level"].parent == "run" and begins["level"].depth == 1
    assert begins["plan"].parent == "level" and begins["plan"].depth == 2
    assert tracer.open_spans() == []


def test_mismatched_end_raises():
    tracer = Tracer()
    tracer.begin("outer")
    tracer.begin("inner")
    with pytest.raises(ValueError, match="inner"):
        tracer.end("outer")
    with pytest.raises(ValueError):
        Tracer().end("never-opened")


def test_span_context_manager_closes_on_exception():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("run"):
            raise RuntimeError("boom")
    assert tracer.open_spans() == []
    kinds = [e.kind for e in tracer.events]
    assert kinds == ["begin", "end"]


def test_instant_carries_enclosing_span():
    tracer = Tracer()
    with tracer.span("execute"):
        tracer.instant("spill", depth=2)
    (instant,) = [e for e in tracer.events if e.kind == "instant"]
    assert instant.parent == "execute"
    assert instant.args == {"depth": 2}


def test_complete_span_explicit_track_and_duration():
    tracer = Tracer(clock=FakeClock())
    tracer.complete("part", start=1.0, end=3.5, track="worker-2", parent="execute")
    (event,) = tracer.events
    assert event.kind == "complete"
    assert event.track == "worker-2"
    assert event.dur == pytest.approx(2.5)
    assert event.parent == "execute"


def test_complete_rejects_negative_duration():
    with pytest.raises(ValueError):
        Tracer().complete("part", start=2.0, end=1.0)


def test_spans_nest_per_thread():
    tracer = Tracer()
    tracer.begin("main-span")
    seen: list[str | None] = []

    def worker():
        # A fresh thread sees an empty stack: its spans do not nest
        # inside the main thread's open span.
        with tracer.span("worker-span"):
            seen.extend(tracer.open_spans())

    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()
    tracer.end("main-span")
    assert seen == ["worker-span"]
    begin = next(e for e in tracer.events if e.name == "worker-span")
    assert begin.parent is None


def test_events_property_is_a_snapshot():
    tracer = Tracer()
    tracer.instant("a")
    snapshot = tracer.events
    tracer.instant("b")
    assert len(snapshot) == 1
    assert len(tracer) == 2


def test_null_tracer_is_inert():
    assert NULL_TRACER.enabled is False
    assert isinstance(NULL_TRACER, NullTracer)
    NULL_TRACER.begin("x")
    NULL_TRACER.end("anything")  # no mismatch error: it records nothing
    NULL_TRACER.instant("y")
    NULL_TRACER.complete("z", start=0.0, end=1.0)
    with NULL_TRACER.span("w"):
        pass
    assert NULL_TRACER.events == []
    assert len(NULL_TRACER) == 0
    assert NULL_TRACER.open_spans() == []
    assert NULL_TRACER.now() == 0.0


def test_shape_ignores_timing_and_worker_args():
    a = [
        TraceEvent("complete", "part", 0.0, "worker-0", parent="execute",
                   dur=1.0, args={"task": 3, "worker": 0}),
    ]
    b = [
        TraceEvent("complete", "part", 9.9, "worker-1", parent="execute",
                   dur=0.1, args={"task": 3, "worker": 1}),
    ]
    assert span_tree_shape(a) == span_tree_shape(b)
    assert "worker" in SHAPE_IGNORED_ARGS


def test_shape_distinguishes_structure():
    a = [TraceEvent("begin", "level", 0.0, 1, parent="run", args={"index": 0})]
    b = [TraceEvent("begin", "level", 0.0, 1, parent="run", args={"index": 1})]
    assert span_tree_shape(a) != span_tree_shape(b)
    # end events carry no extra shape information (their begin does).
    ended = a + [TraceEvent("end", "level", 1.0, 1, parent="run")]
    assert span_tree_shape(a) == span_tree_shape(ended)
