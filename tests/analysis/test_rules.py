"""Each rule fires on its bad fixture and stays silent on its good one."""

from pathlib import Path

import pytest

from repro.analysis import lint_file, lint_source, rule_ids

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id -> expected violation count in its bad fixture.
EXPECTED_BAD_HITS = {
    "R001": 6,
    "R002": 6,
    "R003": 4,
    "R004": 2,
    "R005": 3,
    "R006": 4,
    "R007": 3,
    "R008": 4,
}


@pytest.mark.parametrize("rule", sorted(EXPECTED_BAD_HITS))
def test_rule_fires_on_bad_fixture(rule):
    diagnostics = lint_file(FIXTURES / f"{rule.lower()}_bad.py", select=[rule])
    assert len(diagnostics) == EXPECTED_BAD_HITS[rule]
    assert {diag.rule for diag in diagnostics} == {rule}
    for diag in diagnostics:
        assert diag.line > 0
        assert rule in diag.format()


@pytest.mark.parametrize("rule", sorted(EXPECTED_BAD_HITS))
def test_rule_silent_on_good_fixture(rule):
    diagnostics = lint_file(FIXTURES / f"{rule.lower()}_good.py", select=[rule])
    assert diagnostics == []


#: service-flavoured fixtures for the rules whose scope covers service/.
EXPECTED_SERVICE_BAD_HITS = {
    "R002": 4,
    "R005": 3,
}


@pytest.mark.parametrize("rule", sorted(EXPECTED_SERVICE_BAD_HITS))
def test_rule_fires_on_service_bad_fixture(rule):
    diagnostics = lint_file(
        FIXTURES / f"{rule.lower()}_service_bad.py", select=[rule]
    )
    assert len(diagnostics) == EXPECTED_SERVICE_BAD_HITS[rule]
    assert {diag.rule for diag in diagnostics} == {rule}


@pytest.mark.parametrize("rule", sorted(EXPECTED_SERVICE_BAD_HITS))
def test_rule_silent_on_service_good_fixture(rule):
    diagnostics = lint_file(
        FIXTURES / f"{rule.lower()}_service_good.py", select=[rule]
    )
    assert diagnostics == []


def test_registry_lists_all_rules():
    assert rule_ids() == (
        "R001",
        "R002",
        "R003",
        "R004",
        "R005",
        "R006",
        "R007",
        "R008",
    )


def test_trailing_suppression_silences_own_line():
    source = (
        "import time\n"
        "def f():\n"
        "    return time.time()  # repro: ignore[R002]\n"
    )
    assert lint_source(source, select=["R002"]) == []


def test_standalone_suppression_silences_next_line():
    source = (
        "import time\n"
        "def f():\n"
        "    # repro: ignore[R002] -- test clock\n"
        "    return time.time()\n"
    )
    assert lint_source(source, select=["R002"]) == []


def test_suppression_is_rule_specific():
    source = (
        "import time\n"
        "def f():\n"
        "    return time.time()  # repro: ignore[R001]\n"
    )
    diagnostics = lint_source(source, select=["R002"])
    assert [diag.rule for diag in diagnostics] == ["R002"]


def test_multi_rule_suppression():
    source = (
        "import time\n"
        "def f():\n"
        "    return time.time()  # repro: ignore[R001, R002]\n"
    )
    assert lint_source(source, select=["R002"]) == []


def test_syntax_error_reports_parse_diagnostic():
    diagnostics = lint_source("def broken(:\n")
    assert len(diagnostics) == 1
    assert diagnostics[0].rule == "E999"


def test_unknown_select_raises():
    with pytest.raises(ValueError, match="R999"):
        lint_source("x = 1\n", select=["R999"])


def test_scoping_limits_rules_without_select():
    # R005 is scoped to storage/ and service/: the same code is clean
    # in core/.
    source = "try:\n    pass\nexcept Exception:\n    pass\n"
    storage = lint_source(source, path="src/repro/storage/thing.py")
    service = lint_source(source, path="src/repro/service/thing.py")
    core = lint_source(source, path="src/repro/core/thing.py")
    assert [diag.rule for diag in storage] == ["R005"]
    assert [diag.rule for diag in service] == ["R005"]
    assert core == []


def test_r002_scope_covers_service():
    source = "import time\ndef f():\n    return time.time()\n"
    service = lint_source(source, path="src/repro/service/thing.py")
    obs = lint_source(source, path="src/repro/obs/thing.py")
    assert [diag.rule for diag in service] == ["R002"]
    assert obs == []


def test_select_bypasses_module_scoping():
    # An explicit --select means "run this rule HERE": R005 is scoped
    # to storage/ and service/, but selecting it on a core-path module
    # still applies it.
    source = "try:\n    pass\nexcept Exception:\n    pass\n"
    out_of_scope = "src/repro/core/thing.py"
    assert lint_source(source, path=out_of_scope) == []  # scoping holds
    selected = lint_source(source, path=out_of_scope, select=["R005"])
    assert [diag.rule for diag in selected] == ["R005"]


def test_r006_annotation_does_not_bleed_to_next_line():
    # A trailing '# guarded-by:' comment annotates its own assignment,
    # not the assignment on the following line.
    source = (
        "import threading\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._a = 0  # guarded-by: _lock\n"
        "        self._b = 0\n"
        "    def bump_b(self):\n"
        "        self._b += 1\n"
    )
    assert lint_source(source, select=["R006"]) == []


def test_r006_transitive_lock_context():
    # A helper whose every in-class call site holds the lock may mutate
    # guarded state; an externally callable helper may not.
    source = (
        "import threading\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._items = []  # guarded-by: _lock\n"
        "    def add(self, x):\n"
        "        with self._lock:\n"
        "            self._push(x)\n"
        "    def _push(self, x):\n"
        "        self._items.append(x)\n"
        "    def unsafe_push(self, x):\n"
        "        self._items.append(x)\n"
    )
    diagnostics = lint_source(source, select=["R006"])
    assert len(diagnostics) == 1
    assert "unsafe_push" in diagnostics[0].message
