"""Failure injection: storage errors must surface, not corrupt results."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage import PartStore, SpillingSink, WritingQueue


class FailingStore(PartStore):
    """A PartStore whose saves start failing after `allow` writes."""

    def __init__(self, directory, allow: int):
        super().__init__(directory)
        self.allow = allow
        self.attempts = 0

    def save(self, array, tag="part"):
        self.attempts += 1
        if self.attempts > self.allow:
            raise StorageError("injected write failure")
        return super().save(array, tag=tag)


def test_queue_surfaces_async_error(tmp_path):
    store = FailingStore(str(tmp_path), allow=1)
    queue = WritingQueue(store, synchronous=False)
    queue.submit(np.arange(3, dtype=np.int32))
    queue.submit(np.arange(3, dtype=np.int32))  # will fail in background
    with pytest.raises(StorageError, match="background writer failed"):
        queue.close()


def test_queue_synchronous_error_immediate(tmp_path):
    store = FailingStore(str(tmp_path), allow=0)
    queue = WritingQueue(store, synchronous=True)
    with pytest.raises(StorageError, match="injected"):
        queue.submit(np.arange(3, dtype=np.int32))


def test_sink_propagates_failure(tmp_path, paper_graph):
    from repro.core import CSE
    from repro.core.explore import expand_vertex_level

    store = FailingStore(str(tmp_path), allow=0)
    cse = CSE(np.arange(6))
    sink = SpillingSink(store, synchronous=True, prefetch=False)
    with pytest.raises(StorageError):
        expand_vertex_level(paper_graph, cse, sink=sink)


def test_engine_error_leaves_no_partial_result(tmp_path, paper_graph, monkeypatch):
    """If spilling fails mid-run, the engine raises instead of returning a
    silently truncated result."""
    from repro import KaleidoEngine, MotifCounting
    from repro.storage import hybrid

    original = hybrid.SpillingSink

    def broken_sink(store, **kwargs):
        return SpillingSink(FailingStore(store.directory, allow=0), **kwargs)

    monkeypatch.setattr(hybrid.StoragePolicy, "sink_for_next_level",
                        lambda self, cse, predicted, bytes_per_entry=4, dtype=None:
                        broken_sink(self._ensure_store(),
                                    synchronous=True, prefetch=False))
    engine = KaleidoEngine(
        paper_graph, storage_mode="spill-last", spill_dir=str(tmp_path)
    )
    with pytest.raises(StorageError):
        engine.run(MotifCounting(3))
    assert original is hybrid.SpillingSink  # sanity: we only patched policy


def test_queue_error_then_recovers(tmp_path):
    """After an error is raised and consumed, the queue can keep going."""
    store = FailingStore(str(tmp_path), allow=1)
    queue = WritingQueue(store, synchronous=True)
    queue.submit(np.arange(2, dtype=np.int32))
    with pytest.raises(StorageError):
        queue.submit(np.arange(2, dtype=np.int32))
    store.allow = 10**9
    queue.submit(np.arange(2, dtype=np.int32))
    assert len(queue.close()) == 2
