"""Unit tests for the WritingQueue and SlidingWindowReader."""

import numpy as np
import pytest

from repro.errors import CorruptPartError, StorageError
from repro.storage import (
    FaultPlan,
    FaultSpec,
    FaultyPartStore,
    PartStore,
    SlidingWindowReader,
    WritingQueue,
)


@pytest.mark.parametrize("synchronous", [True, False])
def test_queue_order_preserved(tmp_path, synchronous):
    store = PartStore(str(tmp_path))
    queue = WritingQueue(store, synchronous=synchronous)
    for i in range(8):
        queue.submit(np.full(4, i, dtype=np.int32))
    handles = queue.close()
    assert len(handles) == 8
    for i, handle in enumerate(handles):
        assert store.load(handle).tolist() == [i] * 4


def test_queue_mixed_indexed_and_unindexed_keys(tmp_path):
    """An unindexed submit after explicit indices must sort after them —
    the sequence counter skips past every explicit index, so mixing the
    two styles can never produce duplicate sort keys."""
    store = PartStore(str(tmp_path))
    queue = WritingQueue(store, synchronous=True)
    queue.submit(np.full(2, 1, dtype=np.int32), index=1)
    queue.submit(np.full(2, 0, dtype=np.int32), index=0)
    queue.submit(np.full(2, 2, dtype=np.int32))  # unindexed → key 2, not 1
    handles = queue.close()
    assert [store.load(h).tolist() for h in handles] == [[0, 0], [1, 1], [2, 2]]


def test_queue_flush_mid_stream(tmp_path):
    store = PartStore(str(tmp_path))
    with WritingQueue(store) as queue:
        queue.submit(np.arange(3, dtype=np.int32))
        assert len(queue.flush()) == 1
        queue.submit(np.arange(2, dtype=np.int32))
        assert len(queue.flush()) == 2


def test_queue_tracks_io(tmp_path):
    store = PartStore(str(tmp_path))
    with WritingQueue(store) as queue:
        queue.submit(np.zeros(100, dtype=np.int32))
    assert store.io.bytes_written > 400


def test_queue_maxsize_validated_and_bounded(tmp_path):
    store = PartStore(str(tmp_path))
    with pytest.raises(ValueError):
        WritingQueue(store, maxsize=0)
    queue = WritingQueue(store, maxsize=2)
    assert queue.maxsize == 2
    for i in range(6):  # more submissions than slots: backpressure, no loss
        queue.submit(np.full(3, i, dtype=np.int32))
    handles = queue.close()
    assert [store.load(h)[0] for h in handles] == list(range(6))


def test_queue_maxsize_threaded_from_policy(tmp_path):
    from repro.storage import MemoryBudget, MemoryMeter, StoragePolicy
    from repro.core import CSE

    policy = StoragePolicy(
        MemoryBudget(None),
        MemoryMeter(),
        store=PartStore(str(tmp_path)),
        force_spill_last=True,
        queue_maxsize=3,
    )
    sink = policy.make_sink(CSE([0, 1, 2]))
    assert sink._queue.maxsize == 3
    sink.abort()


def test_discard_after_writer_error_deletes_all_parts(tmp_path):
    """The error-path contract: after a mid-level writer failure, discard()
    removes every part that *was* written — nothing leaks."""
    plan = FaultPlan([FaultSpec(op="save", kind="permanent", at=3)])
    store = FaultyPartStore(str(tmp_path), plan=plan)
    queue = WritingQueue(store, synchronous=False)
    for i in range(3):  # third save fails on the writer thread
        queue.submit(np.full(4, i, dtype=np.int32))
    with pytest.raises(StorageError):
        queue.close()
    queue.discard()
    assert not list(tmp_path.glob("*.npy"))
    assert not list(tmp_path.glob("*.tmp"))


def test_window_reader_orders(tmp_path):
    store = PartStore(str(tmp_path))
    handles = [store.save(np.full(3, i, dtype=np.int32)) for i in range(5)]
    for prefetch in (False, True):
        reader = SlidingWindowReader(store, handles, prefetch=prefetch)
        seen = [chunk.tolist() for chunk in reader]
        assert seen == [[i] * 3 for i in range(5)]


def test_window_reader_empty(tmp_path):
    store = PartStore(str(tmp_path))
    assert list(SlidingWindowReader(store, [], prefetch=True)) == []


def test_window_reader_single_part(tmp_path):
    store = PartStore(str(tmp_path))
    handles = [store.save(np.arange(7, dtype=np.int32))]
    chunks = list(SlidingWindowReader(store, handles, prefetch=True))
    assert len(chunks) == 1 and chunks[0].tolist() == list(range(7))


def test_window_reader_propagates_errors(tmp_path):
    import os

    store = PartStore(str(tmp_path))
    handles = [store.save(np.arange(3, dtype=np.int32)) for _ in range(3)]
    os.remove(handles[1].path)
    reader = SlidingWindowReader(store, handles, prefetch=True)
    with pytest.raises(Exception):
        list(reader)


def test_window_reader_prefetch_error_surfaces_at_consumer(tmp_path):
    """A load failing on the prefetch thread re-raises on the consuming
    iterator at the failed part's position — never lost in the background."""
    plan = FaultPlan([FaultSpec(op="load", kind="corrupt", at=2)])
    store = FaultyPartStore(str(tmp_path), plan=plan)
    handles = [store.save(np.full(3, i, dtype=np.int32)) for i in range(3)]
    it = iter(SlidingWindowReader(store, handles, prefetch=True))
    assert next(it).tolist() == [0, 0, 0]  # part 1 fine; part 2 prefetching
    with pytest.raises(CorruptPartError):
        next(it)


def test_window_reader_depth(tmp_path):
    store = PartStore(str(tmp_path))
    handles = [store.save(np.full(3, i, dtype=np.int32)) for i in range(6)]
    reader = SlidingWindowReader(store, handles, prefetch=True, depth=2)
    assert reader.window_parts == 3
    assert [c[0] for c in reader] == list(range(6))
    assert SlidingWindowReader(store, handles, depth=0).window_parts == 1
    assert SlidingWindowReader(store, handles, prefetch=False).window_parts == 1
    with pytest.raises(ValueError):
        SlidingWindowReader(store, handles, depth=-1)


def test_window_reader_hides_io(tmp_path):
    """Prefetch keeps total wall time under serial load+consume time."""
    import time

    store = PartStore(str(tmp_path))
    handles = [store.save(np.arange(50_000, dtype=np.int32)) for _ in range(4)]

    def consume(reader):
        total = 0
        for chunk in reader:
            time.sleep(0.02)  # simulated compute per window
            total += int(chunk[0])
        return total

    # Only assert equivalence of results; timing assertions on shared CI
    # boxes are flaky, the I/O overlap is demonstrated in the benchmarks.
    a = consume(SlidingWindowReader(store, handles, prefetch=False))
    b = consume(SlidingWindowReader(store, handles, prefetch=True))
    assert a == b
