"""GREEN / YELLOW / RED complexity routing for the query tier.

Every admitted query is classified before any mining starts:

* **GREEN** — the result cache already holds the answer; serve it
  instantly.
* **YELLOW** — the cheap path: the query asked for approximate mode, or
  its cost estimate exceeds the effective budget and degradation is
  allowed.  Served by the sampling estimator
  (:mod:`repro.apps.approximate`) at interactive latency.
* **RED** — a full out-of-core engine run on a session from the pool.

The cost estimate is deliberately crude — seed count times average
branching per exploration level — because it only has to be *monotone
enough* to keep obviously-over-budget queries off the engine pool; the
engine's own ``max_embeddings`` guard (threaded from the same budget)
is the precise backstop for estimates that were too optimistic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..errors import QueryRejectedError
from ..graph.graph import Graph
from ..obs.metrics import MetricsRegistry
from .request import APPROXIMABLE_APPS, QueryRequest, Route

__all__ = ["RouteDecision", "ComplexityRouter", "estimate_embeddings"]


def estimate_embeddings(
    graph: Graph, app: str, k: int, params: Mapping[str, Any]
) -> int:
    """Crude upper-ish estimate of a query's total embedding count.

    Seeds × (average degree)^(levels): vertices seed vertex-induced
    exploration, edges seed edge-induced, and each exploration iteration
    multiplies by the average branching factor.  Ignores canonicality
    pruning (overestimates) and skew (underestimates hubs) — good
    enough to rank queries against a budget, nothing more.
    """
    degree = max(1.0, graph.average_degree)
    if app == "tc":
        return int(graph.num_edges * degree)
    if app == "fsm":
        levels = max(0, int(params.get("edges", 2)) - 1)
        return int(graph.num_edges * degree**levels)
    # motif / clique: vertex-induced, k - 1 expansion iterations.
    return int(graph.num_vertices * degree ** max(0, k - 1))


@dataclass(frozen=True)
class RouteDecision:
    """The router's verdict for one query."""

    route: Route
    reason: str
    estimated_embeddings: int | None = None
    #: True when a RED-shaped query was downgraded to YELLOW by budget.
    degraded: bool = False


class ComplexityRouter:
    """Classifies queries and accounts the routing mix."""

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        metrics = metrics if metrics is not None else MetricsRegistry()
        self._green = metrics.counter("service.route.green")
        self._yellow = metrics.counter("service.route.yellow")
        self._red = metrics.counter("service.route.red")
        self._degraded = metrics.counter("service.route.degraded")
        self._rejected = metrics.counter("service.route.rejected")

    def classify(
        self,
        request: QueryRequest,
        graph: Graph,
        cached: bool,
        max_embeddings: int | None,
    ) -> RouteDecision:
        """Route one query, or refuse it.

        ``max_embeddings`` is the *effective* budget — the query's own
        cap already clamped by the tenant ceiling.  Raises
        :class:`QueryRejectedError` for over-budget queries that cannot
        degrade; every other outcome is a decision, counted under
        ``service.route.*``.
        """
        if cached:
            self._green.inc()
            return RouteDecision(Route.GREEN, "result-cache hit")
        if request.mode == "approximate":
            self._yellow.inc()
            return RouteDecision(Route.YELLOW, "approximate mode requested")
        estimate = estimate_embeddings(graph, request.app, request.k, request.params)
        if max_embeddings is not None and estimate > max_embeddings:
            allow = request.budget.allow_degraded if request.budget is not None else True
            if allow and request.app in APPROXIMABLE_APPS:
                self._yellow.inc()
                self._degraded.inc()
                return RouteDecision(
                    Route.YELLOW,
                    f"estimated {estimate:,} embeddings over the "
                    f"{max_embeddings:,} budget; degraded to sampling",
                    estimated_embeddings=estimate,
                    degraded=True,
                )
            self._rejected.inc()
            raise QueryRejectedError(
                f"estimated {estimate:,} embeddings exceed the "
                f"{max_embeddings:,} budget and the query cannot degrade "
                f"(app {request.app!r}, allow_degraded={allow})"
            )
        self._red.inc()
        return RouteDecision(
            Route.RED, "full out-of-core run", estimated_embeddings=estimate
        )
