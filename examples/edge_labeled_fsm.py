"""Frequent subgraph mining with edge labels (Definition 1's L(u, v)).

Scenario: a payment network where vertices are account types (person,
merchant, bank) and edges carry a transaction type (card, wire, cash).
Edge-labeled FSM finds the frequent *typed* interaction patterns — e.g.
"person -card-> merchant -wire-> bank" — which plain vertex-labeled FSM
cannot distinguish from other transaction mixes.

Usage::

    python examples/edge_labeled_fsm.py
"""

from __future__ import annotations

import numpy as np

from repro import FrequentSubgraphMining, KaleidoEngine
from repro.graph import GraphBuilder

PERSON, MERCHANT, BANK = 0, 1, 2
CARD, WIRE, CASH = 0, 1, 2
VERTEX_NAMES = {PERSON: "person", MERCHANT: "merchant", BANK: "bank"}
EDGE_NAMES = {CARD: "card", WIRE: "wire", CASH: "cash"}
SEED = 13


def build_payment_network():
    rng = np.random.default_rng(SEED)
    num_people, num_merchants, num_banks = 400, 60, 8
    builder = GraphBuilder(num_people + num_merchants + num_banks)
    labels = (
        [PERSON] * num_people + [MERCHANT] * num_merchants + [BANK] * num_banks
    )
    builder.set_labels(labels)
    edges: dict[tuple[int, int], int] = {}
    # People pay merchants, mostly by card, sometimes cash.
    for p in range(num_people):
        for _ in range(int(rng.integers(1, 4))):
            m = num_people + int(rng.integers(num_merchants))
            edges[(p, m)] = CARD if rng.random() < 0.8 else CASH
    # Merchants settle with banks by wire.
    for m in range(num_people, num_people + num_merchants):
        b = num_people + num_merchants + int(rng.integers(num_banks))
        edges[(m, b)] = WIRE
    # A few interbank wires.
    for _ in range(12):
        a = num_people + num_merchants + int(rng.integers(num_banks))
        b = num_people + num_merchants + int(rng.integers(num_banks))
        if a != b:
            edges[(min(a, b), max(a, b))] = WIRE
    for (u, v) in edges:
        builder.add_edge(u, v)
    graph = builder.build(name="payments")
    eu, ev = graph.edge_arrays()
    edge_labels = [edges[(min(u, v), max(u, v))] for u, v in zip(eu, ev)]
    return graph.with_edge_labels(edge_labels, name="payments")


def describe(pattern) -> str:
    parts = []
    k = pattern.num_vertices
    for i in range(k):
        for j in range(i + 1, k):
            if pattern.has_edge(i, j):
                parts.append(
                    f"{VERTEX_NAMES[pattern.labels[i]]} -"
                    f"{EDGE_NAMES[pattern.edge_label_at(i, j)]}- "
                    f"{VERTEX_NAMES[pattern.labels[j]]}"
                )
    return ", ".join(parts)


def main() -> None:
    graph = build_payment_network()
    print(f"Payment network: {graph} (edge-labeled: {graph.has_edge_labels})\n")

    result = KaleidoEngine(graph).run(
        FrequentSubgraphMining(num_edges=2, support=15, exact_mni=True)
    )
    print(f"Frequent 2-transaction patterns (support >= 15): {len(result.value)}")
    for phash, support in sorted(result.value.items(), key=lambda kv: -kv[1]):
        pattern = result.value.patterns.get(phash)
        if pattern is not None:
            print(f"  support={support:<5} {describe(pattern)}")

    # The same mine with edge labels stripped collapses typed patterns.
    plain = KaleidoEngine(
        graph.with_edge_labels([0] * graph.num_edges)
    ).run(FrequentSubgraphMining(num_edges=2, support=15, exact_mni=True))
    print(
        f"\nWithout transaction types the mine finds only "
        f"{len(plain.value)} patterns — the typed structure is invisible."
    )
    assert len(result.value) >= len(plain.value)


if __name__ == "__main__":
    main()
