"""Graph substrate: immutable CSR graphs, builders, IO, generators, datasets."""

from .builder import GraphBuilder, from_edge_list
from .datasets import PAPER_STATS, dataset_names, load, patent_with_labels
from .generators import (
    chung_lu,
    ensure_connected_core,
    erdos_renyi,
    preferential_attachment,
    rmat,
    zipf_labels,
)
from .graph import Graph
from .stats import GraphStats, compute_stats, degree_histogram, power_law_alpha
from .io import (
    load_auto,
    load_edge_list,
    load_labeled_adjacency,
    save_edge_list,
    save_labeled_adjacency,
    sniff_format,
)

__all__ = [
    "Graph",
    "GraphBuilder",
    "from_edge_list",
    "load_edge_list",
    "save_edge_list",
    "load_labeled_adjacency",
    "load_auto",
    "sniff_format",
    "save_labeled_adjacency",
    "erdos_renyi",
    "chung_lu",
    "preferential_attachment",
    "rmat",
    "zipf_labels",
    "ensure_connected_core",
    "load",
    "dataset_names",
    "patent_with_labels",
    "PAPER_STATS",
    "GraphStats",
    "compute_stats",
    "degree_histogram",
    "power_law_alpha",
]
