"""Table 1: dataset statistics.

Prints the paper's Table-1 columns for the real datasets next to the
scaled synthetic stand-ins actually mined by this reproduction.
"""

from repro.bench import PROFILE, format_table
from repro.graph import PAPER_STATS, dataset_names, load

from conftest import run_once


def test_table1_dataset_statistics(benchmark, emit):
    def build():
        return {name: load(name, PROFILE) for name in dataset_names()}

    graphs = run_once(benchmark, build)
    rows = []
    for name in dataset_names():
        paper = PAPER_STATS[name]
        graph = graphs[name]
        rows.append(
            [
                name,
                f"{paper['vertices']:,}",
                f"{paper['edges']:,}",
                str(paper["labels"]),
                str(paper["avg_degree"]),
                f"{graph.num_vertices:,}",
                f"{graph.num_edges:,}",
                str(graph.num_labels),
                f"{graph.average_degree:.1f}",
            ]
        )
    table = format_table(
        [
            "Dataset",
            "paper |V|",
            "paper |E|",
            "paper L",
            "paper d",
            "ours |V|",
            "ours |E|",
            "ours L",
            "ours d",
        ],
        rows,
        title=f"Table 1 — dataset statistics (profile: {PROFILE})",
    )
    emit(table, name="table1_datasets")
    # Label counts must match the paper exactly; degrees should keep the
    # density ordering (MiCo densest, CiteSeer sparsest).
    for name in dataset_names():
        assert graphs[name].num_labels == PAPER_STATS[name]["labels"]
    degrees = {n: graphs[n].average_degree for n in dataset_names()}
    assert degrees["mico"] == max(degrees.values())
    assert degrees["citeseer"] == min(degrees.values())
