"""Figure 12: EigenHash vs the bliss-like search-tree checker.

As in the paper, the isomorphism checker inside Kaleido is swapped
(everything else identical) and the same applications are run:
3-Motif / 3-FSM over Patent, MiCo, Youtube; 4-Motif / 4-FSM over Patent;
5-Motif / 5-FSM over CiteSeer.  Both checkers run in the paper's regime —
one fingerprint computation per embedding, no memoisation (the memoised
production mode is quantified separately in the caching ablation).

Paper shape: EigenHash wins more on motif counting (5.8x) than on FSM
(2.1x), and the checker's own memory is smaller on FSM (3.1x).
"""

import pytest

from repro import FrequentSubgraphMining, KaleidoEngine, MotifCounting
from repro.baselines import BlissLikeHasher
from repro.bench import format_table, geomean
from repro.core import PatternHasher
from repro.graph import datasets

from conftest import run_once

#: Per-embedding hashing is ~100x slower than the memoised production
#: path, so this experiment runs on the tiny profile.
PROFILE12 = "tiny"

CASES = [
    ("motif", 3, "patent"),
    ("motif", 3, "mico"),
    ("motif", 3, "youtube"),
    ("fsm", 3, "patent"),
    ("fsm", 3, "mico"),
    ("fsm", 3, "youtube"),
    # The paper runs the 4-vertex cases on Patent and the 5-vertex cases
    # on CiteSeer; per-embedding hashing in pure Python forces both onto
    # an even sparser CiteSeer-like stand-in ("mini", below) — a
    # documented deviation.  Power-law hubs make 4-/5-edge subgraph counts
    # explode combinatorially on anything denser.
    ("motif", 4, "mini"),
    ("fsm", 4, "mini"),
    ("motif", 5, "mini"),
    ("fsm", 5, "mini"),
]

FSM_SUPPORT = 4


def _graph(name: str):
    if name == "mini":
        from repro.graph import chung_lu, ensure_connected_core

        return ensure_connected_core(
            chung_lu(250, 340, seed=11, num_labels=6, exponent=2.8), seed=1
        )
    return datasets.load(name, PROFILE12)


def _app(kind: str, k: int):
    if kind == "motif":
        return MotifCounting(k, hash_every_embedding=True)
    return FrequentSubgraphMining(
        num_edges=k - 1, support=FSM_SUPPORT, hash_every_embedding=True
    )


@pytest.mark.benchmark(group="fig12")
def test_fig12_iso_compare(benchmark, emit):
    rows = []
    motif_speedups, fsm_speedups = [], []
    fsm_memory_factors = []

    def run_cases():
        for kind, k, dataset in CASES:
            graph = _graph(dataset)
            with KaleidoEngine(graph, hasher=PatternHasher(cache=False)) as eng:
                eig = eng.run(_app(kind, k))
                eig_hmem = eng.hasher.nbytes
                eig_calls = eng.hasher.misses
            with KaleidoEngine(graph, hasher=BlissLikeHasher(cache=False)) as eng:
                bliss = eng.run(_app(kind, k))
                bliss_hmem = eng.hasher.nbytes
            if isinstance(eig.value, dict):
                assert sorted(eig.value.values()) == sorted(bliss.value.values())
            speedup = bliss.wall_seconds / max(eig.wall_seconds, 1e-9)
            mem_factor = bliss_hmem / max(eig_hmem, 1)
            rows.append(
                [
                    f"{k}-{kind}",
                    dataset,
                    str(eig_calls),
                    f"{eig.wall_seconds:.3f}",
                    f"{bliss.wall_seconds:.3f}",
                    f"{speedup:.2f}x",
                    f"{mem_factor:.2f}x",
                ]
            )
            if kind == "motif":
                motif_speedups.append(speedup)
            else:
                fsm_speedups.append(speedup)
                fsm_memory_factors.append(mem_factor)
        return rows

    run_once(benchmark, run_cases)
    table = format_table(
        [
            "App", "Dataset", "hash calls", "EigenHash (s)", "bliss-like (s)",
            "speedup", "checker-mem factor",
        ],
        rows,
        title=f"Figure 12 — isomorphism checking comparison (profile: {PROFILE12})",
    )
    summary = (
        f"\nGeoMean speedup: motif {geomean(motif_speedups):.2f}x, "
        f"FSM {geomean(fsm_speedups):.2f}x (paper: 5.8x / 2.1x); "
        f"FSM checker-memory factor {geomean(fsm_memory_factors):.2f}x "
        f"(paper: 3.1x)"
    )
    emit(table + summary, name="fig12_iso_compare")

    # Paper shapes: EigenHash wins clearly on motifs, and its motif-side
    # advantage exceeds the FSM-side one (5.8x vs 2.1x).  At our tiny
    # pattern sizes labeled refinement is nearly free for the search
    # tree, so the FSM side can compress toward parity — we require it
    # not to invert materially.
    assert geomean(motif_speedups) > 1.0
    assert geomean(motif_speedups) > geomean(fsm_speedups)
    assert geomean(fsm_speedups) > 0.85
    assert geomean(fsm_memory_factors) > 1.0
