"""Unit tests for the pluggable part executors."""

import threading
import time

import pytest

from repro.core.executor import (
    SerialExecutor,
    SimulatedSchedule,
    ThreadedExecutor,
    resolve_executor,
)


def _make_tasks(values, delays=None):
    delays = delays or [0.0] * len(values)

    def make(v, d):
        def task():
            if d:
                time.sleep(d)
            return v

        return task

    return [make(v, d) for v, d in zip(values, delays)]


def test_serial_results_and_callbacks_in_order():
    seen = []
    report = SerialExecutor().run(
        _make_tasks([10, 20, 30]), on_result=lambda i, r: seen.append((i, r))
    )
    assert report.results == [10, 20, 30]
    assert seen == [(0, 10), (1, 20), (2, 30)]
    assert len(report.durations) == 3
    assert report.schedule.num_workers == 1
    # Serial timeline: intervals laid back to back on one worker.
    intervals = report.schedule.intervals
    assert all(iv.worker == 0 for iv in intervals)
    for prev, nxt in zip(intervals, intervals[1:]):
        assert nxt.start >= prev.end - 1e-12


def test_threaded_results_ordered_despite_completion_order():
    # First task is the slowest, so it completes last — results must
    # still come back in part order.
    delays = [0.05, 0.0, 0.0, 0.0]
    seen = []
    report = ThreadedExecutor().run(
        _make_tasks([0, 1, 2, 3], delays),
        workers=4,
        on_result=lambda i, r: seen.append(i),
    )
    assert report.results == [0, 1, 2, 3]
    assert sorted(seen) == [0, 1, 2, 3]
    assert report.schedule.num_workers == 4
    assert len(report.schedule.intervals) == 4


def test_threaded_uses_multiple_workers():
    delays = [0.02] * 4
    report = ThreadedExecutor().run(_make_tasks(list(range(4)), delays), workers=4)
    workers_used = {iv.worker for iv in report.schedule.intervals}
    assert len(workers_used) > 1
    # Real overlap: the span is shorter than the serial sum.
    assert report.schedule.span_seconds < sum(report.durations)


def test_threaded_bounded_inflight_window():
    """The task iterable is pulled lazily: at most ~2x the pool size of
    tasks exist without having completed, so a lazily-decoding generator
    never materialises the whole level up front."""
    pool = 2
    lock = threading.Lock()
    created = 0
    completed = 0
    max_outstanding = 0

    def make_task(i):
        def task():
            nonlocal completed
            time.sleep(0.001)
            with lock:
                completed += 1
            return i

        return task

    def tasks():
        nonlocal created, max_outstanding
        for i in range(40):
            with lock:
                created += 1
                max_outstanding = max(max_outstanding, created - completed)
            yield make_task(i)

    report = ThreadedExecutor(max_workers=pool).run(tasks(), workers=pool)
    assert report.results == list(range(40))
    assert max_outstanding <= 2 * pool


def test_threaded_propagates_task_errors():
    def boom():
        raise RuntimeError("part failed")

    with pytest.raises(RuntimeError, match="part failed"):
        ThreadedExecutor().run([boom], workers=2)


def test_simulated_schedule_replays_durations():
    from repro.balance import simulate_work_stealing

    executor = SimulatedSchedule(SerialExecutor())
    report = executor.run(_make_tasks([1, 2, 3, 4]), workers=2)
    assert report.results == [1, 2, 3, 4]
    expected = simulate_work_stealing(report.durations, 2)
    assert report.schedule.num_workers == 2
    assert report.schedule.span_seconds == expected.span_seconds
    assert [iv.worker for iv in report.schedule.intervals] == [
        iv.worker for iv in expected.intervals
    ]


def test_resolve_executor():
    assert isinstance(resolve_executor("serial"), SimulatedSchedule)
    assert isinstance(resolve_executor("threads"), ThreadedExecutor)
    inner = SerialExecutor()
    assert resolve_executor(inner) is inner
    with pytest.raises(ValueError, match="unknown executor"):
        resolve_executor("fibers")


def test_threaded_rejects_bad_pool_size():
    with pytest.raises(ValueError):
        ThreadedExecutor(max_workers=0)


def test_empty_task_list():
    for executor in (SerialExecutor(), ThreadedExecutor(), SimulatedSchedule()):
        report = executor.run([], workers=2)
        assert report.results == []
        assert report.schedule.span_seconds == 0.0
