"""Zero-copy process execution: pool reuse, pickle size, segment hygiene."""

import pickle
import subprocess
import sys
import tempfile
import textwrap

import numpy as np
import pytest

from repro.apps import MotifCounting
from repro.core.engine import KaleidoEngine
from repro.core.executor import ProcessExecutor, _contexts_match
from repro.core.explore import _BlockTask, expand_vertex_level
from repro.core.kernels import vertex_kernel_context
from repro.core import CSE, shm


def test_contexts_match_is_content_based(paper_graph):
    a = vertex_kernel_context(paper_graph)
    b = type(a)(
        indptr=a.indptr.copy(),
        indices=a.indices.copy(),
        num_vertices=a.num_vertices,
        out_dtype=a.out_dtype,
        adjacency_keys=None if a.adjacency_keys is None else a.adjacency_keys.copy(),
    )
    assert _contexts_match(a, a)
    assert _contexts_match(a, b)
    indices = a.indices.copy()
    indices[0] += 1
    c = type(a)(
        indptr=a.indptr,
        indices=indices,
        num_vertices=a.num_vertices,
        out_dtype=a.out_dtype,
        adjacency_keys=a.adjacency_keys,
    )
    assert not _contexts_match(a, c)
    assert not _contexts_match(a, None)
    assert not _contexts_match(None, a)


def test_block_task_pickle_carries_no_arrays(paper_graph):
    """Zero-copy tasks ship bounds, not blocks or contexts."""
    cse = CSE(np.arange(paper_graph.num_vertices))
    expand_vertex_level(paper_graph, cse)
    ctx = vertex_kernel_context(paper_graph)
    share = shm.export_levels(cse)
    assert share is not None
    try:
        task = _BlockTask(ctx, None, (0, cse.size()), 0, level_handle=share.handle)
        payload = pickle.dumps(task)
        assert len(payload) < 4096
        state = pickle.loads(payload)
        assert state.shared_context is None
        assert state.block is None
        assert state.bound == (0, cse.size())
    finally:
        share.close()


def test_two_runs_one_pool(paper_graph):
    """Per-run context rebuilds must not respawn the worker pool."""
    executor = ProcessExecutor(max_workers=2)
    engine = KaleidoEngine(paper_graph, workers=2, executor=executor)
    try:
        first = engine.run(MotifCounting(3))
        second = engine.run(MotifCounting(3))
        assert first.pattern_map == second.pattern_map
        assert executor.pools_created == 1
    finally:
        engine.close()
        executor.close()


def test_close_idempotent_and_segment_released(paper_graph):
    # Caller-supplied executors stay caller-owned: engine.close() leaves
    # the pool (and its segment) warm for the next run, so release is on
    # the caller — and must be idempotent.
    executor = ProcessExecutor(max_workers=2)
    engine = KaleidoEngine(paper_graph, workers=2, executor=executor)
    try:
        engine.run(MotifCounting(3))
        assert executor._shared_ctx is not None
        name = executor._shared_ctx.handle.segment
    finally:
        engine.close()
        executor.close()
    assert executor._shared_ctx is None
    executor.close()  # safe to close again
    from multiprocessing import shared_memory

    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)


def test_spill_parity_across_executors(paper_graph):
    maps = {}
    for spec in ("serial", "threads", "processes"):
        with tempfile.TemporaryDirectory() as spill_dir:
            engine = KaleidoEngine(
                paper_graph,
                workers=2,
                executor=spec,
                storage_mode="spill-last",
                spill_dir=spill_dir,
            )
            try:
                result = engine.run(MotifCounting(3))
            finally:
                engine.close()
            assert result.extra["spilled_levels"] >= 1
            maps[spec] = result.pattern_map
    assert maps["serial"] == maps["threads"] == maps["processes"]


_LEAK_PROBE = textwrap.dedent(
    """
    import tempfile
    from repro.apps import MotifCounting
    from repro.core.engine import KaleidoEngine
    from repro.graph import from_edge_list

    def main():
        graph = from_edge_list(
            [(1, 2), (1, 5), (2, 5), (2, 3), (3, 4), (3, 5), (4, 5)]
        )
        with tempfile.TemporaryDirectory() as spill_dir:
            engine = KaleidoEngine(
                graph, workers=2, executor="processes",
                storage_mode="spill-last", spill_dir=spill_dir,
            )
            try:
                engine.run(MotifCounting(3))
            finally:
                engine.close()
        print("DONE")

    if __name__ == "__main__":
        main()
    """
)


def test_no_resource_tracker_leak_warnings(tmp_path):
    """A full processes run must exit with zero shm leak complaints."""
    script = tmp_path / "leak_probe.py"
    script.write_text(_LEAK_PROBE)
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        cwd=".",
    )
    assert proc.returncode == 0, proc.stderr
    assert "DONE" in proc.stdout
    assert "resource_tracker" not in proc.stderr
    assert "leaked" not in proc.stderr
