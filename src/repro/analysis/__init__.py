"""Invariant lint suite and runtime sanitizers.

Static side (``python -m repro.analysis`` / ``repro lint``): AST rules
R001-R008 that machine-check the engine contracts established in
PRs 1-9 — part purity, determinism, tracer guarding, id-dtype
discipline, the storage error taxonomy, lock discipline over guarded
fields, shm/mmap/tempfile lifecycles and the tracer/metric schema.
Rules run against a project-wide :class:`AnalysisContext` (module
index + per-class call graphs, built once per lint run) and the
flow-aware rules lean on the per-function CFG approximation in
:mod:`repro.analysis.cfg`.

Runtime side: :class:`PartPuritySanitizer`, a race detector for shared
application state that static analysis cannot see, and
:class:`LockOrderSanitizer`, which wraps the project's locks and
raises :class:`~repro.errors.LockOrderError` on ordering inversions
before they can deadlock (both enabled with the engine/service/CLI
``--sanitize`` flag).
"""

from __future__ import annotations

from .context import AnalysisContext, ClassInfo, ModuleInfo, build_context
from .diagnostics import Diagnostic, suppressed_lines
from .linter import LintReport, lint_file, lint_paths, lint_paths_report, lint_source
from .rules import RULES, Rule, rule_ids
from .sanitizer import (
    AttributeWrite,
    LockOrderSanitizer,
    PartPuritySanitizer,
    TrackedLock,
)

__all__ = [
    "AnalysisContext",
    "AttributeWrite",
    "ClassInfo",
    "Diagnostic",
    "LintReport",
    "LockOrderSanitizer",
    "ModuleInfo",
    "PartPuritySanitizer",
    "RULES",
    "Rule",
    "TrackedLock",
    "build_context",
    "lint_file",
    "lint_paths",
    "lint_paths_report",
    "lint_source",
    "rule_ids",
    "suppressed_lines",
]
