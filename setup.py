"""Legacy setup shim: this environment has setuptools without `wheel`,
so PEP-517 editable installs fail; `pip install -e .` falls back to this."""

from setuptools import setup

setup()
