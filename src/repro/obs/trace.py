"""Run-scoped tracing: nested spans and instant events.

The engine's pipeline produces a natural span hierarchy —
``run → level → {plan, execute, aggregate} → part`` — and a handful of
point-in-time facts (a level spilled, a prefetch missed, a write was
retried, the I/O mode degraded, a checkpoint landed or was restored).
The :class:`Tracer` records both into one append-only event list that the
exporters (:mod:`repro.obs.export`) turn into Chrome ``trace_event``
JSON, a flat JSONL log, or a text summary.

Design constraints, in order:

* **Zero cost when off.**  The default tracer everywhere is
  :data:`NULL_TRACER`, whose ``enabled`` attribute is ``False`` and whose
  methods are no-ops; hot paths guard with a single attribute check
  (``if tracer.enabled: ...``) and pay nothing else.
* **Thread-safe.**  Executor pool threads, the background writer and the
  prefetch threads all emit events; the event list is lock-guarded and
  the span stack is thread-local (spans nest *per thread*).
* **Deterministic under test.**  The clock is injected
  (``Tracer(clock=fake)``); nothing else in an event depends on wall
  time, so tests can assert exact timelines.

Two kinds of span exist:

* *Stack spans* (``begin``/``end`` or the :meth:`Tracer.span` context
  manager) nest on the recording thread; ``end`` must match the
  innermost open ``begin`` or it raises — a mismatched pair is a bug in
  the instrumented code, never silently repaired.
* *Complete spans* (:meth:`Tracer.complete`) carry explicit start/end
  times and an explicit track — how executors report per-part intervals
  attributed to (real or modelled) workers after the fact.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

__all__ = [
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "span_tree_shape",
    "SHAPE_IGNORED_ARGS",
]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    ``ts`` is seconds relative to the tracer's epoch.  ``track`` is the
    timeline the event belongs to: the recording thread's ident for stack
    spans and instants, or an explicit key (e.g. ``"worker-3"``) for
    complete spans.  ``parent`` is the name of the innermost open span on
    the recording thread when the event was emitted (shape information —
    exporters and tests use it; Chrome infers nesting from timestamps).
    """

    kind: str  # "begin" | "end" | "instant" | "complete"
    name: str
    ts: float
    track: int | str
    parent: str | None = None
    depth: int = 0
    dur: float | None = None  # only for "complete"
    args: dict[str, Any] = field(default_factory=dict)


class _NullSpan:
    """Context manager that does nothing (shared by the null tracer)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def annotate(self, **args: Any) -> None:
        pass

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """Context manager produced by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        self._tracer.end(self._name)
        return False


class _TrackSpan:
    """Context manager produced by :meth:`Tracer.track_span`.

    Measures its enclosed block on the tracer's clock and records one
    *complete* span on an explicit track when the block exits — the
    per-request timeline primitive: a service query spans several
    coordinator and pool threads, so a thread-keyed stack span cannot
    represent it, but a dedicated ``request-N`` track can.
    """

    __slots__ = ("_tracer", "_name", "_track", "_args", "_start")

    def __init__(
        self, tracer: "Tracer", name: str, track: int | str, args: dict[str, Any]
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._track = track
        self._args = args
        self._start = 0.0

    def __enter__(self) -> "_TrackSpan":
        self._start = self._tracer.now()
        return self

    def annotate(self, **args: Any) -> None:
        """Attach more args before the span is recorded (route, status)."""
        self._args.update(args)

    def __exit__(self, *exc_info: object) -> bool:
        self._tracer.complete(
            self._name,
            start=self._start,
            end=self._tracer.now(),
            track=self._track,
            **self._args,
        )
        return False


class Tracer:
    """Thread-safe recorder of nested spans and instant events."""

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        self._lock = threading.Lock()
        self._events: list[TraceEvent] = []
        self._local = threading.local()

    # ------------------------------------------------------------------
    def now(self) -> float:
        """Seconds since the tracer's epoch, on the injected clock."""
        return self._clock() - self._epoch

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _append(self, event: TraceEvent) -> None:
        with self._lock:
            self._events.append(event)

    # ------------------------------------------------------------------
    def begin(self, name: str, **args: Any) -> None:
        """Open a span on the calling thread."""
        ts = self.now()
        stack = self._stack()
        parent = stack[-1] if stack else None
        depth = len(stack)
        stack.append(name)
        self._append(
            TraceEvent(
                kind="begin",
                name=name,
                ts=ts,
                track=threading.get_ident(),
                parent=parent,
                depth=depth,
                args=args,
            )
        )

    def end(self, name: str) -> None:
        """Close the innermost span, which must be ``name``."""
        stack = self._stack()
        if not stack or stack[-1] != name:
            raise ValueError(
                f"span end {name!r} does not match the innermost open span "
                f"{stack[-1]!r}" if stack else f"span end {name!r} with no open span"
            )
        stack.pop()
        self._append(
            TraceEvent(
                kind="end",
                name=name,
                ts=self.now(),
                track=threading.get_ident(),
                parent=stack[-1] if stack else None,
                depth=len(stack),
            )
        )

    def span(self, name: str, **args: Any) -> _Span:
        """Context manager: ``begin`` on entry, matching ``end`` on exit."""
        self.begin(name, **args)
        return _Span(self, name)

    def track_span(self, name: str, track: int | str, **args: Any) -> _TrackSpan:
        """Context manager: record the block as one complete span on
        ``track`` (e.g. ``request-7``) when it exits.

        Unlike :meth:`span`, the recorded span lives on an explicit
        track rather than the calling thread's stack, so work that hops
        threads — a service request moving from admission to an engine
        session to the executor pool — still reads as one timeline row.
        Call ``annotate(**args)`` on the returned object to attach facts
        discovered mid-flight (the chosen route, the cache outcome).
        """
        return _TrackSpan(self, name, track, dict(args))

    def instant(self, name: str, **args: Any) -> None:
        """Record a point-in-time event (spill, retry, checkpoint, ...)."""
        stack = self._stack()
        self._append(
            TraceEvent(
                kind="instant",
                name=name,
                ts=self.now(),
                track=threading.get_ident(),
                parent=stack[-1] if stack else None,
                depth=len(stack),
                args=args,
            )
        )

    def complete(
        self,
        name: str,
        start: float,
        end: float,
        track: int | str | None = None,
        parent: str | None = None,
        **args: Any,
    ) -> None:
        """Record a span with explicit times on an explicit track.

        ``start``/``end`` are in the tracer's own time base (seconds
        since epoch, i.e. the scale of :meth:`now`).  Executors use this
        to attribute part intervals to worker tracks after the run.
        """
        if end < start:
            raise ValueError(f"complete span {name!r} ends before it starts")
        self._append(
            TraceEvent(
                kind="complete",
                name=name,
                ts=start,
                track=track if track is not None else threading.get_ident(),
                parent=parent,
                dur=end - start,
                args=args,
            )
        )

    # ------------------------------------------------------------------
    @property
    def events(self) -> list[TraceEvent]:
        """Snapshot of everything recorded so far (copy)."""
        with self._lock:
            return list(self._events)

    def open_spans(self) -> list[str]:
        """Names still open on the *calling* thread (innermost last)."""
        return list(self._stack())

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class NullTracer:
    """The default tracer: every operation is a no-op.

    ``enabled`` is ``False`` so instrumented hot paths can skip even the
    no-op call with a single attribute check.
    """

    enabled = False

    def now(self) -> float:
        return 0.0

    def begin(self, name: str, **args: Any) -> None:
        pass

    def end(self, name: str) -> None:
        pass

    def span(self, name: str, **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def track_span(self, name: str, track: int | str, **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, **args: Any) -> None:
        pass

    def complete(
        self,
        name: str,
        start: float,
        end: float,
        track: int | str | None = None,
        parent: str | None = None,
        **args: Any,
    ) -> None:
        pass

    @property
    def events(self) -> list[TraceEvent]:
        return []

    def open_spans(self) -> list[str]:
        return []

    def __len__(self) -> int:
        return 0


#: Shared no-op tracer — the default everywhere tracing is optional.
NULL_TRACER = NullTracer()


#: Event args that legitimately differ between executors for the same
#: logical work (worker attribution, measured quantities) and are
#: therefore excluded from the canonical span-tree shape.
SHAPE_IGNORED_ARGS = frozenset({"worker", "seconds", "span_seconds", "path"})


def span_tree_shape(
    events: Iterable[TraceEvent],
    ignore_args: frozenset[str] = SHAPE_IGNORED_ARGS,
) -> dict[tuple, int]:
    """Canonical wall-time-free shape of a trace, as an event multiset.

    Each ``begin``, ``complete`` or ``instant`` event contributes one
    ``(kind, name, parent, sorted-args)`` tuple with the timing- and
    worker-dependent args stripped; the result maps tuple → count.  Two
    runs of the same plan through different executors must produce equal
    shapes — the executor-parity stress tests assert exactly that.
    """
    shape: dict[tuple, int] = {}
    for event in events:
        if event.kind == "end":
            continue
        kept = tuple(
            sorted((k, v) for k, v in event.args.items() if k not in ignore_args)
        )
        key = (event.kind, event.name, event.parent, kept)
        shape[key] = shape.get(key, 0) + 1
    return shape
