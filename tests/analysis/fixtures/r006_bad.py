"""R006 fixture: guarded-field mutations outside their lock (4 hits)."""

import threading


class LeakyCache:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}  # guarded-by: _lock
        self._hits = 0  # guarded-by: _mutex  <- hit 1: names no lock attribute
        self._size = 0

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value
            self._absorb(key)

    def evict(self, key):
        self._entries.pop(key, None)  # hit 2: mutator call, lock not held

    def replace(self, mapping):
        self._entries = dict(mapping)  # hit 3: rebind, lock not held

    def tick(self):
        with self._lock:
            self._size += 1  # locked here -> '_size' inferred guarded

    def reset(self):
        self._size = 0  # hit 4: inferred-guarded field, lock not held

    def _absorb(self, key):
        # silent: every in-class call site holds self._lock, so this
        # method is lock-context and its mutation is effectively locked.
        self._entries[key] = self._entries.get(key)
