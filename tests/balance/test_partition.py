"""Unit tests for cost-driven partitioning."""

import numpy as np
import pytest

from repro.balance import balanced_parts, partition_quality
from repro.errors import PlanError


def test_parts_are_contiguous_cover():
    costs = np.ones(10)
    parts = balanced_parts(costs, 3)
    assert parts[0][0] == 0
    assert parts[-1][1] == 10
    for (a, b), (c, d) in zip(parts, parts[1:]):
        assert b == c


def test_uniform_costs_even_split():
    parts = balanced_parts(np.ones(12), 4)
    sizes = [e - s for s, e in parts]
    assert sizes == [3, 3, 3, 3]


def test_skewed_costs_balance():
    # One huge item at the front; remaining items tiny.
    costs = np.array([100.0] + [1.0] * 99)
    parts = balanced_parts(costs, 4)
    quality = partition_quality(parts, costs)
    # Each other part takes ~a third of the light tail rather than 25 items.
    assert quality.imbalance < 2.1
    even = [(0, 25), (25, 50), (50, 75), (75, 100)]
    assert quality.max_cost <= partition_quality(even, costs).max_cost


def test_zero_costs_degrade_to_even():
    parts = balanced_parts(np.zeros(8), 2)
    assert parts == [(0, 4), (4, 8)]


def test_more_parts_than_items():
    parts = balanced_parts(np.ones(2), 5)
    assert parts[0][0] == 0 and parts[-1][1] == 2
    assert sum(e - s for s, e in parts) == 2


def test_empty_costs():
    assert balanced_parts(np.zeros(0), 3) == [(0, 0)] * 3


def test_invalid_num_parts():
    with pytest.raises(PlanError):
        balanced_parts(np.ones(3), 0)


def test_quality_metrics():
    quality = partition_quality([(0, 2), (2, 4)], np.array([1.0, 1.0, 3.0, 3.0]))
    assert quality.part_costs == (2.0, 6.0)
    assert quality.max_cost == 6.0
    assert quality.mean_cost == 4.0
    assert quality.imbalance == 1.5


def test_quality_empty():
    quality = partition_quality([], np.zeros(0))
    assert quality.imbalance == 1.0
