"""Edge-label support (Definition 1's L(u, v)) across the stack."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Pattern, are_isomorphic, canonical_key, eigen_hash
from repro.core.isomorphism import pattern_from_key
from repro.errors import GraphConstructionError
from repro.graph import from_edge_list


@pytest.fixture
def elabeled_graph():
    g = from_edge_list([(0, 1), (1, 2), (2, 0), (2, 3)], labels=[0, 0, 0, 0])
    # Edge order (lexicographic): (0,1), (0,2), (1,2), (2,3).
    return g.with_edge_labels([5, 6, 7, 8])


# ----------------------------------------------------------------------
# Graph layer
# ----------------------------------------------------------------------
def test_graph_edge_label_lookup(elabeled_graph):
    assert elabeled_graph.edge_label(0, 1) == 5
    assert elabeled_graph.edge_label(1, 0) == 5
    assert elabeled_graph.edge_label(2, 3) == 8
    assert elabeled_graph.has_edge_labels


def test_graph_without_edge_labels_defaults_zero(paper_graph):
    assert not paper_graph.has_edge_labels
    assert paper_graph.edge_label(1, 2) == 0


def test_edge_label_missing_edge(elabeled_graph):
    with pytest.raises(KeyError):
        elabeled_graph.edge_label(0, 3)


def test_with_edge_labels_validates(paper_graph):
    with pytest.raises(GraphConstructionError):
        paper_graph.with_edge_labels([1, 2])  # wrong count


# ----------------------------------------------------------------------
# Pattern layer
# ----------------------------------------------------------------------
def test_pattern_from_vertex_embedding_carries_edge_labels(elabeled_graph):
    p = Pattern.from_vertex_embedding(elabeled_graph, [0, 1, 2])
    assert p.edge_labels is not None
    assert sorted(p.edge_labels) == [5, 6, 7]
    assert p.edge_label_at(0, 1) == 5


def test_pattern_from_edge_embedding_carries_edge_labels(elabeled_graph):
    p = Pattern.from_edge_embedding(elabeled_graph, [(1, 2), (2, 3)])
    assert sorted(p.edge_labels) == [7, 8]


def test_pattern_edge_label_count_validated():
    with pytest.raises(ValueError):
        Pattern((0, 0), 1, (3, 4))  # one edge, two labels


def test_edge_label_at_no_edge():
    p = Pattern((0, 0, 0), 0b011, (1, 2))
    with pytest.raises(KeyError):
        p.edge_label_at(1, 2)


def test_permute_remaps_edge_labels():
    # Path 0-1-2 with edge labels 9 on (0,1) and 4 on (1,2).
    p = Pattern((0, 0, 0), 0b101, (9, 4))
    q = p.permute([2, 1, 0])
    assert q.edge_label_at(0, 1) == 4
    assert q.edge_label_at(1, 2) == 9
    assert q.permute([2, 1, 0]) == p


# ----------------------------------------------------------------------
# Isomorphism + EigenHash
# ----------------------------------------------------------------------
def test_edge_labels_break_isomorphism():
    a = Pattern((0, 0), 1, (1,))
    b = Pattern((0, 0), 1, (2,))
    assert not are_isomorphic(a, b)
    assert eigen_hash(a) != eigen_hash(b)
    assert canonical_key(a) != canonical_key(b)


def test_edge_labeled_relabeling_preserves_hash():
    p = Pattern((0, 1, 0), 0b101, (3, 4))
    q = p.permute([2, 1, 0])
    assert are_isomorphic(p, q)
    assert eigen_hash(p) == eigen_hash(q)
    assert canonical_key(p) == canonical_key(q)


def test_pattern_from_key_roundtrip():
    p = Pattern((1, 0, 2), 0b110, (7, 8))
    key = canonical_key(p)
    rebuilt = pattern_from_key(key)
    assert are_isomorphic(p, rebuilt)
    assert canonical_key(rebuilt) == key


@st.composite
def edge_labeled_patterns(draw, max_k=5):
    k = draw(st.integers(min_value=2, max_value=max_k))
    bits = draw(st.integers(min_value=0, max_value=(1 << (k * (k - 1) // 2)) - 1))
    labels = tuple(draw(st.integers(min_value=0, max_value=1)) for _ in range(k))
    edge_labels = tuple(
        draw(st.integers(min_value=0, max_value=2)) for _ in range(bits.bit_count())
    )
    return Pattern(labels, bits, edge_labels if edge_labels else None)


@given(edge_labeled_patterns(), st.data())
@settings(max_examples=120, deadline=None)
def test_hash_invariance_under_permutation_with_edge_labels(pattern, data):
    perm = data.draw(st.permutations(range(pattern.num_vertices)))
    assert eigen_hash(pattern) == eigen_hash(pattern.permute(list(perm)))


@given(edge_labeled_patterns(max_k=4), edge_labeled_patterns(max_k=4))
@settings(max_examples=150, deadline=None)
def test_hash_equality_iff_isomorphic_with_edge_labels(a, b):
    assert (eigen_hash(a) == eigen_hash(b)) == are_isomorphic(a, b)


# ----------------------------------------------------------------------
# End-to-end: FSM over an edge-labeled graph
# ----------------------------------------------------------------------
def test_fsm_distinguishes_edge_labels():
    from repro import FrequentSubgraphMining, KaleidoEngine

    base = from_edge_list(
        [(0, 1), (2, 3), (4, 5), (6, 7)], labels=[0] * 8
    )
    # Same vertex labels everywhere; edge labels split 2/2.
    g = base.with_edge_labels([1, 1, 2, 2])
    result = KaleidoEngine(g).run(
        FrequentSubgraphMining(num_edges=1, support=2, exact_mni=True)
    )
    # Two distinct frequent single-edge patterns, support 4 each (both
    # endpoints fill both positions).
    assert sorted(result.value.values()) == [4, 4]
    unlabeled = KaleidoEngine(base).run(
        FrequentSubgraphMining(num_edges=1, support=2, exact_mni=True)
    )
    assert len(unlabeled.value) == 1
