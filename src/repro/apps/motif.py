"""Motif counting (Section 5.1).

Counts the frequency of every connected k-vertex motif in the (treated as
unlabeled) input graph.  Per the paper, exploration stops at the
``(k-1)``-embeddings; the Mapper then explores each (k-1)-embedding's
canonical k-extensions on the fly and hashes their patterns, so the
largest level is never materialised — which is why k-Motif stores only
``k - 1`` CSE levels (Table 4's note).
"""

from __future__ import annotations

from ..core.api import EngineContext, MiningApplication, PatternMap
from ..core.cse import CSE
from ..core.explore import canonical_extensions
from ..core.pattern import Pattern, triangle_index

__all__ = ["MotifCounting", "MotifResult", "MOTIF_COUNTS"]

#: Number of connected unlabeled graphs on k vertices (what k-Motif yields).
MOTIF_COUNTS = {3: 2, 4: 6, 5: 21}


class MotifResult(dict):
    """Pattern hash → occurrence count, plus representative structures."""

    def __init__(self, counts: dict[int, int], patterns: dict[int, Pattern]):
        super().__init__(counts)
        self.patterns = patterns

    @property
    def total(self) -> int:
        return sum(self.values())


class MotifCounting(MiningApplication):
    """Count all connected k-vertex motifs, k >= 3."""

    induced = "vertex"
    mapper_cost_tracks_candidates = True

    def __init__(self, k: int, hash_every_embedding: bool = False) -> None:
        if k < 3:
            raise ValueError("motif size must be at least 3")
        self.k = k
        #: The paper's engine fingerprints every embedding individually;
        #: by default we memoise by adjacency bitmap instead (unlabeled
        #: structures are bitmap-determined).  The Figure-12 benchmark and
        #: the caching ablation set this flag to recover the paper's
        #: per-embedding regime.
        self.hash_every_embedding = hash_every_embedding
        # Unlabeled k-vertex structures are fully determined by their
        # adjacency bitmap, so the hash of each distinct bitmap is computed
        # once and memoised (at most 2^(k(k-1)/2) entries, 64 for k=4).
        self._bits_hash: dict[int, int] = {}
        self._pair_bits: list[list[int]] = [
            [1 << triangle_index(i, j, k) if i < j else 0 for j in range(k)]
            for i in range(k)
        ]

    @property
    def name(self) -> str:
        return f"{self.k}-Motif"

    def iterations(self) -> int:
        # Explore 1-embeddings up to (k-1)-embeddings.
        return self.k - 2

    def map_embedding(
        self, ctx: EngineContext, embedding: tuple[int, ...], pmap: PatternMap
    ) -> None:
        """Expand to k-embeddings on the fly and hash each one."""
        k = self.k
        adjacency = ctx.graph.adjacency_sets()
        pair_bits = self._pair_bits
        bits_hash = self._bits_hash
        # Adjacency bits among the (k-1)-prefix are shared by all children.
        prefix_bits = 0
        for i in range(k - 1):
            vi_adj = adjacency[embedding[i]]
            for j in range(i + 1, k - 1):
                if embedding[j] in vi_adj:
                    prefix_bits |= pair_bits[i][j]
        last = k - 1
        for cand in canonical_extensions(ctx.graph, embedding):
            bits = prefix_bits
            cand_adj = adjacency[cand]
            for i in range(k - 1):
                if embedding[i] in cand_adj:
                    bits |= pair_bits[i][last]
            if self.hash_every_embedding:
                phash = ctx.hash_pattern(Pattern((0,) * k, bits))
            else:
                phash = bits_hash.get(bits)
                if phash is None:
                    phash = ctx.hash_pattern(Pattern((0,) * k, bits))
                    bits_hash[bits] = phash
            pmap[phash] = pmap.get(phash, 0) + 1

    def finalize(self, ctx: EngineContext, cse: CSE, pmap: PatternMap) -> MotifResult:
        patterns = {}
        for phash in pmap:
            rep = ctx.engine.hasher.representative(phash)
            if rep is not None:
                patterns[phash] = rep
        return MotifResult(dict(pmap), patterns)
