"""The long-running mining service: admission → cache → route → execute.

:class:`MiningService` is the query tier's heart.  One instance owns

* one shared :class:`~repro.core.executor.ThreadedExecutor` whose worker
  pool every engine session multiplexes over,
* one shared (bounded) :class:`~repro.core.eigenhash.PatternHasher`, so
  pattern fingerprints computed for any tenant warm the cache for all,
* the :class:`~repro.service.sessions.SessionPool` of warm engines,
* the :class:`~repro.service.cache.ResultCache` keyed on content
  identity, and
* the :class:`~repro.service.tenants.TenantRegistry` doing admission.

A query's life: admit (quota) → resolve graph → probe cache → route
(GREEN / YELLOW / RED) → execute → cache → answer.  Each request gets
its own span track (``request-<id>``) in the service tracer, so
concurrent requests render as parallel tracks in the Chrome trace, and
per-tenant counters live under ``tenant.<name>.*`` in the shared
metrics registry.

Concurrency: :meth:`query` is safe to call from many threads at once
(that is the point); :meth:`submit` is a convenience that dispatches to
an internal request pool and returns a future.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any

from ..apps.approximate import approximate_motifs
from ..core.engine import KaleidoEngine
from ..core.eigenhash import PatternHasher
from ..core.executor import ThreadedExecutor
from ..errors import ServiceError
from ..graph import datasets
from ..graph.graph import Graph
from ..obs.metrics import MetricsRegistry, MetricsView
from ..obs.trace import NULL_TRACER, NullTracer, Tracer
from .cache import CachedAnswer, CacheKey, ResultCache
from .request import QueryRequest, QueryResult, Route, build_app
from .router import ComplexityRouter, RouteDecision
from .sessions import SessionPool
from .tenants import TenantQuota, TenantRegistry

__all__ = ["MiningService"]


class MiningService:
    """Multi-tenant mining-as-a-service over shared warm state.

    Parameters
    ----------
    pool_workers:
        Size of the shared thread pool every engine session runs on (and
        each engine's modelled worker count).
    max_sessions_per_graph:
        How many engine sessions may exist per graph fingerprint — the
        per-graph concurrency ceiling for RED runs.
    cache_entries:
        LRU capacity of the result cache.
    default_quota:
        Admission quota for tenants without an explicit one.
    max_inflight:
        Worker threads in the request dispatcher behind :meth:`submit`.
    engine_kwargs:
        Extra keyword arguments applied to every session's engine
        (e.g. ``memory_limit_bytes``, ``spill_dir``).
    tracer / metrics:
        Shared observability sinks.  Per-request spans land on
        ``request-<id>`` tracks of this tracer; service-level counters
        (``service.*``, ``tenant.*``) land in this registry.  Each
        engine session keeps its *own* registry so engine-internal
        counters never double-count across tenants.
    sanitize:
        Run under the runtime sanitizers: the service's lock-bearing
        components (session pool, result cache, tenant registry, shared
        executor, hasher) are wrapped by a
        :class:`repro.analysis.LockOrderSanitizer` that raises
        :class:`~repro.errors.LockOrderError` on lock-order inversions,
        and every session's engine runs with ``sanitize=True`` (the
        part-purity race detector).  Results are unchanged for
        well-behaved code.
    """

    def __init__(
        self,
        pool_workers: int = 4,
        max_sessions_per_graph: int = 4,
        cache_entries: int = 256,
        default_quota: TenantQuota | None = None,
        max_inflight: int = 16,
        engine_kwargs: dict[str, Any] | None = None,
        tracer: "Tracer | NullTracer | None" = None,
        metrics: MetricsRegistry | None = None,
        sanitize: bool = False,
    ) -> None:
        if pool_workers < 1:
            raise ValueError("pool_workers must be positive")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.pool_workers = pool_workers
        self.sanitize = sanitize
        self._engine_kwargs = dict(engine_kwargs or {})
        self.executor = ThreadedExecutor(max_workers=pool_workers)
        self.hasher = PatternHasher()
        self.cache = ResultCache(cache_entries, metrics=self.metrics)
        self.tenants = TenantRegistry(default_quota, metrics=self.metrics)
        self.router = ComplexityRouter(self.metrics)
        self.sessions = SessionPool(
            self._build_engine, max_sessions_per_graph, metrics=self.metrics
        )
        self._graphs: dict[tuple[str, str], Graph] = {}  # guarded-by: _graphs_lock
        self._graphs_lock = threading.Lock()
        #: Active lock-order sanitizer for the service's whole lifetime
        #: (unlike the engine's per-run scope): service locks interleave
        #: across requests, so ordering evidence must accumulate.
        self.lock_sanitizer = None
        if sanitize:
            from ..analysis.sanitizer import LockOrderSanitizer

            self.lock_sanitizer = LockOrderSanitizer()
            for holder in (
                self,
                self.executor,
                self.hasher,
                self.cache,
                self.tenants,
                self.sessions,
            ):
                self.lock_sanitizer.instrument(holder)
        self._ids = itertools.count(1)
        self._dispatch = ThreadPoolExecutor(
            max_workers=max_inflight, thread_name_prefix="mining-service"
        )
        self._requests = self.metrics.counter("service.requests")
        self._completed = self.metrics.counter("service.completed")
        self._failed = self.metrics.counter("service.failed")
        self._latency = self.metrics.histogram("service.latency_seconds")
        self._closed = False

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_engine(self, graph: Graph) -> KaleidoEngine:
        kwargs: dict[str, Any] = {
            "workers": self.pool_workers,
            "executor": self.executor,  # caller-owned: engine won't close it
            "hasher": self.hasher,
            "metrics": MetricsRegistry(),
            "sanitize": self.sanitize,
        }
        kwargs.update(self._engine_kwargs)
        return KaleidoEngine(graph, **kwargs)

    def set_quota(self, tenant: str, quota: TenantQuota) -> None:
        self.tenants.set_quota(tenant, quota)

    def tenant_view(self, tenant: str) -> MetricsView:
        """The tenant's scoped slice of the service metrics."""
        return self.tenants.view(tenant)

    # ------------------------------------------------------------------
    # Graph resolution
    # ------------------------------------------------------------------
    def resolve_graph(self, request: QueryRequest) -> Graph:
        """The query's graph: its own, or the named dataset (cached)."""
        if request.graph is not None:
            return request.graph
        assert request.dataset is not None  # enforced by QueryRequest
        key = (request.dataset, request.profile)
        with self._graphs_lock:
            graph = self._graphs.get(key)
            if graph is None:
                graph = datasets.load(request.dataset, profile=request.profile)
                self._graphs[key] = graph
            return graph

    def invalidate_graph(self, graph: Graph | str) -> int:
        """Flush cached answers and warm sessions for a mutated graph.

        Accepts the graph object or a fingerprint string.  With
        content-keyed caching this is optional for correctness — new
        contents hash to new keys, and the session pool refuses to
        reuse a session whose graph mutated under it — but it reclaims
        stale state eagerly.  Passing the graph object flushes its
        *current* fingerprint plus every fingerprint the pool still
        holds sessions for under this exact object (i.e. the
        pre-mutation keys).  To reclaim pre-mutation cache entries when
        no warm session remembers them, capture ``graph.fingerprint()``
        before mutating and pass that string here.  Returns the number
        of cache entries dropped.
        """
        if isinstance(graph, str):
            fingerprints = {graph}
        else:
            fingerprints = {graph.fingerprint()}
            fingerprints.update(self.sessions.fingerprints_for(graph))
        dropped = 0
        for fingerprint in fingerprints:
            dropped += self.cache.invalidate_graph(fingerprint)
            self.sessions.drop_graph(fingerprint)
        return dropped

    # ------------------------------------------------------------------
    # The query path
    # ------------------------------------------------------------------
    def query(self, request: QueryRequest) -> QueryResult:
        """Serve one query synchronously.

        Raises :class:`~repro.errors.QuotaExceededError` at admission,
        :class:`~repro.errors.QueryRejectedError` from the router, and
        whatever the engine raises on RED runs.  Always releases the
        tenant slot, and always accounts the outcome.
        """
        if self._closed:
            raise ServiceError("service is closed")
        request_id = next(self._ids)
        self._requests.inc()
        start = time.perf_counter()
        self.tenants.admit(request.tenant)
        tenant_view = self.tenants.view(request.tenant)
        track = f"request-{request_id}"
        try:
            with self.tracer.track_span(
                "query",
                track,
                tenant=request.tenant,
                app=request.app,
                k=request.k,
            ) as span:
                result = self._serve(request, request_id, track)
                span.annotate(route=result.route.value, cache=result.cache_hit)
        except ServiceError:
            self._failed.inc()
            tenant_view.counter("failed").inc()
            raise
        except Exception:
            self._failed.inc()
            tenant_view.counter("failed").inc()
            raise  # engine/storage errors keep their type
        finally:
            self.tenants.release(request.tenant)
        elapsed = time.perf_counter() - start
        result.wall_seconds = elapsed
        self._completed.inc()
        self._latency.observe(elapsed)
        tenant_view.counter("completed").inc()
        tenant_view.counter(f"route.{result.route.value.lower()}").inc()
        tenant_view.histogram("latency_seconds").observe(elapsed)
        return result

    def submit(self, request: QueryRequest) -> "Future[QueryResult]":
        """Dispatch a query to the request pool; returns a future."""
        if self._closed:
            raise ServiceError("service is closed")
        return self._dispatch.submit(self.query, request)

    def _serve(self, request: QueryRequest, request_id: int, track: str) -> QueryResult:
        graph = self.resolve_graph(request)
        key: CacheKey = (
            graph.fingerprint(),
            request.app,
            request.k,
            request.cache_params(),
        )
        cached = self.cache.get(key)
        budget = request.budget
        effective = self.tenants.clamp_budget(
            request.tenant, budget.max_embeddings if budget is not None else None
        )
        decision = self.router.classify(request, graph, cached is not None, effective)
        if decision.route is Route.GREEN:
            assert cached is not None
            return QueryResult(
                request_id=request_id,
                tenant=request.tenant,
                app=request.app,
                route=Route.GREEN,
                cache_hit=True,
                value=cached.value,
                pattern_map=dict(cached.pattern_map),
                wall_seconds=0.0,
                error_bars=dict(cached.error_bars) if cached.error_bars else None,
                extra={"origin_route": cached.route, "reason": decision.reason},
            )
        if decision.route is Route.YELLOW:
            result = self._serve_yellow(request, request_id, graph, decision, track)
        else:
            result = self._serve_red(
                request, request_id, graph, decision, effective, track
            )
        if decision.degraded:
            # A budget-degraded answer is approximate but keyed by the
            # exact-mode request it degraded from; caching it would serve
            # sampling estimates as GREEN hits to later exact queries —
            # including tenants with a larger or no budget ceiling.
            # Degraded runs are cheap by construction: just re-sample.
            return result
        self.cache.put(
            key,
            CachedAnswer(
                value=result.value,
                pattern_map=dict(result.pattern_map),
                route=result.route.value,
                error_bars=dict(result.error_bars) if result.error_bars else None,
            ),
        )
        return result

    def _serve_yellow(
        self,
        request: QueryRequest,
        request_id: int,
        graph: Graph,
        decision: RouteDecision,
        track: str,
    ) -> QueryResult:
        samples = int(request.params.get("samples", 0)) or (
            request.budget.samples if request.budget is not None else 400
        )
        seed = int(request.params.get("seed", 0))
        with self.tracer.track_span("approximate", track, samples=samples):
            estimates = approximate_motifs(graph, request.k, samples, seed=seed)
        pattern_map = {h: est.estimate for h, est in estimates.items()}
        return QueryResult(
            request_id=request_id,
            tenant=request.tenant,
            app=request.app,
            route=Route.YELLOW,
            cache_hit=False,
            value=sum(pattern_map.values()),
            pattern_map=pattern_map,
            wall_seconds=0.0,
            error_bars={h: est.half_width for h, est in estimates.items()},
            extra={
                "reason": decision.reason,
                "samples": samples,
                "degraded": decision.degraded,
            },
        )

    def _serve_red(
        self,
        request: QueryRequest,
        request_id: int,
        graph: Graph,
        decision: RouteDecision,
        effective_budget: int | None,
        track: str,
    ) -> QueryResult:
        app = build_app(request.app, request.k, request.params)
        cap = -1 if effective_budget is None else effective_budget
        with self.sessions.session(graph) as session:
            with self.tracer.track_span(
                "engine-run", track, app=request.app, runs=session.runs_completed
            ):
                mined = session.engine.run(app, max_embeddings=cap)
        return QueryResult(
            request_id=request_id,
            tenant=request.tenant,
            app=request.app,
            route=Route.RED,
            cache_hit=False,
            value=mined.value,
            pattern_map=dict(mined.pattern_map),
            wall_seconds=0.0,
            extra={
                "reason": decision.reason,
                "estimated_embeddings": decision.estimated_embeddings,
                "engine_wall_seconds": mined.wall_seconds,
                "peak_memory_bytes": mined.peak_memory_bytes,
                "session_runs": session.runs_completed,
            },
        )

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """A JSON-friendly snapshot of service health."""
        return {
            "closed": self._closed,
            "pool_workers": self.pool_workers,
            "sessions": len(self.sessions),
            "cache_entries": len(self.cache),
            "hasher_entries": len(self.hasher),
            "metrics": self.metrics.snapshot(),
        }

    def close(self) -> None:
        """Tear down the dispatcher, sessions and the shared pool."""
        if self._closed:
            return
        self._closed = True
        self._dispatch.shutdown(wait=True)
        self.sessions.close()
        self.executor.close()
        if self.lock_sanitizer is not None:
            self.lock_sanitizer.restore()
            self.lock_sanitizer = None

    def __enter__(self) -> "MiningService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
