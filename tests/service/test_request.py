"""QueryRequest validation, cache params and result serialization."""

import pytest

from repro.service import QueryBudget, QueryRequest, QueryResult, Route, build_app
from repro.apps import (
    CliqueDiscovery,
    FrequentSubgraphMining,
    MotifCounting,
    TriangleCounting,
)


def test_request_validates_app():
    with pytest.raises(ValueError, match="unknown app"):
        QueryRequest(app="pagerank", dataset="citeseer")


def test_request_validates_mode():
    with pytest.raises(ValueError, match="unknown mode"):
        QueryRequest(app="tc", dataset="citeseer", mode="turbo")


def test_approximate_only_for_approximable_apps():
    with pytest.raises(ValueError, match="no approximate mode"):
        QueryRequest(app="tc", dataset="citeseer", mode="approximate")
    QueryRequest(app="motif", dataset="citeseer", mode="approximate")


def test_request_needs_a_graph_or_dataset():
    with pytest.raises(ValueError, match="dataset name or a graph"):
        QueryRequest(app="tc")


def test_cache_params_canonical_and_mode_aware():
    a = QueryRequest(app="fsm", dataset="x", params={"support": 5, "edges": 2})
    b = QueryRequest(app="fsm", dataset="x", params={"edges": 2, "support": 5})
    assert a.cache_params() == b.cache_params()
    exact = QueryRequest(app="motif", dataset="x")
    approx = QueryRequest(app="motif", dataset="x", mode="approximate")
    assert exact.cache_params() != approx.cache_params()


def test_cache_params_fold_in_sample_budget():
    small = QueryRequest(
        app="motif", dataset="x", mode="approximate", budget=QueryBudget(samples=100)
    )
    large = QueryRequest(
        app="motif", dataset="x", mode="approximate", budget=QueryBudget(samples=900)
    )
    assert small.cache_params() != large.cache_params()


def test_budget_json_round_trip():
    budget = QueryBudget(max_embeddings=123, allow_degraded=False, samples=77)
    assert QueryBudget.from_json(budget.to_json()) == budget


def test_build_app_constructs_each_application():
    assert isinstance(build_app("tc", 3, {}), TriangleCounting)
    assert isinstance(build_app("motif", 4, {}), MotifCounting)
    assert isinstance(build_app("clique", 4, {}), CliqueDiscovery)
    fsm = build_app("fsm", 3, {"edges": 3, "support": 2})
    assert isinstance(fsm, FrequentSubgraphMining)


def test_result_to_json_sorts_patterns():
    result = QueryResult(
        request_id=7,
        tenant="alice",
        app="motif",
        route=Route.RED,
        cache_hit=False,
        value=3,
        pattern_map={9: 1, 2: 2},
        wall_seconds=0.5,
    )
    payload = result.to_json()
    assert payload["status"] == "ok"
    assert payload["route"] == "RED"
    assert list(payload["patterns"]) == ["2", "9"]
