"""Named counters, gauges and histograms behind one registry.

Before this layer existed every measured quantity lived in its own
ad-hoc structure — ``IOStats`` fields, ``MemoryMeter`` snapshots, the
``PatternHasher`` hit/miss pair, per-queue depth prints in benchmark
scripts.  The :class:`MetricsRegistry` gives them one namespace and one
snapshot format so exporters, the CLI and the benchmarks read a single
interface (the bridge helpers in :mod:`repro.obs.bridge` fold the
existing structures in).

Three instrument kinds:

* :class:`Counter` — monotonically non-decreasing event count; ``inc``
  rejects negative deltas so a counter can never go backwards.
* :class:`Gauge` — last-written level (queue depth, current bytes);
  merging keeps the maximum, which is the only associative choice that
  preserves the "worst level seen" reading across partial registries.
* :class:`Histogram` — count/total/min/max summary of observed values
  (part durations, write latencies); constant space, associative merge.

All instruments are thread-safe (executor pool threads, the background
writer and prefetch threads all record), and ``merge`` is associative
and commutative instrument-by-instrument — the property tests in
``tests/property/test_obs_property.py`` hold the registry to that.
"""

from __future__ import annotations

import threading
from typing import Any

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "MetricsView"]


class Counter:
    """A monotonically non-decreasing event count."""

    kind = "counter"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, delta: int = 1) -> None:
        if delta < 0:
            raise ValueError(f"counter increments must be non-negative, got {delta}")
        with self._lock:
            self._value += delta

    @property
    def value(self) -> int:
        return self._value

    def merge(self, other: "Counter") -> None:
        self.inc(other.value)

    def snapshot(self) -> dict[str, Any]:
        return {"type": self.kind, "value": self.value}


class Gauge:
    """A last-written level, remembering the peak it ever reached."""

    kind = "gauge"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._peak = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value
            if value > self._peak:
                self._peak = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta
            if self._value > self._peak:
                self._peak = self._value

    @property
    def value(self) -> float:
        return self._value

    @property
    def peak(self) -> float:
        return self._peak

    def merge(self, other: "Gauge") -> None:
        """Keep the maxima — the associative reading across partials."""
        with self._lock:
            self._value = max(self._value, other.value)
            self._peak = max(self._peak, other.peak)

    def snapshot(self) -> dict[str, Any]:
        return {"type": self.kind, "value": self.value, "peak": self.peak}


class Histogram:
    """Constant-space summary (count/total/min/max) of observed values."""

    kind = "histogram"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        with self._lock:
            self.count += other.count
            self.total += other.total
            if other.min is not None:
                self.min = other.min if self.min is None else min(self.min, other.min)
            if other.max is not None:
                self.max = other.max if self.max is None else max(self.max, other.max)

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": self.kind,
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    Names are dotted paths (``io.bytes_written``, ``queue.depth``,
    ``hasher.hits`` — see docs/api.md for the full table).  Asking for an
    existing name with a different instrument kind raises, so one metric
    can never silently be two things.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, cls):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = cls()
            elif not isinstance(instrument, cls):
                raise ValueError(
                    f"metric {name!r} is a {instrument.kind}, not a {cls.kind}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Name → instrument snapshot, sorted by name (JSON-friendly)."""
        with self._lock:
            items = list(self._instruments.items())
        return {name: inst.snapshot() for name, inst in sorted(items)}

    def view(self, prefix: str) -> "MetricsView":
        """A prefix-scoped view of this registry.

        ``registry.view("tenant.acme").counter("queries")`` reads and
        writes the same instrument as
        ``registry.counter("tenant.acme.queries")`` — the view holds no
        instruments of its own, it only namespaces names.  This is how
        the service tier keeps per-tenant metrics isolated without a
        registry per tenant (one snapshot still shows everything).
        """
        if not prefix:
            raise ValueError("view prefix must be non-empty")
        return MetricsView(self, prefix)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in, instrument by instrument.

        Unknown names are created; same-name instruments must be of the
        same kind.  Counter and histogram merges add, gauge merges keep
        the maximum — each is associative and commutative, so merging
        per-worker registries in any grouping yields the same totals.
        """
        with other._lock:
            items = list(other._instruments.items())
        for name, instrument in items:
            mine = self._get_or_create(name, type(instrument))
            mine.merge(instrument)

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)


class MetricsView:
    """A dotted-prefix window onto a :class:`MetricsRegistry`.

    Every instrument accessor prepends the view's prefix, so code handed
    a view cannot write outside its namespace — the service gives each
    tenant's accounting a ``tenant.<name>`` view and the shared registry
    stays the single source of truth.  Views nest (``view("a").view("b")``
    is ``view("a.b")``) and snapshot only their own subtree.
    """

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        self._registry = registry
        self.prefix = prefix

    def _name(self, name: str) -> str:
        return f"{self.prefix}.{name}"

    def counter(self, name: str) -> Counter:
        return self._registry.counter(self._name(name))

    def gauge(self, name: str) -> Gauge:
        return self._registry.gauge(self._name(name))

    def histogram(self, name: str) -> Histogram:
        return self._registry.histogram(self._name(name))

    def view(self, prefix: str) -> "MetricsView":
        return self._registry.view(self._name(prefix))

    def names(self) -> list[str]:
        """Fully qualified names under this view's prefix."""
        marker = self.prefix + "."
        return [name for name in self._registry.names() if name.startswith(marker)]

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """This subtree's snapshot, keyed *relative* to the prefix."""
        marker = self.prefix + "."
        return {
            name[len(marker):]: snap
            for name, snap in self._registry.snapshot().items()
            if name.startswith(marker)
        }
