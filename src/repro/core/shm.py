"""Zero-copy IPC: shared-memory kernel contexts and CSE level views.

The spawn-based :class:`~repro.core.executor.ProcessExecutor` used to ship
the kernel context (the graph's CSR arrays) to every worker as one big
pickle through the pool initializer, and every block task's pickle carried
its decoded ``(rows, k)`` embedding block — for an out-of-core engine,
most of the process path's wall clock was serialization.  This module
removes both copies:

* :class:`SharedKernelContext` packs every ndarray field of a
  :class:`~repro.core.kernels.VertexKernelContext` /
  :class:`~repro.core.kernels.EdgeKernelContext` into **one**
  :class:`multiprocessing.shared_memory.SharedMemory` segment.  The pool
  initializer receives only the tiny picklable
  :class:`SharedContextHandle`; workers attach by segment *name*
  (:func:`attach_context`) and rebuild the context as read-only ndarray
  views over the mapping — no array bytes ever cross the pipe.
* :func:`export_levels` does the same for the CSE's level arrays, so a
  block task's pickle shrinks to its ``(start, end)`` bounds: the worker
  decodes its own block from the shared ``vert``/``off`` views
  (:func:`repro.core.cse.decode_block_arrays`).  A *spilled* level is not
  copied into the segment at all — its handle names the on-disk ``.npy``
  part files, which workers map with ``np.load(mmap_mode="r")``, so a
  spilled part IS the IPC buffer.
* :func:`context_fingerprint` gives executors a content-based identity
  for contexts (BLAKE2b over the array bytes, memoized per array object),
  so a warm pool survives context rebuilds whose arrays are equal but not
  identical.

Lifecycle: the *creator* (the executor / the expansion driver) owns the
segment and must :meth:`~SharedKernelContext.close` it — close is
idempotent and unlinks exactly once, with a ``weakref.finalize`` safety
net for crash paths.  Workers only ever attach and never unlink.  The
attach-side ``resource_tracker`` registration that happens inside
``SharedMemory`` is harmless here: spawn children inherit the *parent's*
tracker process, so the creator and every worker share one tracker cache
and the creator's single unlink clears the entry for all of them.
"""

from __future__ import annotations

import dataclasses
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from hashlib import blake2b
from multiprocessing import shared_memory

import numpy as np

from .kernels import DEFAULT_ID_DTYPE, EdgeKernelContext, VertexKernelContext

__all__ = [
    "context_fingerprint",
    "SharedArraySpec",
    "SharedContextHandle",
    "SharedKernelContext",
    "attach_context",
    "PartedVector",
    "SharedVectorSpec",
    "MmapVectorSpec",
    "SharedLevelSpec",
    "SharedLevelsHandle",
    "LevelShare",
    "export_levels",
    "attach_levels",
]

#: ndarray views into a shared segment start on cache-line boundaries.
_ALIGN = 64

#: Digest memo: ``id(array) -> (array, hexdigest)``.  The strong reference
#: pins the array so a recycled ``id`` can never alias a dead one; pruned
#: once it grows past :data:`_DIGEST_CACHE_MAX` entries.
_DIGEST_CACHE: dict[int, tuple[np.ndarray, str]] = {}
_DIGEST_CACHE_MAX = 128


def _array_digest(array: np.ndarray) -> str:
    """Content hash of one array (BLAKE2b-128), memoized per array object.

    Kernel contexts are rebuilt per level but wrap arrays cached on the
    graph / edge index, so the common case is a dict hit; the hash is
    paid once per distinct array, not once per level.
    """
    key = id(array)
    hit = _DIGEST_CACHE.get(key)
    if hit is not None and hit[0] is array:
        return hit[1]
    contiguous = np.ascontiguousarray(array)
    digest = blake2b(contiguous.view(np.uint8).data, digest_size=16)
    digest.update(str(array.dtype).encode())
    digest.update(str(array.shape).encode())
    value = digest.hexdigest()
    if len(_DIGEST_CACHE) >= _DIGEST_CACHE_MAX:
        _DIGEST_CACHE.clear()
    _DIGEST_CACHE[key] = (array, value)
    return value


def context_fingerprint(ctx) -> str:
    """Content-based identity of a kernel context.

    Two contexts with equal array contents and equal scalars fingerprint
    identically even when the array objects differ — the key the
    :class:`~repro.core.executor.ProcessExecutor` reuses its warm pool on.
    """
    parts = [type(ctx).__name__]
    for field in dataclasses.fields(ctx):
        value = getattr(ctx, field.name)
        if isinstance(value, np.ndarray):
            parts.append(f"{field.name}={_array_digest(value)}")
        else:
            parts.append(f"{field.name}={value!r}")
    return "|".join(parts)


def _release_segment(segment: shared_memory.SharedMemory, unlink: bool) -> None:
    """Close (and optionally unlink) a segment, tolerating live views."""
    try:
        segment.close()
    except BufferError:  # views still alive; the mapping dies with them
        pass
    if unlink:
        try:
            segment.unlink()
        except FileNotFoundError:
            pass


# ----------------------------------------------------------------------
# Kernel contexts in shared memory
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SharedArraySpec:
    """Where one context array lives inside the shared segment."""

    field: str
    dtype: str
    shape: tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class SharedContextHandle:
    """The picklable name card of an exported kernel context.

    This — not the arrays — is what crosses the process boundary: the
    segment name, the layout of every array inside it, and the context's
    scalar fields.  ``fingerprint`` carries the creator's content hash so
    worker-side caches can key on it too.
    """

    segment: str
    kind: str
    arrays: tuple[SharedArraySpec, ...]
    scalars: tuple[tuple[str, object], ...]
    fingerprint: str


_CONTEXT_CLASSES = {"vertex": VertexKernelContext, "edge": EdgeKernelContext}


class SharedKernelContext:
    """Creator-side wrapper: one kernel context packed into one segment.

    The coordinator keeps using its original (process-local) context; the
    segment exists purely for workers to attach to.  ``close`` detaches
    and unlinks exactly once, no matter how many times it is called or
    which error path calls it.
    """

    def __init__(self, ctx, fingerprint: str | None = None) -> None:
        specs: list[SharedArraySpec] = []
        scalars: list[tuple[str, object]] = []
        arrays: list[np.ndarray] = []
        total = 0
        for field in dataclasses.fields(ctx):
            value = getattr(ctx, field.name)
            if isinstance(value, np.ndarray):
                contiguous = np.ascontiguousarray(value)
                offset = -total % _ALIGN + total
                specs.append(
                    SharedArraySpec(
                        field=field.name,
                        dtype=str(contiguous.dtype),
                        shape=tuple(contiguous.shape),
                        offset=offset,
                    )
                )
                arrays.append(contiguous)
                total = offset + contiguous.nbytes
            else:
                scalars.append((field.name, value))
        self._segment = shared_memory.SharedMemory(create=True, size=max(1, total))
        try:
            for spec, array in zip(specs, arrays):
                view = np.ndarray(
                    spec.shape,
                    dtype=np.dtype(spec.dtype),
                    buffer=self._segment.buf,
                    offset=spec.offset,
                )
                view[...] = array
                del view
        except BaseException:
            # A failed fill means no handle ever escapes: unlink here or
            # the segment outlives the process.
            _release_segment(self._segment, unlink=True)
            raise
        self.handle = SharedContextHandle(
            segment=self._segment.name,
            kind=ctx.kind,
            arrays=tuple(specs),
            scalars=tuple(scalars),
            fingerprint=(
                fingerprint if fingerprint is not None else context_fingerprint(ctx)
            ),
        )
        self.nbytes = total
        self._closed = False
        #: Crash-path safety net: if the executor is dropped without
        #: close(), the finalizer still unlinks the segment.
        self._finalizer = weakref.finalize(
            self, _release_segment, self._segment, True
        )

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Detach and unlink the segment (idempotent; unlinks once)."""
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        _release_segment(self._segment, unlink=True)


def attach_context(handle: SharedContextHandle):
    """Worker-side: rebuild a kernel context over the named segment.

    Returns ``(ctx, segment)``; the caller must keep ``segment`` alive as
    long as the context's views are in use (the pool initializer stashes
    it in a module global for the worker's lifetime).  The creator owns
    the unlink; the worker only attaches.
    """
    segment = shared_memory.SharedMemory(name=handle.segment)
    kwargs: dict[str, object] = dict(handle.scalars)
    for spec in handle.arrays:
        view = np.ndarray(
            spec.shape,
            dtype=np.dtype(spec.dtype),
            buffer=segment.buf,
            offset=spec.offset,
        )
        view.flags.writeable = False
        kwargs[spec.field] = view
    ctx = _CONTEXT_CLASSES[handle.kind](**kwargs)
    return ctx, segment


# ----------------------------------------------------------------------
# Parted vectors: one virtual array over per-part physical arrays
# ----------------------------------------------------------------------
class PartedVector:
    """A read-only virtual concatenation of per-part 1-D arrays.

    The block decoder's only access pattern is a fancy gather with a
    position array, so a spilled level never needs a physical
    concatenation: ``searchsorted`` over the part starts routes each
    position to its part (one sliced gather per contiguous run), and the
    parts themselves are ``np.memmap`` views straight over the spill
    files — reads hit the page cache, not a deserializer.
    """

    def __init__(self, arrays, dtype: np.dtype | None = None) -> None:
        self._arrays = list(arrays)
        lengths = np.array(
            [int(a.shape[0]) for a in self._arrays], dtype=np.int64
        )
        self._starts = np.zeros(lengths.shape[0] + 1, dtype=np.int64)
        np.cumsum(lengths, out=self._starts[1:])
        self._length = int(self._starts[-1])
        if dtype is not None:
            self.dtype = np.dtype(dtype)
        elif self._arrays:
            self.dtype = np.dtype(self._arrays[0].dtype)
        else:
            self.dtype = DEFAULT_ID_DTYPE

    def __len__(self) -> int:
        return self._length

    @property
    def shape(self) -> tuple[int]:
        return (self._length,)

    def __getitem__(self, positions: np.ndarray) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.int64)
        out = np.empty(positions.shape[0], dtype=self.dtype)
        if positions.shape[0] == 0:
            return out
        part_ids = np.searchsorted(self._starts, positions, side="right") - 1
        # Split into contiguous runs of one part each; decode positions
        # are non-decreasing, so runs ~ parts touched, but arbitrary
        # orders stay correct (just more runs).
        boundaries = np.flatnonzero(np.diff(part_ids)) + 1
        run_starts = np.concatenate(
            ([0], boundaries, [positions.shape[0]])
        )
        for i in range(run_starts.shape[0] - 1):
            lo, hi = int(run_starts[i]), int(run_starts[i + 1])
            if lo == hi:
                continue
            part = int(part_ids[lo])
            local = positions[lo:hi] - self._starts[part]
            out[lo:hi] = self._arrays[part][local]
        return out


# ----------------------------------------------------------------------
# CSE levels in shared memory (and mmap-backed spilled levels)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SharedVectorSpec:
    """A level vector resident inside the shared segment."""

    dtype: str
    shape: tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class MmapVectorSpec:
    """A level vector served straight off the spill part files."""

    paths: tuple[str, ...]
    lengths: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class SharedLevelSpec:
    """One CSE level: its vert vector and (below the root) its offsets."""

    vert: "SharedVectorSpec | MmapVectorSpec"
    off: SharedVectorSpec | None


@dataclass(frozen=True)
class SharedLevelsHandle:
    """Picklable description of a CSE's levels for worker-side decoding."""

    segment: str
    levels: tuple[SharedLevelSpec, ...]


class LevelShare:
    """Creator-side export of a CSE's levels for one expansion.

    Lives for exactly one level expansion: the driver exports before
    creating block tasks and closes in a ``finally`` once the executor
    run ends, so crash paths release the segment too.
    """

    def __init__(
        self, segment: shared_memory.SharedMemory, handle: SharedLevelsHandle
    ) -> None:
        self._segment = segment
        self.handle = handle
        self._closed = False
        self._finalizer = weakref.finalize(self, _release_segment, segment, True)

    def close(self) -> None:
        """Detach and unlink (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        _release_segment(self._segment, unlink=True)


def _spill_parts(level) -> "tuple[tuple[str, ...], tuple[int, ...]] | None":
    """The on-disk part layout of a spilled level, if it has one."""
    parts = getattr(level, "parts", None)
    if parts is None:
        return None
    try:
        return (
            tuple(p.path for p in parts),
            tuple(int(p.length) for p in parts),
        )
    except AttributeError:
        return None


def export_levels(cse) -> LevelShare | None:
    """Pack a CSE's level arrays for by-name worker attachment.

    In-memory levels are copied into one shared segment; spilled levels
    contribute only their part-file paths (workers mmap those directly).
    Returns ``None`` when a level is neither — the caller falls back to
    shipping decoded blocks — or when the platform refuses the segment.
    """
    from .cse import InMemoryLevel  # local import: cse imports nothing from here

    total = 0
    to_fill: list[tuple[SharedVectorSpec, np.ndarray]] = []

    def reserve(array: np.ndarray) -> SharedVectorSpec:
        nonlocal total
        contiguous = np.ascontiguousarray(array)
        offset = -total % _ALIGN + total
        total = offset + contiguous.nbytes
        spec = SharedVectorSpec(
            dtype=str(contiguous.dtype),
            shape=tuple(contiguous.shape),
            offset=offset,
        )
        to_fill.append((spec, contiguous))
        return spec

    specs: list[SharedLevelSpec] = []
    for level in cse.levels:
        if isinstance(level, InMemoryLevel):
            vert_spec: SharedVectorSpec | MmapVectorSpec = reserve(level.vert_array())
        else:
            parts = _spill_parts(level)
            if parts is None or not getattr(level, "supports_block_decode", False):
                return None
            vert_spec = MmapVectorSpec(
                paths=parts[0], lengths=parts[1], dtype=str(level.dtype)
            )
        off = level.off_array()
        specs.append(
            SharedLevelSpec(vert=vert_spec, off=None if off is None else reserve(off))
        )

    try:
        segment = shared_memory.SharedMemory(create=True, size=max(1, total))
    except OSError:
        return None
    try:
        for spec, contiguous in to_fill:
            view = np.ndarray(
                spec.shape,
                dtype=np.dtype(spec.dtype),
                buffer=segment.buf,
                offset=spec.offset,
            )
            view[...] = contiguous
            del view
    except BaseException:
        # Nobody holds the segment yet; a failed fill must not leak it.
        _release_segment(segment, unlink=True)
        raise

    handle = SharedLevelsHandle(segment=segment.name, levels=tuple(specs))
    return LevelShare(segment, handle)


#: Worker-side attach cache: segment name -> (segment, verts, offs).  Two
#: entries cover the steady state (current level + the previous one still
#: referenced by an in-flight task); older segments are detached.
_LEVELS_CACHE: "OrderedDict[str, tuple[shared_memory.SharedMemory | None, list, list]]" = (
    OrderedDict()
)
_LEVELS_CACHE_MAX = 2


def attach_levels(handle: SharedLevelsHandle):
    """Worker-side: the ``(verts, offs)`` accessor lists for a handle.

    ``verts[l]`` is an ndarray view (shared segment) or a
    :class:`PartedVector` of memmaps (spilled level); ``offs[l]`` is an
    ndarray view or ``None`` at the root.  Attachments are cached per
    segment name so the many tasks of one level attach once.
    """
    cached = _LEVELS_CACHE.get(handle.segment)
    if cached is not None:
        _LEVELS_CACHE.move_to_end(handle.segment)
        return cached[1], cached[2]

    needs_segment = any(
        isinstance(spec.vert, SharedVectorSpec) or spec.off is not None
        for spec in handle.levels
    )
    segment = (
        shared_memory.SharedMemory(name=handle.segment) if needs_segment else None
    )

    def view(spec: SharedVectorSpec) -> np.ndarray:
        assert segment is not None
        array = np.ndarray(
            spec.shape,
            dtype=np.dtype(spec.dtype),
            buffer=segment.buf,
            offset=spec.offset,
        )
        array.flags.writeable = False
        return array

    verts: list = []
    offs: list = []
    for spec in handle.levels:
        if isinstance(spec.vert, MmapVectorSpec):
            parts = [
                np.load(path, mmap_mode="r", allow_pickle=False)
                for path in spec.vert.paths
            ]
            verts.append(PartedVector(parts, dtype=np.dtype(spec.vert.dtype)))
        else:
            verts.append(view(spec.vert))
        offs.append(None if spec.off is None else view(spec.off))

    while len(_LEVELS_CACHE) >= _LEVELS_CACHE_MAX:
        _, (old_segment, _, _) = _LEVELS_CACHE.popitem(last=False)
        if old_segment is not None:
            _release_segment(old_segment, unlink=False)
    _LEVELS_CACHE[handle.segment] = (segment, verts, offs)
    return verts, offs
