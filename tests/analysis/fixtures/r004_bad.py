"""R004 fixture: hard-coded np.int32 where id_dtype must thread (2 hits)."""

import numpy as np


def empty_level():
    return np.zeros(0, dtype=np.int32)  # hit 1


def widen(vert):
    return np.asarray(vert, dtype=np.int32)  # hit 2
