"""Unit tests for level expansion (exploration)."""

import numpy as np
import pytest

from repro.apps.reference import connected_edge_sets, connected_vertex_sets
from repro.core import CSE
from repro.core.explore import (
    canonical_extensions,
    even_parts,
    expand_edge_level,
    expand_vertex_level,
)
from repro.graph.edge_index import EdgeIndex


def test_expand_matches_figure3(paper_graph):
    cse = CSE(np.arange(6))
    expand_vertex_level(paper_graph, cse)
    twos = [emb for _, emb in cse.iter_embeddings()]
    assert twos == [(1, 2), (1, 5), (2, 3), (2, 5), (3, 4), (3, 5), (4, 5)]
    expand_vertex_level(paper_graph, cse)
    threes = [emb for _, emb in cse.iter_embeddings()]
    assert set(threes) == {
        (1, 2, 3), (1, 2, 5), (1, 5, 3), (1, 5, 4),
        (2, 3, 4), (2, 3, 5), (2, 5, 4), (3, 4, 5),
    }


def test_uniqueness_and_completeness_vertex(small_random):
    """Every connected k-set appears exactly once among k-embeddings."""
    cse = CSE(np.arange(small_random.num_vertices))
    for k in (2, 3, 4):
        expand_vertex_level(small_random, cse)
        found = sorted(tuple(sorted(e)) for _, e in cse.iter_embeddings())
        expected = sorted(connected_vertex_sets(small_random, k))
        assert found == expected, f"k={k}"


def test_uniqueness_and_completeness_edge(small_random):
    index = EdgeIndex(small_random)
    cse = CSE(np.arange(index.num_edges))
    for k in (2, 3):
        expand_edge_level(small_random, index, cse)
        found = sorted(tuple(sorted(e)) for _, e in cse.iter_embeddings())
        expected = sorted(connected_edge_sets(small_random, k))
        assert found == expected, f"k={k}"


def test_user_filter_applied(paper_graph):
    cse = CSE(np.arange(6))
    expand_vertex_level(paper_graph, cse)
    # Clique filter: candidate must be adjacent to every member.
    expand_vertex_level(
        paper_graph,
        cse,
        embedding_filter=lambda emb, v: all(paper_graph.has_edge(u, v) for u in emb),
    )
    triangles = [emb for _, emb in cse.iter_embeddings()]
    assert set(triangles) == {(1, 2, 5), (2, 3, 5), (3, 4, 5)}


def test_stats_counts(paper_graph):
    cse = CSE(np.arange(6))
    stats = expand_vertex_level(paper_graph, cse)
    assert stats.emitted == 7
    assert stats.candidates_examined >= 7
    assert stats.part_emitted == [7]
    assert stats.total_seconds >= 0


def test_parts_accounting(paper_graph):
    cse = CSE(np.arange(6))
    parts = [(0, 2), (2, 4), (4, 6)]
    stats = expand_vertex_level(paper_graph, cse, parts=parts)
    assert stats.part_bounds == parts
    assert len(stats.part_seconds) == 3
    assert sum(stats.part_emitted) == 7
    # Result identical to the unpartitioned expansion.
    assert [e for _, e in cse.iter_embeddings()] == [
        (1, 2), (1, 5), (2, 3), (2, 5), (3, 4), (3, 5), (4, 5)
    ]


def test_parts_must_be_contiguous(paper_graph):
    cse = CSE(np.arange(6))
    with pytest.raises(ValueError):
        expand_vertex_level(paper_graph, cse, parts=[(0, 3), (4, 6)])
    with pytest.raises(ValueError):
        expand_vertex_level(paper_graph, cse, parts=[(0, 3)])


def test_even_parts():
    assert even_parts(10, 3) == [(0, 3), (3, 6), (6, 10)]
    assert even_parts(2, 4) == [(0, 0), (0, 1), (1, 1), (1, 2)]
    with pytest.raises(ValueError):
        even_parts(5, 0)


def test_canonical_extensions(paper_graph):
    assert canonical_extensions(paper_graph, (2, 3)) == [4, 5]
    assert canonical_extensions(paper_graph, (1, 2)) == [3, 5]
    assert canonical_extensions(paper_graph, (0,)) == []


def test_empty_frontier(paper_graph):
    cse = CSE(np.array([], dtype=np.int32))
    stats = expand_vertex_level(paper_graph, cse)
    assert stats.emitted == 0
    assert cse.size() == 0


def test_expand_after_filter(paper_graph):
    """Expansion composes with filter_top_level (FSM's pruning path)."""
    cse = CSE(np.arange(6))
    expand_vertex_level(paper_graph, cse)
    keep = np.array([emb[0] == 1 for _, emb in cse.iter_embeddings()])
    cse.filter_top_level(keep)
    expand_vertex_level(paper_graph, cse)
    threes = [emb for _, emb in cse.iter_embeddings()]
    assert set(threes) == {(1, 2, 3), (1, 2, 5), (1, 5, 3), (1, 5, 4)}


def test_inmemory_sink_mixed_index_keys():
    """Mixing indexed and unindexed writes never duplicates sort keys: an
    unindexed write after an explicit index sorts after it."""
    from repro.core.explore import InMemorySink

    sink = InMemorySink()
    sink.write_part(np.array([1, 1], dtype=np.int32), index=1)
    sink.write_part(np.array([0, 0], dtype=np.int32), index=0)
    sink.write_part(np.array([2, 2], dtype=np.int32))  # unindexed -> key 2
    level = sink.finish(np.array([0, 2, 4, 6], dtype=np.int64))
    assert level.vert_array().tolist() == [0, 0, 1, 1, 2, 2]
