"""R006 fixture: the legal shapes — guarded fields stay under their lock."""

import threading


class DisciplinedCache:
    def __init__(self):
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._entries = {}  # guarded-by: _lock
        self._waiters = 0  # guarded-by: _cond
        self._stats = {}  # unguarded: never mutated under a lock

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value
            self._absorb(key)

    def wait_for_entry(self, key):
        with self._cond:
            self._waiters += 1
            try:
                return self._entries.get(key)
            finally:
                self._waiters -= 1

    def observe(self, name):
        # '_stats' has no annotation and no locked mutation site, so
        # inference leaves it unguarded — coordinator-serial state.
        self._stats[name] = self._stats.get(name, 0) + 1

    def _absorb(self, key):
        # lock-context helper: only called from under 'with self._lock:'.
        self._entries[key] = self._entries.get(key)


class Lockless:
    """No lock attributes at all — R006 has nothing to say."""

    def __init__(self):
        self.count = 0

    def bump(self):
        self.count += 1
