"""Unit tests for the Arabesque-like baseline engine."""

from repro import (
    FrequentSubgraphMining,
    KaleidoEngine,
    MotifCounting,
)
from repro.baselines import ArabesqueLikeEngine
from tests.conftest import random_labeled_graph


def test_triangles(paper_graph):
    assert ArabesqueLikeEngine(paper_graph).run_triangles().value == 3


def test_motif_counts_match_kaleido(paper_graph):
    ka = KaleidoEngine(paper_graph).run(MotifCounting(3))
    ar = ArabesqueLikeEngine(paper_graph).run_motif(3)
    assert sorted(ka.value.values()) == sorted(ar.value.values())


def test_clique_counts(paper_graph):
    assert ArabesqueLikeEngine(paper_graph).run_clique(3).value == 3
    assert ArabesqueLikeEngine(paper_graph).run_clique(4).value == 0


def test_fsm_matches_kaleido_exact():
    g = random_labeled_graph(12, 24, 2, seed=21)
    ka = KaleidoEngine(g).run(FrequentSubgraphMining(2, 2, exact_mni=True))
    ar = ArabesqueLikeEngine(g).run_fsm(2, 2)
    assert sorted(dict(ka.value).values()) == sorted(dict(ar.value).values())


def test_memory_accounting_heavier_than_kaleido():
    """The tuple store costs far more per embedding than CSE."""
    g = random_labeled_graph(40, 120, 2, seed=2)
    ka = KaleidoEngine(g).run(MotifCounting(4))
    ar = ArabesqueLikeEngine(g).run_motif(4)
    assert ar.peak_memory_bytes > ka.peak_memory_bytes


def test_result_record_shape(paper_graph):
    result = ArabesqueLikeEngine(paper_graph).run_motif(3)
    assert result.wall_seconds > 0
    assert result.app_name == "3-Motif"
    assert result.peak_memory_bytes > 0
    assert "odag-3" in result.memory_snapshot
